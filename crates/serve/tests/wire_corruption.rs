//! Wire-codec corruption gauntlet, in the style of
//! `persist_corruption.rs`: every malformation of a frame must map to a
//! typed [`WireError`] (or an "need more bytes" `Ok(None)`) — never a
//! panic, and never an allocation driven by unvalidated input.

use snod_serve::wire::{
    encode_frame, FrameDecoder, Msg, WireError, MAX_FRAME_BYTES, WIRE_HEADER_LEN,
};

fn sample() -> Msg {
    Msg::Reading {
        handle: 2,
        node: 1,
        seq: 77,
        value: vec![0.25, -3.5],
    }
}

fn decode_one(bytes: &[u8]) -> Result<Option<Msg>, WireError> {
    let mut dec = FrameDecoder::new();
    dec.feed(bytes);
    dec.next_frame()
}

#[test]
fn truncations_wait_for_more_bytes() {
    let frame = encode_frame(&sample());
    // Every proper prefix is "incomplete", not an error: the stream may
    // simply not have delivered the rest yet.
    for cut in 0..frame.len() {
        match decode_one(&frame[..cut]) {
            Ok(None) => {}
            other => panic!("prefix of {cut} bytes gave {other:?}"),
        }
    }
}

#[test]
fn bad_magic_is_rejected_before_a_full_header_arrives() {
    let mut frame = encode_frame(&sample());
    frame[0] = b'X';
    assert_eq!(decode_one(&frame), Err(WireError::BadMagic));
    // Even a 3-byte garbage prefix is enough to convict: the decoder
    // must not buffer 24 bytes of a stream that can never resync.
    assert_eq!(decode_one(b"GET"), Err(WireError::BadMagic));
}

#[test]
fn wrong_version_is_a_typed_error() {
    let mut frame = encode_frame(&sample());
    frame[8..12].copy_from_slice(&9u32.to_le_bytes());
    assert_eq!(
        decode_one(&frame),
        Err(WireError::UnsupportedVersion {
            found: 9,
            supported: 1
        })
    );
}

#[test]
fn hostile_length_fields_cost_no_allocation() {
    // A header declaring a 2^64-1 byte payload: rejected from the
    // header alone. (If the decoder tried to reserve the declared
    // length this test would abort the process, not fail.)
    let mut frame = encode_frame(&sample());
    frame[12..20].copy_from_slice(&u64::MAX.to_le_bytes());
    assert_eq!(decode_one(&frame), Err(WireError::Oversized { len: u64::MAX }));

    let mut frame = encode_frame(&sample());
    let just_over = MAX_FRAME_BYTES + 1;
    frame[12..20].copy_from_slice(&just_over.to_le_bytes());
    assert_eq!(decode_one(&frame), Err(WireError::Oversized { len: just_over }));

    // The cap itself is still in-bounds — it waits for payload bytes.
    let mut frame = encode_frame(&sample());
    frame[12..20].copy_from_slice(&MAX_FRAME_BYTES.to_le_bytes());
    assert_eq!(decode_one(&frame), Ok(None));
}

#[test]
fn payload_bitflips_fail_the_checksum() {
    let frame = encode_frame(&sample());
    for i in WIRE_HEADER_LEN..frame.len() {
        let mut bad = frame.clone();
        bad[i] ^= 0x01;
        match decode_one(&bad) {
            Err(WireError::BadChecksum { .. }) => {}
            other => panic!("payload flip at {i} gave {other:?}"),
        }
    }
}

#[test]
fn crc_matched_garbage_is_a_bad_payload() {
    // Corrupt the payload *and* fix the CRC: framing is now valid but
    // the payload is not a message.
    let mut frame = encode_frame(&Msg::Ping);
    frame[WIRE_HEADER_LEN] = 0xEE; // unknown tag
    let crc = snod_persist::crc32(&frame[WIRE_HEADER_LEN..]);
    frame[20..24].copy_from_slice(&crc.to_le_bytes());
    match decode_one(&frame) {
        Err(WireError::BadPayload(_)) => {}
        other => panic!("unknown tag gave {other:?}"),
    }

    // Trailing junk after a valid message is also a payload error:
    // frames must be exact.
    let inner = encode_frame(&Msg::Ping);
    let mut payload = inner[WIRE_HEADER_LEN..].to_vec();
    payload.push(0x00);
    let mut frame = Vec::new();
    frame.extend_from_slice(&inner[..8]);
    frame.extend_from_slice(&inner[8..12]);
    frame.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    frame.extend_from_slice(&snod_persist::crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    match decode_one(&frame) {
        Err(WireError::BadPayload(_)) => {}
        other => panic!("trailing junk gave {other:?}"),
    }
}

#[test]
fn every_single_byte_flip_is_handled_without_panic() {
    // The blanket sweep: flip each byte of a real frame in turn and
    // decode. Any outcome is acceptable except a panic — and a flip
    // must never round-trip to a *different* valid message silently
    // unless the CRC still matches (1-byte flips never preserve CRC-32,
    // so in practice: never).
    let msg = sample();
    let frame = encode_frame(&msg);
    for i in 0..frame.len() {
        for bit in 0..8 {
            let mut bad = frame.clone();
            bad[i] ^= 1 << bit;
            if let Ok(Some(m)) = decode_one(&bad) {
                assert_eq!(m, msg, "flip at byte {i} bit {bit} re-decoded");
            }
        }
    }
}

#[test]
fn decode_resumes_cleanly_after_interleaved_valid_frames() {
    // A valid frame, then a corrupted one: the first decodes, the
    // second errors, and (per the protocol) the connection would close
    // — the decoder does not resync past garbage.
    let good = encode_frame(&Msg::Ping);
    let mut bad = encode_frame(&sample());
    let n = bad.len();
    bad[n - 1] ^= 0xFF;
    let mut dec = FrameDecoder::new();
    dec.feed(&good);
    dec.feed(&bad);
    assert_eq!(dec.next_frame(), Ok(Some(Msg::Ping)));
    assert!(matches!(dec.next_frame(), Err(WireError::BadChecksum { .. })));
}
