//! **Figure 6**: JS-divergence between the true and the estimated data
//! distribution over time, at a leaf sensor and at a parent sensor with
//! sample fractions `f = 0.5` and `f = 0.75`.
//!
//! Paper setup (§10.1): `|W| = 10,240`, `|R| = 1,024`, Gaussian readings
//! whose distribution flips between `(μ=0.3, σ=0.05)` and
//! `(μ=0.5, σ=0.05)` every 4,096 measurements. Reported behaviour:
//! steady-state distance ≤ ~0.004–0.005, re-convergence below 0.1 within
//! ~2,500 measurements, parent latency decreasing with `f`.
//!
//! **Reproduction note.** With a *uniform* sliding-window sample and
//! `|W| = 10,240 > 4,096`, the window always contains a mixture of both
//! regimes, so no estimator can re-converge below 0.1 before the next
//! shift — the paper's recovery curve is only achievable if the
//! effective window is at most the shift period. This binary therefore
//! runs the experiment twice: once with the verbatim parameters (the
//! plateau is the honest outcome) and once with `|W| = 4,096`, which
//! reproduces the published curve shape and latency.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use snod_bench::report::{num, Table};
use snod_core::{EstimatorConfig, SensorEstimator};
use snod_data::{DataStream, DriftingGaussianStream, DRIFT_PERIOD};
use snod_density::js_divergence_models;

const GRID: usize = 128;
const LEAVES: usize = 4;

fn estimator(window: usize, sample: usize, seed: u64) -> SensorEstimator {
    SensorEstimator::new(
        EstimatorConfig::builder()
            .window(window)
            .sample_size(sample)
            .seed(seed)
            .build()
            .expect("valid config"),
    )
}

struct Outcome {
    table: Table,
    max_stable_leaf: f64,
    recovery: Vec<(u64, u64, f64, f64)>, // (shift, leaf latency, p50 js@+2500, p75 js@+2500)
}

fn run(window: usize, sample: usize) -> Outcome {
    let total = 3 * DRIFT_PERIOD;
    let mut streams: Vec<DriftingGaussianStream> = (0..LEAVES)
        .map(|i| DriftingGaussianStream::new(10 + i as u64))
        .collect();
    let mut leaf_ests: Vec<SensorEstimator> = (0..LEAVES)
        .map(|i| estimator(window, sample, 100 + i as u64))
        .collect();
    // Parent windows sized to their arrival rate (≈ 2·l·|R|·f arrivals
    // cover the same time horizon the leaf windows do).
    let arrivals = |f: f64| ((2.0 * LEAVES as f64 * sample as f64 * f) as usize).max(sample);
    let mut parent_f50 = estimator(arrivals(0.50), sample, 777);
    let mut parent_f75 = estimator(arrivals(0.75), sample, 778);
    let mut rng = StdRng::seed_from_u64(42);

    let mut table = Table::new([
        "reading",
        "truth μ",
        "leaf JS",
        "parent f=0.50",
        "parent f=0.75",
    ]);
    let mut max_stable_leaf = 0.0f64;
    let mut recovery = Vec::new();
    let mut pending: Option<u64> = None;

    let js = |est: &SensorEstimator, truth: &snod_data::TrueDistribution| -> f64 {
        est.model()
            .ok()
            .and_then(|m| js_divergence_models(&m, truth, GRID).ok())
            .unwrap_or(f64::NAN)
    };

    for i in 0..total {
        for s in 0..LEAVES {
            let v = streams[s].next_reading();
            let accepted = leaf_ests[s].observe(&v).expect("1-d reading");
            if accepted {
                if rng.gen::<f64>() < 0.50 {
                    parent_f50.observe(&v).expect("1-d reading");
                }
                if rng.gen::<f64>() < 0.75 {
                    parent_f75.observe(&v).expect("1-d reading");
                }
            }
        }
        if i > 0 && i % DRIFT_PERIOD == 0 {
            pending = Some(i);
        }
        if i % 128 == 127 || i + 1 == total {
            // Truth for the regime that produced reading i (computing it
            // from the stream position would flip one reading early at
            // period boundaries).
            let (mu, sigma) = DriftingGaussianStream::regime_at(i);
            let truth = snod_data::TrueDistribution::gaussian_1d(mu, sigma);
            let leaf_js = js(&leaf_ests[0], &truth);
            if i % 512 == 511 || i + 1 == total {
                table.row([
                    (i + 1).to_string(),
                    num(DriftingGaussianStream::regime_at(i).0, 2),
                    num(leaf_js, 4),
                    num(js(&parent_f50, &truth), 4),
                    num(js(&parent_f75, &truth), 4),
                ]);
            }
            if let Some(shift) = pending {
                if leaf_js < 0.1 {
                    recovery.push((
                        shift,
                        i - shift,
                        js(&parent_f50, &truth),
                        js(&parent_f75, &truth),
                    ));
                    pending = None;
                }
            } else if i >= 2_048 && leaf_js.is_finite() {
                max_stable_leaf = max_stable_leaf.max(leaf_js);
            }
        }
    }
    Outcome {
        table,
        max_stable_leaf,
        recovery,
    }
}

fn main() {
    let mut phases: Vec<(String, snod_obs::MetricsSnapshot)> = Vec::new();
    for (label, window, sample) in [
        ("paper-verbatim |W|=10,240", 10_240usize, 1_024usize),
        ("shift-consistent |W|=4,096", 4_096, 1_024),
    ] {
        let (o, metrics) = snod_bench::obs_report::phase(|| run(window, sample));
        phases.push((format!("window_{window}"), metrics));
        println!("== Figure 6 ({label}), |R|={sample}, shift every {DRIFT_PERIOD} ==\n");
        println!("{}", o.table.render());
        println!(
            "max leaf JS while distribution stable: {:.4}",
            o.max_stable_leaf
        );
        if o.recovery.is_empty() {
            println!(
                "no re-convergence below 0.1 before the next shift \
                 (window spans {:.1} shift periods)",
                window as f64 / DRIFT_PERIOD as f64
            );
        }
        for (at, lat, p50, p75) in &o.recovery {
            println!(
                "shift at {at}: leaf below 0.1 after ~{lat} readings \
                 (parents at that instant: f=0.50 → {p50:.3}, f=0.75 → {p75:.3})"
            );
        }
        println!();
    }
    // Per-phase observability breakdown: sketch ingest counters, KDE
    // build spans and scalar-query kernel counts per window setting.
    snod_bench::obs_report::write_phases("FIG06_metrics.json", &phases)
        .expect("write FIG06_metrics.json");
    println!("per-phase metrics: FIG06_metrics.json ({} phases)", phases.len());
}
