//! Per-node estimator state (paper Section 5).
//!
//! Each sensor maintains exactly what Theorem 1 charges it for:
//! a chain sample `R` of the current sliding window and an ε-approximate
//! standard deviation per dimension — `O(d(|R| + ε⁻²·log|W|))` memory in
//! total. From those two pieces a kernel density model is materialised on
//! demand ([`SensorEstimator::model`]): the paper's Equation 1 estimator
//! with the bandwidth rule of Section 4, using the sorted-centre 1-d
//! variant of Section 5.3 when `d = 1`.
//!
//! Leader (parent) nodes use the same type with *count scaling*: their
//! conceptual window is the union of their descendants' windows
//! (`|W_p| = Σ|W_i|`, Section 3), while their actual input is the
//! probabilistically forwarded sample sub-stream.

use snod_density::{DensityError, DensityModel, Kde, Kde1d};
use snod_outlier::{DistanceOutlierConfig, MdefConfig, MdefDetector, MdefEvaluation};
use snod_persist::{ByteReader, ByteWriter, Persist, PersistError};
use snod_sketch::{ChainSampler, WindowedVariance};

use crate::config::{CoreError, EstimatorConfig};

/// A materialised density model — the 1-d fast path or the generic
/// d-dimensional product-kernel estimator.
#[derive(Debug, Clone)]
pub enum SensorModel {
    /// Sorted-centre one-dimensional KDE (`O(log|R| + |R′|)` queries).
    One(Kde1d),
    /// Generic d-dimensional KDE (`O(d|R|)` queries).
    Multi(Kde),
}

impl DensityModel for SensorModel {
    fn dims(&self) -> usize {
        match self {
            SensorModel::One(m) => m.dims(),
            SensorModel::Multi(m) => m.dims(),
        }
    }

    fn window_len(&self) -> f64 {
        match self {
            SensorModel::One(m) => m.window_len(),
            SensorModel::Multi(m) => m.window_len(),
        }
    }

    fn pdf(&self, x: &[f64]) -> Result<f64, DensityError> {
        match self {
            SensorModel::One(m) => m.pdf(x),
            SensorModel::Multi(m) => m.pdf(x),
        }
    }

    fn box_prob(&self, lo: &[f64], hi: &[f64]) -> Result<f64, DensityError> {
        match self {
            SensorModel::One(m) => m.box_prob(lo, hi),
            SensorModel::Multi(m) => m.box_prob(lo, hi),
        }
    }

    fn neighborhood_counts(&self, points: &[f64], r: f64) -> Result<Vec<f64>, DensityError> {
        // Explicit delegation so the sorted-sweep overrides are reached
        // instead of the trait's scalar-loop default.
        match self {
            SensorModel::One(m) => m.neighborhood_counts(points, r),
            SensorModel::Multi(m) => m.neighborhood_counts(points, r),
        }
    }

    fn compress(&mut self, budget: usize, tolerance: f64) -> usize {
        match self {
            SensorModel::One(m) => m.compress(budget, tolerance),
            SensorModel::Multi(m) => m.compress(budget, tolerance),
        }
    }
}

impl SensorModel {
    /// Incrementally merges one value into the model's kernel centres
    /// (`O(log|R| + shift)`; bandwidths untouched — see
    /// [`crate::RebuildPolicy`]).
    pub fn insert_value(&mut self, value: &[f64]) -> Result<(), DensityError> {
        match self {
            SensorModel::One(m) => {
                if value.len() != 1 {
                    return Err(DensityError::DimensionMismatch {
                        expected: 1,
                        got: value.len(),
                    });
                }
                m.insert_center(value[0])
            }
            SensorModel::Multi(m) => m.insert_point(value),
        }
    }

    /// Incrementally removes one value from the model's kernel centres;
    /// `Ok(false)` when no matching centre exists (or it is the last one).
    pub fn remove_value(&mut self, value: &[f64]) -> Result<bool, DensityError> {
        match self {
            SensorModel::One(m) => {
                if value.len() != 1 {
                    return Err(DensityError::DimensionMismatch {
                        expected: 1,
                        got: value.len(),
                    });
                }
                Ok(m.remove_center(value[0]))
            }
            SensorModel::Multi(m) => m.remove_point(value),
        }
    }

    /// Replaces the window length that scales probabilities into counts.
    pub fn set_window_len(&mut self, window_len: f64) -> Result<(), DensityError> {
        match self {
            SensorModel::One(m) => m.set_window_len(window_len),
            SensorModel::Multi(m) => m.set_window_len(window_len),
        }
    }

    /// The kernel sample size `|R|` of the model.
    pub fn sample_size(&self) -> usize {
        match self {
            SensorModel::One(m) => m.sample_size(),
            SensorModel::Multi(m) => m.sample_size(),
        }
    }
}

/// The streaming estimator state of one node.
#[derive(Debug, Clone)]
pub struct SensorEstimator {
    cfg: EstimatorConfig,
    sampler: ChainSampler<Vec<f64>>,
    variances: Vec<WindowedVariance>,
    observed: u64,
    /// Conceptual window for count scaling (leaf: `|W|`; leader: `Σ|Wᵢ|`).
    conceptual_window: f64,
    /// How much conceptual coverage one arrival represents (leaf: 1).
    per_arrival_coverage: f64,
    /// Epoch-cached model (see [`Self::cached_model`]).
    cached: Option<ModelCache>,
    /// Completed full rebuilds of the cached model.
    epochs: u64,
}

/// The epoch cache of [`SensorEstimator::cached_model`].
#[derive(Debug, Clone)]
struct ModelCache {
    /// Chain-sample version the model was built from.
    version: u64,
    /// σ snapshot the bandwidths were derived from.
    built_sigmas: Vec<f64>,
    model: SensorModel,
}

impl SensorEstimator {
    /// Creates a leaf estimator.
    ///
    /// Panics when `cfg` was hand-assembled with out-of-range fields;
    /// use [`Self::try_new`] (or build the config through
    /// [`EstimatorConfig::builder`]) for a typed error instead.
    pub fn new(cfg: EstimatorConfig) -> Self {
        Self::try_new(cfg).expect("EstimatorConfig out of range — see SensorEstimator::try_new")
    }

    /// Like [`Self::new`] but surfaces an invalid configuration as a
    /// typed [`CoreError`] (the run_* entry points validate up front and
    /// then rely on this never failing).
    pub fn try_new(cfg: EstimatorConfig) -> Result<Self, CoreError> {
        cfg.validate()?;
        let sampler = ChainSampler::new(cfg.window, cfg.sample_size, cfg.seed)?;
        let variances = (0..cfg.dimensions)
            .map(|_| WindowedVariance::new(cfg.window, cfg.variance_epsilon))
            .collect::<Result<_, _>>()?;
        Ok(Self {
            cfg,
            sampler,
            variances,
            observed: 0,
            conceptual_window: cfg.window as f64,
            per_arrival_coverage: 1.0,
            cached: None,
            epochs: 0,
        })
    }

    /// Turns this into a leader estimator summarising `conceptual_window`
    /// underlying readings, where each arriving (sub-sampled) value
    /// represents `per_arrival_coverage` of them.
    ///
    /// Panics on non-positive arguments; use
    /// [`Self::try_with_count_scaling`] for a typed error.
    pub fn with_count_scaling(self, conceptual_window: f64, per_arrival_coverage: f64) -> Self {
        self.try_with_count_scaling(conceptual_window, per_arrival_coverage)
            .expect("count-scaling parameters out of range")
    }

    /// Fallible variant of [`Self::with_count_scaling`].
    pub fn try_with_count_scaling(
        mut self,
        conceptual_window: f64,
        per_arrival_coverage: f64,
    ) -> Result<Self, CoreError> {
        if !(conceptual_window > 0.0) {
            return Err(CoreError::Config("conceptual window must be positive"));
        }
        if !(per_arrival_coverage > 0.0) {
            return Err(CoreError::Config("per-arrival coverage must be positive"));
        }
        self.conceptual_window = conceptual_window;
        self.per_arrival_coverage = per_arrival_coverage;
        Ok(self)
    }

    /// The configuration this estimator was built from.
    pub fn config(&self) -> &EstimatorConfig {
        &self.cfg
    }

    /// Feeds one reading. Returns `true` when the chain sample accepted
    /// it (D3/MGDD forward the value upward, with probability `f`,
    /// exactly in that case).
    pub fn observe(&mut self, value: &[f64]) -> Result<bool, CoreError> {
        if value.len() != self.cfg.dimensions {
            return Err(CoreError::Density(DensityError::DimensionMismatch {
                expected: self.cfg.dimensions,
                got: value.len(),
            }));
        }
        self.observed += 1;
        for (v, wv) in value.iter().zip(self.variances.iter_mut()) {
            wv.push(*v);
        }
        Ok(self.sampler.push(value.to_vec()))
    }

    /// Readings observed so far.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Estimated per-dimension standard deviations of the window.
    pub fn sigmas(&self) -> Vec<f64> {
        self.variances.iter().map(|v| v.std_dev()).collect()
    }

    /// The current chain sample (with replacement).
    pub fn sample(&self) -> Vec<Vec<f64>> {
        self.sampler.sample()
    }

    /// The window length used to scale probabilities into counts:
    /// coverage so far, capped at the conceptual window.
    pub fn window_len(&self) -> f64 {
        (self.observed as f64 * self.per_arrival_coverage).min(self.conceptual_window)
    }

    /// Materialises the current density model (paper Equation 1 with the
    /// Section 4 bandwidths). `Err(NoData)` before the first reading.
    pub fn model(&self) -> Result<SensorModel, CoreError> {
        if self.observed == 0 {
            return Err(CoreError::NoData);
        }
        let sample = self.sampler.sample();
        let sigmas = self.sigmas();
        let window_len = self.window_len().max(1.0);
        let mut model = if self.cfg.dimensions == 1 {
            SensorModel::One(
                Kde1d::from_sample_iter(sample.iter().map(|p| p[0]), sigmas[0], window_len)
                    .map_err(CoreError::Density)?,
            )
        } else {
            SensorModel::Multi(
                Kde::from_sample_iter(sample.iter().map(Vec::as_slice), &sigmas, window_len)
                    .map_err(CoreError::Density)?,
            )
        };
        // Applied on every build, so the epoch cache and a from-scratch
        // model stay exactly interchangeable.
        if let Some(c) = self.cfg.compression {
            model.compress(c.budget, c.tolerance);
        }
        Ok(model)
    }

    /// Like [`Self::model`] but epoch-cached — the hot path for
    /// per-reading outlier checks.
    ///
    /// The previous build is reused while the chain sample is unchanged
    /// (it changes on only ~`2|R|/|W|` of readings), **and** across sample
    /// changes while the [`crate::RebuildPolicy`] allows it: the served
    /// model then lags the live sample by at most `rebuild_every` sample
    /// versions with σ drift below `sigma_tolerance`, which bounds its
    /// error (see the policy's documentation). A rebuild is exact — at
    /// every epoch boundary this returns precisely what [`Self::model`]
    /// builds from scratch.
    pub fn cached_model(&mut self) -> Result<&SensorModel, CoreError> {
        if self.observed == 0 {
            return Err(CoreError::NoData);
        }
        let version = self.sampler.version();
        // With an unchanged sample (pushes = 0) only σ drift can force a
        // rebuild — the streaming σ moves on every reading even when the
        // chain sample does not.
        let rebuild = match &self.cached {
            None => true,
            Some(c) => {
                let pushes = version.wrapping_sub(c.version);
                self.cfg
                    .rebuild
                    .should_rebuild(pushes, &c.built_sigmas, &self.sigmas())
            }
        };
        if rebuild {
            let _rebuild = snod_obs::span!("core.model.rebuild");
            let model = self.model()?;
            self.cached = Some(ModelCache {
                version,
                built_sigmas: self.sigmas(),
                model,
            });
            self.epochs += 1;
            snod_obs::counter!("core.model.rebuilds").incr();
        } else {
            snod_obs::counter!("core.model.cache_hits").incr();
        }
        Ok(&self.cached.as_ref().expect("cache just filled").model)
    }

    /// Completed full rebuilds of the epoch cache (diagnostics; lets
    /// callers detect epoch boundaries).
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// How many sample versions the cached model lags the live sample —
    /// 0 right after a rebuild, never more than the policy's
    /// `rebuild_every`.
    pub fn model_staleness(&self) -> u64 {
        match &self.cached {
            Some(c) => self.sampler.version().wrapping_sub(c.version),
            None => 0,
        }
    }

    /// Tests a new observation against the `(D, r)` rule using the
    /// current model (the paper's `IsOutlier()` procedure).
    pub fn is_distance_outlier(
        &mut self,
        p: &[f64],
        rule: &DistanceOutlierConfig,
    ) -> Result<bool, CoreError> {
        snod_obs::counter!("core.score.distance").incr();
        let model = self.cached_model()?;
        snod_outlier::distance::is_distance_outlier(model, p, rule).map_err(CoreError::Density)
    }

    /// Like [`Self::is_distance_outlier`] but with the threshold scaled
    /// by `window_len() / |W|`, keeping the *density* bar `t/|W|`
    /// constant while the window is still filling — and for leader nodes
    /// whose arrival stream is a uniform sub-sample of their subtree's
    /// readings, which makes the same density bar apply region-wide.
    pub fn is_distance_outlier_scaled(
        &mut self,
        p: &[f64],
        rule: &DistanceOutlierConfig,
    ) -> Result<bool, CoreError> {
        let scale = (self.window_len() / self.cfg.window as f64).max(f64::EPSILON);
        let eff = DistanceOutlierConfig {
            radius: rule.radius,
            min_neighbors: rule.min_neighbors * scale,
        };
        self.is_distance_outlier(p, &eff)
    }

    /// Runs the MDEF test for a new observation against the current
    /// model.
    pub fn evaluate_mdef(
        &mut self,
        p: &[f64],
        rule: &MdefConfig,
    ) -> Result<MdefEvaluation, CoreError> {
        snod_obs::counter!("core.score.mdef").incr();
        let detector = MdefDetector::new(*rule);
        let model = self.cached_model()?;
        detector.evaluate(model, p).map_err(CoreError::Density)
    }

    /// Actual memory footprint in bytes under the paper's §10.3
    /// accounting (`value_bytes` bytes per stored number; the paper
    /// assumes 2).
    pub fn memory_bytes(&self, value_bytes: usize) -> usize {
        let sample = self.sampler.memory_bytes(self.cfg.dimensions * value_bytes);
        let variance: usize = self
            .variances
            .iter()
            .map(|v| v.memory_bytes(value_bytes))
            .sum();
        sample + variance
    }

    /// High-water memory of the variance component plus current sample
    /// memory (the two terms of Theorem 1).
    pub fn max_variance_memory_bytes(&self, value_bytes: usize) -> usize {
        self.variances
            .iter()
            .map(|v| v.max_memory_bytes(value_bytes))
            .sum()
    }

    /// Theoretical memory bound of the variance component
    /// (`O((d/ε²)·log|W|)` with the constants of the BDMO analysis).
    pub fn variance_memory_bound(&self, value_bytes: usize) -> usize {
        self.variances
            .iter()
            .map(|v| v.theoretical_memory_bound(value_bytes))
            .sum()
    }
}

impl Persist for SensorModel {
    fn save(&self, w: &mut ByteWriter) {
        match self {
            SensorModel::One(m) => {
                w.put_u8(0);
                m.save(w);
            }
            SensorModel::Multi(m) => {
                w.put_u8(1);
                m.save(w);
            }
        }
    }

    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        match r.get_u8()? {
            0 => Ok(SensorModel::One(Kde1d::load(r)?)),
            1 => Ok(SensorModel::Multi(Kde::load(r)?)),
            _ => Err(PersistError::Corrupt("unknown sensor-model tag")),
        }
    }
}

impl Persist for ModelCache {
    fn save(&self, w: &mut ByteWriter) {
        self.version.save(w);
        self.built_sigmas.save(w);
        self.model.save(w);
    }

    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        Ok(Self {
            version: u64::load(r)?,
            built_sigmas: Vec::<f64>::load(r)?,
            model: SensorModel::load(r)?,
        })
    }
}

impl Persist for SensorEstimator {
    fn save(&self, w: &mut ByteWriter) {
        self.cfg.save(w);
        self.sampler.save(w);
        self.variances.save(w);
        self.observed.save(w);
        self.conceptual_window.save(w);
        self.per_arrival_coverage.save(w);
        self.cached.save(w);
        self.epochs.save(w);
    }

    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let cfg = EstimatorConfig::load(r)?;
        let sampler = ChainSampler::load(r)?;
        let variances = Vec::<WindowedVariance>::load(r)?;
        let observed = u64::load(r)?;
        let conceptual_window = f64::load(r)?;
        let per_arrival_coverage = f64::load(r)?;
        let cached = Option::<ModelCache>::load(r)?;
        let epochs = u64::load(r)?;
        if variances.len() != cfg.dimensions {
            return Err(PersistError::Corrupt(
                "estimator variance count mismatches its dimensionality",
            ));
        }
        if !(conceptual_window > 0.0) || !(per_arrival_coverage > 0.0) {
            return Err(PersistError::Corrupt(
                "estimator count-scaling parameters must be positive",
            ));
        }
        Ok(Self {
            cfg,
            sampler,
            variances,
            observed,
            conceptual_window,
            per_arrival_coverage,
            cached,
            epochs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf_config() -> EstimatorConfig {
        EstimatorConfig::builder()
            .window(1_000)
            .sample_size(100)
            .seed(42)
            .build()
            .unwrap()
    }

    #[test]
    fn hand_assembled_invalid_config_is_a_typed_error() {
        // The fields are public, so a config can bypass the builder's
        // validation; try_new must fail typed instead of panicking.
        let mut cfg = leaf_config();
        cfg.sample_size = 0;
        assert!(matches!(
            SensorEstimator::try_new(cfg),
            Err(CoreError::Config(_))
        ));
        let mut cfg = leaf_config();
        cfg.variance_epsilon = -0.3;
        assert!(SensorEstimator::try_new(cfg).is_err());
        let est = SensorEstimator::new(leaf_config());
        assert!(est.try_with_count_scaling(0.0, 1.0).is_err());
        let est = SensorEstimator::new(leaf_config());
        assert!(est.try_with_count_scaling(10.0, -1.0).is_err());
        let est = SensorEstimator::new(leaf_config());
        assert!(est.try_with_count_scaling(10.0, 2.0).is_ok());
    }

    #[test]
    fn no_data_errors_until_first_observation() {
        let est = SensorEstimator::new(leaf_config());
        assert!(matches!(est.model(), Err(CoreError::NoData)));
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let mut est = SensorEstimator::new(leaf_config());
        assert!(est.observe(&[0.5, 0.5]).is_err());
    }

    #[test]
    fn model_tracks_the_stream() {
        let mut est = SensorEstimator::new(leaf_config());
        for i in 0..2_000 {
            est.observe(&[0.4 + 0.01 * ((i % 10) as f64)]).unwrap();
        }
        let model = est.model().unwrap();
        // Nearly the whole window lies in [0.38, 0.52].
        let n = model.neighborhood_count(&[0.45], 0.07).unwrap();
        assert!(n > 800.0, "count {n}");
        // Nothing lives near 0.9.
        let far = model.neighborhood_count(&[0.9], 0.05).unwrap();
        assert!(far < 50.0, "count {far}");
    }

    #[test]
    fn window_len_saturates_at_conceptual_window() {
        let mut est = SensorEstimator::new(leaf_config());
        for _ in 0..100 {
            est.observe(&[0.5]).unwrap();
        }
        assert_eq!(est.window_len(), 100.0);
        for _ in 0..2_000 {
            est.observe(&[0.5]).unwrap();
        }
        assert_eq!(est.window_len(), 1_000.0);
    }

    #[test]
    fn count_scaling_for_leaders() {
        let mut est = SensorEstimator::new(leaf_config()).with_count_scaling(8_000.0, 40.0);
        for _ in 0..100 {
            est.observe(&[0.5]).unwrap();
        }
        assert_eq!(est.window_len(), 4_000.0); // 100 arrivals × 40 coverage
        for _ in 0..200 {
            est.observe(&[0.5]).unwrap();
        }
        assert_eq!(est.window_len(), 8_000.0); // capped
    }

    #[test]
    fn distance_outlier_detection_end_to_end() {
        let mut est = SensorEstimator::new(leaf_config());
        for i in 0..1_500 {
            est.observe(&[0.5 + 0.002 * ((i % 20) as f64)]).unwrap();
        }
        let rule = DistanceOutlierConfig::new(20.0, 0.02);
        assert!(!est.is_distance_outlier(&[0.52], &rule).unwrap());
        assert!(est.is_distance_outlier(&[0.9], &rule).unwrap());
    }

    #[test]
    fn two_dimensional_estimator() {
        let cfg = EstimatorConfig::builder()
            .window(500)
            .sample_size(50)
            .dimensions(2)
            .seed(3)
            .build()
            .unwrap();
        let mut est = SensorEstimator::new(cfg);
        for i in 0..1_000 {
            let t = (i % 25) as f64 / 25.0;
            est.observe(&[0.4 + 0.05 * t, 0.6 + 0.05 * t]).unwrap();
        }
        let model = est.model().unwrap();
        assert_eq!(model.dims(), 2);
        let dense = model.neighborhood_count(&[0.42, 0.62], 0.05).unwrap();
        let sparse = model.neighborhood_count(&[0.9, 0.1], 0.05).unwrap();
        assert!(
            dense > 10.0 * sparse.max(1.0),
            "dense {dense} sparse {sparse}"
        );
    }

    #[test]
    fn memory_accounting_is_within_sensor_budget() {
        // Paper §7: |W| = 20,000, |R| = 2,000, ε = 0.2 → < 10 KB total.
        let cfg = EstimatorConfig::builder()
            .window(20_000)
            .sample_size(2_000)
            .variance_epsilon(0.2)
            .seed(1)
            .build()
            .unwrap();
        let mut est = SensorEstimator::new(cfg);
        let mut state = 7u64;
        for _ in 0..40_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            est.observe(&[(state % 1_000) as f64 / 1_000.0]).unwrap();
        }
        let bytes = est.memory_bytes(2);
        assert!(bytes < 65_536, "memory {bytes} B");
        assert!(est.max_variance_memory_bytes(2) <= est.variance_memory_bound(2));
    }

    #[test]
    fn epoch_cache_staleness_is_bounded_by_policy() {
        use crate::config::RebuildPolicy;
        let cfg = EstimatorConfig::builder()
            .window(500)
            .sample_size(100)
            .seed(9)
            .rebuild_policy(RebuildPolicy {
                rebuild_every: 4,
                sigma_tolerance: 1e9, // only the push budget triggers
            })
            .build()
            .unwrap();
        let mut est = SensorEstimator::new(cfg);
        for i in 0..2_000 {
            est.observe(&[0.3 + 0.001 * ((i % 100) as f64)]).unwrap();
            est.cached_model().unwrap();
            assert!(
                est.model_staleness() < 4,
                "staleness {} exceeds budget",
                est.model_staleness()
            );
        }
        assert!(est.epochs() > 1, "cache never cycled an epoch");
    }

    #[test]
    fn rebuild_always_policy_matches_from_scratch_model() {
        use crate::config::RebuildPolicy;
        use snod_density::DensityModel as _;
        let cfg = EstimatorConfig::builder()
            .window(300)
            .sample_size(50)
            .seed(4)
            .rebuild_policy(RebuildPolicy::always())
            .build()
            .unwrap();
        let mut est = SensorEstimator::new(cfg);
        for i in 0..600 {
            est.observe(&[0.2 + 0.002 * ((i % 50) as f64)]).unwrap();
            let fresh = est.model().unwrap();
            let q = fresh.neighborhood_count(&[0.25], 0.05).unwrap();
            let cached = est.cached_model().unwrap();
            assert_eq!(cached.neighborhood_count(&[0.25], 0.05).unwrap(), q);
            assert_eq!(est.model_staleness(), 0);
        }
    }

    #[test]
    fn compression_caps_model_size_and_keeps_scores_sane() {
        use crate::config::ModelCompression;
        let base = EstimatorConfig::builder()
            .window(1_000)
            .sample_size(200)
            .seed(11);
        let cfg = base
            .clone()
            .compression(ModelCompression {
                budget: 40,
                tolerance: 0.05,
            })
            .build()
            .unwrap();
        let plain = base.build().unwrap();
        let mut est = SensorEstimator::new(cfg);
        let mut reference = SensorEstimator::new(plain);
        for i in 0..2_000 {
            let v = [0.4 + 0.01 * ((i % 10) as f64)];
            est.observe(&v).unwrap();
            reference.observe(&v).unwrap();
        }
        let model = est.model().unwrap();
        assert!(
            model.sample_size() <= 40,
            "|R| = {} exceeds budget",
            model.sample_size()
        );
        // Scores stay close to the uncompressed estimator's.
        let full = reference.model().unwrap();
        let a = model.neighborhood_count(&[0.45], 0.07).unwrap();
        let b = full.neighborhood_count(&[0.45], 0.07).unwrap();
        assert!((a - b).abs() < 0.05 * b.max(1.0), "{a} vs {b}");
        let far = model.neighborhood_count(&[0.9], 0.05).unwrap();
        assert!(far < 50.0, "count {far}");
    }

    #[test]
    fn compressed_epoch_cache_matches_from_scratch_model() {
        use crate::config::{ModelCompression, RebuildPolicy};
        use snod_density::DensityModel as _;
        let cfg = EstimatorConfig::builder()
            .window(300)
            .sample_size(80)
            .seed(6)
            .rebuild_policy(RebuildPolicy::always())
            .compression(ModelCompression {
                budget: 25,
                tolerance: 0.02,
            })
            .build()
            .unwrap();
        let mut est = SensorEstimator::new(cfg);
        for i in 0..600 {
            est.observe(&[0.2 + 0.002 * ((i % 50) as f64)]).unwrap();
            let fresh = est.model().unwrap();
            let q = fresh.neighborhood_count(&[0.25], 0.05).unwrap();
            let cached = est.cached_model().unwrap();
            assert!(cached.sample_size() <= 25);
            assert_eq!(cached.neighborhood_count(&[0.25], 0.05).unwrap(), q);
        }
    }

    #[test]
    fn mdef_evaluation_runs_against_model() {
        let mut est = SensorEstimator::new(leaf_config());
        for i in 0..2_000 {
            est.observe(&[0.40 + 0.1 * ((i % 100) as f64) / 100.0])
                .unwrap();
        }
        let rule = MdefConfig::new(0.08, 0.01, 3.0).unwrap();
        let core = est.evaluate_mdef(&[0.45], &rule).unwrap();
        assert!(!core.is_outlier, "core flagged: {core:?}");
        let skirt = est.evaluate_mdef(&[0.58], &rule).unwrap();
        assert!(skirt.mdef > core.mdef, "no gradient: {skirt:?} vs {core:?}");
    }
}
