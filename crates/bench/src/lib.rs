//! # snod-bench — experiment harness
//!
//! Shared plumbing for the figure-reproduction binaries in `src/bin/` and
//! the Criterion micro-benchmarks in `benches/`. See `DESIGN.md` §4 for
//! the experiment index mapping every paper table/figure to a binary.

#![forbid(unsafe_code)]

pub mod accuracy;
pub mod conformance;
pub mod harness;
pub mod obs_report;
pub mod report;
