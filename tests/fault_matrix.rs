//! The fault matrix: both paper algorithms × 3 seeds × 3 fault levels.
//!
//! This is the suite CI's fault-matrix job runs in release mode. Each
//! cell replays a seeded workload under one rung of the severity ladder
//! and checks the structural invariants that hold at *every* severity —
//! soundness (Theorem 3 containment for D3), accounting consistency,
//! and graceful degradation (MGDD leaves keep detecting even when the
//! network is gone). Assertions are structural rather than count-exact,
//! so the matrix is stable across `rand` versions and platforms.

use sensor_outliers::core::{
    build_mgdd_network, run_d3_with_faults, run_fqn_with_faults, run_mgdd_with_faults,
    run_mmdew_with_faults, D3Config, EstimatorConfig, FqnConfig, MgddConfig, MmdewNodeConfig,
    UpdateStrategy,
};
use sensor_outliers::outlier::{DistanceOutlierConfig, MdefConfig};
use sensor_outliers::simnet::{
    FaultPlan, Hierarchy, LinkFault, NetStats, NodeId, RestartPolicy, RetryPolicy, SimConfig,
};

const READINGS: u64 = 700;
const HORIZON_NS: u64 = READINGS * 1_000_000_000;
const SEEDS: [u64; 3] = [11, 42, 1_337];

fn topo() -> Hierarchy {
    Hierarchy::balanced(4, &[2, 2]).unwrap()
}

/// The three rungs of the severity ladder for one matrix row.
fn fault_levels(topo: &Hierarchy, seed: u64) -> Vec<(&'static str, FaultPlan)> {
    let victim = topo.leaves()[(seed % topo.leaves().len() as u64) as usize];
    vec![
        ("none", FaultPlan::none()),
        (
            "moderate",
            FaultPlan::none()
                .with_seed(seed)
                .burst(HORIZON_NS / 4, HORIZON_NS / 2, 0.3)
                .link(LinkFault::delay_all(2_000_000, 500_000)),
        ),
        (
            "severe",
            FaultPlan::none()
                .with_seed(seed)
                .burst(HORIZON_NS / 8, HORIZON_NS, 0.8)
                .crash(victim, HORIZON_NS / 3, Some(2 * HORIZON_NS / 3))
                .link(LinkFault::delay_all(5_000_000, 1_000_000).duplicate(0.1)),
        ),
    ]
}

fn source_for(seed: u64) -> impl FnMut(NodeId, u64) -> Option<Vec<f64>> {
    move |node: NodeId, seq: u64| {
        let h = (node.0 as u64 * 1_000_003) ^ seq.wrapping_mul(7_919 + seed);
        if seq % 149 == 60 {
            Some(vec![0.92])
        } else {
            Some(vec![0.3 + 0.2 * ((h % 1_009) as f64 / 1_009.0)])
        }
    }
}

fn estimator(seed: u64) -> EstimatorConfig {
    EstimatorConfig::builder()
        .window(250)
        .sample_size(40)
        .seed(seed)
        .build()
        .unwrap()
}

/// Counters can never contradict each other, whatever the plan did.
fn assert_accounting_consistent(label: &str, stats: &NetStats) {
    assert!(
        stats.dropped <= stats.messages + stats.acks,
        "{label}: more frames dropped than aired"
    );
    assert!(
        stats.retransmissions <= stats.messages,
        "{label}: retransmissions exceed total messages"
    );
    assert_eq!(
        stats.messages,
        stats.messages_per_node.iter().sum::<u64>(),
        "{label}: per-node message accounting drifted"
    );
    assert!(
        stats.tx_joules >= 0.0 && stats.rx_joules >= 0.0,
        "{label}: negative energy"
    );
}

#[test]
fn d3_matrix_stays_sound_at_every_cell() {
    for seed in SEEDS {
        let topo = topo();
        for (label, plan) in fault_levels(&topo, seed) {
            let cfg = D3Config {
                estimator: estimator(seed),
                rule: DistanceOutlierConfig::new(8.0, 0.02),
                sample_fraction: 0.5,
            };
            let sim = SimConfig::default().with_reliability(RetryPolicy::default());
            let mut src = source_for(seed);
            let net = run_d3_with_faults(topo.clone(), &cfg, sim, plan, &mut src, READINGS)
                .expect("valid config");
            let cell = format!("d3/seed {seed}/{label}");
            assert_accounting_consistent(&cell, net.stats());

            // Theorem 3 containment: leader detections only ever echo
            // leaf-flagged values.
            let leaf_keys: std::collections::HashSet<Vec<u64>> = net
                .apps()
                .flat_map(|(_, app)| app.detections.iter())
                .filter(|d| d.level == 1)
                .map(|d| d.value.iter().map(|v| v.to_bits()).collect())
                .collect();
            for (_, app) in net.apps() {
                for d in app.detections.iter().filter(|d| d.level > 1) {
                    let key: Vec<u64> = d.value.iter().map(|v| v.to_bits()).collect();
                    assert!(leaf_keys.contains(&key), "{cell}: unsound escalation");
                }
            }

            // The workload plants deviations every 149 readings; leaves
            // must flag some of them regardless of network state.
            let leaf_detections: usize = topo
                .leaves()
                .iter()
                .map(|&l| net.app(l).detections.len())
                .sum();
            assert!(leaf_detections > 0, "{cell}: leaves went blind");
        }
    }
}

/// The FQN row: the robust-scale detector shares D3's escalation
/// protocol, so its soundness claim is the same containment — a leader
/// only ever records values some leaf flagged first (parents re-check
/// escalations but never admit them into their own windows).
#[test]
fn fqn_matrix_stays_sound_at_every_cell() {
    for seed in SEEDS {
        let topo = topo();
        for (label, plan) in fault_levels(&topo, seed) {
            let cfg = FqnConfig {
                dimensions: 1,
                window: 128,
                k_scale: 4.0,
                warmup: 32,
                sample_fraction: 0.5,
                seed,
            };
            let sim = SimConfig::default().with_reliability(RetryPolicy::default());
            let mut src = source_for(seed);
            let net = run_fqn_with_faults(topo.clone(), &cfg, sim, plan, &mut src, READINGS)
                .expect("valid config");
            let cell = format!("fqn/seed {seed}/{label}");
            assert_accounting_consistent(&cell, net.stats());

            let leaf_keys: std::collections::HashSet<Vec<u64>> = net
                .apps()
                .flat_map(|(_, app)| app.detections.iter())
                .filter(|d| d.level == 1)
                .map(|d| d.value.iter().map(|v| v.to_bits()).collect())
                .collect();
            for (_, app) in net.apps() {
                for d in app.detections.iter().filter(|d| d.level > 1) {
                    let key: Vec<u64> = d.value.iter().map(|v| v.to_bits()).collect();
                    assert!(leaf_keys.contains(&key), "{cell}: unsound escalation");
                }
            }

            let leaf_detections: usize = topo
                .leaves()
                .iter()
                .map(|&l| net.app(l).detections.len())
                .sum();
            assert!(leaf_detections > 0, "{cell}: leaves went blind");
        }
    }
}

/// A piecewise-stationary workload for the MMDEW row: every leaf's mean
/// jumps between 0.2 and 0.8 every 250 readings.
fn shifting_source_for(seed: u64) -> impl FnMut(NodeId, u64) -> Option<Vec<f64>> {
    move |node: NodeId, seq: u64| {
        let h = (node.0 as u64 * 1_000_003) ^ seq.wrapping_mul(7_919 + seed);
        let base = if (seq / 250).is_multiple_of(2) { 0.2 } else { 0.8 };
        Some(vec![base + 0.02 * ((h % 1_009) as f64 / 1_009.0)])
    }
}

/// The MMDEW row: change alarms are local verdicts (a parent tallies
/// child alarms but never re-checks them), so the structural claims are
/// accounting consistency, leaves still alarming on the planted shifts
/// at every severity, and the tally never exceeding what was escalated.
#[test]
fn mmdew_matrix_keeps_alarming_at_every_cell() {
    for seed in SEEDS {
        let topo = topo();
        for (label, plan) in fault_levels(&topo, seed) {
            let mut cfg = MmdewNodeConfig::default();
            cfg.detector.seed = seed;
            let sim = SimConfig::default().with_reliability(RetryPolicy::default());
            let mut src = shifting_source_for(seed);
            let net = run_mmdew_with_faults(topo.clone(), &cfg, sim, plan, &mut src, READINGS)
                .expect("valid config");
            let cell = format!("mmdew/seed {seed}/{label}");
            assert_accounting_consistent(&cell, net.stats());

            // Leaves observe their own stream, so the planted shifts
            // must keep raising alarms whatever the network is doing.
            let leaf_detections: usize = topo
                .leaves()
                .iter()
                .map(|&l| net.app(l).detections.len())
                .sum();
            assert!(leaf_detections > 0, "{cell}: leaves went blind to the shift");

            // Every tallied child alarm corresponds to a detection some
            // non-root node escalated — the tally can lag (frames still
            // in flight, crashed parents) but never run ahead.
            let escalated: u64 = net
                .apps()
                .filter(|(n, _)| topo.parent(*n).is_some())
                .map(|(_, app)| app.detections.len() as u64)
                .sum();
            let tallied: u64 = net.apps().map(|(_, app)| app.child_alarms()).sum();
            assert!(
                tallied <= escalated,
                "{cell}: {tallied} alarms tallied but only {escalated} escalated"
            );
        }
    }
}

/// The warm-restart row: a crashed-and-revived leaf that reloads its
/// last per-node checkpoint (RestartPolicy::Warm) comes back with its
/// global-model replicas intact — stale at worst, so it keeps scoring
/// through the degraded rung of the ladder. A cold restart comes back
/// with empty replicas and an empty estimator and must re-live the
/// orphan rung: blind until the estimator refills, then local fallback
/// until the next broadcast re-warms its replicas. Same workload, same
/// crash, only the restart policy differs.
#[test]
fn mgdd_warm_restart_skips_the_staleness_window_cold_restarts_incur() {
    let topo = topo();
    let top = topo.level_count() as u8;
    let seed = SEEDS[1];
    let cfg = MgddConfig {
        estimator: estimator(seed),
        rule: MdefConfig::new(0.08, 0.01, 3.0).unwrap(),
        sample_fraction: 0.75,
        updates: UpdateStrategy::EveryAcceptance,
        staleness_bound_ns: Some(20_000_000_000),
    };
    // Crash one leaf (a replica holder) for the middle third.
    let victim = topo.leaves()[0];
    let plan = FaultPlan::none()
        .with_seed(seed)
        .crash(victim, HORIZON_NS / 3, Some(2 * HORIZON_NS / 3));
    let sim = SimConfig::default().with_reliability(RetryPolicy::default());

    let run = |policy: RestartPolicy| {
        let mut src = source_for(seed);
        let mut net = build_mgdd_network(topo.clone(), &cfg, sim, plan.clone(), &[top])
            .expect("valid config")
            .with_restart_policy(policy);
        net.run(&mut src, READINGS);
        net
    };

    let cold = run(RestartPolicy::Cold);
    let warm = run(RestartPolicy::Warm {
        checkpoint_every_ns: 10_000_000_000,
    });

    assert_accounting_consistent("mgdd/restart cold", cold.stats());
    assert_accounting_consistent("mgdd/restart warm", warm.stats());
    assert!(cold.stats().cold_restarts > 0, "the crash never cold-revived");
    assert!(warm.stats().warm_restarts > 0, "the crash never warm-revived");
    assert_eq!(warm.stats().cold_restarts, 0, "warm run fell back to cold");

    // The structural claim of the row: only the cold-restarted leaf is
    // orphaned (no warm replica at all), so it alone walks the local-
    // fallback rung; the warm-restarted leaf restores its replicas and
    // skips that window entirely, scoring degraded-at-worst instead.
    assert!(
        warm.stats().local_fallbacks < cold.stats().local_fallbacks,
        "warm restart did not skip the orphan window: warm {} vs cold {} local fallbacks",
        warm.stats().local_fallbacks,
        cold.stats().local_fallbacks
    );
    assert!(
        warm.stats().degraded_scores > 0,
        "the warm-restored leaf never engaged its stale replicas"
    );

    // Both policies replay bit-identically — the restart machinery
    // consumes no hidden nondeterminism.
    let warm_again = run(RestartPolicy::Warm {
        checkpoint_every_ns: 10_000_000_000,
    });
    assert_eq!(warm.stats(), warm_again.stats());
}

#[test]
fn mgdd_matrix_degrades_gracefully_at_every_cell() {
    for seed in SEEDS {
        let topo = topo();
        let top = topo.level_count() as u8;
        for (label, plan) in fault_levels(&topo, seed) {
            let cfg = MgddConfig {
                estimator: estimator(seed),
                rule: MdefConfig::new(0.08, 0.01, 3.0).unwrap(),
                sample_fraction: 0.75,
                updates: UpdateStrategy::EveryAcceptance,
                staleness_bound_ns: Some(20_000_000_000),
            };
            let sim = SimConfig::default().with_reliability(RetryPolicy::default());
            let mut src = source_for(seed);
            let net =
                run_mgdd_with_faults(topo.clone(), &cfg, sim, plan, &mut src, READINGS, &[top])
                    .expect("valid config");
            let cell = format!("mgdd/seed {seed}/{label}");
            assert_accounting_consistent(&cell, net.stats());

            // Detections are only ever tagged with a granularity that
            // exists, and leaf-tagged ones only appear when the run
            // actually degraded to local models.
            for (_, app) in net.apps() {
                for d in &app.detections {
                    assert!(
                        (1..=top).contains(&d.level),
                        "{cell}: impossible granularity {}",
                        d.level
                    );
                    if d.level == 1 {
                        assert!(
                            net.stats().local_fallbacks > 0,
                            "{cell}: leaf-tagged detection without any local fallback"
                        );
                    }
                }
            }
        }
    }
}
