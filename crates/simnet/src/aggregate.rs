//! TAG-style in-network aggregation (Madden et al., OSDI 2002).
//!
//! The paper's simulator is built *"on top of the TAG simulator"*, whose
//! core service is epoch-based in-network aggregation: leaves fold their
//! readings into partial state records, parents merge children's partials
//! with their own and forward one record per epoch, and the root emits
//! one aggregate value per epoch — `O(depth)` messages per epoch per
//! node instead of flooding raw readings. This module provides that
//! service over [`crate::Network`], both as the substrate the paper
//! assumes and as the natural companion query type ("what is the average
//! temperature?") to the outlier queries of `snod-core`.
//!
//! Partial state records are associative and commutative, so any merge
//! order up any tree yields the exact answer (asserted by tests).

use crate::{Ctx, DetectorEngine, Hierarchy, NodeId, Wire};

/// The aggregate functions TAG supports natively.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// Number of readings.
    Count,
    /// Sum of readings.
    Sum,
    /// Arithmetic mean.
    Avg,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

/// A mergeable partial state record covering all five aggregates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartialState {
    /// Readings folded in.
    pub count: f64,
    /// Sum of folded readings.
    pub sum: f64,
    /// Minimum folded reading (∞ when empty).
    pub min: f64,
    /// Maximum folded reading (−∞ when empty).
    pub max: f64,
}

impl Default for PartialState {
    fn default() -> Self {
        Self {
            count: 0.0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl PartialState {
    /// Folds one reading.
    pub fn fold(&mut self, v: f64) {
        self.count += 1.0;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Merges another partial record (associative, commutative).
    pub fn merge(&mut self, other: &PartialState) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Evaluates one aggregate; `None` when no readings were folded (or
    /// AVG of zero readings).
    pub fn eval(&self, agg: Aggregate) -> Option<f64> {
        if self.count == 0.0 {
            return None;
        }
        Some(match agg {
            Aggregate::Count => self.count,
            Aggregate::Sum => self.sum,
            Aggregate::Avg => self.sum / self.count,
            Aggregate::Min => self.min,
            Aggregate::Max => self.max,
        })
    }
}

/// One partial state record on the wire, tagged with its epoch.
#[derive(Debug, Clone)]
pub struct TagPayload {
    /// Epoch the record summarises.
    pub epoch: u64,
    /// The merged partial state.
    pub state: PartialState,
}

impl Wire for TagPayload {
    fn size_bytes(&self) -> usize {
        // epoch (2 B at 16-bit accounting) + four numbers.
        2 + 4 * 2
    }
}

/// Per-node TAG aggregation state. Leaves fold readings per epoch;
/// parents merge children's records and forward one per epoch; the root
/// records `(epoch, PartialState)` results.
pub struct TagNode {
    /// Readings per epoch (leaves only).
    epoch_len: u64,
    /// Which coordinate of multi-dimensional readings to aggregate.
    dimension: usize,
    /// Leaf: the epoch currently being filled.
    current_epoch: u64,
    current: PartialState,
    readings_in_epoch: u64,
    /// Parent: per-epoch merge buffers `(epoch, state, children heard)`.
    pending: Vec<(u64, PartialState, usize)>,
    child_count: usize,
    is_root: bool,
    /// Root: completed `(epoch, state)` results, in arrival order.
    pub results: Vec<(u64, PartialState)>,
}

impl TagNode {
    /// Builds the node for `node` in `topo`.
    pub fn new(node: NodeId, topo: &Hierarchy, epoch_len: u64, dimension: usize) -> Self {
        assert!(epoch_len > 0, "epoch length must be positive");
        Self {
            epoch_len,
            dimension,
            current_epoch: 0,
            current: PartialState::default(),
            readings_in_epoch: 0,
            pending: Vec::new(),
            child_count: topo.children(node).len(),
            is_root: topo.parent(node).is_none(),
            results: Vec::new(),
        }
    }

    /// Sends or records a finished epoch record.
    fn emit(&mut self, ctx: &mut Ctx<'_, TagPayload>, epoch: u64, state: PartialState) {
        if self.is_root {
            self.results.push((epoch, state));
        } else {
            ctx.send_parent(TagPayload { epoch, state });
        }
    }

    /// Parent-side: merge a child's record; flush when all children
    /// reported the epoch. Straggler epochs are flushed as-is when a
    /// record for a *later* epoch arrives from every child (loss
    /// tolerance: an epoch never blocks forever behind a lost frame).
    fn merge_child(&mut self, ctx: &mut Ctx<'_, TagPayload>, payload: TagPayload) {
        match self
            .pending
            .iter_mut()
            .find(|(e, _, _)| *e == payload.epoch)
        {
            Some((_, state, heard)) => {
                state.merge(&payload.state);
                *heard += 1;
            }
            None => self.pending.push((payload.epoch, payload.state, 1)),
        }
        // Flush complete epochs.
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].2 >= self.child_count {
                let (epoch, state, _) = self.pending.remove(i);
                self.emit(ctx, epoch, state);
            } else {
                i += 1;
            }
        }
        // Flush stragglers: any pending epoch at least two behind the
        // newest observed epoch is never going to complete.
        if let Some(newest) = self.pending.iter().map(|(e, _, _)| *e).max() {
            let mut i = 0;
            while i < self.pending.len() {
                if self.pending[i].0 + 2 <= newest {
                    let (epoch, state, _) = self.pending.remove(i);
                    self.emit(ctx, epoch, state);
                } else {
                    i += 1;
                }
            }
        }
    }
}

impl DetectorEngine<TagPayload> for TagNode {
    fn ingest(&mut self, ctx: &mut Ctx<'_, TagPayload>, value: &[f64]) {
        let v = value.get(self.dimension).copied().unwrap_or(f64::NAN);
        self.current.fold(v);
        self.readings_in_epoch += 1;
        if self.readings_in_epoch == self.epoch_len {
            let state = std::mem::take(&mut self.current);
            let epoch = self.current_epoch;
            self.readings_in_epoch = 0;
            self.current_epoch += 1;
            self.emit(ctx, epoch, state);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, TagPayload>, _from: NodeId, payload: TagPayload) {
        self.merge_child(ctx, payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Network, SimConfig};

    fn run_tag(
        leaves: usize,
        fanouts: &[usize],
        epoch_len: u64,
        readings: u64,
        drop: f64,
    ) -> Vec<(u64, PartialState)> {
        let topo = Hierarchy::balanced(leaves, fanouts).unwrap();
        let sim = SimConfig::default().with_drop_probability(drop);
        let mut net = Network::new(topo, sim, |n, t| TagNode::new(n, t, epoch_len, 0));
        // Leaf i at reading s emits i + s/1000 (deterministic, distinct).
        let mut src = |node: NodeId, seq: u64| Some(vec![node.0 as f64 + seq as f64 / 1_000.0]);
        net.run(&mut src, readings);
        let root = net.topology().root();
        let mut results = net.app(root).results.clone();
        results.sort_by_key(|(e, _)| *e);
        results
    }

    #[test]
    fn exact_aggregates_per_epoch_without_loss() {
        let (leaves, epoch_len, readings) = (8u64, 25u64, 100u64);
        let results = run_tag(leaves as usize, &[4, 2], epoch_len, readings, 0.0);
        assert_eq!(results.len(), (readings / epoch_len) as usize);
        for (epoch, state) in &results {
            assert_eq!(state.count, (leaves * epoch_len) as f64, "epoch {epoch}");
            // SUM: Σ_leaf Σ_s (leaf + s/1000) over the epoch's s range.
            let s0 = epoch * epoch_len;
            let per_leaf_seq: f64 = (s0..s0 + epoch_len).map(|s| s as f64 / 1_000.0).sum();
            let expected_sum: f64 = (0..leaves)
                .map(|l| l as f64 * epoch_len as f64 + per_leaf_seq)
                .sum();
            assert!((state.sum - expected_sum).abs() < 1e-9, "epoch {epoch}");
            // MIN is leaf 0's first reading of the epoch; MAX leaf 7's last.
            assert!((state.min - s0 as f64 / 1_000.0).abs() < 1e-12);
            let expected_max = (leaves - 1) as f64 + (s0 + epoch_len - 1) as f64 / 1_000.0;
            assert!((state.max - expected_max).abs() < 1e-12);
            assert!(state.eval(Aggregate::Avg).unwrap() > 0.0);
        }
    }

    #[test]
    fn message_cost_is_one_record_per_node_per_epoch() {
        let topo = Hierarchy::balanced(8, &[4, 2]).unwrap();
        let mut net = Network::new(topo, SimConfig::default(), |n, t| TagNode::new(n, t, 10, 0));
        let mut src = |_: NodeId, _: u64| Some(vec![1.0]);
        net.run(&mut src, 100);
        // 10 epochs × (8 leaves + 2 mid leaders) sends; the root sends none.
        assert_eq!(net.stats().messages, 10 * 10);
    }

    #[test]
    fn lossy_runs_degrade_counts_but_keep_reporting() {
        let results = run_tag(8, &[4, 2], 25, 200, 0.25);
        assert!(results.len() >= 4, "only {} epochs reported", results.len());
        let full = (8 * 25) as f64;
        assert!(results.iter().any(|(_, s)| s.count < full));
        for (_, s) in &results {
            assert!(s.count <= full, "over-counted: {}", s.count);
            // AVG stays in the data range even under loss.
            let avg = s.eval(Aggregate::Avg).unwrap();
            assert!((0.0..=8.2).contains(&avg));
        }
    }

    #[test]
    fn partial_state_merge_is_associative_and_commutative() {
        let mut rng_state = 5u64;
        let mut next = || {
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            (rng_state % 1_000) as f64 / 1_000.0
        };
        for _ in 0..50 {
            let mut a = PartialState::default();
            let mut b = PartialState::default();
            let mut c = PartialState::default();
            for _ in 0..7 {
                a.fold(next());
                b.fold(next());
            }
            c.fold(next());
            // Sums are associative only up to floating-point rounding;
            // everything else must match exactly.
            let close = |x: &PartialState, y: &PartialState| {
                x.count == y.count
                    && x.min == y.min
                    && x.max == y.max
                    && (x.sum - y.sum).abs() < 1e-12
            };
            // (a ∪ b) ∪ c == a ∪ (b ∪ c)
            let mut left = a;
            left.merge(&b);
            left.merge(&c);
            let mut bc = b;
            bc.merge(&c);
            let mut right = a;
            right.merge(&bc);
            assert!(close(&left, &right), "{left:?} vs {right:?}");
            // a ∪ b == b ∪ a
            let mut ab = a;
            ab.merge(&b);
            let mut ba = b;
            ba.merge(&a);
            assert!(close(&ab, &ba), "{ab:?} vs {ba:?}");
        }
    }

    #[test]
    fn empty_state_evaluates_to_none() {
        let s = PartialState::default();
        for agg in [
            Aggregate::Count,
            Aggregate::Sum,
            Aggregate::Avg,
            Aggregate::Min,
            Aggregate::Max,
        ] {
            assert_eq!(s.eval(agg), None);
        }
    }
}
