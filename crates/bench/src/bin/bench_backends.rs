//! Cross-backend snapshot: per-backend simulator throughput plus the
//! accuracy of the two new detectors at fixed operating points, written
//! to `BENCH_backends.json` in the working directory.
//!
//! Throughput rows drive the same 32-leaf hierarchy through every
//! backend recipe (`d3`, `mgdd`, `fqn`, `mmdew`) over an identical
//! seeded workload, so the numbers compare detector cost under one
//! dispatch machinery (BENCH_scale.json owns raw dispatch, BENCH_kde
//! owns KDE math). Accuracy rows report precision/recall against the
//! exact oracles of `snod_bench::accuracy`: labeled contamination for
//! FQN, planted change points for MMDEW.
//!
//! `SNOD_BENCH_SMOKE=1` shrinks the workloads to CI speed while
//! emitting the same schema.

use std::time::Instant;

use snod_bench::accuracy::{
    run_fqn_accuracy, run_mmdew_accuracy, FqnAccuracyConfig, MmdewAccuracyConfig,
};
use snod_core::{
    run_backend_with_faults, BackendKind, D3Backend, D3Config, DetectorBackend, EstimatorConfig,
    FqnBackend, FqnConfig, MgddBackend, MgddConfig, MmdewBackend, MmdewNodeConfig, UpdateStrategy,
};
use snod_outlier::{DistanceOutlierConfig, MdefConfig};
use snod_simnet::{FaultPlan, Hierarchy, NodeId, SimConfig};

struct ThroughputRow {
    backend: &'static str,
    leaves: usize,
    readings_per_leaf: u64,
    readings_per_sec: f64,
    detections: u64,
    bytes_per_node: f64,
}

struct AccuracyRow {
    backend: &'static str,
    parameter_name: &'static str,
    parameter: f64,
    precision: f64,
    recall: f64,
}

fn source(node: NodeId, seq: u64) -> Option<Vec<f64>> {
    let h = (node.0 as u64 * 1_000_003) ^ seq.wrapping_mul(7_919);
    if seq % 149 == 60 {
        Some(vec![0.92])
    } else {
        Some(vec![0.3 + 0.2 * ((h % 1_009) as f64 / 1_009.0)])
    }
}

fn measure<B: DetectorBackend>(
    backend: &B,
    leaves: usize,
    readings: u64,
) -> ThroughputRow {
    let topo = Hierarchy::balanced(leaves, &[4, 2, 4]).expect("bench topology");
    let nodes = topo.node_count();
    let mut src = source;
    let t0 = Instant::now();
    let net = run_backend_with_faults(
        backend,
        topo,
        SimConfig::default(),
        FaultPlan::none(),
        &mut src,
        readings,
    )
    .expect("bench recipe is valid");
    let run_s = t0.elapsed().as_secs_f64();
    let detections: u64 = net.apps().map(|(_, a)| B::detections(a).len() as u64).sum();
    ThroughputRow {
        backend: backend.kind().as_str(),
        leaves,
        readings_per_leaf: readings,
        readings_per_sec: leaves as f64 * readings as f64 / run_s,
        detections,
        bytes_per_node: net.stats().bytes as f64 / nodes as f64,
    }
}

fn main() {
    let smoke = std::env::var("SNOD_BENCH_SMOKE").is_ok();
    let leaves = 32usize;
    let readings: u64 = if smoke { 400 } else { 4_000 };
    let window = if smoke { 128 } else { 512 };

    let estimator = EstimatorConfig::builder()
        .window(window)
        .sample_size(window / 8)
        .seed(21)
        .build()
        .expect("bench estimator");
    let d3 = D3Backend(D3Config {
        estimator,
        rule: DistanceOutlierConfig::new(8.0, 0.02),
        sample_fraction: 0.5,
    });
    let mgdd = MgddBackend {
        cfg: MgddConfig {
            estimator,
            rule: MdefConfig::new(0.08, 0.01, 3.0).expect("bench mdef rule"),
            sample_fraction: 0.5,
            updates: UpdateStrategy::EveryAcceptance,
            staleness_bound_ns: None,
        },
        broadcast_levels: vec![4],
    };
    let fqn = FqnBackend(FqnConfig {
        dimensions: 1,
        window,
        k_scale: 4.0,
        warmup: 32,
        sample_fraction: 0.5,
        seed: 21,
    });
    let mut mmdew_cfg = MmdewNodeConfig::default();
    mmdew_cfg.detector.seed = 21;
    let mmdew = MmdewBackend(mmdew_cfg);

    let throughput = vec![
        measure(&d3, leaves, readings),
        measure(&mgdd, leaves, readings),
        measure(&fqn, leaves, readings),
        measure(&mmdew, leaves, readings),
    ];
    for r in &throughput {
        eprintln!(
            "{}: {:.0} readings/s over {} leaves × {} readings, {} detections, {:.1} bytes/node",
            r.backend, r.readings_per_sec, r.leaves, r.readings_per_leaf, r.detections,
            r.bytes_per_node,
        );
    }

    // Accuracy at fixed operating points against the exact oracles.
    let fqn_points = run_fqn_accuracy(&FqnAccuracyConfig {
        leaves: 4,
        fanouts: vec![2, 2],
        fqn: FqnConfig {
            dimensions: 1,
            window: 128,
            k_scale: 4.0,
            warmup: 32,
            sample_fraction: 0.5,
            seed: 11,
        },
        warmup: 128,
        eval: if smoke { 400 } else { 2_000 },
        outlier_every: 50,
        k_scales: vec![2.0, 4.0, 8.0],
        seed: 5,
    });
    let mut mmdew_node = MmdewNodeConfig::default();
    mmdew_node.detector.bucket_cap = 16;
    mmdew_node.detector.min_per_side = 8;
    mmdew_node.detector.seed = 11;
    let mmdew_points = run_mmdew_accuracy(&MmdewAccuracyConfig {
        leaves: 4,
        fanouts: vec![2, 2],
        node: mmdew_node,
        segment: 250,
        readings: if smoke { 1_000 } else { 4_000 },
        tolerance: 100,
        threshold_scales: vec![0.3, 0.6, 1.2],
        seed: 5,
    });
    let accuracy: Vec<AccuracyRow> = fqn_points
        .iter()
        .map(|p| AccuracyRow {
            backend: BackendKind::Fqn.as_str(),
            parameter_name: "k_scale",
            parameter: p.parameter,
            precision: p.pr.precision(),
            recall: p.pr.recall(),
        })
        .chain(mmdew_points.iter().map(|p| AccuracyRow {
            backend: BackendKind::Mmdew.as_str(),
            parameter_name: "threshold_scale",
            parameter: p.parameter,
            precision: p.pr.precision(),
            recall: p.pr.recall(),
        }))
        .collect();
    for r in &accuracy {
        eprintln!(
            "{} @ {}={}: precision {:.3}, recall {:.3}",
            r.backend, r.parameter_name, r.parameter, r.precision, r.recall,
        );
    }

    let mut json = format!("{{\n  \"smoke\": {smoke},\n  \"throughput\": [\n");
    for (i, r) in throughput.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"backend\": \"{}\", \"leaves\": {}, \"readings_per_leaf\": {}, \
             \"readings_per_sec\": {:.1}, \"detections\": {}, \"bytes_per_node\": {:.1}}}{}\n",
            r.backend,
            r.leaves,
            r.readings_per_leaf,
            r.readings_per_sec,
            r.detections,
            r.bytes_per_node,
            if i + 1 < throughput.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n  \"accuracy\": [\n");
    for (i, r) in accuracy.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"backend\": \"{}\", \"parameter\": \"{}\", \"value\": {}, \
             \"precision\": {:.4}, \"recall\": {:.4}}}{}\n",
            r.backend,
            r.parameter_name,
            r.parameter,
            r.precision,
            r.recall,
            if i + 1 < accuracy.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_backends.json", &json).expect("write BENCH_backends.json");
    print!("{json}");
}
