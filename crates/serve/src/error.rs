//! Typed errors for the daemon, its wire protocol and its client.

use snod_persist::PersistError;

use crate::wire::WireError;

/// Errors raised by the daemon, the client or their configuration.
#[derive(Debug)]
pub enum ServeError {
    /// Socket or file I/O failed.
    Io(std::io::Error),
    /// A frame violated the wire protocol.
    Wire(WireError),
    /// A checkpoint could not be written or restored.
    Persist(PersistError),
    /// A configuration value was rejected.
    Config(String),
    /// The peer reported a protocol-level error frame.
    Remote(String),
    /// A blocking operation ran out of time.
    Timeout(&'static str),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Wire(e) => write!(f, "wire protocol error: {e}"),
            ServeError::Persist(e) => write!(f, "checkpoint error: {e}"),
            ServeError::Config(what) => write!(f, "invalid configuration: {what}"),
            ServeError::Remote(msg) => write!(f, "peer reported: {msg}"),
            ServeError::Timeout(what) => write!(f, "timed out waiting for {what}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<WireError> for ServeError {
    fn from(e: WireError) -> Self {
        ServeError::Wire(e)
    }
}

impl From<PersistError> for ServeError {
    fn from(e: PersistError) -> Self {
        ServeError::Persist(e)
    }
}
