//! **Figure 10**: precision and recall on the (calibrated) real
//! datasets while varying `|R|`: the 1-d engine measurements (upper
//! half) and the 2-d environmental (pressure, dew-point) pairs (lower
//! half).
//!
//! Paper parameters (§10.2): D3 looks for `(100, 0.005)`-outliers; MGDD
//! uses `r = 0.05`, `αr = 0.003` (and `k_σ = 3` as everywhere).
//!
//! Knobs: `FIG_RUNS` (default 3), `FIG_WINDOW` (default 10000),
//! `FIG_EVAL` (default 500), `FIG_LEAVES` (default 32).

use snod_bench::accuracy::{run_accuracy, AccuracyConfig, AlgorithmKind, EstimatorKind};
use snod_bench::report::{pct, Table};
use snod_data::{DataStream, EngineStream, EnvironmentStream};
use snod_outlier::{DistanceOutlierConfig, MdefConfig};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

enum RealStream {
    Engine(EngineStream),
    Environment(EnvironmentStream),
}

impl DataStream for RealStream {
    fn dims(&self) -> usize {
        match self {
            RealStream::Engine(s) => s.dims(),
            RealStream::Environment(s) => s.dims(),
        }
    }
    fn next_reading(&mut self) -> Vec<f64> {
        match self {
            RealStream::Engine(s) => s.next_reading(),
            RealStream::Environment(s) => s.next_reading(),
        }
    }
}

fn run_dataset(name: &str, dims: usize, runs: u64, window: usize, eval: u64, leaves: usize) {
    println!("== {name} ({dims}-d), |W|={window}, {leaves} leaves, {runs} runs ==");
    let mut d3_t = Table::new(["|R|/|W|", "prec L1", "rec L1", "prec L2", "rec L2"]);
    let mut mgdd_t = Table::new(["|R|/|W|", "prec L2", "rec L2", "prec L3", "rec L3"]);
    for &frac in &[0.0125f64, 0.025, 0.05] {
        let mut cfg = AccuracyConfig::paper_defaults_1d();
        cfg.leaves = leaves;
        cfg.dims = dims;
        cfg.window = window;
        cfg.sample_size = ((window as f64) * frac).round() as usize;
        cfg.warmup = window as u64;
        cfg.eval = eval;
        cfg.runs = runs;
        // The paper's real-data rules.
        cfg.dist_rule = DistanceOutlierConfig::new(100.0, 0.005);
        cfg.mdef_rule = MdefConfig::new(0.05, 0.003, 3.0).expect("valid rule");
        let results = run_accuracy(&cfg, move |run, sensor| {
            let seed = 0xF1610 + run * 10_007 + sensor as u64;
            if dims == 1 {
                // Stagger failure windows so sensors differ (the paper's
                // 15 engine sensors fail together; a shared failure would
                // be "normal" at the region level, so we keep per-sensor
                // offsets to exercise every hierarchy level).
                let fail_at = 8_000 + (sensor as u64 % 8) * 500;
                RealStream::Engine(
                    EngineStream::new(seed).with_major_failure(Some((fail_at, fail_at + 200))),
                )
            } else {
                RealStream::Environment(EnvironmentStream::new(seed))
            }
        });
        let cell = |alg: AlgorithmKind, level: u8, precision: bool| -> String {
            results
                .series
                .get(&(alg, EstimatorKind::Kernel, level))
                .map(|pr| {
                    pct(if precision {
                        pr.precision()
                    } else {
                        pr.recall()
                    })
                })
                .unwrap_or_else(|| "-".into())
        };
        d3_t.row([
            format!("{frac}"),
            cell(AlgorithmKind::D3, 1, true),
            cell(AlgorithmKind::D3, 1, false),
            cell(AlgorithmKind::D3, 2, true),
            cell(AlgorithmKind::D3, 2, false),
        ]);
        mgdd_t.row([
            format!("{frac}"),
            cell(AlgorithmKind::Mgdd, 2, true),
            cell(AlgorithmKind::Mgdd, 2, false),
            cell(AlgorithmKind::Mgdd, 3, true),
            cell(AlgorithmKind::Mgdd, 3, false),
        ]);
        println!(
            "  |R|={}  true-D/level={:?}  true-M/level={:?}",
            cfg.sample_size, results.true_dist, results.true_mdef
        );
    }
    println!("\nD3 (kernel)\n{}", d3_t.render());
    println!("MGDD (kernel)\n{}", mgdd_t.render());
}

fn main() {
    let runs = env_u64("FIG_RUNS", 3);
    let window = env_u64("FIG_WINDOW", 10_000) as usize;
    let eval = env_u64("FIG_EVAL", 500);
    let leaves = env_u64("FIG_LEAVES", 32) as usize;

    println!("Figure 10 — calibrated real datasets\n");
    run_dataset("engine", 1, runs, window, eval, leaves);
    println!();
    run_dataset(
        "environment (pressure, dew-point)",
        2,
        runs,
        window,
        eval,
        leaves,
    );
}
