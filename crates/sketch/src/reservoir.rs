//! Classic reservoir sampling (Vitter's Algorithm R).
//!
//! Reservoir sampling draws a uniform *without-replacement* sample from the
//! whole stream prefix, not from a sliding window. The paper discusses it
//! as the simplest density estimator ("the simplest statistical estimator
//! … is random sampling") and we keep it as a baseline to demonstrate why
//! the chain sampler is needed: a reservoir goes stale under distribution
//! drift because old elements never expire.

use rand::Rng;
use snod_persist::{ByteReader, ByteWriter, Persist, PersistError, SeededRng};

use crate::SketchError;

/// Uniform without-replacement sample of size `k` over an unbounded stream.
///
/// ```
/// use snod_sketch::ReservoirSampler;
/// let mut r = ReservoirSampler::new(5, 1).unwrap();
/// for i in 0..100 {
///     r.push(i);
/// }
/// assert_eq!(r.sample().len(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct ReservoirSampler<T> {
    reservoir: Vec<T>,
    capacity: usize,
    seen: u64,
    rng: SeededRng,
}

impl<T> ReservoirSampler<T> {
    /// Creates a reservoir of size `capacity` with a deterministic `seed`.
    pub fn new(capacity: usize, seed: u64) -> Result<Self, SketchError> {
        if capacity == 0 {
            return Err(SketchError::ZeroSize("reservoir capacity"));
        }
        Ok(Self {
            reservoir: Vec::with_capacity(capacity),
            capacity,
            seen: 0,
            rng: SeededRng::seed_from_u64(seed),
        })
    }

    /// Offers one stream element to the reservoir.
    pub fn push(&mut self, value: T) {
        self.seen += 1;
        if self.reservoir.len() < self.capacity {
            self.reservoir.push(value);
        } else {
            let j = self.rng.gen_range(0..self.seen);
            if (j as usize) < self.capacity {
                self.reservoir[j as usize] = value;
            }
        }
    }

    /// The current sample (unordered).
    pub fn sample(&self) -> &[T] {
        &self.reservoir
    }

    /// Total number of elements observed.
    pub fn stream_len(&self) -> u64 {
        self.seen
    }
}

impl<T: Persist> Persist for ReservoirSampler<T> {
    fn save(&self, w: &mut ByteWriter) {
        self.reservoir.save(w);
        self.capacity.save(w);
        self.seen.save(w);
        self.rng.save(w);
    }

    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let reservoir = Vec::<T>::load(r)?;
        let capacity = usize::load(r)?;
        let seen = u64::load(r)?;
        let rng = SeededRng::load(r)?;
        if capacity == 0 {
            return Err(PersistError::Corrupt("reservoir capacity must be positive"));
        }
        if reservoir.len() > capacity {
            return Err(PersistError::Corrupt("reservoir larger than its capacity"));
        }
        Ok(Self {
            reservoir,
            capacity,
            seen,
            rng,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_to_capacity_then_stays() {
        let mut r = ReservoirSampler::new(8, 42).unwrap();
        for i in 0..4 {
            r.push(i);
        }
        assert_eq!(r.sample().len(), 4);
        for i in 4..1_000 {
            r.push(i);
        }
        assert_eq!(r.sample().len(), 8);
    }

    #[test]
    fn sample_contains_only_seen_values() {
        let mut r = ReservoirSampler::new(16, 7).unwrap();
        for i in 0..500u32 {
            r.push(i);
        }
        assert!(r.sample().iter().all(|&v| v < 500));
    }

    #[test]
    fn inclusion_probability_is_roughly_uniform() {
        // Probability any fixed element stays in a k-of-n reservoir is k/n.
        // Count how often element 0 survives across many seeded runs.
        let (k, n, runs) = (10usize, 200u32, 2_000u64);
        let mut hits = 0;
        for seed in 0..runs {
            let mut r = ReservoirSampler::new(k, seed).unwrap();
            for i in 0..n {
                r.push(i);
            }
            if r.sample().contains(&0) {
                hits += 1;
            }
        }
        let p = hits as f64 / runs as f64;
        let expect = k as f64 / n as f64;
        assert!(
            (p - expect).abs() < 0.02,
            "inclusion probability {p} deviates from {expect}"
        );
    }
}
