//! Offline API-compatible subset of `proptest` 1.x.
//!
//! Implements the slice of proptest this workspace's property tests
//! use: the [`Strategy`] trait (ranges, tuples, `collection::vec`,
//! `prop_map`, `Just`), [`ProptestConfig`], the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` macros, and a deterministic test
//! runner. Differences from upstream: no shrinking (a failure reports
//! the case seed instead of a minimised input) and generation is a
//! single-pass RNG draw rather than a value tree. Case count honours
//! `PROPTEST_CASES` like upstream. See `vendor/README.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::Rng;

/// Runner configuration (subset: case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

impl ProptestConfig {
    /// A config running exactly `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Test-runner plumbing: error type, result alias, RNG and the driver
/// loop invoked by the `proptest!` macro.
pub mod test_runner {
    /// Human-readable failure reason.
    pub type Reason = String;

    /// Why a test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The input was not valid for this case; draw another.
        Reject(Reason),
        /// An assertion failed.
        Fail(Reason),
    }

    impl TestCaseError {
        /// Builds a failure.
        pub fn fail(reason: impl Into<Reason>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// Builds a rejection.
        pub fn reject(reason: impl Into<Reason>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
                TestCaseError::Fail(r) => write!(f, "{r}"),
            }
        }
    }

    /// Outcome of one test case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// The RNG handed to strategies (the vendored StdRng).
    pub type TestRng = rand::rngs::StdRng;

    /// Drives `case` until `config.cases` successes, panicking on the
    /// first failure with the case's seed so it can be replayed by
    /// rerunning the test (seeding is a pure function of the test name
    /// and attempt index — no ambient entropy).
    pub fn run<F>(name: &str, config: &super::ProptestConfig, mut case: F)
    where
        F: FnMut(&mut TestRng) -> TestCaseResult,
    {
        use rand::SeedableRng;
        // FNV-1a over the test name gives each test its own stream.
        let mut base: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            base ^= u64::from(*b);
            base = base.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut executed: u32 = 0;
        let mut rejects: u32 = 0;
        let mut attempt: u64 = 0;
        while executed < config.cases {
            let seed = base ^ attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            attempt += 1;
            let mut rng = TestRng::seed_from_u64(seed);
            match case(&mut rng) {
                Ok(()) => executed += 1,
                Err(TestCaseError::Reject(reason)) => {
                    rejects += 1;
                    if rejects > config.cases.saturating_mul(16).max(256) {
                        panic!("proptest '{name}': too many rejected inputs ({rejects}): {reason}");
                    }
                }
                Err(TestCaseError::Fail(reason)) => {
                    panic!(
                        "proptest '{name}' failed at case {executed} (seed {seed:#018x}): {reason}"
                    );
                }
            }
        }
    }
}

use test_runner::TestRng;

/// A generator of test inputs.
///
/// Unlike upstream (which builds shrinkable value trees), `generate`
/// draws one concrete value directly from the RNG.
pub trait Strategy {
    /// The type of value this strategy yields.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// Strategy yielding a constant.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

impl<T: rand::SampleUniform> Strategy for std::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

impl<T: rand::SampleUniform> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(*self.start()..=*self.end())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9);

/// Collection strategies (`vec` and its size specification).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Inclusive length bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.end > r.start, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with the given element strategy and length range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };

    /// Namespaced strategy modules (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Declares property tests. Each function runs `config.cases` times
/// with inputs drawn from the strategies after `in`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    (config = $config:expr;) => {};
    (config = $config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            $crate::test_runner::run(stringify!($name), &config, |rng| {
                $(let $pat = $crate::Strategy::generate(&($strat), rng);)+
                #[allow(unused_mut)]
                let mut case = move || -> $crate::test_runner::TestCaseResult {
                    $body
                    Ok(())
                };
                case()
            });
        }
        $crate::__proptest_each! { config = $config; $($rest)* }
    };
}

/// Asserts a condition, failing the current case (not panicking) so the
/// runner can report the seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        // Bound to a bool first so negating it lints cleanly even when
        // `$cond` is a partial-order comparison on floats.
        let __prop_holds: bool = $cond;
        if !__prop_holds {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Rejects the current case (drawing a replacement) when the
/// precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        $crate::prop_assume!($cond, concat!("assumption failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        let __prop_holds: bool = $cond;
        if !__prop_holds {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::reject(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality, failing the current case on mismatch.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?} == {:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{} (`{:?}` != `{:?}`)",
            format!($($fmt)+),
            left,
            right
        );
    }};
}

/// Asserts inequality, failing the current case on match.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?} != {:?}`",
            left,
            right
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn helper_using_question_mark(x: f64) -> Result<(), TestCaseError> {
        prop_assert!(x >= 0.0, "negative {x}");
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges respect their bounds and `?` works in bodies.
        #[test]
        fn ranges_and_helpers(x in 0.0f64..1.0, n in 3usize..7) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((3..7).contains(&n));
            helper_using_question_mark(x)?;
        }

        #[test]
        fn vec_lengths_honour_size_range(
            xs in prop::collection::vec(0.0f64..1.0, 4..10),
            ys in prop::collection::vec(0u32..5, 2..=2),
        ) {
            prop_assert!((4..10).contains(&xs.len()));
            prop_assert_eq!(ys.len(), 2);
        }

        #[test]
        fn tuples_and_prop_map(
            pair in (0u64..100, 1u64..50).prop_map(|(a, b)| a + b),
            k in Just(7u32),
        ) {
            prop_assert!(pair < 150);
            prop_assert_eq!(k, 7);
        }
    }

    #[test]
    fn generation_is_deterministic_per_test_name() {
        use crate::test_runner::TestRng;
        use crate::Strategy;
        use rand::SeedableRng;
        let strat = crate::collection::vec(0.0f64..1.0, 5..9);
        let a = strat.generate(&mut TestRng::seed_from_u64(9));
        let b = strat.generate(&mut TestRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_seed() {
        crate::test_runner::run(
            "always_fails",
            &ProptestConfig::with_cases(4),
            |_rng| Err(TestCaseError::fail("nope")),
        );
    }
}
