//! JS-divergence cost between two kernel models — `O(d·k^d·|R|)` for a
//! `k`-cell grid (Section 6: *"The time complexity for the above
//! procedure is O(dk|R|)"*). This is what a leader pays per
//! model-change check (Section 8.1) and per faulty-sensor comparison
//! (Section 9).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use snod_density::{js_divergence_models, Kde1d};

fn model(offset: f64) -> Kde1d {
    let xs: Vec<f64> = (0..500)
        .map(|i| offset + 0.4 * (((i as u64 * 2_654_435_761) % 500) as f64 / 500.0))
        .collect();
    Kde1d::from_sample(&xs, 0.12, 10_000.0).unwrap()
}

fn bench_vs_grid(c: &mut Criterion) {
    let a = model(0.1);
    let b_model = model(0.2);
    let mut group = c.benchmark_group("js_divergence_vs_grid");
    for &k in &[16usize, 32, 64, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |bench, _| {
            bench.iter(|| js_divergence_models(black_box(&a), black_box(&b_model), k).unwrap())
        });
    }
    group.finish();
}


/// Short measurement windows: these benches check complexity *shape*
/// (linear vs flat), not absolute timings.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_vs_grid
}
criterion_main!(benches);
