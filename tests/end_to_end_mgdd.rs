//! End-to-end integration tests of the MGDD pipeline: global model
//! propagation, multi-granular detection, and the model-change update
//! optimisation.

use sensor_outliers::core::pipeline::{Algorithm, OutlierPipeline, PipelineReport};
use sensor_outliers::core::{EstimatorConfig, MgddConfig, UpdateStrategy};
use sensor_outliers::outlier::MdefConfig;
use sensor_outliers::simnet::{NodeId, SimConfig};

fn mgdd_config(updates: UpdateStrategy) -> MgddConfig {
    MgddConfig {
        estimator: EstimatorConfig::builder()
            .window(600)
            .sample_size(80)
            .seed(11)
            .build()
            .unwrap(),
        rule: MdefConfig::new(0.08, 0.01, 3.0).unwrap(),
        sample_fraction: 0.75,
        updates,
        staleness_bound_ns: None,
    }
}

/// All leaves emit a dense uniform block on [0.40, 0.50]; leaf 2
/// periodically emits a skirt value at 0.56.
fn block_source(
    topo: sensor_outliers::simnet::Hierarchy,
) -> impl FnMut(NodeId, u64) -> Option<Vec<f64>> {
    move |node: NodeId, seq: u64| {
        let leaf = OutlierPipeline::leaf_position(&topo, node)?;
        if leaf == 2 && seq % 200 == 150 {
            Some(vec![0.56])
        } else {
            let h = (seq * 31 + leaf as u64 * 17) % 100;
            Some(vec![0.40 + 0.10 * (h as f64 + 0.5) / 100.0])
        }
    }
}

fn run(updates: UpdateStrategy, levels: Vec<u8>, readings: u64) -> PipelineReport {
    let pipeline = OutlierPipeline::balanced(
        8,
        &[4, 2],
        SimConfig::default(),
        Algorithm::Mgdd(mgdd_config(updates), levels),
    )
    .unwrap();
    let topo = pipeline.topology().clone();
    let mut source = block_source(topo);
    pipeline.run(&mut source, readings).unwrap()
}

#[test]
fn skirt_values_detected_against_every_granularity() {
    let report = run(UpdateStrategy::EveryAcceptance, vec![2, 3], 2_400);
    for level in [2u8, 3] {
        let dets = report
            .detections_by_level
            .get(&level)
            .map(Vec::as_slice)
            .unwrap_or(&[]);
        let skirt_hits = dets
            .iter()
            .filter(|d| (d.value[0] - 0.56).abs() < 1e-9)
            .count();
        assert!(
            skirt_hits >= 3,
            "level {level}: only {skirt_hits} skirt detections ({} total)",
            dets.len()
        );
    }
}

#[test]
fn default_run_uses_top_level_global_model() {
    // An empty level list means "top tier only".
    let report = run(UpdateStrategy::EveryAcceptance, vec![], 1_800);
    let levels: Vec<u8> = report.detections_by_level.keys().copied().collect();
    assert!(
        levels.iter().all(|&l| l == 3),
        "unexpected granularity levels {levels:?}"
    );
}

#[test]
fn model_change_updates_cost_less_than_per_acceptance() {
    let eager = run(UpdateStrategy::EveryAcceptance, vec![2, 3], 1_800);
    let lazy = run(
        UpdateStrategy::OnModelChange {
            js_threshold: 0.05,
            check_every: 10,
        },
        vec![2, 3],
        1_800,
    );
    assert!(
        lazy.stats.messages < eager.stats.messages,
        "model-change {} not cheaper than eager {}",
        lazy.stats.messages,
        eager.stats.messages
    );
    // …and with a stationary distribution it still detects the skirt.
    let hits: usize = lazy
        .detections_by_level
        .values()
        .flatten()
        .filter(|d| (d.value[0] - 0.56).abs() < 1e-9)
        .count();
    assert!(hits >= 2, "lazy updates missed the skirt ({hits} hits)");
}

#[test]
fn stationary_distribution_rarely_triggers_model_pushes() {
    // With a high JS threshold and a stationary stream, full-model pushes
    // should almost never fire, so traffic approaches the upward-only
    // D3-style volume.
    let strict = run(
        UpdateStrategy::OnModelChange {
            js_threshold: 0.8,
            check_every: 5,
        },
        vec![2, 3],
        1_800,
    );
    let eager = run(UpdateStrategy::EveryAcceptance, vec![2, 3], 1_800);
    assert!(
        (strict.stats.messages as f64) < 0.8 * eager.stats.messages as f64,
        "strict threshold {} vs eager {}",
        strict.stats.messages,
        eager.stats.messages
    );
}
