//! One-dimensional kernel functions with closed-form CDFs.
//!
//! The paper (Section 4) notes that *"the choice of the kernel function is
//! not significant for the results of the approximation"* and picks the
//! Epanechnikov kernel *"that is easy to integrate"*. We implement it plus
//! two alternatives so that the claim can actually be checked (and is, in
//! the ablation benchmarks).
//!
//! A [`Kernel1d`] is defined on the *standardised* coordinate
//! `u = (x − tᵢ) / B`: it integrates to one over its support and the
//! caller divides by the bandwidth `B` when evaluating densities.
//! Multi-dimensional kernels are products of one-dimensional ones
//! (Section 4, Equation 2).

/// A symmetric one-dimensional kernel on the standardised coordinate `u`.
pub trait Kernel1d: Clone + Send + Sync {
    /// Kernel density at standardised offset `u` (integrates to 1 over ℝ).
    fn density(&self, u: f64) -> f64;

    /// Cumulative distribution `∫_{−∞}^{u} k(t) dt`.
    fn cdf(&self, u: f64) -> f64;

    /// Half-width of the kernel support in standardised units;
    /// `f64::INFINITY` for kernels with unbounded support.
    fn support(&self) -> f64;

    /// Probability mass on the standardised interval `[a, b]`.
    fn mass(&self, a: f64, b: f64) -> f64 {
        if b <= a {
            0.0
        } else {
            self.cdf(b) - self.cdf(a)
        }
    }

    /// Whether this kernel *is* the Epanechnikov kernel, letting the
    /// estimators dispatch to the vectorised clamped-CDF engine in
    /// `crate::eval` instead of the generic per-kernel loop. Defaults to
    /// `false`; only [`EpanechnikovKernel`] overrides it.
    fn is_epanechnikov(&self) -> bool {
        false
    }
}

/// The Epanechnikov kernel `k(u) = ¾(1 − u²)` on `[−1, 1]` — the paper's
/// choice (Section 4, Equation 2), optimal in the mean-integrated-squared
/// -error sense and trivially integrable.
#[derive(Debug, Clone, Copy, Default)]
pub struct EpanechnikovKernel;

impl Kernel1d for EpanechnikovKernel {
    fn density(&self, u: f64) -> f64 {
        if u.abs() >= 1.0 {
            0.0
        } else {
            0.75 * (1.0 - u * u)
        }
    }

    fn cdf(&self, u: f64) -> f64 {
        if u <= -1.0 {
            0.0
        } else if u >= 1.0 {
            1.0
        } else {
            // ∫_{-1}^{u} ¾(1 − t²) dt = ½ + ¾u − ¼u³
            0.5 + 0.75 * u - 0.25 * u * u * u
        }
    }

    fn support(&self) -> f64 {
        1.0
    }

    fn is_epanechnikov(&self) -> bool {
        true
    }
}

/// The uniform (boxcar) kernel `k(u) = ½` on `[−1, 1]`. Equivalent to
/// counting sample points in a window — the crudest estimator, kept as a
/// baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct UniformKernel;

impl Kernel1d for UniformKernel {
    fn density(&self, u: f64) -> f64 {
        if u.abs() >= 1.0 {
            0.0
        } else {
            0.5
        }
    }

    fn cdf(&self, u: f64) -> f64 {
        (0.5 * (u + 1.0)).clamp(0.0, 1.0)
    }

    fn support(&self) -> f64 {
        1.0
    }
}

/// The Gaussian kernel `k(u) = φ(u)`. Smooth but with unbounded support,
/// so range queries cannot prune kernels — exactly why the paper prefers
/// Epanechnikov on sensors.
#[derive(Debug, Clone, Copy, Default)]
pub struct GaussianKernel;

impl Kernel1d for GaussianKernel {
    fn density(&self, u: f64) -> f64 {
        (-(u * u) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt()
    }

    fn cdf(&self, u: f64) -> f64 {
        0.5 * (1.0 + erf(u / std::f64::consts::SQRT_2))
    }

    fn support(&self) -> f64 {
        f64::INFINITY
    }
}

/// Abramowitz–Stegun 7.1.26 rational approximation of the error function
/// (absolute error < 1.5e−7, ample for density work).
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_integrates_to_one<K: Kernel1d>(k: &K) {
        // Trapezoid rule over a wide interval.
        let (lo, hi, steps) = (-8.0, 8.0, 64_000);
        let h = (hi - lo) / steps as f64;
        let mut sum = 0.0;
        for i in 0..=steps {
            let u = lo + i as f64 * h;
            let w = if i == 0 || i == steps { 0.5 } else { 1.0 };
            sum += w * k.density(u);
        }
        // 1e-3 tolerance: trapezoid error at the support-edge
        // discontinuities of the boxcar kernel dominates.
        assert!((sum * h - 1.0).abs() < 1e-3);
    }

    fn check_cdf_matches_density<K: Kernel1d>(k: &K) {
        // CDF derivative ≈ density at several points.
        let h = 1e-5;
        for i in -30..=30 {
            let u = i as f64 / 10.0;
            let numeric = (k.cdf(u + h) - k.cdf(u - h)) / (2.0 * h);
            assert!(
                (numeric - k.density(u)).abs() < 1e-3,
                "u={u}: d/du CDF {numeric} vs pdf {}",
                k.density(u)
            );
        }
    }

    fn check_cdf_monotone<K: Kernel1d>(k: &K) {
        let mut prev = -1.0;
        for i in -50..=50 {
            let c = k.cdf(i as f64 / 10.0);
            assert!(c >= prev - 1e-12);
            assert!((0.0..=1.0).contains(&c));
            prev = c;
        }
    }

    #[test]
    fn epanechnikov_properties() {
        let k = EpanechnikovKernel;
        check_integrates_to_one(&k);
        check_cdf_matches_density(&k);
        check_cdf_monotone(&k);
        assert_eq!(k.density(0.0), 0.75);
        assert_eq!(k.density(1.0), 0.0);
        assert_eq!(k.cdf(0.0), 0.5);
    }

    #[test]
    fn uniform_properties() {
        let k = UniformKernel;
        check_integrates_to_one(&k);
        check_cdf_monotone(&k);
        assert_eq!(k.mass(-1.0, 1.0), 1.0);
        assert_eq!(k.mass(0.0, 0.5), 0.25);
    }

    #[test]
    fn gaussian_properties() {
        let k = GaussianKernel;
        check_integrates_to_one(&k);
        check_cdf_matches_density(&k);
        check_cdf_monotone(&k);
        assert!((k.cdf(0.0) - 0.5).abs() < 1e-7);
        // 68–95–99.7 rule
        assert!((k.mass(-1.0, 1.0) - 0.6827).abs() < 1e-3);
        assert!((k.mass(-2.0, 2.0) - 0.9545).abs() < 1e-3);
    }

    #[test]
    fn mass_of_empty_interval_is_zero() {
        assert_eq!(EpanechnikovKernel.mass(0.5, 0.5), 0.0);
        assert_eq!(EpanechnikovKernel.mass(0.5, 0.2), 0.0);
    }

    #[test]
    fn only_epanechnikov_claims_the_fast_path() {
        assert!(EpanechnikovKernel.is_epanechnikov());
        assert!(!UniformKernel.is_epanechnikov());
        assert!(!GaussianKernel.is_epanechnikov());
    }

    #[test]
    fn erf_reference_values() {
        // The A&S 7.1.26 polynomial sums to 1 only to ~1e-9 at x = 0.
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(3.0) - 0.999_977_91).abs() < 1e-6);
    }
}
