//! Exact offline baselines (paper Section 10, "Comparisons").
//!
//! *"We use offline algorithms to compute the true outliers for each
//! instance of the sliding window."*
//!
//! * [`distance_outliers`] — `BruteForce-D`: for every point, compute its
//!   distance to all other window points; `O(d·|W|²)`, guaranteed exact.
//! * [`mdef_outliers_aloci`] — `BruteForce-M`: aLOCI over the exact
//!   window, *"approximates the average neighborhood count and the
//!   standard deviation of neighborhood count based on an interval count
//!   over the measurements in the sliding window"*.
//! * [`mdef_outliers_exact`] — full LOCI (exact per-point sampling
//!   neighborhoods), kept as a stricter reference for tests.
//!
//! All neighborhoods are L∞ balls so they are commensurable with the
//! density models' box queries.
//!
//! **Self-exclusion.** Every point is scored as a *new observation tested
//! against the rest of the window*: its own occurrence is excluded from
//! its neighborhood counts. This matches the online detectors exactly —
//! a freshly arrived value is (almost surely) not represented in the
//! kernel sample its verdict is computed from — and it is what makes the
//! paper's synthetic ground truth meaningful: a sparse-noise value with
//! no *other* value within `αr` has `n(p, αr) = 0` against a local
//! average of ≈ 1, i.e. `MDEF = 1` with tiny `σ_MDEF`, and is flagged.
//! With self-inclusive counts the same value would have `MDEF = 0` and
//! the MDEF ground truth on the paper's workload would be empty.

use crate::distance::DistanceOutlierConfig;
use crate::mdef::MdefConfig;

/// L∞ (Chebyshev) distance between two points.
pub fn linf_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// `BruteForce-D`: exact `(D, r)`-outlier flags for every window point,
/// with the point itself excluded from its own neighbor count.
pub fn distance_outliers(points: &[Vec<f64>], cfg: &DistanceOutlierConfig) -> Vec<bool> {
    let n = points.len();
    let mut flags = vec![false; n];
    for i in 0..n {
        let mut neighbors = 0usize;
        for j in 0..n {
            if j != i && linf_distance(&points[i], &points[j]) <= cfg.radius {
                neighbors += 1;
                if neighbors as f64 >= cfg.min_neighbors {
                    break;
                }
            }
        }
        flags[i] = (neighbors as f64) < cfg.min_neighbors;
    }
    flags
}

/// Exact counting-neighborhood counts `n(p, αr)` for every point,
/// excluding the point itself.
fn counting_counts(points: &[Vec<f64>], ar: f64) -> Vec<f64> {
    let n = points.len();
    let mut counts = vec![0.0; n];
    for i in 0..n {
        let mut c = 0usize;
        for j in 0..n {
            if j != i && linf_distance(&points[i], &points[j]) <= ar {
                c += 1;
            }
        }
        counts[i] = c as f64;
    }
    counts
}

/// Full LOCI: exact MDEF flags using true per-point sampling
/// neighborhoods. `O(|W|²)` — the strictest reference. Each point `p` is
/// scored against the window *without* `p`: its own count drops `p`, its
/// sampling neighborhood excludes `p`, and neighbors' counts are adjusted
/// for `p`'s absence.
pub fn mdef_outliers_exact(points: &[Vec<f64>], cfg: &MdefConfig) -> Vec<bool> {
    let n = points.len();
    // Full-window counts including the point itself.
    let full: Vec<f64> = {
        let excl = counting_counts(points, cfg.counting_radius);
        excl.into_iter().map(|c| c + 1.0).collect()
    };
    let mut flags = vec![false; n];
    for i in 0..n {
        let mut sum = 0.0;
        let mut sq = 0.0;
        let mut m = 0usize;
        for j in 0..n {
            if j == i {
                continue;
            }
            let d = linf_distance(&points[i], &points[j]);
            if d <= cfg.sampling_radius {
                // q's count in the window without p.
                let adj = full[j] - if d <= cfg.counting_radius { 1.0 } else { 0.0 };
                sum += adj;
                sq += adj * adj;
                m += 1;
            }
        }
        if m == 0 {
            flags[i] = true;
            continue;
        }
        let avg = sum / m as f64;
        if avg <= 0.0 {
            flags[i] = true;
            continue;
        }
        let var = (sq / m as f64 - avg * avg).max(0.0);
        let own = full[i] - 1.0; // p's count without p
        let mdef = 1.0 - own / avg;
        let sigma_mdef = var.sqrt() / avg;
        flags[i] = cfg.flags(mdef, sigma_mdef);
    }
    flags
}

/// `BruteForce-M`: aLOCI over the exact window. The domain is divided
/// into cells of width `2αr` (aligned to the origin, as in the paper's
/// Figure 3); per-point statistics use the counts of the cells that
/// intersect the sampling box.
pub fn mdef_outliers_aloci(points: &[Vec<f64>], cfg: &MdefConfig) -> Vec<bool> {
    let Some(first) = points.first() else {
        return Vec::new();
    };
    let d = first.len();
    let cell = 2.0 * cfg.counting_radius;

    // Exact per-cell counts, keyed by the integer cell coordinates.
    use std::collections::HashMap;
    let mut cells: HashMap<Vec<i64>, f64> = HashMap::new();
    for p in points {
        let key: Vec<i64> = p.iter().map(|&c| (c / cell).floor() as i64).collect();
        *cells.entry(key).or_insert(0.0) += 1.0;
    }

    let mut flags = vec![false; points.len()];
    let mut key = vec![0i64; d];
    for (i, p) in points.iter().enumerate() {
        // The point's own counting-neighborhood count: its cell's count
        // minus itself (new-observation semantics).
        for (j, &c) in p.iter().enumerate() {
            key[j] = (c / cell).floor() as i64;
        }
        let own = (cells.get(&key).copied().unwrap_or(1.0) - 1.0).max(0.0);

        // Cells intersecting the sampling box.
        let mut lo = Vec::with_capacity(d);
        let mut len = Vec::with_capacity(d);
        for &c in p.iter().take(d) {
            let a = ((c - cfg.sampling_radius) / cell).floor() as i64;
            let b = ((c + cfg.sampling_radius) / cell).floor() as i64;
            lo.push(a);
            len.push((b - a + 1) as usize);
        }
        let total: usize = len.iter().product();
        let mut w_sum = 0.0;
        let mut w_mean = 0.0;
        let mut w_sq = 0.0;
        let mut nonempty = 0usize;
        let mut probe = vec![0i64; d];
        for flat in 0..total {
            let mut rem = flat;
            for j in (0..d).rev() {
                probe[j] = lo[j] + (rem % len[j]) as i64;
                rem /= len[j];
            }
            if let Some(&c) = cells.get(&probe) {
                // Exclude p from its own cell in the neighborhood stats.
                let c = if probe == key { (c - 1.0).max(0.0) } else { c };
                if c > 0.0 {
                    w_sum += c;
                    w_mean += c * c;
                    w_sq += c * c * c;
                    nonempty += 1;
                }
            }
        }
        if w_sum <= 0.0 {
            flags[i] = true;
            continue;
        }
        let avg = w_mean / w_sum;
        let var = (w_sq / w_sum - avg * avg).max(0.0);
        let mdef = 1.0 - own / avg;
        flags[i] = cfg.flags(mdef, cfg.effective_sigma(var.sqrt(), nonempty) / avg);
    }
    flags
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster_with_outliers() -> Vec<Vec<f64>> {
        // 200 points in a tight cluster, 3 isolated points.
        let mut pts: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![0.40 + 0.0002 * (i % 50) as f64])
            .collect();
        pts.push(vec![0.85]);
        pts.push(vec![0.90]);
        pts.push(vec![0.10]);
        pts
    }

    #[test]
    fn linf_reference_values() {
        assert_eq!(linf_distance(&[0.0, 0.0], &[0.3, 0.1]), 0.3);
        assert_eq!(linf_distance(&[1.0], &[0.25]), 0.75);
        assert_eq!(linf_distance(&[0.5, 0.5], &[0.5, 0.5]), 0.0);
    }

    #[test]
    fn brute_force_d_finds_exactly_the_isolated_points() {
        let pts = cluster_with_outliers();
        let cfg = DistanceOutlierConfig::new(10.0, 0.02);
        let flags = distance_outliers(&pts, &cfg);
        let outliers: Vec<usize> = flags
            .iter()
            .enumerate()
            .filter(|(_, &f)| f)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(outliers, vec![200, 201, 202]);
    }

    #[test]
    fn brute_force_d_threshold_one_flags_only_fully_isolated_points() {
        // Self-excluded counts: t = 1 flags exactly the points with no
        // *other* value within r.
        let pts = cluster_with_outliers();
        let cfg = DistanceOutlierConfig::new(1.0, 0.02);
        let flags = distance_outliers(&pts, &cfg);
        assert!(flags[..200].iter().all(|&f| !f));
        assert!(flags[200] && flags[201] && flags[202]);
    }

    /// Dense uniform block on [0.40, 0.50] plus skirt points sitting just
    /// outside it — the canonical MDEF outliers, whose sampling
    /// neighborhood is dominated by the homogeneous core. (With k_σ = 3
    /// and MDEF ≤ 1 a flag requires σ_MDEF < 1/3, so the core must be
    /// homogeneous across 2αr cells for *anything* to be flagged.)
    fn cluster_with_skirt() -> (Vec<Vec<f64>>, Vec<usize>) {
        let n = 2_000usize;
        let mut pts: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![0.40 + 0.10 * (i as f64 + 0.5) / n as f64])
            .collect();
        let skirt = vec![pts.len(), pts.len() + 1];
        pts.push(vec![0.55]);
        pts.push(vec![0.35]);
        (pts, skirt)
    }

    #[test]
    fn mdef_exact_flags_skirt_not_core() {
        let (pts, skirt) = cluster_with_skirt();
        let cfg = MdefConfig::new(0.08, 0.01, 3.0).unwrap();
        let flags = mdef_outliers_exact(&pts, &cfg);
        for &i in &skirt {
            assert!(flags[i], "skirt point {i} not flagged");
        }
        // The interior of the block stays clean (edges may flag — their
        // own counts are genuinely half the local average).
        let core_flagged = flags
            .iter()
            .enumerate()
            .filter(|(i, &f)| f && (pts[*i][0] - 0.45).abs() < 0.03)
            .count();
        assert!(core_flagged < 40, "{core_flagged} core points flagged");
    }

    #[test]
    fn mdef_aloci_agrees_with_exact_on_clear_cases() {
        let (pts, skirt) = cluster_with_skirt();
        let cfg = MdefConfig::new(0.08, 0.01, 3.0).unwrap();
        let aloci = mdef_outliers_aloci(&pts, &cfg);
        for &i in &skirt {
            assert!(aloci[i], "skirt point {i} not flagged by aLOCI");
        }
        let core_flagged = aloci
            .iter()
            .enumerate()
            .filter(|(i, &f)| f && (pts[*i][0] - 0.45).abs() < 0.03)
            .count();
        assert!(core_flagged < 60, "{core_flagged} core points flagged");
    }

    #[test]
    fn deep_isolation_is_flagged_under_new_observation_semantics() {
        // With the point excluded from its own neighborhood, a deeply
        // isolated value sees an *empty* sampling neighborhood and is
        // flagged. (Under self-inclusive LOCI it would have MDEF = 0 and
        // be invisible — the self-exclusion is what makes the sparse
        // noise of the paper's synthetic workload detectable at all.)
        let (mut pts, _) = cluster_with_skirt();
        let lone = pts.len();
        pts.push(vec![0.90]);
        let cfg = MdefConfig::new(0.08, 0.01, 3.0).unwrap();
        let exact = mdef_outliers_exact(&pts, &cfg);
        let aloci = mdef_outliers_aloci(&pts, &cfg);
        assert!(exact[lone], "exact LOCI missed an empty neighborhood");
        assert!(aloci[lone], "aLOCI missed an empty neighborhood");
    }

    #[test]
    fn sparse_noise_pair_is_flagged() {
        // Two noise values 0.03 apart, far from the cluster: each sees
        // the other in its sampling neighborhood (count ≈ 1) but has no
        // αr-neighbor of its own → MDEF = 1, σ_MDEF = 0 → flagged. This
        // is the paper's synthetic ground-truth mechanism.
        let (mut pts, _) = cluster_with_skirt();
        let a = pts.len();
        pts.push(vec![0.80]);
        pts.push(vec![0.83]);
        let cfg = MdefConfig::new(0.08, 0.01, 3.0).unwrap();
        let exact = mdef_outliers_exact(&pts, &cfg);
        let aloci = mdef_outliers_aloci(&pts, &cfg);
        assert!(exact[a] && exact[a + 1], "exact LOCI missed noise pair");
        assert!(aloci[a] && aloci[a + 1], "aLOCI missed noise pair");
    }

    #[test]
    fn mdef_respects_local_density_differences() {
        // Two clusters of very different density; members of the sparse
        // cluster must not be flagged (the motivating case for MDEF).
        let mut pts: Vec<Vec<f64>> = (0..300)
            .map(|i| vec![0.30 + 0.0001 * (i % 100) as f64])
            .collect();
        pts.extend((0..20).map(|i| vec![0.70 + 0.004 * i as f64]));
        let cfg = MdefConfig::new(0.05, 0.01, 3.0).unwrap();
        let flags = mdef_outliers_exact(&pts, &cfg);
        let sparse_flagged = flags[300..].iter().filter(|&&f| f).count();
        assert!(sparse_flagged <= 3, "{sparse_flagged}/20 sparse flagged");
    }

    #[test]
    fn empty_input_yields_empty_flags() {
        let cfg = MdefConfig::new(0.08, 0.01, 3.0).unwrap();
        assert!(mdef_outliers_aloci(&[], &cfg).is_empty());
        let dcfg = DistanceOutlierConfig::new(5.0, 0.1);
        assert!(distance_outliers(&[], &dcfg).is_empty());
    }

    #[test]
    fn two_dimensional_distance_outliers() {
        let mut pts: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![0.5 + 0.001 * (i % 10) as f64, 0.5 + 0.001 * (i / 10) as f64])
            .collect();
        pts.push(vec![0.9, 0.1]);
        let cfg = DistanceOutlierConfig::new(5.0, 0.05);
        let flags = distance_outliers(&pts, &cfg);
        assert!(flags[100]);
        assert!(flags[..100].iter().all(|&f| !f));
    }
}
