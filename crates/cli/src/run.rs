//! Subcommand implementations for the `snod` binary.

use std::io::{BufRead, BufReader, Write};

use snod_core::{EstimatorConfig, SensorEstimator};
use snod_data::{per_dimension_stats, DataStream, GaussianMixtureStream};
use snod_outlier::{DistanceOutlierConfig, MdefConfig};

use crate::args::{DetectArgs, SimulateArgs, StatsArgs};
use crate::csv::for_each_reading;

/// A boxed error with a user-facing message.
pub type CliError = Box<dyn std::error::Error>;

/// Writes the process-wide metrics snapshot as JSON to `path` (no-op
/// when no path was requested). With the `obs` feature off the snapshot
/// is empty but still valid JSON, so scripts can rely on the file.
fn write_metrics(path: &Option<String>) -> Result<(), CliError> {
    if let Some(p) = path {
        std::fs::write(p, snod_obs::snapshot().to_json())
            .map_err(|e| format!("cannot write {p}: {e}"))?;
    }
    Ok(())
}

fn open_input(path: &Option<String>) -> Result<Box<dyn BufRead>, CliError> {
    match path {
        Some(p) => {
            let f = std::fs::File::open(p).map_err(|e| format!("cannot open {p}: {e}"))?;
            Ok(Box::new(BufReader::new(f)))
        }
        None => Ok(Box::new(BufReader::new(std::io::stdin()))),
    }
}

/// `snod detect`: stream verdicts; returns `(readings, outliers)`.
pub fn detect(args: &DetectArgs, out: &mut dyn Write) -> Result<(u64, u64), CliError> {
    let reader = open_input(&args.input)?;
    let sample = args.sample.unwrap_or_else(|| (args.window / 20).max(1));
    let warmup = args.warmup.unwrap_or(args.window as u64);
    let mdef_rule = match args.mdef {
        Some((r, ar, k)) => {
            Some(MdefConfig::new(r, ar, k).ok_or("invalid --mdef: need 0 < ar <= r and k > 0")?)
        }
        None => None,
    };
    let dist_rule = DistanceOutlierConfig::new(args.neighbors, args.radius);
    let normalise = |v: &mut Vec<f64>| {
        if let (Some(min), Some(max)) = (args.min, args.max) {
            for c in v.iter_mut() {
                *c = ((*c - min) / (max - min)).clamp(0.0, 1.0);
            }
        }
    };

    let mut estimator: Option<SensorEstimator> = None;
    let mut outliers = 0u64;
    let mut io_error: Option<std::io::Error> = None;
    let readings = for_each_reading(reader, |i, mut v| {
        normalise(&mut v);
        let est = estimator.get_or_insert_with(|| {
            SensorEstimator::new(
                EstimatorConfig::builder()
                    .window(args.window)
                    .sample_size(sample)
                    .dimensions(v.len())
                    .seed(0x5D0D)
                    .build()
                    .expect("validated by arg parsing"),
            )
        });
        if i >= warmup {
            let flagged = match &mdef_rule {
                Some(rule) => est
                    .evaluate_mdef(&v, rule)
                    .map(|e| e.is_outlier)
                    .unwrap_or(false),
                None => est
                    .is_distance_outlier_scaled(&v, &dist_rule)
                    .unwrap_or(false),
            };
            if flagged {
                outliers += 1;
                let coords: Vec<String> = v.iter().map(|c| format!("{c}")).collect();
                if let Err(e) = writeln!(out, "{i},{}", coords.join(",")) {
                    io_error = Some(e);
                }
            }
        }
        est.observe(&v).expect("dimensionality fixed by CSV check");
        Ok(())
    })?;
    if let Some(e) = io_error {
        return Err(e.into());
    }
    write_metrics(&args.metrics_out)?;
    Ok((readings, outliers))
}

/// `snod stats`: Figure-5-style per-dimension statistics table.
pub fn stats(args: &StatsArgs, out: &mut dyn Write) -> Result<u64, CliError> {
    let reader = open_input(&args.input)?;
    let mut points: Vec<Vec<f64>> = Vec::new();
    let n = for_each_reading(reader, |_, v| {
        points.push(v);
        Ok(())
    })?;
    match per_dimension_stats(&points) {
        None => writeln!(out, "no data")?,
        Some(stats) => {
            writeln!(
                out,
                "{:<6} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
                "dim", "min", "max", "mean", "median", "stddev", "skew"
            )?;
            for (j, s) in stats.iter().enumerate() {
                writeln!(
                    out,
                    "{:<6} {:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>9.4}",
                    j, s.min, s.max, s.mean, s.median, s.std_dev, s.skew
                )?;
            }
        }
    }
    Ok(n)
}

/// The `snod simulate` reading source: either a replayed trace or the
/// synthetic generator closure, optionally recording what it hands out.
struct SimSource<F> {
    replay: Option<snod_simnet::ReadingTrace>,
    synth: F,
    record: Option<snod_simnet::ReadingTrace>,
}

impl<F> snod_simnet::StreamSource for SimSource<F>
where
    F: FnMut(snod_simnet::NodeId, u64) -> Option<Vec<f64>>,
{
    fn next(&mut self, node: snod_simnet::NodeId, seq: u64) -> Option<Vec<f64>> {
        let value = match &mut self.replay {
            Some(trace) => trace.next(node, seq),
            None => (self.synth)(node, seq),
        }?;
        if let Some(trace) = &mut self.record {
            trace.record(node, seq, &value);
        }
        Some(value)
    }
}

/// Collects a live-runtime run into the pipeline's report shape.
fn live_report<P, A>(
    rt: &snod_simnet::LiveRuntime<P, A>,
    detections: impl Fn(&A) -> &[snod_core::Detection],
) -> snod_core::pipeline::PipelineReport
where
    P: snod_simnet::Wire,
    A: snod_simnet::DetectorEngine<P>,
{
    let mut by_level: std::collections::BTreeMap<u8, Vec<snod_core::Detection>> =
        std::collections::BTreeMap::new();
    for (_, engine) in rt.engines() {
        for d in detections(engine) {
            by_level.entry(d.level).or_default().push(d.clone());
        }
    }
    snod_core::pipeline::PipelineReport {
        detections_by_level: by_level,
        stats: rt.stats().clone(),
    }
}

/// `snod simulate`: run a distributed algorithm over a synthetic
/// hierarchy and report detections plus network cost.
pub fn simulate(args: &SimulateArgs, out: &mut dyn Write) -> Result<(), CliError> {
    use snod_core::pipeline::{Algorithm, CheckpointPlan, OutlierPipeline};
    use snod_core::{D3Config, MgddConfig, UpdateStrategy};
    use snod_data::SensorStreams;
    use snod_outlier::MdefConfig;
    use snod_simnet::ReadingTrace;

    let window = 2_000usize;
    let est = EstimatorConfig::builder()
        .window(window)
        .sample_size(window / 20)
        .seed(0x51D)
        .build()
        .expect("valid configuration");
    let algorithm = match args.algorithm.as_str() {
        "d3" => Algorithm::D3(D3Config {
            estimator: est,
            rule: DistanceOutlierConfig::new(window as f64 * 0.0045, 0.01),
            sample_fraction: args.fraction,
        }),
        "mgdd" => Algorithm::Mgdd(
            MgddConfig {
                estimator: est,
                rule: MdefConfig::new(0.08, 0.01, 3.0).expect("valid rule"),
                sample_fraction: args.fraction,
                updates: UpdateStrategy::EveryAcceptance,
                staleness_bound_ns: None,
            },
            vec![],
        ),
        // FQN's sorted-buffer Q_n query is O(window) per reading, so the
        // robust window is deliberately smaller than the KDE one.
        "fqn" => Algorithm::Fqn(snod_core::FqnConfig {
            dimensions: 1,
            window: 256,
            k_scale: 4.0,
            warmup: 64,
            sample_fraction: args.fraction,
            seed: 0x51D,
        }),
        "mmdew" => Algorithm::Mmdew(snod_core::MmdewNodeConfig {
            sample_fraction: args.fraction,
            ..snod_core::MmdewNodeConfig::default()
        }),
        _ => Algorithm::Centralized(
            DistanceOutlierConfig::new(window as f64 * 0.0045, 0.01),
            window,
        ),
    };
    // Quad-ish hierarchy: fan-out 4 until a single root remains.
    let mut fanouts = Vec::new();
    let mut n = args.leaves;
    while n > 1 {
        fanouts.push(4usize);
        n = n.div_ceil(4);
    }
    let sim = snod_simnet::SimConfig::default().with_drop_probability(args.loss);
    // A reading lands every period, so "snapshot after K readings per
    // leaf" translates to the instant of the K-th reading wave. Any cut
    // point yields a bit-identical resume; this one is just meaningful
    // to a human reading `--checkpoint-at`.
    let ckpt = CheckpointPlan {
        resume_from: args.resume_from.clone().map(Into::into),
        checkpoint_out: args.checkpoint_out.clone().map(Into::into),
        checkpoint_at_ns: args
            .checkpoint_at
            .map(|k| k.saturating_mul(sim.reading_period_ns)),
    };
    let pipeline = OutlierPipeline::balanced(args.leaves, &fanouts, sim, algorithm.clone())
        .map_err(|e| format!("pipeline setup failed: {e}"))?;
    let topo = pipeline.topology().clone();
    let mut streams = SensorStreams::generate(args.leaves, |i| {
        GaussianMixtureStream::new(1, 77 + i as u64)
    });
    // The network persists everything *inside* the simulation, but the
    // stream generators live outside it, so a resumed run is asked for
    // reading `seq` on a freshly seeded stream. Fast-forwarding to the
    // requested position keeps resumed values identical to the ones the
    // original run saw (each leaf's seqs arrive in increasing order).
    let mut consumed = vec![0u64; args.leaves];
    let synth_topo = topo.clone();
    let mut source = SimSource {
        replay: match &args.replay {
            Some(p) => Some(
                ReadingTrace::read_file(std::path::Path::new(p))
                    .map_err(|e| format!("cannot replay {p}: {e}"))?,
            ),
            None => None,
        },
        synth: move |node: snod_simnet::NodeId, seq: u64| {
            let leaf = OutlierPipeline::leaf_position(&synth_topo, node)?;
            let mut v = None;
            while consumed[leaf] <= seq {
                v = Some(streams.next_for(leaf));
                consumed[leaf] += 1;
            }
            v
        },
        record: args.record.as_ref().map(|_| ReadingTrace::new()),
    };
    let report = if args.driver == "live" {
        // The live runtime drives real worker threads per node; it has
        // no checkpoint schedule, so those flags were rejected upstream.
        match &algorithm {
            Algorithm::D3(cfg) => {
                let mut rt = snod_core::build_d3_live(
                    topo.clone(),
                    cfg,
                    sim,
                    snod_simnet::FaultPlan::none(),
                )
                .map_err(|e| format!("simulation failed: {e}"))?;
                rt.run(&mut source, args.readings);
                live_report(&rt, |a| a.detections.as_slice())
            }
            Algorithm::Mgdd(cfg, levels) => {
                let levels = if levels.is_empty() {
                    vec![topo.level_count() as u8]
                } else {
                    levels.clone()
                };
                let mut rt = snod_core::build_mgdd_live(
                    topo.clone(),
                    cfg,
                    sim,
                    snod_simnet::FaultPlan::none(),
                    &levels,
                )
                .map_err(|e| format!("simulation failed: {e}"))?;
                rt.run(&mut source, args.readings);
                live_report(&rt, |a| a.detections.as_slice())
            }
            Algorithm::Fqn(cfg) => {
                let mut rt = snod_core::build_fqn_live(
                    topo.clone(),
                    cfg,
                    sim,
                    snod_simnet::FaultPlan::none(),
                )
                .map_err(|e| format!("simulation failed: {e}"))?;
                rt.run(&mut source, args.readings);
                live_report(&rt, |a| a.detections.as_slice())
            }
            Algorithm::Mmdew(cfg) => {
                let mut rt = snod_core::build_mmdew_live(
                    topo.clone(),
                    cfg,
                    sim,
                    snod_simnet::FaultPlan::none(),
                )
                .map_err(|e| format!("simulation failed: {e}"))?;
                rt.run(&mut source, args.readings);
                live_report(&rt, |a| a.detections.as_slice())
            }
            Algorithm::Centralized(..) => {
                unreachable!("rejected by argument validation")
            }
        }
    } else {
        pipeline
            .run_checkpointed(&mut source, args.readings, &ckpt)
            .map_err(|e| format!("simulation failed: {e}"))?
    };
    if let (Some(p), Some(trace)) = (&args.record, source.record.take()) {
        trace
            .write_file(std::path::Path::new(p))
            .map_err(|e| format!("cannot write {p}: {e}"))?;
        writeln!(out, "trace recorded to {p}")?;
    }
    if let Some(p) = &args.replay {
        writeln!(out, "replayed trace {p}")?;
    }
    if let Some(p) = &args.checkpoint_out {
        writeln!(out, "checkpoint written to {p}")?;
    }
    if let Some(p) = &args.resume_from {
        writeln!(out, "resumed from {p}")?;
    }

    writeln!(
        out,
        "{} over {} leaves ({} nodes), {} readings/leaf, f={}, loss={}",
        args.algorithm,
        args.leaves,
        pipeline.topology().node_count(),
        args.readings,
        args.fraction,
        args.loss
    )?;
    for (level, dets) in &report.detections_by_level {
        writeln!(out, "  level {level}: {} detections", dets.len())?;
    }
    let s = &report.stats;
    writeln!(
        out,
        "  network: {} messages ({:.2}/s), {} bytes, {} dropped, {:.4} J",
        s.messages,
        s.messages_per_second(),
        s.bytes,
        s.dropped,
        s.total_joules()
    )?;
    write_metrics(&args.metrics_out)?;
    Ok(())
}

/// `snod serve`: run the multi-tenant ingestion daemon until killed.
pub fn serve_daemon(args: &crate::args::ServeArgs, out: &mut dyn Write) -> Result<(), CliError> {
    let cfg = snod_serve::ServeConfig {
        addr: args.addr.clone(),
        metrics_addr: args.metrics_addr.clone(),
        checkpoint_dir: args.checkpoint_dir.as_ref().map(std::path::PathBuf::from),
        queue_capacity: args.queue,
        tenant: snod_serve::TenantSpec {
            leaves: args.leaves,
            fanouts: args.fanouts.clone(),
            window: args.window,
            sample_size: args.sample.unwrap_or_else(|| (args.window / 8).max(1)),
            radius: args.radius,
            min_neighbors: args.neighbors,
            detector: args
                .detector
                .parse()
                .map_err(|e| format!("invalid --detector: {e}"))?,
            ..snod_serve::TenantSpec::default()
        },
        ..snod_serve::ServeConfig::default()
    };
    let server = snod_serve::serve(cfg).map_err(|e| format!("cannot start daemon: {e}"))?;
    writeln!(out, "listening on {}", server.addr())?;
    if let Some(m) = server.metrics_addr() {
        writeln!(out, "metrics on http://{m}/metrics (also /healthz, /escalations)")?;
    }
    if let Some(d) = &args.checkpoint_dir {
        writeln!(out, "checkpointing tenants to {d}")?;
    }
    out.flush()?;
    // Serve until the process is killed; tenants checkpoint on their own
    // cadence, so even a SIGKILL loses at most the un-checkpointed tail
    // — which at-least-once clients replay.
    loop {
        std::thread::park();
    }
}

/// `snod client`: stream a recorded trace into a daemon, wait for the
/// stream to complete, and print the detections.
pub fn serve_client(args: &crate::args::ClientArgs, out: &mut dyn Write) -> Result<(), CliError> {
    use std::time::Duration;

    // The daemon would reject this anyway; fail before dialing so a
    // typo doesn't sit in the redial loop.
    if !snod_serve::valid_tenant_name(&args.tenant) {
        return Err(format!(
            "invalid tenant name {:?} (1-64 chars from [A-Za-z0-9_-])",
            args.tenant
        )
        .into());
    }
    let trace = snod_simnet::ReadingTrace::read_file(std::path::Path::new(&args.replay))
        .map_err(|e| format!("cannot replay {}: {e}", args.replay))?;
    let mut totals: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
    let rows: Vec<(u32, u64, Vec<f64>)> = trace
        .rows()
        .map(|(node, seq, value)| (node.0, seq, value.to_vec()))
        .collect();
    for (node, seq, _) in &rows {
        let t = totals.entry(*node).or_insert(0);
        *t = (*t).max(seq + 1);
    }
    if rows.is_empty() {
        return Err(format!("trace {} holds no readings", args.replay).into());
    }

    let mut client = snod_serve::ServeClient::new(snod_serve::ClientConfig {
        subscribe: args.follow,
        ..snod_serve::ClientConfig::new(args.addr.clone())
    });
    let h = client.open(args.tenant.clone());
    let mut printed = 0usize;
    for (i, (node, seq, value)) in rows.iter().enumerate() {
        client.send(h, *node, *seq, value.clone());
        if i % 64 == 0 {
            client.pump(Duration::from_millis(1));
            if args.follow {
                printed = print_escalations(&client, h, printed, out)?;
            }
        }
    }
    client.finish(h, totals.into_iter().collect());
    let deadline = std::time::Instant::now() + Duration::from_secs(600);
    while !client.wait_finished(h, Duration::from_millis(200)) {
        if args.follow {
            printed = print_escalations(&client, h, printed, out)?;
        }
        if std::time::Instant::now() >= deadline {
            return Err("daemon did not complete the stream within 10 minutes".into());
        }
    }
    if args.follow {
        print_escalations(&client, h, printed, out)?;
    }

    let detections = client
        .query(h, Duration::from_secs(30))
        .ok_or("daemon did not answer the detection query")?;
    let mut by_level: std::collections::BTreeMap<u8, usize> = std::collections::BTreeMap::new();
    for (node, time_ns, level, value) in &detections {
        *by_level.entry(*level).or_insert(0) += 1;
        let coords: Vec<String> = value.iter().map(|c| format!("{c}")).collect();
        writeln!(out, "{node},{time_ns},{level},{}", coords.join(","))?;
    }
    eprintln!(
        "tenant {}: {} readings streamed, {} detections{}",
        args.tenant,
        rows.len(),
        detections.len(),
        if client.reconnects() > 0 {
            format!(" ({} reconnects)", client.reconnects())
        } else {
            String::new()
        }
    );
    for (level, n) in by_level {
        eprintln!("  level {level}: {n} detections");
    }
    Ok(())
}

fn print_escalations(
    client: &snod_serve::ServeClient,
    h: u32,
    printed: usize,
    out: &mut dyn Write,
) -> Result<usize, CliError> {
    let all = client.escalations(h);
    for (node, time_ns, level, value) in &all[printed..] {
        let coords: Vec<String> = value.iter().map(|c| format!("{c}")).collect();
        writeln!(out, "escalation: node {node} t={time_ns} level {level} [{}]", coords.join(","))?;
    }
    Ok(all.len())
}

/// `snod demo`: self-contained synthetic run.
pub fn demo(out: &mut dyn Write) -> Result<(), CliError> {
    writeln!(
        out,
        "demo: (45, 0.01)-outliers over the paper's synthetic workload\n"
    )?;
    let mut stream = GaussianMixtureStream::new(1, 2_024);
    let mut est = SensorEstimator::new(
        EstimatorConfig::builder()
            .window(5_000)
            .sample_size(250)
            .seed(1)
            .build()
            .expect("valid"),
    );
    let rule = DistanceOutlierConfig::new(45.0, 0.01);
    let mut flagged = 0;
    for i in 0..15_000u64 {
        let v = stream.next_reading();
        if i >= 5_000 && est.is_distance_outlier_scaled(&v, &rule).unwrap_or(false) {
            flagged += 1;
            if flagged <= 10 {
                writeln!(out, "reading {i}: {:.4} flagged", v[0])?;
            }
        }
        est.observe(&v).expect("1-d");
    }
    writeln!(
        out,
        "\n{flagged} outliers in 10,000 scored readings; estimator used {} bytes",
        est.memory_bytes(2)
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::DetectArgs;

    fn synthetic_csv(n: usize) -> String {
        let mut s = String::from("# synthetic\n");
        for i in 0..n {
            if i % 300 == 299 {
                s.push_str("0.95\n");
            } else {
                s.push_str(&format!("{}\n", 0.45 + 0.002 * ((i % 25) as f64)));
            }
        }
        s
    }

    #[test]
    fn detect_flags_injected_values() {
        let csv = synthetic_csv(3_000);
        let path = std::env::temp_dir().join("snod_cli_detect_test.csv");
        std::fs::write(&path, csv).unwrap();
        let args = DetectArgs {
            window: 800,
            sample: Some(80),
            radius: 0.02,
            neighbors: 10.0,
            warmup: Some(800),
            input: Some(path.to_string_lossy().into_owned()),
            ..DetectArgs::default()
        };
        let mut out = Vec::new();
        let (readings, outliers) = detect(&args, &mut out).unwrap();
        assert_eq!(readings, 3_000);
        assert!(outliers >= 5, "only {outliers} flagged");
        let text = String::from_utf8(out).unwrap();
        assert!(text.lines().all(|l| l.contains("0.95")), "{text}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn normalisation_maps_into_unit_interval() {
        let path = std::env::temp_dir().join("snod_cli_norm_test.csv");
        std::fs::write(&path, "-10\n0\n30\n").unwrap();
        let args = DetectArgs {
            window: 10,
            min: Some(-10.0),
            max: Some(30.0),
            input: Some(path.to_string_lossy().into_owned()),
            ..DetectArgs::default()
        };
        let mut out = Vec::new();
        let (readings, _) = detect(&args, &mut out).unwrap();
        assert_eq!(readings, 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stats_prints_per_dimension_rows() {
        let path = std::env::temp_dir().join("snod_cli_stats_test.csv");
        std::fs::write(&path, "0.1,0.9\n0.2,0.8\n0.3,0.7\n").unwrap();
        let args = StatsArgs {
            input: Some(path.to_string_lossy().into_owned()),
        };
        let mut out = Vec::new();
        let n = stats(&args, &mut out).unwrap();
        assert_eq!(n, 3);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("0.2000"), "{text}"); // dim-0 mean
        assert!(text.contains("0.8000"), "{text}"); // dim-1 mean
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn simulate_runs_each_algorithm() {
        for algorithm in ["d3", "mgdd", "mmdew", "fqn", "centralized"] {
            let args = crate::args::SimulateArgs {
                leaves: 4,
                readings: 400,
                algorithm: algorithm.into(),
                fraction: 0.5,
                loss: 0.05,
                ..crate::args::SimulateArgs::default()
            };
            let mut out = Vec::new();
            simulate(&args, &mut out).unwrap();
            let text = String::from_utf8(out).unwrap();
            assert!(text.contains("messages"), "{algorithm}: {text}");
        }
    }

    #[test]
    fn simulate_writes_metrics_snapshot() {
        let path = std::env::temp_dir().join("snod_cli_metrics_test.json");
        let args = crate::args::SimulateArgs {
            leaves: 4,
            readings: 200,
            algorithm: "d3".into(),
            fraction: 0.5,
            loss: 0.0,
            metrics_out: Some(path.to_string_lossy().into_owned()),
            ..crate::args::SimulateArgs::default()
        };
        let mut out = Vec::new();
        simulate(&args, &mut out).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with('{') && text.trim_end().ends_with('}'), "{text}");
        if snod_obs::enabled() {
            assert!(text.contains("simnet.sends"), "{text}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn simulate_checkpoint_resume_is_bit_identical() {
        for algorithm in ["d3", "mmdew", "fqn"] {
            simulate_checkpoint_resume_case(algorithm);
        }
    }

    fn simulate_checkpoint_resume_case(algorithm: &str) {
        let ck = std::env::temp_dir().join(format!("snod_cli_ckpt_test_{algorithm}.snod"));
        let base = crate::args::SimulateArgs {
            leaves: 4,
            readings: 300,
            algorithm: algorithm.into(),
            fraction: 0.5,
            loss: 0.05,
            ..crate::args::SimulateArgs::default()
        };
        // One uninterrupted run that also snapshots at reading 150.
        let snap = crate::args::SimulateArgs {
            checkpoint_out: Some(ck.to_string_lossy().into_owned()),
            checkpoint_at: Some(150),
            ..base.clone()
        };
        let mut full = Vec::new();
        simulate(&snap, &mut full).unwrap();
        // A second process would rebuild the pipeline and resume.
        let resume = crate::args::SimulateArgs {
            resume_from: Some(ck.to_string_lossy().into_owned()),
            ..base.clone()
        };
        let mut resumed = Vec::new();
        simulate(&resume, &mut resumed).unwrap();
        let strip = |buf: &[u8]| -> Vec<String> {
            String::from_utf8(buf.to_vec())
                .unwrap()
                .lines()
                .filter(|l| !l.starts_with("checkpoint written") && !l.starts_with("resumed from"))
                .map(str::to_owned)
                .collect()
        };
        assert_eq!(strip(&full), strip(&resumed), "{algorithm}: resume diverged");
        std::fs::remove_file(&ck).ok();
    }

    #[test]
    fn simulate_record_then_replay_across_drivers_is_identical() {
        let trace = std::env::temp_dir().join("snod_cli_trace_test.csv");
        for algorithm in ["d3", "mgdd", "mmdew", "fqn"] {
            let base = crate::args::SimulateArgs {
                leaves: 4,
                readings: 400,
                algorithm: algorithm.into(),
                fraction: 0.5,
                loss: 0.05,
                ..crate::args::SimulateArgs::default()
            };
            // Record the synthetic streams under the simulator driver.
            let record = crate::args::SimulateArgs {
                record: Some(trace.to_string_lossy().into_owned()),
                ..base.clone()
            };
            let mut recorded = Vec::new();
            simulate(&record, &mut recorded).unwrap();
            // Replay the same trace through the live runtime.
            let replay = crate::args::SimulateArgs {
                driver: "live".into(),
                replay: Some(trace.to_string_lossy().into_owned()),
                ..base.clone()
            };
            let mut replayed = Vec::new();
            simulate(&replay, &mut replayed).unwrap();
            let strip = |buf: &[u8]| -> Vec<String> {
                String::from_utf8(buf.to_vec())
                    .unwrap()
                    .lines()
                    .filter(|l| !l.starts_with("trace recorded") && !l.starts_with("replayed trace"))
                    .map(str::to_owned)
                    .collect()
            };
            assert_eq!(
                strip(&recorded),
                strip(&replayed),
                "{algorithm}: live replay diverged from the recording run"
            );
        }
        std::fs::remove_file(&trace).ok();
    }

    #[test]
    fn simulate_replay_of_missing_trace_is_reported() {
        let args = crate::args::SimulateArgs {
            leaves: 4,
            readings: 100,
            algorithm: "d3".into(),
            fraction: 0.5,
            loss: 0.0,
            replay: Some("/nonexistent/definitely.trace".into()),
            ..crate::args::SimulateArgs::default()
        };
        let mut out = Vec::new();
        assert!(simulate(&args, &mut out).is_err());
    }

    #[test]
    fn demo_runs() {
        let mut out = Vec::new();
        demo(&mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("outliers"));
    }

    #[test]
    fn missing_file_is_reported() {
        let args = StatsArgs {
            input: Some("/nonexistent/definitely.csv".into()),
        };
        let mut out = Vec::new();
        assert!(stats(&args, &mut out).is_err());
    }
}
