//! The [`DensityModel`] abstraction.
//!
//! D3 and MGDD only need three operations from an estimator: the density
//! at a point, the probability mass of an axis-aligned box, and the
//! derived neighborhood count `N(p, r) = P[p−r, p+r] · |W|` (paper
//! Equation 4). Both the kernel estimators and the histogram baseline
//! provide them, so the detectors in `snod-outlier` are written against
//! this trait and the kernel-vs-histogram comparison of Figure 7 is a
//! one-line swap.

use crate::DensityError;

/// An approximation of the distribution of the values inside a sliding
/// window of `window_len()` elements over `dims()`-dimensional data in
/// `[0, 1]^d`.
pub trait DensityModel: Send + Sync {
    /// Data dimensionality `d`.
    fn dims(&self) -> usize;

    /// The window length `|W|` this model summarises; scales probabilities
    /// into counts.
    fn window_len(&self) -> f64;

    /// Estimated probability density at `x`.
    fn pdf(&self, x: &[f64]) -> Result<f64, DensityError>;

    /// Estimated probability mass of the axis-aligned box `[lo, hi]`.
    fn box_prob(&self, lo: &[f64], hi: &[f64]) -> Result<f64, DensityError>;

    /// `P(p, r) = P[p − r, p + r]` — probability mass of the L∞ ball of
    /// radius `r` around `p` (paper Equation 5).
    fn range_prob(&self, p: &[f64], r: f64) -> Result<f64, DensityError> {
        if p.len() != self.dims() {
            return Err(DensityError::DimensionMismatch {
                expected: self.dims(),
                got: p.len(),
            });
        }
        let lo: Vec<f64> = p.iter().map(|&c| c - r).collect();
        let hi: Vec<f64> = p.iter().map(|&c| c + r).collect();
        self.box_prob(&lo, &hi)
    }

    /// `N(p, r) = P(p, r) · |W|` — the estimated number of window values
    /// within distance `r` of `p` (paper Equation 4). This is the
    /// primitive both outlier definitions are built on.
    fn neighborhood_count(&self, p: &[f64], r: f64) -> Result<f64, DensityError> {
        Ok(self.range_prob(p, r)? * self.window_len())
    }

    /// Batched [`neighborhood_count`](Self::neighborhood_count): answers one
    /// range query of radius `r` per point in the flattened row-major
    /// `points` slice (`points.len()` must be a multiple of [`dims`](Self::dims)),
    /// returning the counts in input order.
    ///
    /// The default implementation is the scalar loop; sorted-centre
    /// estimators ([`crate::Kde`], [`crate::Kde1d`]) override it with a
    /// single sweep that sorts the queries by their dimension-0 lower edge
    /// and advances the support-pruning frontier monotonically instead of
    /// re-running a binary search per query. All implementations must
    /// return exactly what the scalar loop would (same summation order,
    /// hence bit-identical floats).
    fn neighborhood_counts(&self, points: &[f64], r: f64) -> Result<Vec<f64>, DensityError> {
        let d = self.dims();
        if !points.len().is_multiple_of(d) {
            return Err(DensityError::RaggedSample);
        }
        points
            .chunks_exact(d)
            .map(|p| self.neighborhood_count(p, r))
            .collect()
    }

    /// Reduces the model's internal representation to at most `budget`
    /// kernels/buckets by merging components that lie within `tolerance`
    /// (in bandwidth units) of each other, trading bounded query error
    /// for memory and evaluation speed. Returns the number of components
    /// merged away; `0` means nothing was merged (including models with
    /// no compressible representation, for which this default is a
    /// no-op). Object-safe so `Box<dyn DensityModel>` holders can offer
    /// compression generically.
    fn compress(&mut self, budget: usize, tolerance: f64) -> usize {
        let _ = (budget, tolerance);
        0
    }
}

/// Validates that `x` has the model's dimensionality.
pub(crate) fn check_dims(expected: usize, x: &[f64]) -> Result<(), DensityError> {
    if x.len() == expected {
        Ok(())
    } else {
        Err(DensityError::DimensionMismatch {
            expected,
            got: x.len(),
        })
    }
}
