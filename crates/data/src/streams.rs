//! Stream abstractions and per-sensor fan-out.

/// An infinite stream of d-dimensional sensor readings in `[0, 1]^d`.
pub trait DataStream {
    /// Data dimensionality.
    fn dims(&self) -> usize;
    /// The next reading.
    fn next_reading(&mut self) -> Vec<f64>;

    /// Collects the next `n` readings (convenience for offline analyses).
    fn take_readings(&mut self, n: usize) -> Vec<Vec<f64>>
    where
        Self: Sized,
    {
        (0..n).map(|_| self.next_reading()).collect()
    }
}

impl<T: DataStream + ?Sized> DataStream for Box<T> {
    fn dims(&self) -> usize {
        (**self).dims()
    }
    fn next_reading(&mut self) -> Vec<f64> {
        (**self).next_reading()
    }
}

/// A bank of independent per-sensor streams, indexed by leaf position —
/// *"in all the experiments we report, each sensor sees a different set
/// of data"* (paper Section 10). Build one with a factory closure that
/// derives per-sensor seeds.
pub struct SensorStreams {
    streams: Vec<Box<dyn DataStream + Send>>,
}

impl SensorStreams {
    /// Creates `count` streams via `make(sensor_index)`.
    pub fn generate<S, F>(count: usize, mut make: F) -> Self
    where
        S: DataStream + Send + 'static,
        F: FnMut(usize) -> S,
    {
        Self {
            streams: (0..count)
                .map(|i| Box::new(make(i)) as Box<dyn DataStream + Send>)
                .collect(),
        }
    }

    /// Number of sensors.
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// True when no streams exist.
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// Dimensionality (all streams agree; checked in `generate` usage).
    pub fn dims(&self) -> usize {
        self.streams.first().map_or(0, |s| s.dims())
    }

    /// The next reading of sensor `index`.
    pub fn next_for(&mut self, index: usize) -> Vec<f64> {
        snod_obs::counter!("data.readings").incr();
        self.streams[index].next_reading()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter {
        sensor: usize,
        n: u64,
    }

    impl DataStream for Counter {
        fn dims(&self) -> usize {
            1
        }
        fn next_reading(&mut self) -> Vec<f64> {
            self.n += 1;
            vec![self.sensor as f64 + self.n as f64 / 1e6]
        }
    }

    #[test]
    fn streams_are_independent() {
        let mut bank = SensorStreams::generate(3, |i| Counter { sensor: i, n: 0 });
        assert_eq!(bank.len(), 3);
        assert_eq!(bank.dims(), 1);
        let a = bank.next_for(0);
        let b = bank.next_for(1);
        let a2 = bank.next_for(0);
        assert!(a[0] < 1.0 && b[0] >= 1.0);
        assert!(a2[0] > a[0]);
    }

    #[test]
    fn take_readings_advances_the_stream() {
        let mut c = Counter { sensor: 0, n: 0 };
        let xs = c.take_readings(5);
        assert_eq!(xs.len(), 5);
        assert!(xs[4][0] > xs[0][0]);
    }
}
