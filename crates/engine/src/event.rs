//! The discrete-event queue driving the simulation.
//!
//! Events are ordered by simulated time with a monotone sequence number
//! as tie-breaker, so executions are fully deterministic: two events at
//! the same instant fire in the order they were scheduled.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use snod_persist::{ByteReader, ByteWriter, Persist, PersistError};

use crate::node::NodeId;

/// Something scheduled to happen at a simulated instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event<P> {
    /// A leaf sensor takes its next reading (the `seq`-th of its stream).
    Reading {
        /// The sampling sensor.
        node: NodeId,
        /// 0-based index of the reading in that sensor's stream.
        seq: u64,
    },
    /// A message finishes propagating and is handed to the receiver.
    Deliver {
        /// Sending node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// Application payload.
        payload: P,
    },
    /// A message sent under the ack/retry protocol arrives: the receiver
    /// deduplicates by `msg_id` and acknowledges.
    DeliverReliable {
        /// Sending node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// Engine-assigned message id (dedup + ack matching).
        msg_id: u64,
        /// Application payload.
        payload: P,
    },
    /// An acknowledgement frame arrives back at the original sender.
    Ack {
        /// The acknowledging node (receiver of the original message).
        from: NodeId,
        /// The original sender, whose pending entry this retires.
        to: NodeId,
        /// The acknowledged message id.
        msg_id: u64,
    },
    /// A retransmission timer fires at the sender of `msg_id`.
    Retry {
        /// The guarded message id.
        msg_id: u64,
    },
    /// An application timer armed via
    /// [`crate::EngineCtx::set_timer`] fires on `node`.
    AppTimer {
        /// The node whose engine armed (and receives) the timer.
        node: NodeId,
        /// The engine-chosen timer id, passed back verbatim.
        id: u64,
    },
}

#[derive(Debug)]
struct Entry<P> {
    time_ns: u64,
    seq: u64,
    event: Event<P>,
}

impl<P> PartialEq for Entry<P> {
    fn eq(&self, other: &Self) -> bool {
        self.time_ns == other.time_ns && self.seq == other.seq
    }
}
impl<P> Eq for Entry<P> {}
impl<P> PartialOrd for Entry<P> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<P> Ord for Entry<P> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time_ns, self.seq).cmp(&(other.time_ns, other.seq))
    }
}

/// A min-heap of timed events.
#[derive(Debug)]
pub struct EventQueue<P> {
    heap: BinaryHeap<Reverse<Entry<P>>>,
    next_seq: u64,
}

impl<P> Default for EventQueue<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P> EventQueue<P> {
    /// Empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` at absolute simulated time `time_ns`.
    pub fn schedule(&mut self, time_ns: u64, event: Event<P>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry {
            time_ns,
            seq,
            event,
        }));
    }

    /// Removes and returns the earliest event with its firing time.
    pub fn pop(&mut self) -> Option<(u64, Event<P>)> {
        self.heap.pop().map(|Reverse(e)| (e.time_ns, e.event))
    }

    /// Firing time of the earliest pending event, without removing it.
    /// Lets the engine drain a whole same-instant batch.
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse(e)| e.time_ns)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<P: Persist> Persist for Event<P> {
    fn save(&self, w: &mut ByteWriter) {
        match self {
            Event::Reading { node, seq } => {
                w.put_u8(0);
                node.save(w);
                seq.save(w);
            }
            Event::Deliver { from, to, payload } => {
                w.put_u8(1);
                from.save(w);
                to.save(w);
                payload.save(w);
            }
            Event::DeliverReliable {
                from,
                to,
                msg_id,
                payload,
            } => {
                w.put_u8(2);
                from.save(w);
                to.save(w);
                msg_id.save(w);
                payload.save(w);
            }
            Event::Ack { from, to, msg_id } => {
                w.put_u8(3);
                from.save(w);
                to.save(w);
                msg_id.save(w);
            }
            Event::Retry { msg_id } => {
                w.put_u8(4);
                msg_id.save(w);
            }
            Event::AppTimer { node, id } => {
                w.put_u8(5);
                node.save(w);
                id.save(w);
            }
        }
    }

    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        Ok(match r.get_u8()? {
            0 => Event::Reading {
                node: NodeId::load(r)?,
                seq: u64::load(r)?,
            },
            1 => Event::Deliver {
                from: NodeId::load(r)?,
                to: NodeId::load(r)?,
                payload: P::load(r)?,
            },
            2 => Event::DeliverReliable {
                from: NodeId::load(r)?,
                to: NodeId::load(r)?,
                msg_id: u64::load(r)?,
                payload: P::load(r)?,
            },
            3 => Event::Ack {
                from: NodeId::load(r)?,
                to: NodeId::load(r)?,
                msg_id: u64::load(r)?,
            },
            4 => Event::Retry {
                msg_id: u64::load(r)?,
            },
            5 => Event::AppTimer {
                node: NodeId::load(r)?,
                id: u64::load(r)?,
            },
            _ => return Err(PersistError::Corrupt("unknown event tag")),
        })
    }
}

/// The queue is saved as its *live* entries — `(time_ns, seq, event)`
/// triples in firing order — plus the scheduling counter. Keeping the
/// original tie-break sequence numbers is essential to bit-identical
/// resume: re-scheduling the events on load would renumber them and
/// could reorder same-instant batches relative to the uninterrupted
/// run.
impl<P: Persist> Persist for EventQueue<P> {
    fn save(&self, w: &mut ByteWriter) {
        let mut entries: Vec<&Reverse<Entry<P>>> = self.heap.iter().collect();
        entries.sort_by_key(|e| (e.0.time_ns, e.0.seq));
        w.put_usize(entries.len());
        for Reverse(e) in entries {
            e.time_ns.save(w);
            e.seq.save(w);
            e.event.save(w);
        }
        self.next_seq.save(w);
    }

    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let n = r.get_len()?;
        let mut heap = BinaryHeap::with_capacity(n);
        for _ in 0..n {
            let time_ns = u64::load(r)?;
            let seq = u64::load(r)?;
            let event = Event::load(r)?;
            heap.push(Reverse(Entry {
                time_ns,
                seq,
                event,
            }));
        }
        let next_seq = u64::load(r)?;
        Ok(Self { heap, next_seq })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule(
            30,
            Event::Reading {
                node: NodeId(3),
                seq: 0,
            },
        );
        q.schedule(
            10,
            Event::Reading {
                node: NodeId(1),
                seq: 0,
            },
        );
        q.schedule(
            20,
            Event::Reading {
                node: NodeId(2),
                seq: 0,
            },
        );
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_scheduling_order() {
        let mut q: EventQueue<u32> = EventQueue::new();
        for i in 0..5u32 {
            q.schedule(
                100,
                Event::Deliver {
                    from: NodeId(i),
                    to: NodeId(0),
                    payload: i,
                },
            );
        }
        let order: Vec<u32> = std::iter::from_fn(|| {
            q.pop().map(|(_, e)| match e {
                Event::Deliver { payload, .. } => payload,
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn len_tracks_pending_events() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(
            1,
            Event::Reading {
                node: NodeId(0),
                seq: 0,
            },
        );
        q.schedule(
            2,
            Event::Reading {
                node: NodeId(0),
                seq: 1,
            },
        );
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
