//! The synthetic workload of Section 10.
//!
//! *"The synthetic datasets are time sequences that are 35,000
//! observations long each, and their values were normalized to fit in the
//! [0, 1] interval. Each dataset is a mixture of three Gaussian
//! distributions with uniform noise; the mean is selected at random from
//! (0.3, 0.35, 0.45), and the standard deviation is selected as 0.03, so
//! that it doesn't cover the entire space. Subsequently, we add 0.5% (of
//! the dataset size) noise values, uniformly at random in the interval
//! [0.5, 1]."*
//!
//! The noise values in `[0.5, 1]` are far from every cluster, which is
//! what makes them the (distance-based) ground-truth outliers of the
//! accuracy experiments. In two dimensions the clusters sit on the
//! diagonal at `(m, m)` for the same three means, with the noise uniform
//! in `[0.5, 1]²`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};

use crate::streams::DataStream;

/// The paper's cluster means.
pub const MIXTURE_MEANS: [f64; 3] = [0.3, 0.35, 0.45];
/// The paper's cluster standard deviation.
pub const MIXTURE_STD: f64 = 0.03;
/// Fraction of readings that are uniform noise.
pub const NOISE_FRACTION: f64 = 0.005;
/// Noise interval `[0.5, 1]`.
pub const NOISE_RANGE: (f64, f64) = (0.5, 1.0);

/// Stream of mixture-of-Gaussians readings with sparse uniform noise.
///
/// ```
/// use snod_data::{GaussianMixtureStream, DataStream};
/// let mut s = GaussianMixtureStream::new(1, 42);
/// let xs = s.take_readings(1_000);
/// // Almost everything is near the clusters …
/// let clustered = xs.iter().filter(|v| v[0] < 0.55).count();
/// assert!(clustered > 980);
/// // … and everything is normalised into [0, 1].
/// assert!(xs.iter().all(|v| (0.0..=1.0).contains(&v[0])));
/// ```
#[derive(Debug, Clone)]
pub struct GaussianMixtureStream {
    dims: usize,
    rng: StdRng,
    normal: Normal<f64>,
    /// Per-component mixture weights (uniform by default).
    weights: [f64; 3],
}

impl GaussianMixtureStream {
    /// Creates a `dims`-dimensional stream (1 or 2 in the paper) with a
    /// deterministic seed. Different sensors should use different seeds.
    pub fn new(dims: usize, seed: u64) -> Self {
        assert!(dims >= 1, "dimensionality must be positive");
        Self {
            dims,
            rng: StdRng::seed_from_u64(seed),
            normal: Normal::new(0.0, MIXTURE_STD).expect("valid normal"),
            weights: [1.0 / 3.0; 3],
        }
    }

    /// Skews the mixture weights so different sensors emphasise different
    /// clusters (the hierarchy experiments exploit this: a value common
    /// at one sensor can be rare in the region).
    pub fn with_weights(mut self, weights: [f64; 3]) -> Self {
        let sum: f64 = weights.iter().sum();
        assert!(sum > 0.0, "weights must have positive mass");
        self.weights = [weights[0] / sum, weights[1] / sum, weights[2] / sum];
        self
    }

    /// Whether the next reading will be drawn as noise. Exposed for the
    /// ground-truth bookkeeping in the experiment harness.
    fn draw_is_noise(&mut self) -> bool {
        self.rng.gen::<f64>() < NOISE_FRACTION
    }

    fn draw_component(&mut self) -> f64 {
        let u = self.rng.gen::<f64>();
        let mut acc = 0.0;
        for (i, &w) in self.weights.iter().enumerate() {
            acc += w;
            if u < acc {
                return MIXTURE_MEANS[i];
            }
        }
        MIXTURE_MEANS[2]
    }
}

impl DataStream for GaussianMixtureStream {
    fn dims(&self) -> usize {
        self.dims
    }

    fn next_reading(&mut self) -> Vec<f64> {
        if self.draw_is_noise() {
            let (lo, hi) = NOISE_RANGE;
            return (0..self.dims).map(|_| self.rng.gen_range(lo..hi)).collect();
        }
        let mean = self.draw_component();
        (0..self.dims)
            .map(|_| (mean + self.normal.sample(&mut self.rng)).clamp(0.0, 1.0))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snod_sketch::DatasetStats;

    #[test]
    fn values_stay_in_unit_interval() {
        let mut s = GaussianMixtureStream::new(2, 7);
        for _ in 0..10_000 {
            let v = s.next_reading();
            assert_eq!(v.len(), 2);
            assert!(v.iter().all(|&c| (0.0..=1.0).contains(&c)));
        }
    }

    #[test]
    fn noise_fraction_is_about_half_a_percent() {
        let mut s = GaussianMixtureStream::new(1, 11);
        let n = 200_000;
        let noise = (0..n)
            .map(|_| s.next_reading()[0])
            .filter(|&x| x >= 0.55) // clusters end well below 0.55 (4σ)
            .count();
        let frac = noise as f64 / n as f64;
        assert!(
            (frac - NOISE_FRACTION).abs() < 0.002,
            "noise fraction {frac}"
        );
    }

    #[test]
    fn cluster_statistics_match_the_mixture() {
        let mut s = GaussianMixtureStream::new(1, 13);
        let xs: Vec<f64> = (0..50_000).map(|_| s.next_reading()[0]).collect();
        let stats = DatasetStats::from_slice(&xs).unwrap();
        // Mixture mean ≈ (0.3 + 0.35 + 0.45)/3 ≈ 0.367 (noise pulls it
        // up slightly).
        assert!((stats.mean - 0.367).abs() < 0.01, "mean {}", stats.mean);
        assert!(stats.std_dev > 0.04 && stats.std_dev < 0.12);
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let mut a = GaussianMixtureStream::new(1, 1);
        let mut b = GaussianMixtureStream::new(1, 2);
        let xa: Vec<f64> = (0..100).map(|_| a.next_reading()[0]).collect();
        let xb: Vec<f64> = (0..100).map(|_| b.next_reading()[0]).collect();
        assert_ne!(xa, xb);
    }

    #[test]
    fn same_seed_replays_identically() {
        let mut a = GaussianMixtureStream::new(2, 5);
        let mut b = GaussianMixtureStream::new(2, 5);
        for _ in 0..1_000 {
            assert_eq!(a.next_reading(), b.next_reading());
        }
    }

    #[test]
    fn weights_shift_cluster_emphasis() {
        let mut s = GaussianMixtureStream::new(1, 3).with_weights([1.0, 0.0, 0.0]);
        let xs: Vec<f64> = (0..5_000).map(|_| s.next_reading()[0]).collect();
        let near_03 = xs.iter().filter(|&&x| (x - 0.3).abs() < 0.1).count();
        assert!(near_03 > 4_800, "only {near_03} readings near 0.3");
    }
}
