//! Algorithm MGDD — Multi-Granular Deviation Detection (paper Section 8,
//! Figure 4).
//!
//! MDEF-based outliers are *non-decomposable* (a union-window outlier
//! need not be an outlier in any child window), so Theorem 3 does not
//! apply and detection happens **only at the leaf sensors**, against a
//! replica of a leader's *global* estimator model:
//!
//! * Upward: leaves (and intermediate leaders) forward chain-sample
//!   acceptances with probability `f`, exactly as in D3.
//! * Downward: when a broadcasting leader's sample accepts a value, the
//!   update is relayed down the tree to every descendant leaf, which
//!   maintains a FIFO replica `R_g` plus the leader's current `σ_g`
//!   (Section 8.1 — `(f·l)^n` update messages per observation).
//! * Optimised: with [`UpdateStrategy::OnModelChange`], the leader
//!   instead re-broadcasts its full model only when the JS-divergence
//!   from the last broadcast exceeds a threshold.
//!
//! By default only the top-level leader broadcasts (the paper's MGDD);
//! [`MgddConfig`]-driven runs can additionally enable intermediate
//! levels, giving the multi-granularity flexibility of Section 3's
//! example (outliers "with respect to an entire region").

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use snod_density::js_divergence_models;
use snod_outlier::MdefDetector;
use snod_simnet::{Ctx, Hierarchy, Network, NodeId, SensorApp, SimConfig, StreamSource, Wire};

use crate::config::{CoreError, MgddConfig, UpdateStrategy};
use crate::d3::Detection;
use crate::estimator::{SensorEstimator, SensorModel};
use crate::replica::IncrementalReplica;

/// MGDD wire messages.
#[derive(Debug, Clone)]
pub enum MgddPayload {
    /// A chain-sample acceptance forwarded upward with probability `f`.
    SampleValue(Vec<f64>),
    /// Incremental global-model update flowing down from a broadcasting
    /// leader at `origin_level`: one new sample value plus the leader's
    /// current σ estimate and conceptual window length.
    GlobalDelta {
        /// Tier of the broadcasting leader.
        origin_level: u8,
        /// The newly accepted sample value.
        value: Vec<f64>,
        /// The leader's per-dimension σ estimates.
        sigmas: Vec<f64>,
        /// The leader's conceptual window `|W_g|`.
        window_len: f64,
    },
    /// Full-model replacement used by the model-change update strategy.
    GlobalModel {
        /// Tier of the broadcasting leader.
        origin_level: u8,
        /// The leader's full current sample.
        sample: Vec<Vec<f64>>,
        /// The leader's per-dimension σ estimates.
        sigmas: Vec<f64>,
        /// The leader's conceptual window `|W_g|`.
        window_len: f64,
    },
}

impl Wire for MgddPayload {
    fn size_bytes(&self) -> usize {
        // 2 bytes per number (paper's 16-bit accounting) + 1-byte tag.
        match self {
            MgddPayload::SampleValue(v) => v.len() * 2 + 1,
            MgddPayload::GlobalDelta { value, sigmas, .. } => {
                value.len() * 2 + sigmas.len() * 2 + 2 + 1
            }
            MgddPayload::GlobalModel { sample, sigmas, .. } => {
                sample.iter().map(|v| v.len() * 2).sum::<usize>() + sigmas.len() * 2 + 2 + 1
            }
        }
    }
}

/// Per-node MGDD state (leaf and leader behaviour in one type; the role
/// decides which paths run).
pub struct MgddNode {
    est: SensorEstimator,
    cfg: MgddConfig,
    rng: StdRng,
    level: u8,
    /// Does this leader broadcast global updates?
    broadcasts: bool,
    /// Leaf replicas of broadcasting leaders' models, by origin level —
    /// maintained incrementally under `cfg.estimator.rebuild`.
    replicas: Vec<(u8, IncrementalReplica)>,
    /// Model snapshot at the last full broadcast (model-change strategy).
    last_broadcast: Option<SensorModel>,
    /// Accepted values since the last model-change check.
    since_check: u64,
    /// Outliers detected at this leaf, tagged with the granularity level
    /// of the global model that flagged them.
    pub detections: Vec<Detection>,
}

impl MgddNode {
    /// Builds the node for `node` in `topo`. `broadcast_levels` lists the
    /// leader tiers that maintain a global model (the paper's MGDD uses
    /// only the top tier).
    pub fn new(node: NodeId, topo: &Hierarchy, cfg: &MgddConfig, broadcast_levels: &[u8]) -> Self {
        let level = topo.level_of(node);
        let mut est_cfg = cfg.estimator;
        est_cfg.seed = est_cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (node.0 as u64);
        // Leaders run the same estimator over their own arrival stream
        // (a uniform random sample of the subtree's readings); MDEF is a
        // ratio of counts, so the sub-sampling cancels out.
        let est = SensorEstimator::new(est_cfg);
        let replicas = if level == 1 {
            broadcast_levels
                .iter()
                .map(|&l| {
                    (
                        l,
                        IncrementalReplica::new(cfg.estimator.sample_size, cfg.estimator.rebuild),
                    )
                })
                .collect()
        } else {
            Vec::new()
        };
        Self {
            est,
            cfg: *cfg,
            rng: StdRng::seed_from_u64(est_cfg.seed ^ 0x16DD),
            level,
            broadcasts: level > 1 && broadcast_levels.contains(&level),
            replicas,
            last_broadcast: None,
            since_check: 0,
            detections: Vec::new(),
        }
    }

    /// The node's estimator.
    pub fn estimator(&self) -> &SensorEstimator {
        &self.est
    }

    /// Handles a value entering this node's estimator (a reading at a
    /// leaf, a forwarded sample value at a leader).
    fn ingest(&mut self, ctx: &mut Ctx<'_, MgddPayload>, value: &[f64]) {
        let accepted = self
            .est
            .observe(value)
            .expect("stream dimensionality matches configuration");
        if !accepted {
            return;
        }
        if self.rng.gen::<f64>() < self.cfg.sample_fraction {
            ctx.send_parent(MgddPayload::SampleValue(value.to_vec()));
        }
        if self.broadcasts {
            self.broadcast(ctx, value);
        }
    }

    /// Pushes a global-model update downward according to the strategy.
    fn broadcast(&mut self, ctx: &mut Ctx<'_, MgddPayload>, value: &[f64]) {
        match self.cfg.updates {
            UpdateStrategy::EveryAcceptance => {
                ctx.send_children(MgddPayload::GlobalDelta {
                    origin_level: self.level,
                    value: value.to_vec(),
                    sigmas: self.est.sigmas(),
                    window_len: self.est.window_len(),
                });
            }
            UpdateStrategy::OnModelChange {
                js_threshold,
                check_every,
            } => {
                self.since_check += 1;
                if self.since_check < check_every {
                    return;
                }
                self.since_check = 0;
                let Ok(current) = self.est.model() else {
                    return;
                };
                let changed = match &self.last_broadcast {
                    None => true,
                    Some(prev) => js_divergence_models(prev, &current, 32)
                        .map(|d| d > js_threshold)
                        .unwrap_or(true),
                };
                if changed {
                    ctx.send_children(MgddPayload::GlobalModel {
                        origin_level: self.level,
                        sample: self.est.sample(),
                        sigmas: self.est.sigmas(),
                        window_len: self.est.window_len(),
                    });
                    self.last_broadcast = Some(current);
                }
            }
        }
    }

    /// Leaf-side MDEF check of a new observation against every warm
    /// global replica (paper Figure 4, MGDD `IsOutlier`).
    fn check(&mut self, time_ns: u64, p: &[f64]) {
        let detector = MdefDetector::new(self.cfg.rule);
        let mut hits = Vec::new();
        for (origin, replica) in &mut self.replicas {
            if !replica.is_warm() {
                continue;
            }
            let Ok(model) = replica.model() else { continue };
            if let Ok(eval) = detector.evaluate(model, p) {
                if eval.is_outlier {
                    hits.push(*origin);
                }
            }
        }
        for origin in hits {
            self.detections.push(Detection {
                time_ns,
                value: p.to_vec(),
                level: origin,
            });
        }
    }
}

impl SensorApp<MgddPayload> for MgddNode {
    fn on_reading(&mut self, ctx: &mut Ctx<'_, MgddPayload>, value: &[f64]) {
        self.check(ctx.time_ns, value);
        self.ingest(ctx, value);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, MgddPayload>, _from: NodeId, payload: MgddPayload) {
        match payload {
            MgddPayload::SampleValue(v) => self.ingest(ctx, &v),
            MgddPayload::GlobalDelta {
                origin_level,
                value,
                sigmas,
                window_len,
            } => {
                if self.level == 1 {
                    if let Some((_, replica)) =
                        self.replicas.iter_mut().find(|(l, _)| *l == origin_level)
                    {
                        replica.push(value, sigmas, window_len);
                    }
                } else {
                    // Intermediate leader: relay downward (Section 8.1,
                    // "via the intermediate leaders").
                    ctx.send_children(MgddPayload::GlobalDelta {
                        origin_level,
                        value,
                        sigmas,
                        window_len,
                    });
                }
            }
            MgddPayload::GlobalModel {
                origin_level,
                sample,
                sigmas,
                window_len,
            } => {
                if self.level == 1 {
                    if let Some((_, replica)) =
                        self.replicas.iter_mut().find(|(l, _)| *l == origin_level)
                    {
                        replica.replace(sample, sigmas, window_len);
                    }
                } else {
                    ctx.send_children(MgddPayload::GlobalModel {
                        origin_level,
                        sample,
                        sigmas,
                        window_len,
                    });
                }
            }
        }
    }
}

/// Runs MGDD with the paper's default top-level-only global model.
pub fn run_mgdd<S: StreamSource>(
    topo: Hierarchy,
    cfg: &MgddConfig,
    sim: SimConfig,
    source: &mut S,
    readings_per_leaf: u64,
) -> Result<Network<MgddPayload, MgddNode>, CoreError> {
    let top = topo.level_count() as u8;
    run_mgdd_with_levels(topo, cfg, sim, source, readings_per_leaf, &[top])
}

/// Runs MGDD with global models maintained at every tier in
/// `broadcast_levels` — the multi-granularity mode of Section 3.
pub fn run_mgdd_with_levels<S: StreamSource>(
    topo: Hierarchy,
    cfg: &MgddConfig,
    sim: SimConfig,
    source: &mut S,
    readings_per_leaf: u64,
    broadcast_levels: &[u8],
) -> Result<Network<MgddPayload, MgddNode>, CoreError> {
    cfg.validate()?;
    let mut net = Network::new(topo, sim, |node, topo| {
        MgddNode::new(node, topo, cfg, broadcast_levels)
    });
    net.run(source, readings_per_leaf);
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snod_outlier::MdefConfig;

    fn test_config() -> MgddConfig {
        MgddConfig {
            estimator: crate::config::EstimatorConfig::builder()
                .window(400)
                .sample_size(64)
                .seed(5)
                .build()
                .unwrap(),
            rule: MdefConfig::new(0.08, 0.01, 3.0).unwrap(),
            sample_fraction: 0.75,
            updates: UpdateStrategy::EveryAcceptance,
        }
    }

    /// Uniform dense block on [0.40, 0.50] across all leaves; leaf 0
    /// occasionally emits a skirt value at 0.55.
    fn block_source() -> impl FnMut(NodeId, u64) -> Option<Vec<f64>> {
        |node: NodeId, seq: u64| {
            if node.0 == 0 && seq % 150 == 149 {
                Some(vec![0.55])
            } else {
                Some(vec![
                    0.40 + 0.10 * (((seq * 7 + node.0 as u64 * 13) % 100) as f64) / 100.0,
                ])
            }
        }
    }

    #[test]
    fn global_replicas_fill_at_the_leaves() {
        let topo = Hierarchy::balanced(4, &[2, 2]).unwrap();
        let mut src = block_source();
        let net = run_mgdd(topo, &test_config(), SimConfig::default(), &mut src, 800).unwrap();
        for &leaf in net.topology().leaves() {
            let node = net.app(leaf);
            assert_eq!(node.replicas.len(), 1);
            assert!(
                node.replicas[0].1.is_warm(),
                "replica at {leaf} never warmed up ({} values)",
                node.replicas[0].1.sample_len()
            );
        }
    }

    #[test]
    fn skirt_values_are_detected_at_the_leaf() {
        let topo = Hierarchy::balanced(4, &[2, 2]).unwrap();
        let mut src = block_source();
        let net = run_mgdd(topo, &test_config(), SimConfig::default(), &mut src, 1_200).unwrap();
        let leaf0 = net.app(NodeId(0));
        assert!(
            leaf0
                .detections
                .iter()
                .any(|d| (d.value[0] - 0.55).abs() < 1e-9),
            "skirt value never flagged ({} detections)",
            leaf0.detections.len()
        );
    }

    #[test]
    fn core_values_are_not_flagged_in_steady_state() {
        // The global replica needs time to mature (the root only sees a
        // thin sub-sampled arrival stream in this miniature setup), so
        // only steady-state detections — second half of the run — count.
        let topo = Hierarchy::balanced(4, &[2, 2]).unwrap();
        let mut src = block_source();
        let net = run_mgdd(topo, &test_config(), SimConfig::default(), &mut src, 1_200).unwrap();
        let half = net.now_ns() / 2;
        for &leaf in net.topology().leaves() {
            let false_hits = net
                .app(leaf)
                .detections
                .iter()
                .filter(|d| d.time_ns > half && d.value[0] < 0.52)
                .count();
            // ~600 core readings per leaf in the second half; the tiny
            // |R| = 64 sample makes per-reading counts noisy, so allow a
            // modest false-flag rate — the discriminative power is the
            // skirt test above.
            assert!(
                false_hits <= 90,
                "leaf {leaf}: {false_hits} core values flagged"
            );
        }
    }

    #[test]
    fn only_leaves_detect() {
        let topo = Hierarchy::balanced(4, &[2, 2]).unwrap();
        let mut src = block_source();
        let net = run_mgdd(topo, &test_config(), SimConfig::default(), &mut src, 600).unwrap();
        for level in 2..=net.topology().level_count() {
            for &leader in net.topology().level(level) {
                assert!(net.app(leader).detections.is_empty());
            }
        }
    }

    #[test]
    fn model_change_strategy_sends_fewer_updates() {
        let topo = Hierarchy::balanced(4, &[2, 2]).unwrap();
        let mut cfg = test_config();
        let mut src = block_source();
        let every = run_mgdd(topo.clone(), &cfg, SimConfig::default(), &mut src, 800).unwrap();
        cfg.updates = UpdateStrategy::OnModelChange {
            js_threshold: 0.05,
            check_every: 8,
        };
        let mut src2 = block_source();
        let lazy = run_mgdd(topo, &cfg, SimConfig::default(), &mut src2, 800).unwrap();
        assert!(
            lazy.stats().messages < every.stats().messages,
            "model-change updates ({}) not cheaper than per-acceptance ({})",
            lazy.stats().messages,
            every.stats().messages
        );
    }

    #[test]
    fn multi_level_broadcast_tags_detections_by_origin() {
        let topo = Hierarchy::balanced(4, &[2, 2]).unwrap();
        let cfg = test_config();
        let mut src = block_source();
        let net = run_mgdd_with_levels(topo, &cfg, SimConfig::default(), &mut src, 1_200, &[2, 3])
            .unwrap();
        let leaf0 = net.app(NodeId(0));
        assert_eq!(leaf0.replicas.len(), 2);
        let levels: std::collections::HashSet<u8> =
            leaf0.detections.iter().map(|d| d.level).collect();
        assert!(
            levels.iter().all(|&l| l == 2 || l == 3),
            "unexpected origin levels {levels:?}"
        );
    }
}
