//! Golden checkpoint files: committed byte-for-byte snapshots of a
//! small seeded D3 and MGDD run, pinned by three guards.
//!
//! 1. **Schema guard** — re-encoding the same deterministic state must
//!    reproduce the committed bytes exactly. Any change to a `Persist`
//!    impl (field added, order shuffled, width changed) trips this test;
//!    the fix is to bump `FORMAT_VERSION` in `crates/persist` and
//!    regenerate (see below), never to silently re-commit.
//! 2. **Version guard** — the committed header carries the
//!    `FORMAT_VERSION` this build writes; decoding a *different* version
//!    is a typed [`PersistError::UnsupportedVersion`], checked in
//!    `tests/persist_corruption.rs`.
//! 3. **Resume smoke** — restoring the goldens in a fresh process and
//!    running to the end reproduces the uninterrupted trace
//!    bit-identically.
//!
//! Regenerate after an intentional format change with:
//! `SNOD_REGEN_GOLDENS=1 cargo test --test golden_checkpoints`

use sensor_outliers::core::{
    build_d3_network, build_fqn_network, build_mgdd_network, build_mmdew_network, D3Config, D3Node,
    D3Payload, EstimatorConfig, FqnConfig, FqnNode, FqnPayload, MgddConfig, MgddNode, MgddPayload,
    MmdewNode, MmdewNodeConfig, MmdewPayload, UpdateStrategy,
};
use sensor_outliers::outlier::{DistanceOutlierConfig, MdefConfig};
use sensor_outliers::persist::{crc32, decode_checkpoint, FORMAT_VERSION, HEADER_LEN, MAGIC};
use sensor_outliers::simnet::{FaultPlan, Hierarchy, Network, NodeId, SimConfig};

const READINGS: u64 = 300;
const CUT_NS: u64 = 100 * 1_000_000_000;

pub fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens")
        .join(name)
}

fn topo() -> Hierarchy {
    Hierarchy::balanced(4, &[2, 2]).unwrap()
}

fn source(node: NodeId, seq: u64) -> Option<Vec<f64>> {
    let h = node.0 as u64 * 1_000_003 + seq * 7_919;
    if seq % 173 == 42 {
        Some(vec![0.91])
    } else {
        Some(vec![0.3 + 0.2 * ((h % 1_000) as f64 / 1_000.0)])
    }
}

fn estimator() -> EstimatorConfig {
    EstimatorConfig::builder()
        .window(300)
        .sample_size(50)
        .seed(21)
        .build()
        .unwrap()
}

fn d3_net() -> Network<D3Payload, D3Node> {
    let cfg = D3Config {
        estimator: estimator(),
        rule: DistanceOutlierConfig::new(8.0, 0.02),
        sample_fraction: 0.5,
    };
    build_d3_network(topo(), &cfg, SimConfig::default(), FaultPlan::none()).unwrap()
}

fn mgdd_net() -> Network<MgddPayload, MgddNode> {
    let cfg = MgddConfig {
        estimator: estimator(),
        rule: MdefConfig::new(0.08, 0.01, 3.0).unwrap(),
        sample_fraction: 0.75,
        updates: UpdateStrategy::EveryAcceptance,
        staleness_bound_ns: Some(30_000_000_000),
    };
    let t = topo();
    let top = t.level_count() as u8;
    build_mgdd_network(t, &cfg, SimConfig::default(), FaultPlan::none(), &[top]).unwrap()
}

fn fqn_net() -> Network<FqnPayload, FqnNode> {
    let cfg = FqnConfig {
        dimensions: 1,
        window: 128,
        k_scale: 4.0,
        warmup: 32,
        sample_fraction: 0.5,
        seed: 21,
    };
    build_fqn_network(topo(), &cfg, SimConfig::default(), FaultPlan::none()).unwrap()
}

fn mmdew_net() -> Network<MmdewPayload, MmdewNode> {
    let mut cfg = MmdewNodeConfig::default();
    cfg.detector.seed = 21;
    build_mmdew_network(topo(), &cfg, SimConfig::default(), FaultPlan::none()).unwrap()
}

/// The checkpoint an interrupted run would have written at `CUT_NS`.
fn fresh_d3_checkpoint() -> Vec<u8> {
    let mut net = d3_net();
    net.run_until(&mut source, READINGS, CUT_NS);
    net.checkpoint()
}

fn fresh_mgdd_checkpoint() -> Vec<u8> {
    let mut net = mgdd_net();
    net.run_until(&mut source, READINGS, CUT_NS);
    net.checkpoint()
}

fn fresh_fqn_checkpoint() -> Vec<u8> {
    let mut net = fqn_net();
    net.run_until(&mut source, READINGS, CUT_NS);
    net.checkpoint()
}

fn fresh_mmdew_checkpoint() -> Vec<u8> {
    let mut net = mmdew_net();
    net.run_until(&mut source, READINGS, CUT_NS);
    net.checkpoint()
}

fn regenerating() -> bool {
    std::env::var("SNOD_REGEN_GOLDENS").is_ok()
}

#[test]
fn golden_bytes_are_stable_without_a_version_bump() {
    for (name, fresh) in [
        ("d3.ckpt", fresh_d3_checkpoint()),
        ("mgdd.ckpt", fresh_mgdd_checkpoint()),
        ("fqn.ckpt", fresh_fqn_checkpoint()),
        ("mmdew.ckpt", fresh_mmdew_checkpoint()),
    ] {
        let path = golden_path(name);
        if regenerating() {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &fresh).unwrap();
            continue;
        }
        let committed = std::fs::read(&path)
            .unwrap_or_else(|e| panic!("missing golden {name}: {e}; regenerate with \
                 SNOD_REGEN_GOLDENS=1 cargo test --test golden_checkpoints"));
        assert_eq!(
            committed, fresh,
            "the checkpoint encoding of {name} changed without a FORMAT_VERSION bump \
             (currently {FORMAT_VERSION}). If the format change is intentional, bump \
             FORMAT_VERSION in crates/persist/src/container.rs and regenerate the \
             goldens with SNOD_REGEN_GOLDENS=1 cargo test --test golden_checkpoints"
        );
    }
}

#[test]
fn golden_headers_carry_the_current_version() {
    for name in ["d3.ckpt", "mgdd.ckpt", "fqn.ckpt", "mmdew.ckpt"] {
        if regenerating() {
            continue;
        }
        let bytes = std::fs::read(golden_path(name)).expect("golden exists");
        assert!(bytes.len() > HEADER_LEN, "{name} has no payload");
        assert_eq!(&bytes[..8], &MAGIC, "{name} magic");
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        assert_eq!(version, FORMAT_VERSION, "{name} format version");
        let len = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
        assert_eq!(len as usize, bytes.len() - HEADER_LEN, "{name} payload length");
        let crc = u32::from_le_bytes(bytes[20..24].try_into().unwrap());
        assert_eq!(crc, crc32(&bytes[HEADER_LEN..]), "{name} checksum");
        // And the canonical decoder agrees end to end.
        assert!(decode_checkpoint(&bytes).is_ok());
    }
}

/// The CI resume-bit-identity smoke test: restore each golden in a
/// fresh network and run to the end; the full trace must match an
/// uninterrupted run of the same seeded workload.
#[test]
fn golden_d3_resume_matches_uninterrupted_run() {
    if regenerating() {
        return;
    }
    let bytes = std::fs::read(golden_path("d3.ckpt")).expect("golden exists");
    let mut resumed = d3_net();
    resumed.restore(&bytes).unwrap();
    resumed.run_until(&mut source, READINGS, u64::MAX);

    let mut uninterrupted = d3_net();
    uninterrupted.run(&mut source, READINGS);

    assert_eq!(uninterrupted.stats(), resumed.stats());
    let traces = |net: &Network<D3Payload, D3Node>| -> Vec<(u32, usize)> {
        net.apps().map(|(n, a)| (n.0, a.detections.len())).collect()
    };
    assert_eq!(traces(&uninterrupted), traces(&resumed));
    for (node, app) in uninterrupted.apps() {
        assert_eq!(
            app.detections,
            resumed.app(node).detections,
            "node {node:?} diverged after golden resume"
        );
    }
}

#[test]
fn golden_mgdd_resume_matches_uninterrupted_run() {
    if regenerating() {
        return;
    }
    let bytes = std::fs::read(golden_path("mgdd.ckpt")).expect("golden exists");
    let mut resumed = mgdd_net();
    resumed.restore(&bytes).unwrap();
    resumed.run_until(&mut source, READINGS, u64::MAX);

    let mut uninterrupted = mgdd_net();
    uninterrupted.run(&mut source, READINGS);

    assert_eq!(uninterrupted.stats(), resumed.stats());
    for (node, app) in uninterrupted.apps() {
        assert_eq!(
            app.detections,
            resumed.app(node).detections,
            "node {node:?} diverged after golden resume"
        );
    }
}

#[test]
fn golden_fqn_resume_matches_uninterrupted_run() {
    if regenerating() {
        return;
    }
    let bytes = std::fs::read(golden_path("fqn.ckpt")).expect("golden exists");
    let mut resumed = fqn_net();
    resumed.restore(&bytes).unwrap();
    resumed.run_until(&mut source, READINGS, u64::MAX);

    let mut uninterrupted = fqn_net();
    uninterrupted.run(&mut source, READINGS);

    assert_eq!(uninterrupted.stats(), resumed.stats());
    for (node, app) in uninterrupted.apps() {
        assert_eq!(
            app.detections,
            resumed.app(node).detections,
            "node {node:?} diverged after golden resume"
        );
    }
}

#[test]
fn golden_mmdew_resume_matches_uninterrupted_run() {
    if regenerating() {
        return;
    }
    let bytes = std::fs::read(golden_path("mmdew.ckpt")).expect("golden exists");
    let mut resumed = mmdew_net();
    resumed.restore(&bytes).unwrap();
    resumed.run_until(&mut source, READINGS, u64::MAX);

    let mut uninterrupted = mmdew_net();
    uninterrupted.run(&mut source, READINGS);

    assert_eq!(uninterrupted.stats(), resumed.stats());
    for (node, app) in uninterrupted.apps() {
        assert_eq!(
            app.detections,
            resumed.app(node).detections,
            "node {node:?} diverged after golden resume"
        );
    }
}
