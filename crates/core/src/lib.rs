//! # snod-core — the paper's algorithms
//!
//! This crate assembles the substrates into the systems the VLDB'06 paper
//! actually proposes:
//!
//! * [`SensorEstimator`] — the per-node estimator state of Section 5: a
//!   chain sample `R` of the sliding window plus streaming per-dimension
//!   standard deviations, materialised on demand into a kernel density
//!   model (with the 1-d fast path of Section 5.3).
//! * [`D3Node`] / [`run_d3`] — algorithm **D3** (Distributed Deviation
//!   Detection, Section 7): every leaf checks each reading against its
//!   local model; flagged values climb the hierarchy and are re-checked
//!   against each ancestor's model (sound by Theorem 3).
//! * [`MgddNode`] / [`run_mgdd`] — algorithm **MGDD** (Multi-Granular
//!   Deviation Detection, Section 8): leaders maintain region models and
//!   stream incremental updates down to the leaves, which evaluate the
//!   MDEF test against each granularity's *global* model.
//! * [`CentralizedNode`] / [`run_centralized`] — the baseline that ships
//!   every reading to the top-level leader (Section 8.1's comparison
//!   point and the upper curve of Figure 11).
//! * [`apps`] — the Section 9 applications: online range queries, faulty
//!   sensor detection via model divergence, and windowed outlier-count
//!   alarms.
//!
//! The [`pipeline`] module offers a one-call API over all of the above
//! for downstream users who just want "outliers out of my sensor
//! streams".

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// `!(x > 0.0)` is deliberate throughout: unlike `x <= 0.0` it also
// rejects NaN parameters, which must never enter a configuration.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod apps;
mod backend;
mod centralized;
mod config;
mod d3;
mod estimator;
mod fqn;
mod mgdd;
mod monitor;
pub mod pipeline;
mod replica;
mod shift;
mod timeslice;

pub use backend::{
    build_backend_live, build_backend_network, run_backend_with_faults, BackendKind, D3Backend,
    DetectorBackend, FqnBackend, MgddBackend, MmdewBackend,
};
pub use centralized::{
    run_centralized, run_centralized_with_faults, CentralizedNode, CentralizedPayload,
};
pub use config::{
    CoreError, D3Config, EstimatorConfig, EstimatorConfigBuilder, MgddConfig, RebuildPolicy,
    UpdateStrategy,
};
pub use d3::{build_d3_live, build_d3_network, run_d3, run_d3_with_faults, D3Node, D3Payload, Detection};
pub use estimator::{SensorEstimator, SensorModel};
pub use fqn::{
    build_fqn_live, build_fqn_network, run_fqn, run_fqn_with_faults, FqnConfig, FqnNode,
    FqnPayload,
};
pub use mgdd::{
    build_mgdd_live, build_mgdd_network, run_mgdd, run_mgdd_with_faults, run_mgdd_with_levels,
    MgddNode, MgddPayload,
};
pub use monitor::{
    run_monitor, run_monitor_with_faults, FaultAlarm, ModelReport, MonitorConfig, MonitorNode,
};
pub use replica::IncrementalReplica;
pub use shift::{
    build_mmdew_live, build_mmdew_network, run_mmdew, run_mmdew_with_faults, MmdewNode,
    MmdewNodeConfig, MmdewPayload,
};
pub use timeslice::TimeSlicedEstimator;
