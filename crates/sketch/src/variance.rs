//! ε-approximate variance over a sliding window
//! (Babcock, Datar, Motwani, O'Callaghan — PODS 2003).
//!
//! The paper's kernel bandwidth rule `Bᵢ = √5·σᵢ·|R|^(−1/(d+4))` needs the
//! standard deviation σ of the values currently in the window. Keeping the
//! whole window just for σ would defeat the memory budget, so each sensor
//! maintains this bucket sketch instead: Theorem 1 of the paper charges it
//! `O((1/ε²)·log|W|)` memory per dimension.
//!
//! Each bucket stores the triple `(n, μ, V)` — count, mean and sum of
//! squared deviations — for a contiguous run of stream elements. Two
//! buckets combine exactly:
//!
//! ```text
//! n  = n₁ + n₂
//! μ  = (n₁μ₁ + n₂μ₂) / n
//! V  = V₁ + V₂ + n₁n₂/(n₁+n₂) · (μ₁ − μ₂)²
//! ```
//!
//! Adjacent buckets are merged greedily (oldest first) whenever the merged
//! bucket's `V` stays small relative to the combined `V` of all newer
//! buckets (`9·V_merged ≤ ε²·V_newer`), which keeps the error contributed
//! by the single straddling bucket at query time below `ε·V`. The struct
//! tracks its high-water bucket count so the §10.3 memory experiment can
//! compare actual usage against the theoretical bound.

use std::collections::VecDeque;

use snod_persist::{ByteReader, ByteWriter, Persist, PersistError};

use crate::SketchError;

/// Exact summary `(n, μ, V)` of a contiguous run of elements.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Bucket {
    /// Stream index (1-based) of the oldest element in the bucket.
    oldest: u64,
    /// Stream index of the newest element in the bucket.
    newest: u64,
    n: u64,
    mean: f64,
    /// Sum of squared deviations from the bucket mean.
    v: f64,
}

impl Bucket {
    fn singleton(t: u64, x: f64) -> Self {
        Self {
            oldest: t,
            newest: t,
            n: 1,
            mean: x,
            v: 0.0,
        }
    }

    fn combine(a: &Bucket, b: &Bucket) -> Bucket {
        let n = a.n + b.n;
        let mean = (a.n as f64 * a.mean + b.n as f64 * b.mean) / n as f64;
        let d = a.mean - b.mean;
        let v = a.v + b.v + (a.n as f64 * b.n as f64 / n as f64) * d * d;
        Bucket {
            oldest: a.oldest.min(b.oldest),
            newest: a.newest.max(b.newest),
            n,
            mean,
            v,
        }
    }
}

/// Running statistics combined across several buckets.
#[derive(Debug, Clone, Copy)]
struct Combined {
    n: f64,
    mean: f64,
    v: f64,
}

impl Combined {
    const EMPTY: Combined = Combined {
        n: 0.0,
        mean: 0.0,
        v: 0.0,
    };

    fn add(self, n: f64, mean: f64, v: f64) -> Combined {
        if n == 0.0 {
            return self;
        }
        if self.n == 0.0 {
            return Combined { n, mean, v };
        }
        let total = self.n + n;
        let m = (self.n * self.mean + n * mean) / total;
        let d = self.mean - mean;
        Combined {
            n: total,
            mean: m,
            v: self.v + v + (self.n * n / total) * d * d,
        }
    }
}

/// ε-approximate variance and standard deviation over the last `|W|`
/// stream values.
///
/// ```
/// use snod_sketch::WindowedVariance;
/// let mut wv = WindowedVariance::new(1_000, 0.2).unwrap();
/// for i in 0..20_000 {
///     wv.push((i % 100) as f64);
/// }
/// // true variance of 0..=99 repeated is (100²−1)/12 ≈ 833.25
/// let sigma = wv.std_dev();
/// assert!((sigma - 833.25f64.sqrt()).abs() / 833.25f64.sqrt() < 0.25);
/// ```
#[derive(Debug, Clone)]
pub struct WindowedVariance {
    buckets: VecDeque<Bucket>,
    window: u64,
    eps: f64,
    time: u64,
    max_buckets_seen: usize,
}

impl WindowedVariance {
    /// Creates an estimator over `window` elements with error parameter
    /// `eps ∈ (0, 1]` (the paper's experiments use ε up to 0.2).
    pub fn new(window: usize, eps: f64) -> Result<Self, SketchError> {
        if window == 0 {
            return Err(SketchError::ZeroSize("window capacity"));
        }
        if !(eps > 0.0 && eps <= 1.0) {
            return Err(SketchError::InvalidEpsilon);
        }
        Ok(Self {
            buckets: VecDeque::new(),
            window: window as u64,
            eps,
            time: 0,
            max_buckets_seen: 0,
        })
    }

    /// Feeds one value into the sketch.
    pub fn push(&mut self, x: f64) {
        snod_obs::counter!("sketch.variance.pushes").incr();
        self.time += 1;
        self.expire();
        self.buckets.push_back(Bucket::singleton(self.time, x));
        self.merge_pass();
        self.max_buckets_seen = self.max_buckets_seen.max(self.buckets.len());
        snod_obs::gauge!("sketch.variance.max_buckets").record_max(self.max_buckets_seen as u64);
    }

    fn expire(&mut self) {
        let horizon = self.time.saturating_sub(self.window);
        while let Some(front) = self.buckets.front() {
            if front.newest <= horizon {
                self.buckets.pop_front();
            } else {
                break;
            }
        }
    }

    /// Greedy oldest-first merge pass maintaining
    /// `9·V_merged ≤ ε²·V_newer-suffix` for every merge performed.
    fn merge_pass(&mut self) {
        loop {
            let m = self.buckets.len();
            if m < 3 {
                return;
            }
            // Suffix-combined V for every position, computed newest→oldest:
            // suffix[i] = combined stats of buckets[i..].
            let mut suffix = vec![Combined::EMPTY; m + 1];
            for i in (0..m).rev() {
                let b = &self.buckets[i];
                suffix[i] = suffix[i + 1].add(b.n as f64, b.mean, b.v);
            }
            let threshold = self.eps * self.eps / 9.0;
            let mut merged_any = false;
            // Never merge into the newest bucket: it must stay a singleton
            // candidate so the straddling-bucket analysis applies.
            for i in 0..m - 2 {
                let cand = Bucket::combine(&self.buckets[i], &self.buckets[i + 1]);
                if cand.v <= threshold * suffix[i + 2].v {
                    self.buckets[i] = cand;
                    self.buckets.remove(i + 1);
                    merged_any = true;
                    break;
                }
            }
            if !merged_any {
                return;
            }
        }
    }

    /// Estimated *population* variance of the current window. The oldest
    /// bucket may straddle the window boundary; its live share is estimated
    /// proportionally, which is exactly where the ε error enters.
    pub fn variance(&self) -> f64 {
        let horizon = self.time.saturating_sub(self.window);
        let mut acc = Combined::EMPTY;
        for b in &self.buckets {
            if b.oldest > horizon {
                acc = acc.add(b.n as f64, b.mean, b.v);
            } else {
                // Straddling bucket: `live` of its `n` elements remain.
                let live = b.newest.saturating_sub(horizon) as f64;
                if live > 0.0 {
                    let share = live / b.n as f64;
                    acc = acc.add(live, b.mean, b.v * share);
                }
            }
        }
        if acc.n <= 1.0 {
            0.0
        } else {
            acc.v / acc.n
        }
    }

    /// Estimated standard deviation σ of the window.
    pub fn std_dev(&self) -> f64 {
        self.variance().max(0.0).sqrt()
    }

    /// Estimated mean of the window values.
    pub fn mean(&self) -> f64 {
        let horizon = self.time.saturating_sub(self.window);
        let mut acc = Combined::EMPTY;
        for b in &self.buckets {
            let live = if b.oldest > horizon {
                b.n as f64
            } else {
                b.newest.saturating_sub(horizon) as f64
            };
            if live > 0.0 {
                acc = acc.add(live, b.mean, 0.0);
            }
        }
        acc.mean
    }

    /// Number of elements currently covered (exact up to the straddling
    /// bucket's proportional estimate).
    pub fn live_count(&self) -> u64 {
        self.time.min(self.window)
    }

    /// Values observed so far.
    pub fn stream_len(&self) -> u64 {
        self.time
    }

    /// Buckets currently stored.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// High-water mark of [`Self::bucket_count`] over the sketch lifetime.
    pub fn max_buckets_seen(&self) -> usize {
        self.max_buckets_seen
    }

    /// Actual memory in bytes: each bucket stores five numbers
    /// (`oldest`, `newest`, `n`, `μ`, `V`) of `value_bytes` bytes each
    /// (the paper's §10.3 assumes a 16-bit architecture, 2 bytes/number).
    pub fn memory_bytes(&self, value_bytes: usize) -> usize {
        self.bucket_count() * 5 * value_bytes
    }

    /// High-water memory in bytes under the same accounting.
    pub fn max_memory_bytes(&self, value_bytes: usize) -> usize {
        self.max_buckets_seen * 5 * value_bytes
    }

    /// Theoretical bucket bound `(9/ε²)·log₂(|W|)` against which §10.3
    /// compares actual usage.
    pub fn theoretical_bucket_bound(&self) -> usize {
        let w = self.window as f64;
        ((9.0 / (self.eps * self.eps)) * w.log2()).ceil() as usize
    }

    /// Theoretical memory bound in bytes (same per-bucket accounting as
    /// [`Self::memory_bytes`]).
    pub fn theoretical_memory_bound(&self, value_bytes: usize) -> usize {
        self.theoretical_bucket_bound() * 5 * value_bytes
    }
}


impl Persist for Bucket {
    fn save(&self, w: &mut ByteWriter) {
        w.put_u64(self.oldest);
        w.put_u64(self.newest);
        w.put_u64(self.n);
        w.put_f64(self.mean);
        w.put_f64(self.v);
    }

    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        Ok(Self {
            oldest: r.get_u64()?,
            newest: r.get_u64()?,
            n: r.get_u64()?,
            mean: r.get_f64()?,
            v: r.get_f64()?,
        })
    }
}

impl Persist for WindowedVariance {
    fn save(&self, w: &mut ByteWriter) {
        self.buckets.save(w);
        w.put_u64(self.window);
        w.put_f64(self.eps);
        w.put_u64(self.time);
        w.put_usize(self.max_buckets_seen);
    }

    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let wv = Self {
            buckets: Persist::load(r)?,
            window: r.get_u64()?,
            eps: r.get_f64()?,
            time: r.get_u64()?,
            max_buckets_seen: r.get_usize()?,
        };
        if wv.window == 0 {
            return Err(PersistError::Corrupt("variance window must be positive"));
        }
        if !(wv.eps > 0.0 && wv.eps <= 1.0) {
            return Err(PersistError::Corrupt("variance epsilon must lie in (0, 1]"));
        }
        Ok(wv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_window_variance(xs: &[f64], window: usize, upto: usize) -> f64 {
        let lo = upto.saturating_sub(window);
        let w = &xs[lo..upto];
        let n = w.len() as f64;
        let mean = w.iter().sum::<f64>() / n;
        w.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(WindowedVariance::new(0, 0.1).is_err());
        assert!(WindowedVariance::new(10, 0.0).is_err());
        assert!(WindowedVariance::new(10, 2.0).is_err());
    }

    #[test]
    fn exact_before_window_fills_with_small_input() {
        let mut wv = WindowedVariance::new(100, 0.1).unwrap();
        for &x in &[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            wv.push(x);
        }
        // Classic example: population variance 4, σ = 2.
        assert!((wv.variance() - 4.0).abs() < 0.6, "var {}", wv.variance());
    }

    #[test]
    fn tracks_uniform_ramp_within_tolerance() {
        let w = 500;
        let xs: Vec<f64> = (0..5_000).map(|i| (i % 250) as f64 / 250.0).collect();
        let mut wv = WindowedVariance::new(w, 0.2).unwrap();
        for (i, &x) in xs.iter().enumerate() {
            wv.push(x);
            if i > w {
                let truth = exact_window_variance(&xs, w, i + 1);
                let est = wv.variance();
                assert!(
                    (est - truth).abs() <= 0.25 * truth + 1e-9,
                    "at {i}: est {est} truth {truth}"
                );
            }
        }
    }

    #[test]
    fn adapts_after_distribution_shift() {
        // Constant 0.0 then constant-amplitude alternation; variance must
        // converge to the new regime once the window slides past the shift.
        let w = 200;
        let mut wv = WindowedVariance::new(w, 0.1).unwrap();
        for _ in 0..1_000 {
            wv.push(0.0);
        }
        for i in 0..1_000u32 {
            wv.push(if i % 2 == 0 { -1.0 } else { 1.0 });
        }
        // After the window is entirely past the shift, variance ≈ 1.
        assert!((wv.variance() - 1.0).abs() < 0.15, "var {}", wv.variance());
    }

    #[test]
    fn memory_stays_below_theoretical_bound() {
        let mut wv = WindowedVariance::new(10_000, 0.2).unwrap();
        let mut state = 1u64;
        for _ in 0..50_000 {
            // xorshift pseudo-random values in [0,1)
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            wv.push((state % 10_000) as f64 / 10_000.0);
        }
        assert!(
            wv.max_buckets_seen() <= wv.theoretical_bucket_bound(),
            "buckets {} exceed bound {}",
            wv.max_buckets_seen(),
            wv.theoretical_bucket_bound()
        );
    }

    #[test]
    fn zero_variance_stream() {
        let mut wv = WindowedVariance::new(64, 0.1).unwrap();
        for _ in 0..1_000 {
            wv.push(3.5);
        }
        assert!(wv.variance().abs() < 1e-12);
        assert!((wv.mean() - 3.5).abs() < 1e-9);
    }

    #[test]
    fn mean_tracks_window() {
        let mut wv = WindowedVariance::new(100, 0.1).unwrap();
        for _ in 0..500 {
            wv.push(1.0);
        }
        for _ in 0..500 {
            wv.push(5.0);
        }
        assert!((wv.mean() - 5.0).abs() < 0.3, "mean {}", wv.mean());
    }
}
