//! The simulation engine.
//!
//! [`Network`] owns one application object per node (the paper's
//! *"continuous query on every node"*) and drives them with two kinds of
//! events: periodic sensor readings at the leaves, and message deliveries
//! between nodes. Applications react through [`SensorApp`] callbacks and
//! talk to the network through [`Ctx`], which restricts them to the
//! hierarchy links (parent/children) — exactly the communication pattern
//! of the paper's algorithms.

use crate::energy::EnergyModel;
use crate::event::{Event, EventQueue};
use crate::message::{Envelope, Wire};
use crate::node::NodeId;
use crate::stats::NetStats;
use crate::topology::Hierarchy;

/// Timing and fault parameters of a simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Interval between consecutive readings of one sensor
    /// (the paper's Figure 11 assumes one reading per second).
    pub reading_period_ns: u64,
    /// One-hop link latency.
    pub link_latency_ns: u64,
    /// Stagger leaf reading phases across the period (avoids artificial
    /// synchronisation of all sensors on the same instant).
    pub stagger_readings: bool,
    /// Probability that any sent message is lost on the air (lossy
    /// radio). Dropped messages are still charged transmit energy and
    /// counted in [`crate::NetStats::dropped`].
    pub drop_probability: f64,
    /// Seed for the loss process (losses are deterministic per seed).
    pub loss_seed: u64,
    /// Worker threads running same-instant callbacks on *different*
    /// nodes concurrently. `1` (the default) forces the classic
    /// single-threaded engine; `0` means one worker per core. Results
    /// are bit-identical at every setting — see the crate docs for the
    /// determinism argument. Parallelism only pays off when many nodes
    /// act at the same instant (e.g. `stagger_readings = false`).
    pub worker_threads: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            reading_period_ns: 1_000_000_000, // 1 s
            link_latency_ns: 5_000_000,       // 5 ms
            stagger_readings: true,
            drop_probability: 0.0,
            loss_seed: 0x10_55,
            worker_threads: 1,
        }
    }
}

impl SimConfig {
    /// Returns a copy with the given message-loss probability.
    pub fn with_drop_probability(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability in [0, 1]");
        self.drop_probability = p;
        self
    }

    /// Returns a copy with the given worker-thread count (`0` = one per
    /// core, `1` = single-threaded).
    pub fn with_worker_threads(mut self, n: usize) -> Self {
        self.worker_threads = n;
        self
    }

    /// The resolved worker count (`0` mapped to the machine's
    /// parallelism).
    fn resolved_workers(&self) -> usize {
        match self.worker_threads {
            0 => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            n => n,
        }
    }
}

/// Supplies the per-sensor data streams. `seq` is the 0-based reading
/// index; returning `None` ends that sensor's stream early.
pub trait StreamSource {
    /// The `seq`-th reading of leaf `node`.
    fn next(&mut self, node: NodeId, seq: u64) -> Option<Vec<f64>>;
}

impl<F: FnMut(NodeId, u64) -> Option<Vec<f64>>> StreamSource for F {
    fn next(&mut self, node: NodeId, seq: u64) -> Option<Vec<f64>> {
        self(node, seq)
    }
}

/// Application callbacks, one instance per node.
pub trait SensorApp<P: Wire> {
    /// A new sensor reading arrived at this (leaf) node.
    fn on_reading(&mut self, ctx: &mut Ctx<'_, P>, value: &[f64]);
    /// A message from `from` was delivered to this node.
    fn on_message(&mut self, ctx: &mut Ctx<'_, P>, from: NodeId, payload: P);
}

/// The application's window onto the network during a callback.
pub struct Ctx<'a, P> {
    /// The node the callback runs on.
    pub node: NodeId,
    /// Current simulated time.
    pub time_ns: u64,
    topo: &'a Hierarchy,
    outbox: Vec<(NodeId, P)>,
}

impl<'a, P> Ctx<'a, P> {
    /// The hierarchy (read-only).
    pub fn topology(&self) -> &Hierarchy {
        self.topo
    }

    /// This node's leader, `None` at the root.
    pub fn parent(&self) -> Option<NodeId> {
        self.topo.parent(self.node)
    }

    /// This node's children.
    pub fn children(&self) -> &[NodeId] {
        self.topo.children(self.node)
    }

    /// This node's tier (1 = leaf).
    pub fn level(&self) -> u8 {
        self.topo.level_of(self.node)
    }

    /// Queues `payload` for delivery to `to`.
    pub fn send(&mut self, to: NodeId, payload: P) {
        self.outbox.push((to, payload));
    }

    /// Queues `payload` for the parent; returns `false` at the root.
    pub fn send_parent(&mut self, payload: P) -> bool {
        match self.parent() {
            Some(p) => {
                self.send(p, payload);
                true
            }
            None => false,
        }
    }

    /// Queues `payload` for every child (cloned per child).
    pub fn send_children(&mut self, payload: P)
    where
        P: Clone,
    {
        for &c in self.topo.children(self.node) {
            self.outbox.push((c, payload.clone()));
        }
    }
}

/// One callback a node must run during a parallel batch.
enum Task<P> {
    /// `on_reading` with this value.
    Read(Vec<f64>),
    /// `on_message` from this sender with this payload.
    Msg(NodeId, P),
}

/// Turns one callback's outbox into scheduled deliveries: per-send
/// statistics, transmit energy, the loss process, and queue insertion.
/// This is the single definition of send semantics, shared by the
/// sequential dispatcher and the parallel post-pass, so the two engines
/// cannot drift apart.
#[allow(clippy::too_many_arguments)]
fn flush_outbox<P: Wire>(
    outbox: Vec<(NodeId, P)>,
    node: NodeId,
    time: u64,
    topo: &Hierarchy,
    cfg: &SimConfig,
    energy: &EnergyModel,
    stats: &mut NetStats,
    loss_rng: &mut rand::rngs::StdRng,
    queue: &mut EventQueue<P>,
) {
    for (to, payload) in outbox {
        let env = Envelope {
            from: node,
            to,
            payload,
        };
        let bytes = env.wire_bytes();
        let dist = topo.location(node).distance(&topo.location(to));
        stats.record_send(node, topo.level_of(node), bytes);
        // Transmit energy is spent whether or not the frame survives.
        stats.tx_joules += energy.tx_joules(bytes, dist);
        if cfg.drop_probability > 0.0
            && rand::Rng::gen::<f64>(loss_rng) < cfg.drop_probability
        {
            stats.dropped += 1;
            continue;
        }
        queue.schedule(
            time + cfg.link_latency_ns,
            Event::Deliver {
                from: env.from,
                to: env.to,
                payload: env.payload,
            },
        );
    }
}

/// A running simulation: topology + per-node applications + event queue.
pub struct Network<P: Wire, A: SensorApp<P>> {
    topo: Hierarchy,
    apps: Vec<A>,
    cfg: SimConfig,
    energy: EnergyModel,
    queue: EventQueue<P>,
    stats: NetStats,
    clock_ns: u64,
    loss_rng: rand::rngs::StdRng,
    /// Scheduled node failures `(time_ns, node)`, unsorted.
    failures: Vec<(u64, NodeId)>,
    /// Per-node dead flags.
    dead: Vec<bool>,
}

impl<P: Wire, A: SensorApp<P>> Network<P, A> {
    /// Builds a network, constructing one application per node via
    /// `make_app`.
    pub fn new(
        topo: Hierarchy,
        cfg: SimConfig,
        mut make_app: impl FnMut(NodeId, &Hierarchy) -> A,
    ) -> Self {
        let apps: Vec<A> = (0..topo.node_count())
            .map(|i| make_app(NodeId(i as u32), &topo))
            .collect();
        let stats = NetStats::new(topo.node_count(), topo.level_count());
        let dead = vec![false; topo.node_count()];
        Self {
            topo,
            apps,
            cfg,
            energy: EnergyModel::default(),
            queue: EventQueue::new(),
            stats,
            clock_ns: 0,
            loss_rng: rand::SeedableRng::seed_from_u64(cfg.loss_seed),
            failures: Vec::new(),
            dead,
        }
    }

    /// Schedules `node` to fail (permanently stop reading, relaying and
    /// receiving) at simulated time `time_ns`. Must be called before
    /// [`Self::run`].
    pub fn schedule_failure(&mut self, node: NodeId, time_ns: u64) {
        self.failures.push((time_ns, node));
    }

    /// Whether `node` has failed.
    pub fn is_dead(&self, node: NodeId) -> bool {
        self.dead[node.index()]
    }

    /// Replaces the default energy model.
    pub fn with_energy_model(mut self, model: EnergyModel) -> Self {
        self.energy = model;
        self
    }

    /// Runs the simulation: every leaf takes `readings_per_leaf` readings
    /// from `source`, and all resulting message traffic is processed to
    /// quiescence.
    ///
    /// With `cfg.worker_threads > 1` (or `0` = one per core) same-instant
    /// callbacks on different nodes run concurrently; the execution is
    /// bit-identical to the single-threaded engine either way (see the
    /// crate-level determinism argument).
    pub fn run<S: StreamSource>(&mut self, source: &mut S, readings_per_leaf: u64)
    where
        P: Send,
        A: Send,
    {
        if readings_per_leaf == 0 {
            return;
        }
        self.seed_initial_readings();
        let workers = self.cfg.resolved_workers();
        if workers <= 1 {
            self.run_sequential(source, readings_per_leaf);
        } else {
            self.run_parallel(source, readings_per_leaf, workers);
        }
        self.stats.elapsed_ns = self.clock_ns;
    }

    /// Schedules every leaf's first reading (staggered or synchronous).
    fn seed_initial_readings(&mut self) {
        let leaves: Vec<NodeId> = self.topo.leaves().to_vec();
        let n = leaves.len().max(1) as u64;
        for (i, &leaf) in leaves.iter().enumerate() {
            let phase = if self.cfg.stagger_readings {
                (i as u64 * self.cfg.reading_period_ns) / n
            } else {
                0
            };
            self.queue
                .schedule(phase, Event::Reading { node: leaf, seq: 0 });
        }
    }

    /// Marks every failure due at `time` as dead.
    fn apply_failures(&mut self, time: u64) {
        if self.failures.is_empty() {
            return;
        }
        let due: Vec<NodeId> = self
            .failures
            .iter()
            .filter(|(t, _)| *t <= time)
            .map(|(_, n)| *n)
            .collect();
        if !due.is_empty() {
            self.failures.retain(|(t, _)| *t > time);
            for n in due {
                self.dead[n.index()] = true;
            }
        }
    }

    /// The classic one-event-at-a-time engine.
    fn run_sequential<S: StreamSource>(&mut self, source: &mut S, readings_per_leaf: u64) {
        while let Some((time, event)) = self.queue.pop() {
            self.clock_ns = self.clock_ns.max(time);
            self.apply_failures(time);
            match event {
                Event::Reading { node, seq } => {
                    if self.dead[node.index()] {
                        continue; // a failed sensor stops reading for good
                    }
                    if let Some(value) = source.next(node, seq) {
                        self.dispatch(time, node, |app, ctx| app.on_reading(ctx, &value));
                        if seq + 1 < readings_per_leaf {
                            self.queue.schedule(
                                time + self.cfg.reading_period_ns,
                                Event::Reading { node, seq: seq + 1 },
                            );
                        }
                    }
                }
                Event::Deliver { from, to, payload } => {
                    if self.dead[to.index()] {
                        continue; // delivered into the void
                    }
                    self.stats.rx_joules += self
                        .energy
                        .rx_joules(payload.size_bytes() + crate::message::HEADER_BYTES);
                    self.dispatch(time, to, |app, ctx| app.on_message(ctx, from, payload));
                }
            }
        }
    }

    /// The batched engine: pops every event sharing the earliest
    /// timestamp, runs the callbacks across `workers` threads (events on
    /// the *same* node stay in order on one worker), then replays every
    /// engine side effect — energy, statistics, the loss process, event
    /// scheduling — sequentially in batch order. Because those side
    /// effects are the only cross-node state, the execution is
    /// bit-identical to [`Self::run_sequential`]; see the crate docs.
    fn run_parallel<S: StreamSource>(&mut self, source: &mut S, readings_per_leaf: u64, workers: usize)
    where
        P: Send,
        A: Send,
    {
        use std::sync::{mpsc, Arc, Mutex};

        /// Where a dispatched callback came from, for the post-pass.
        enum Origin {
            Reading { node: NodeId, seq: u64 },
            Deliver { node: NodeId },
        }

        let apps: Vec<Mutex<A>> = std::mem::take(&mut self.apps)
            .into_iter()
            .map(Mutex::new)
            .collect();
        let topo = &self.topo;
        let energy = &self.energy;
        let cfg = self.cfg;
        let queue = &mut self.queue;
        let stats = &mut self.stats;
        let loss_rng = &mut self.loss_rng;
        let failures = &mut self.failures;
        let dead = &mut self.dead;
        let mut clock_ns = self.clock_ns;

        // Work unit: one node's same-instant callbacks, in batch order.
        // Result: per-callback outboxes tagged with their batch position.
        type TaskGroup<P> = Vec<(usize, Task<P>)>;
        type Outbox<P> = Vec<(NodeId, P)>;
        type Job<P> = (u32, u64, TaskGroup<P>);
        type JobResult<P> = Vec<(usize, Outbox<P>)>;
        let (work_tx, work_rx) = mpsc::channel::<Job<P>>();
        let work_rx = Arc::new(Mutex::new(work_rx));
        let (res_tx, res_rx) = mpsc::channel::<JobResult<P>>();

        std::thread::scope(|s| {
            for _ in 0..workers {
                let work_rx = Arc::clone(&work_rx);
                let res_tx = res_tx.clone();
                let apps = &apps;
                s.spawn(move || loop {
                    let job = work_rx.lock().expect("work queue intact").recv();
                    let Ok((node, time, tasks)) = job else { break };
                    let mut app = apps[node as usize].lock().expect("one worker per node");
                    let mut results = Vec::with_capacity(tasks.len());
                    for (pos, task) in tasks {
                        let mut ctx = Ctx {
                            node: NodeId(node),
                            time_ns: time,
                            topo,
                            outbox: Vec::new(),
                        };
                        match task {
                            Task::Read(value) => app.on_reading(&mut ctx, &value),
                            Task::Msg(from, payload) => app.on_message(&mut ctx, from, payload),
                        }
                        results.push((pos, ctx.outbox));
                    }
                    if res_tx.send(results).is_err() {
                        break;
                    }
                });
            }

            while let Some((time, first)) = queue.pop() {
                clock_ns = clock_ns.max(time);
                // Failures are due "by now" for every event in the batch
                // alike, so applying them once up front matches the
                // sequential per-event check exactly.
                if !failures.is_empty() {
                    let due: Vec<NodeId> = failures
                        .iter()
                        .filter(|(t, _)| *t <= time)
                        .map(|(_, n)| *n)
                        .collect();
                    if !due.is_empty() {
                        failures.retain(|(t, _)| *t > time);
                        for n in due {
                            dead[n.index()] = true;
                        }
                    }
                }
                // Drain the whole same-instant batch, preserving heap
                // (scheduling) order.
                let mut batch = vec![first];
                while queue.peek_time() == Some(time) {
                    batch.push(queue.pop().expect("peeked event present").1);
                }
                // Pre-pass (sequential, batch order): stream fetches and
                // receive-energy accounting, exactly as the sequential
                // engine interleaves them.
                let mut origins: Vec<Origin> = Vec::new();
                let mut groups: Vec<(u32, TaskGroup<P>)> = Vec::new();
                let mut group_of: std::collections::HashMap<u32, usize> =
                    std::collections::HashMap::new();
                for event in batch {
                    let (node, task, origin) = match event {
                        Event::Reading { node, seq } => {
                            if dead[node.index()] {
                                continue;
                            }
                            let Some(value) = source.next(node, seq) else {
                                continue;
                            };
                            (node, Task::Read(value), Origin::Reading { node, seq })
                        }
                        Event::Deliver { from, to, payload } => {
                            if dead[to.index()] {
                                continue;
                            }
                            stats.rx_joules += energy
                                .rx_joules(payload.size_bytes() + crate::message::HEADER_BYTES);
                            (to, Task::Msg(from, payload), Origin::Deliver { node: to })
                        }
                    };
                    let pos = origins.len();
                    origins.push(origin);
                    let gi = *group_of.entry(node.0).or_insert_with(|| {
                        groups.push((node.0, Vec::new()));
                        groups.len() - 1
                    });
                    groups[gi].1.push((pos, task));
                }
                // Parallel phase: ship each node's task group to the pool.
                let n_groups = groups.len();
                for (node, tasks) in groups.drain(..) {
                    work_tx.send((node, time, tasks)).expect("workers alive");
                }
                let mut outboxes: Vec<Option<Outbox<P>>> =
                    (0..origins.len()).map(|_| None).collect();
                for _ in 0..n_groups {
                    for (pos, outbox) in res_rx.recv().expect("worker alive") {
                        outboxes[pos] = Some(outbox);
                    }
                }
                // Post-pass (sequential, batch order): flush each
                // callback's outbox, then schedule its next reading —
                // the same per-event side-effect order as the
                // sequential engine, so loss-RNG draws, statistics and
                // queue sequence numbers line up exactly.
                for (pos, origin) in origins.iter().enumerate() {
                    let outbox = outboxes[pos].take().expect("callback completed");
                    let node = match origin {
                        Origin::Reading { node, .. } | Origin::Deliver { node } => *node,
                    };
                    flush_outbox(outbox, node, time, topo, &cfg, energy, stats, loss_rng, queue);
                    if let Origin::Reading { node, seq } = origin {
                        if seq + 1 < readings_per_leaf {
                            queue.schedule(
                                time + cfg.reading_period_ns,
                                Event::Reading {
                                    node: *node,
                                    seq: seq + 1,
                                },
                            );
                        }
                    }
                }
            }
            drop(work_tx); // workers exit on channel close
        });

        self.apps = apps
            .into_iter()
            .map(|m| m.into_inner().expect("workers finished cleanly"))
            .collect();
        self.clock_ns = clock_ns;
    }

    /// Runs one callback on `node` and flushes its outbox into the queue.
    fn dispatch(&mut self, time: u64, node: NodeId, f: impl FnOnce(&mut A, &mut Ctx<'_, P>)) {
        let mut ctx = Ctx {
            node,
            time_ns: time,
            topo: &self.topo,
            outbox: Vec::new(),
        };
        f(&mut self.apps[node.index()], &mut ctx);
        flush_outbox(
            ctx.outbox,
            node,
            time,
            &self.topo,
            &self.cfg,
            &self.energy,
            &mut self.stats,
            &mut self.loss_rng,
            &mut self.queue,
        );
    }

    /// Traffic and energy statistics of the run so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// The topology.
    pub fn topology(&self) -> &Hierarchy {
        &self.topo
    }

    /// The application instance at `node`.
    pub fn app(&self, node: NodeId) -> &A {
        &self.apps[node.index()]
    }

    /// Mutable access to the application at `node` (for post-run
    /// extraction of results).
    pub fn app_mut(&mut self, node: NodeId) -> &mut A {
        &mut self.apps[node.index()]
    }

    /// Iterates over `(node, app)` pairs.
    pub fn apps(&self) -> impl Iterator<Item = (NodeId, &A)> {
        self.apps
            .iter()
            .enumerate()
            .map(|(i, a)| (NodeId(i as u32), a))
    }

    /// Final simulated clock (ns).
    pub fn now_ns(&self) -> u64 {
        self.clock_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Leaves forward every reading to their parent; leaders count what
    /// they hear and forward a fraction upward (every other message).
    struct Relay {
        received: u64,
        forwarded: u64,
        readings: u64,
    }

    impl Relay {
        fn new() -> Self {
            Self {
                received: 0,
                forwarded: 0,
                readings: 0,
            }
        }
    }

    impl SensorApp<Vec<f64>> for Relay {
        fn on_reading(&mut self, ctx: &mut Ctx<'_, Vec<f64>>, value: &[f64]) {
            self.readings += 1;
            ctx.send_parent(value.to_vec());
        }

        fn on_message(&mut self, ctx: &mut Ctx<'_, Vec<f64>>, _from: NodeId, payload: Vec<f64>) {
            self.received += 1;
            if self.received % 2 == 0 {
                if ctx.send_parent(payload) {
                    self.forwarded += 1;
                }
            }
        }
    }

    fn run_relay(readings: u64) -> Network<Vec<f64>, Relay> {
        let topo = Hierarchy::balanced(8, &[4, 2]).unwrap();
        let mut net = Network::new(topo, SimConfig::default(), |_, _| Relay::new());
        let mut source = |node: NodeId, seq: u64| Some(vec![node.0 as f64 + seq as f64 * 0.001]);
        net.run(&mut source, readings);
        net
    }

    #[test]
    fn leaves_read_the_requested_number_of_values() {
        let net = run_relay(10);
        for &leaf in net.topology().leaves() {
            assert_eq!(net.app(leaf).readings, 10);
        }
    }

    #[test]
    fn every_leaf_message_reaches_its_parent() {
        let net = run_relay(5);
        // 8 leaves × 5 readings = 40 messages into level-2 leaders.
        let total_level2: u64 = net
            .topology()
            .level(2)
            .iter()
            .map(|&l| net.app(l).received)
            .sum();
        assert_eq!(total_level2, 40);
    }

    #[test]
    fn halving_relay_reaches_root_with_half_traffic() {
        let net = run_relay(8);
        // 64 leaf messages reach the two level-2 leaders, which forward
        // every second one: 32 arrive at the root.
        let root = net.topology().root();
        assert_eq!(net.app(root).received, 32);
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let net = run_relay(5);
        let s = net.stats();
        // 40 leaf sends + 20 level-2 forwards = 60 messages.
        assert_eq!(s.messages, 60);
        assert_eq!(s.messages_per_level[0], 40);
        assert_eq!(s.messages_per_level[1], 20);
        // Each message: 1 value (2 bytes) + 8 header = 10 bytes.
        assert_eq!(s.bytes, 600);
        assert!(s.tx_joules > 0.0 && s.rx_joules > 0.0);
        assert!(s.elapsed_ns > 0);
        assert!(s.messages_per_second() > 0.0);
    }

    #[test]
    fn deterministic_replay() {
        let a = run_relay(7);
        let b = run_relay(7);
        assert_eq!(a.stats().messages, b.stats().messages);
        assert_eq!(a.stats().bytes, b.stats().bytes);
        assert_eq!(a.now_ns(), b.now_ns());
    }

    #[test]
    fn stream_can_end_early() {
        let topo = Hierarchy::balanced(2, &[2]).unwrap();
        let mut net = Network::new(topo, SimConfig::default(), |_, _| Relay::new());
        // Streams dry up after 3 readings even though 100 were requested.
        let mut source = |_node: NodeId, seq: u64| if seq < 3 { Some(vec![0.5]) } else { None };
        net.run(&mut source, 100);
        for &leaf in net.topology().leaves() {
            assert_eq!(net.app(leaf).readings, 3);
        }
    }

    #[test]
    fn lossy_radio_drops_messages_but_charges_energy() {
        let topo = Hierarchy::balanced(4, &[4]).unwrap();
        let cfg = SimConfig::default().with_drop_probability(0.5);
        let mut net = Network::new(topo, cfg, |_, _| Relay::new());
        let mut source = |_: NodeId, _: u64| Some(vec![0.5]);
        net.run(&mut source, 200);
        let s = net.stats();
        // 800 leaf sends; roughly half are dropped.
        assert_eq!(s.messages, 800);
        assert!(
            s.dropped > 250 && s.dropped < 550,
            "dropped {} of 800",
            s.dropped
        );
        let root = net.topology().root();
        assert_eq!(net.app(root).received as u64 + s.dropped, 800);
        // Energy was charged for every transmit attempt.
        assert!(s.tx_joules > 0.0);
    }

    #[test]
    fn failed_leaf_stops_reading() {
        let topo = Hierarchy::balanced(2, &[2]).unwrap();
        let mut net = Network::new(topo, SimConfig::default(), |_, _| Relay::new());
        // Leaf 0 dies after ~50 seconds (readings are 1/s).
        net.schedule_failure(NodeId(0), 50_000_000_000);
        let mut source = |_: NodeId, _: u64| Some(vec![0.5]);
        net.run(&mut source, 200);
        assert!(net.is_dead(NodeId(0)));
        assert!(net.app(NodeId(0)).readings <= 51);
        assert_eq!(net.app(NodeId(1)).readings, 200);
    }

    #[test]
    fn failed_leader_silences_its_subtree_upward() {
        let topo = Hierarchy::balanced(4, &[2, 2]).unwrap();
        let mut net = Network::new(topo.clone(), SimConfig::default(), |_, _| Relay::new());
        // Kill one level-2 leader immediately: its two leaves keep
        // reading, but nothing from them reaches the root.
        let leader = topo.level(2)[0];
        net.schedule_failure(leader, 0);
        let mut source = |_: NodeId, _: u64| Some(vec![0.5]);
        net.run(&mut source, 100);
        let root = net.topology().root();
        // Only the surviving leader's messages arrive (it halves them).
        assert_eq!(net.app(root).received, 100);
        assert_eq!(net.app(leader).received, 0);
    }

    #[test]
    fn zero_readings_is_a_noop() {
        let topo = Hierarchy::balanced(2, &[2]).unwrap();
        let mut net = Network::new(topo, SimConfig::default(), |_, _| Relay::new());
        let mut source = |_: NodeId, _: u64| Some(vec![0.5]);
        net.run(&mut source, 0);
        assert_eq!(net.stats().messages, 0);
    }

    /// Runs the relay workload under `cfg` and returns the network.
    fn run_relay_cfg(cfg: SimConfig, readings: u64) -> Network<Vec<f64>, Relay> {
        let topo = Hierarchy::balanced(8, &[4, 2]).unwrap();
        let mut net = Network::new(topo, cfg, |_, _| Relay::new());
        // One level-2 leader dies mid-run to exercise the dead-node path.
        net.schedule_failure(NodeId(9), 60_000_000_000);
        let mut source = |node: NodeId, seq: u64| Some(vec![node.0 as f64 + seq as f64 * 0.001]);
        net.run(&mut source, readings);
        net
    }

    /// Byte-level comparison of two runs: stats and per-app counters.
    fn assert_identical(a: &Network<Vec<f64>, Relay>, b: &Network<Vec<f64>, Relay>) {
        assert_eq!(a.stats().messages, b.stats().messages);
        assert_eq!(a.stats().bytes, b.stats().bytes);
        assert_eq!(a.stats().dropped, b.stats().dropped);
        assert_eq!(a.stats().messages_per_level, b.stats().messages_per_level);
        // Energy is float accumulation: bit-identical order required.
        assert!(a.stats().tx_joules.to_bits() == b.stats().tx_joules.to_bits());
        assert!(a.stats().rx_joules.to_bits() == b.stats().rx_joules.to_bits());
        assert_eq!(a.now_ns(), b.now_ns());
        for (node, app) in a.apps() {
            let other = b.app(node);
            assert_eq!(
                (app.readings, app.received, app.forwarded),
                (other.readings, other.received, other.forwarded),
                "app state diverged at {node:?}"
            );
        }
    }

    #[test]
    fn parallel_engine_is_bit_identical_to_sequential() {
        // Synchronous readings (no stagger) maximise batch sizes, and a
        // lossy radio makes the loss-RNG draw order observable.
        let base = SimConfig {
            stagger_readings: false,
            ..SimConfig::default()
        }
        .with_drop_probability(0.2);
        let seq = run_relay_cfg(base.with_worker_threads(1), 120);
        for workers in [2, 4, 0] {
            let par = run_relay_cfg(base.with_worker_threads(workers), 120);
            assert_identical(&seq, &par);
        }
    }

    #[test]
    fn parallel_engine_matches_with_staggered_readings() {
        // Staggered phases make most batches singletons — the degenerate
        // case must be exact too.
        let base = SimConfig::default().with_drop_probability(0.1);
        let seq = run_relay_cfg(base.with_worker_threads(1), 60);
        let par = run_relay_cfg(base.with_worker_threads(3), 60);
        assert_identical(&seq, &par);
    }
}
