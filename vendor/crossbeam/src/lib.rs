//! Offline API-compatible subset of `crossbeam` 0.8.
//!
//! Only `crossbeam::thread::scope` is provided, implemented on top of
//! `std::thread::scope` (stable since Rust 1.63). The crossbeam API
//! differs from std's in two ways this shim papers over: the spawn
//! closure receives the scope as an argument (enabling nested spawns),
//! and `scope` returns a `Result`. See `vendor/README.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Scoped-thread utilities mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;

    /// Join outcome: `Err` holds the payload of a panicked thread.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope for spawning threads that may borrow from the caller.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread; joining yields the closure's return value.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope so it
        /// can spawn further threads (crossbeam's signature).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope handle; all spawned threads are joined
    /// before this returns. Unlike crossbeam, a panic in an *unjoined*
    /// thread propagates as a panic (std semantics) rather than an
    /// `Err`; joined threads report panics through their handle either
    /// way, which is the only path this workspace relies on.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns_values() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|scope| {
            let handles: Vec<_> = data
                .iter()
                .map(|&x| scope.spawn(move |_| x * 10))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn nested_spawn_through_scope_argument() {
        let v = crate::thread::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 7).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(v, 7);
    }

    #[test]
    fn joined_panic_surfaces_as_err() {
        let r = crate::thread::scope(|scope| {
            scope.spawn(|_| panic!("boom")).join()
        })
        .unwrap();
        assert!(r.is_err());
    }
}
