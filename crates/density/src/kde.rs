//! The d-dimensional product-kernel density estimator (paper Section 4).
//!
//! Given a sample `R` of the window and per-dimension bandwidths `Bᵢ`,
//! the estimated density is Equation 1:
//!
//! ```text
//! f(x) = 1/|R| · Σ_{t ∈ R} k(x₁ − t₁, …, x_d − t_d)
//! ```
//!
//! with the product Epanechnikov kernel of Equation 2. Because each
//! one-dimensional factor has a closed-form CDF, the probability of an
//! axis-aligned box — and hence the neighborhood count `N(p, r)` — is an
//! exact `O(d·|R|)` sum (Theorem 2), no numerical integration involved.

use snod_persist::{ByteReader, ByteWriter, Persist, PersistError};

use crate::kernel::{EpanechnikovKernel, Kernel1d};
use crate::model::{check_dims, DensityModel};
use crate::{scott_bandwidths, DensityError};

/// Kernel density estimator over `d`-dimensional points in `[0, 1]^d`.
///
/// ```
/// use snod_density::{Kde, DensityModel};
/// // 200 sample points clustered near 0.5
/// let pts: Vec<Vec<f64>> = (0..200).map(|i| vec![0.5 + 0.001 * (i % 20) as f64]).collect();
/// let kde = Kde::from_sample(&pts, &[0.05], 1_000.0).unwrap();
/// // the cluster is dense, the far tail is not
/// assert!(kde.neighborhood_count(&[0.5], 0.05).unwrap() > 500.0);
/// assert!(kde.neighborhood_count(&[0.95], 0.05).unwrap() < 10.0);
/// ```
#[derive(Debug, Clone)]
pub struct Kde<K: Kernel1d = EpanechnikovKernel> {
    dims: usize,
    /// Flattened row-major sample: `centers[i*dims + j]` is coordinate `j`
    /// of sample point `i`. Points are sorted by their first coordinate
    /// so finite-support queries can prune on dimension 0.
    centers: Vec<f64>,
    /// `centers[i*dims]` for binary-searching the dimension-0 range.
    first_coords: Vec<f64>,
    bandwidths: Vec<f64>,
    window_len: f64,
    kernel: K,
}

impl Kde<EpanechnikovKernel> {
    /// Builds an Epanechnikov estimator from a sample of points, applying
    /// the paper's bandwidth rule `Bᵢ = √5·σᵢ·|R|^(−1/(d+4))` to the given
    /// per-dimension standard deviations.
    pub fn from_sample(
        sample: &[Vec<f64>],
        sigmas: &[f64],
        window_len: f64,
    ) -> Result<Self, DensityError> {
        let dims = sigmas.len();
        if dims == 0 {
            return Err(DensityError::NonPositiveParameter("dimensionality"));
        }
        let mut centers = Vec::with_capacity(sample.len() * dims);
        for p in sample {
            check_dims(dims, p)?;
            centers.extend_from_slice(p);
        }
        let bandwidths = scott_bandwidths(sigmas, sample.len());
        Self::new(dims, centers, bandwidths, window_len, EpanechnikovKernel)
    }

    /// Like [`Kde::from_sample`] but consumes borrowed coordinate slices,
    /// so callers holding a `VecDeque<Vec<f64>>` window can build a model
    /// without first cloning it into a `Vec<Vec<f64>>`.
    pub fn from_sample_iter<'a, I>(
        rows: I,
        sigmas: &[f64],
        window_len: f64,
    ) -> Result<Self, DensityError>
    where
        I: IntoIterator<Item = &'a [f64]>,
    {
        let dims = sigmas.len();
        if dims == 0 {
            return Err(DensityError::NonPositiveParameter("dimensionality"));
        }
        let mut centers = Vec::new();
        let mut n = 0usize;
        for p in rows {
            check_dims(dims, p)?;
            centers.extend_from_slice(p);
            n += 1;
        }
        let bandwidths = scott_bandwidths(sigmas, n);
        Self::new(dims, centers, bandwidths, window_len, EpanechnikovKernel)
    }
}

impl<K: Kernel1d> Kde<K> {
    /// Builds an estimator from a flattened row-major sample with explicit
    /// bandwidths and kernel. Sample points are re-ordered (sorted by
    /// their first coordinate) to enable query pruning.
    pub fn new(
        dims: usize,
        centers: Vec<f64>,
        bandwidths: Vec<f64>,
        window_len: f64,
        kernel: K,
    ) -> Result<Self, DensityError> {
        if dims == 0 {
            return Err(DensityError::NonPositiveParameter("dimensionality"));
        }
        if centers.is_empty() {
            return Err(DensityError::EmptySample);
        }
        if !centers.len().is_multiple_of(dims) {
            return Err(DensityError::RaggedSample);
        }
        if bandwidths.len() != dims {
            return Err(DensityError::DimensionMismatch {
                expected: dims,
                got: bandwidths.len(),
            });
        }
        if bandwidths.iter().any(|&b| !(b > 0.0)) {
            return Err(DensityError::NonPositiveParameter("bandwidth"));
        }
        if !(window_len > 0.0) {
            return Err(DensityError::NonPositiveParameter("window length"));
        }
        // Sort points by first coordinate (sample order carries no
        // meaning); NaNs are rejected implicitly by partial_cmp ordering
        // of generator-produced data.
        let _build = snod_obs::span!("density.kde.build");
        let mut rows: Vec<&[f64]> = centers.chunks_exact(dims).collect();
        rows.sort_by(|a, b| a[0].partial_cmp(&b[0]).expect("non-NaN sample"));
        let sorted: Vec<f64> = rows.iter().flat_map(|r| r.iter().copied()).collect();
        let first_coords: Vec<f64> = sorted.iter().step_by(dims).copied().collect();
        Ok(Self {
            dims,
            centers: sorted,
            first_coords,
            bandwidths,
            window_len,
            kernel,
        })
    }

    /// Index range of points whose dimension-0 kernel support intersects
    /// `[lo0, hi0]` — the pruning window for finite-support kernels.
    fn dim0_range(&self, lo0: f64, hi0: f64) -> (usize, usize) {
        let reach = self.kernel.support();
        if reach.is_infinite() {
            return (0, self.first_coords.len());
        }
        let span = reach * self.bandwidths[0];
        let start = self.first_coords.partition_point(|&c| c < lo0 - span);
        let end = self.first_coords.partition_point(|&c| c <= hi0 + span);
        (start, end)
    }

    /// Number of kernels, i.e. the sample size `|R|`.
    pub fn sample_size(&self) -> usize {
        self.centers.len() / self.dims
    }

    /// Per-dimension bandwidths `Bᵢ`.
    pub fn bandwidths(&self) -> &[f64] {
        &self.bandwidths
    }

    /// The sample points backing this estimator, flattened row-major.
    pub fn centers(&self) -> &[f64] {
        &self.centers
    }

    /// Iterates over the sample points as coordinate slices.
    pub fn points(&self) -> impl Iterator<Item = &[f64]> {
        self.centers.chunks_exact(self.dims)
    }

    /// Merges a new sample point into the first-coordinate-sorted arrays in
    /// `O(log|R| + shift)`. Bandwidths are deliberately **not** recomputed —
    /// see the epoch-based rebuild policy in `snod-core`.
    pub fn insert_point(&mut self, p: &[f64]) -> Result<(), DensityError> {
        check_dims(self.dims, p)?;
        if p.iter().any(|c| c.is_nan()) {
            return Err(DensityError::NonFiniteValue("sample point"));
        }
        let i = self.first_coords.partition_point(|&c| c < p[0]);
        self.first_coords.insert(i, p[0]);
        let at = i * self.dims;
        self.centers.splice(at..at, p.iter().copied());
        Ok(())
    }

    /// Removes one sample point equal to `p`; returns whether one was
    /// found. Removing the last remaining point is refused (returns
    /// `Ok(false)`) so the estimator never becomes empty.
    pub fn remove_point(&mut self, p: &[f64]) -> Result<bool, DensityError> {
        check_dims(self.dims, p)?;
        let mut i = self.first_coords.partition_point(|&c| c < p[0]);
        while i < self.first_coords.len() && self.first_coords[i] == p[0] {
            if &self.centers[i * self.dims..(i + 1) * self.dims] == p {
                if self.first_coords.len() == 1 {
                    return Ok(false);
                }
                self.first_coords.remove(i);
                self.centers.drain(i * self.dims..(i + 1) * self.dims);
                return Ok(true);
            }
            i += 1;
        }
        Ok(false)
    }

    /// Replaces the per-dimension bandwidths (an epoch-boundary rebuild in
    /// place when the centres are already current).
    pub fn set_bandwidths(&mut self, bandwidths: &[f64]) -> Result<(), DensityError> {
        if bandwidths.len() != self.dims {
            return Err(DensityError::DimensionMismatch {
                expected: self.dims,
                got: bandwidths.len(),
            });
        }
        if bandwidths.iter().any(|&b| !(b > 0.0)) {
            return Err(DensityError::NonPositiveParameter("bandwidth"));
        }
        self.bandwidths.clear();
        self.bandwidths.extend_from_slice(bandwidths);
        Ok(())
    }

    /// Replaces the window length `|W|` that scales probabilities into
    /// counts.
    pub fn set_window_len(&mut self, window_len: f64) -> Result<(), DensityError> {
        if !(window_len > 0.0) {
            return Err(DensityError::NonPositiveParameter("window length"));
        }
        self.window_len = window_len;
        Ok(())
    }

    /// The probability mass of the L∞ ball of radius `r` around `q`,
    /// restricted to the (pre-pruned) point range `[s, e)`. Summation
    /// order matches [`DensityModel::box_prob`] exactly.
    fn ball_prob_in_range(&self, q: &[f64], r: f64, s: usize, e: usize) -> f64 {
        let mut sum = 0.0;
        'points: for t in self.centers[s * self.dims..e * self.dims].chunks_exact(self.dims) {
            let mut prod = 1.0;
            for j in 0..self.dims {
                let b = self.bandwidths[j];
                let m = self
                    .kernel
                    .mass((q[j] - r - t[j]) / b, (q[j] + r - t[j]) / b);
                if m == 0.0 {
                    continue 'points;
                }
                prod *= m;
            }
            sum += prod;
        }
        sum / self.sample_size() as f64
    }
}

impl<K: Kernel1d> DensityModel for Kde<K> {
    fn dims(&self) -> usize {
        self.dims
    }

    fn window_len(&self) -> f64 {
        self.window_len
    }

    fn pdf(&self, x: &[f64]) -> Result<f64, DensityError> {
        check_dims(self.dims, x)?;
        let norm: f64 = self.bandwidths.iter().product();
        let (s, e) = self.dim0_range(x[0], x[0]);
        let mut sum = 0.0;
        'points: for t in self.centers[s * self.dims..e * self.dims].chunks_exact(self.dims) {
            let mut prod = 1.0;
            for j in 0..self.dims {
                let u = (x[j] - t[j]) / self.bandwidths[j];
                let k = self.kernel.density(u);
                if k == 0.0 {
                    continue 'points;
                }
                prod *= k;
            }
            sum += prod;
        }
        Ok(sum / (self.sample_size() as f64 * norm))
    }

    fn box_prob(&self, lo: &[f64], hi: &[f64]) -> Result<f64, DensityError> {
        check_dims(self.dims, lo)?;
        check_dims(self.dims, hi)?;
        let (s, e) = self.dim0_range(lo[0], hi[0]);
        snod_obs::counter!("density.scalar.queries").incr();
        snod_obs::counter!("density.scalar.kernels").add((e - s) as u64);
        let mut sum = 0.0;
        'points: for t in self.centers[s * self.dims..e * self.dims].chunks_exact(self.dims) {
            let mut prod = 1.0;
            for j in 0..self.dims {
                let b = self.bandwidths[j];
                let m = self.kernel.mass((lo[j] - t[j]) / b, (hi[j] - t[j]) / b);
                if m == 0.0 {
                    continue 'points;
                }
                prod *= m;
            }
            sum += prod;
        }
        Ok(sum / self.sample_size() as f64)
    }

    /// Batched sweep: queries sorted by their dimension-0 lower edge share
    /// one monotonically advancing pruning frontier over the
    /// first-coordinate-sorted sample, replacing the per-query binary
    /// search and the two `Vec` allocations of the scalar
    /// [`DensityModel::range_prob`] path.
    fn neighborhood_counts(&self, points: &[f64], r: f64) -> Result<Vec<f64>, DensityError> {
        let d = self.dims;
        if !points.len().is_multiple_of(d) {
            return Err(DensityError::RaggedSample);
        }
        let n = points.len() / d;
        let mut out = vec![0.0; n];
        let _sweep = snod_obs::span!("density.kde.sweep");
        snod_obs::counter!("density.sweep.queries").add(n as u64);
        let reach = self.kernel.support();
        if reach.is_infinite() {
            // No pruning possible; every query touches every kernel.
            for (o, q) in out.iter_mut().zip(points.chunks_exact(d)) {
                *o = self.ball_prob_in_range(q, r, 0, self.sample_size()) * self.window_len;
            }
            return Ok(out);
        }
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_unstable_by(|&a, &b| {
            points[a as usize * d].total_cmp(&points[b as usize * d])
        });
        let span = reach * self.bandwidths[0];
        let len = self.first_coords.len();
        let kernels = snod_obs::counter!("density.sweep.kernels");
        let (mut s, mut e) = (0usize, 0usize);
        for &qi in &order {
            let q = &points[qi as usize * d..(qi as usize + 1) * d];
            let (lo0, hi0) = (q[0] - r, q[0] + r);
            while s < len && self.first_coords[s] < lo0 - span {
                s += 1;
            }
            while e < len && self.first_coords[e] <= hi0 + span {
                e += 1;
            }
            kernels.add((e - s) as u64);
            out[qi as usize] = self.ball_prob_in_range(q, r, s, e) * self.window_len;
        }
        Ok(out)
    }
}

impl<K: Kernel1d + Default> Persist for Kde<K> {
    fn save(&self, w: &mut ByteWriter) {
        self.dims.save(w);
        self.centers.save(w);
        self.bandwidths.save(w);
        self.window_len.save(w);
    }

    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let dims = usize::load(r)?;
        let centers = Vec::<f64>::load(r)?;
        let bandwidths = Vec::<f64>::load(r)?;
        let window_len = f64::load(r)?;
        // Rebuilding through the validating constructor re-derives the
        // sorted order and `first_coords` index; the sort is stable and the
        // saved centres are already sorted, so the layout round-trips
        // bit-identically.
        Self::new(dims, centers, bandwidths, window_len, K::default())
            .map_err(|_| PersistError::Corrupt("invalid kde parameters"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::GaussianKernel;

    fn uniform_sample(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![(i as f64 + 0.5) / n as f64]).collect()
    }

    #[test]
    fn construction_validates_input() {
        assert!(matches!(
            Kde::from_sample(&[], &[0.1], 100.0),
            Err(DensityError::EmptySample)
        ));
        assert!(Kde::from_sample(&[vec![0.5, 0.5]], &[0.1], 100.0).is_err());
        assert!(Kde::new(1, vec![0.5], vec![0.0], 100.0, EpanechnikovKernel).is_err());
        assert!(Kde::new(1, vec![0.5], vec![0.1], 0.0, EpanechnikovKernel).is_err());
        assert!(Kde::new(
            2,
            vec![0.5, 0.5, 0.5],
            vec![0.1, 0.1],
            100.0,
            EpanechnikovKernel
        )
        .is_err());
    }

    #[test]
    fn pdf_is_nonnegative_and_integrates_to_one() {
        let kde = Kde::from_sample(&uniform_sample(50), &[0.29], 1_000.0).unwrap();
        let steps = 4_000;
        let (lo, hi) = (-0.5, 1.5);
        let h = (hi - lo) / steps as f64;
        let mut integral = 0.0;
        for i in 0..=steps {
            let x = lo + i as f64 * h;
            let p = kde.pdf(&[x]).unwrap();
            assert!(p >= 0.0);
            let w = if i == 0 || i == steps { 0.5 } else { 1.0 };
            integral += w * p;
        }
        assert!(
            (integral * h - 1.0).abs() < 1e-3,
            "integral {}",
            integral * h
        );
    }

    #[test]
    fn box_prob_matches_numeric_integral_of_pdf() {
        let kde = Kde::from_sample(&uniform_sample(30), &[0.29], 1_000.0).unwrap();
        let (a, b) = (0.2, 0.6);
        let steps = 20_000;
        let h = (b - a) / steps as f64;
        let mut numeric = 0.0;
        for i in 0..=steps {
            let x = a + i as f64 * h;
            let w = if i == 0 || i == steps { 0.5 } else { 1.0 };
            numeric += w * kde.pdf(&[x]).unwrap();
        }
        numeric *= h;
        let exact = kde.box_prob(&[a], &[b]).unwrap();
        assert!(
            (numeric - exact).abs() < 1e-4,
            "numeric {numeric} exact {exact}"
        );
    }

    #[test]
    fn neighborhood_count_scales_with_window() {
        let pts = uniform_sample(100);
        let small = Kde::from_sample(&pts, &[0.29], 100.0).unwrap();
        let large = Kde::from_sample(&pts, &[0.29], 10_000.0).unwrap();
        let ns = small.neighborhood_count(&[0.5], 0.1).unwrap();
        let nl = large.neighborhood_count(&[0.5], 0.1).unwrap();
        assert!((nl / ns - 100.0).abs() < 1e-9);
    }

    #[test]
    fn two_dimensional_box_prob_is_product_for_factorised_sample() {
        // A single kernel at (0.5, 0.5): the box mass factorises exactly.
        let kde = Kde::new(2, vec![0.5, 0.5], vec![0.1, 0.2], 100.0, EpanechnikovKernel).unwrap();
        let p = kde.box_prob(&[0.45, 0.4], &[0.55, 0.6]).unwrap();
        let k = EpanechnikovKernel;
        let px = k.mass(-0.5, 0.5);
        let py = k.mass(-0.5, 0.5);
        assert!((p - px * py).abs() < 1e-12);
    }

    #[test]
    fn whole_domain_has_probability_one() {
        let kde = Kde::from_sample(&uniform_sample(64), &[0.2], 500.0).unwrap();
        let p = kde.box_prob(&[-10.0], &[10.0]).unwrap();
        assert!((p - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let kde = Kde::from_sample(&uniform_sample(10), &[0.2], 100.0).unwrap();
        assert!(matches!(
            kde.pdf(&[0.5, 0.5]),
            Err(DensityError::DimensionMismatch {
                expected: 1,
                got: 2
            })
        ));
    }

    #[test]
    fn gaussian_kernel_also_integrates() {
        let kde = Kde::new(1, vec![0.3, 0.5, 0.7], vec![0.1], 100.0, GaussianKernel).unwrap();
        let p = kde.box_prob(&[-5.0], &[5.0]).unwrap();
        assert!((p - 1.0).abs() < 1e-6);
    }

    #[test]
    fn dim0_pruning_preserves_exact_results() {
        // Shuffled 2-d sample: pruned queries must equal a naive
        // all-points evaluation.
        let pts: Vec<Vec<f64>> = (0..300)
            .map(|i| {
                vec![
                    ((i * 83) % 301) as f64 / 301.0,
                    ((i * 131) % 307) as f64 / 307.0,
                ]
            })
            .collect();
        let kde = Kde::from_sample(&pts, &[0.08, 0.12], 5_000.0).unwrap();
        let naive_box = |lo: &[f64], hi: &[f64]| -> f64 {
            let k = EpanechnikovKernel;
            let b = kde.bandwidths();
            let sum: f64 = pts
                .iter()
                .map(|t| {
                    (0..2)
                        .map(|j| k.mass((lo[j] - t[j]) / b[j], (hi[j] - t[j]) / b[j]))
                        .product::<f64>()
                })
                .sum();
            sum / pts.len() as f64
        };
        for (lo, hi) in [
            ([0.4, 0.4], [0.6, 0.6]),
            ([0.0, 0.0], [0.1, 1.0]),
            ([0.9, 0.2], [1.0, 0.3]),
        ] {
            let fast = kde.box_prob(&lo, &hi).unwrap();
            let slow = naive_box(&lo, &hi);
            assert!(
                (fast - slow).abs() < 1e-12,
                "{lo:?}..{hi:?}: {fast} vs {slow}"
            );
        }
    }

    #[test]
    fn batched_counts_match_scalar_exactly_in_2d() {
        let pts: Vec<Vec<f64>> = (0..300)
            .map(|i| {
                vec![
                    ((i * 83) % 301) as f64 / 301.0,
                    ((i * 131) % 307) as f64 / 307.0,
                ]
            })
            .collect();
        let kde = Kde::from_sample(&pts, &[0.08, 0.12], 5_000.0).unwrap();
        let queries: Vec<f64> = vec![
            0.9, 0.2, // unsorted on dim 0 on purpose
            0.1, 0.8, //
            0.1, 0.8, // duplicate
            0.5, 0.5, //
            -0.3, 0.4, // out of support
        ];
        for r in [0.02, 0.1, 0.4] {
            let batch = kde.neighborhood_counts(&queries, r).unwrap();
            for (i, q) in queries.chunks_exact(2).enumerate() {
                let scalar = kde.neighborhood_count(q, r).unwrap();
                assert_eq!(batch[i], scalar, "q={q:?} r={r}");
            }
        }
        assert!(matches!(
            kde.neighborhood_counts(&queries[..3], 0.1),
            Err(DensityError::RaggedSample)
        ));
    }

    #[test]
    fn batched_counts_match_scalar_for_gaussian_kernel() {
        let kde = Kde::new(
            2,
            vec![0.3, 0.4, 0.6, 0.7, 0.5, 0.5],
            vec![0.1, 0.1],
            500.0,
            GaussianKernel,
        )
        .unwrap();
        let queries = [0.7, 0.2, 0.4, 0.6];
        let batch = kde.neighborhood_counts(&queries, 0.15).unwrap();
        for (i, q) in queries.chunks_exact(2).enumerate() {
            assert_eq!(batch[i], kde.neighborhood_count(q, 0.15).unwrap());
        }
    }

    #[test]
    fn insert_and_remove_points_preserve_query_results() {
        let pts: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![((i * 37) % 61) as f64 / 61.0, ((i * 13) % 59) as f64 / 59.0])
            .collect();
        let mut inc = Kde::from_sample(&pts[..40], &[0.2, 0.2], 1_000.0).unwrap();
        for p in &pts[40..] {
            inc.insert_point(p).unwrap();
        }
        for p in &pts[..10] {
            assert!(inc.remove_point(p).unwrap());
        }
        assert!(!inc.remove_point(&[0.123, 0.456]).unwrap());
        let flat: Vec<f64> = pts[10..].iter().flatten().copied().collect();
        let scratch = Kde::new(
            2,
            flat,
            inc.bandwidths().to_vec(),
            1_000.0,
            EpanechnikovKernel,
        )
        .unwrap();
        assert_eq!(inc.sample_size(), scratch.sample_size());
        for (q, r) in [([0.5, 0.5], 0.1), ([0.2, 0.8], 0.3), ([0.9, 0.1], 0.05)] {
            assert_eq!(
                inc.neighborhood_count(&q, r).unwrap(),
                scratch.neighborhood_count(&q, r).unwrap()
            );
        }
        assert!(inc.insert_point(&[f64::NAN, 0.5]).is_err());
        assert!(inc.insert_point(&[0.5]).is_err());
    }

    #[test]
    fn from_sample_iter_matches_from_sample() {
        let pts: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![((i * 7) % 50) as f64 / 50.0, ((i * 11) % 50) as f64 / 50.0])
            .collect();
        let a = Kde::from_sample(&pts, &[0.15, 0.25], 800.0).unwrap();
        let b = Kde::from_sample_iter(pts.iter().map(Vec::as_slice), &[0.15, 0.25], 800.0).unwrap();
        assert_eq!(a.bandwidths(), b.bandwidths());
        assert_eq!(a.centers(), b.centers());
    }

    #[test]
    fn dense_region_counts_higher_than_sparse() {
        // 90 points near 0.3, 10 near 0.8.
        let mut pts: Vec<Vec<f64>> = (0..90).map(|i| vec![0.3 + 0.0005 * i as f64]).collect();
        pts.extend((0..10).map(|i| vec![0.8 + 0.0005 * i as f64]));
        let kde = Kde::from_sample(&pts, &[0.2], 1_000.0).unwrap();
        let dense = kde.neighborhood_count(&[0.32], 0.05).unwrap();
        let sparse = kde.neighborhood_count(&[0.8], 0.05).unwrap();
        assert!(dense > 5.0 * sparse, "dense {dense} sparse {sparse}");
    }
}
