//! Shared machinery for the precision/recall experiments
//! (Figures 7, 8, 9 and 10 of the paper).
//!
//! One *run* of an accuracy experiment:
//!
//! 1. builds the §10.2 hierarchy (32 leaves under 3 leader tiers by
//!    default),
//! 2. replays per-sensor streams through **D3** and **MGDD** (separate
//!    simulations over identical streams),
//! 3. maintains exact ground truth for every hierarchy level via
//!    [`crate::harness::RecordingSource`],
//! 4. additionally evaluates the offline **histogram** estimator of the
//!    paper's comparison (equi-depth over the exact union windows,
//!    periodically rebuilt — deliberately favoured, as in the paper),
//! 5. scores precision and recall per `(algorithm, estimator, level)`.
//!
//! Runs are farmed out to threads with `crossbeam`; results are pooled
//! micro-averages over runs, as in the paper's 12-run averages.

use std::collections::HashMap;

use snod_core::pipeline::{Algorithm, OutlierPipeline};
use snod_core::{D3Config, EstimatorConfig, MgddConfig, UpdateStrategy};
use snod_data::{DataStream, SensorStreams};
use snod_density::{DensityModel, EquiDepthHistogram, GridHistogram};
use snod_outlier::{DistanceOutlierConfig, MdefConfig, MdefDetector, PrecisionRecall};
use snod_simnet::{Hierarchy, SimConfig};

use crate::harness::{score_level, ReadingRecord, RecordingSource};

/// Which estimator produced a score.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EstimatorKind {
    /// The paper's kernel density models (online).
    Kernel,
    /// Equi-depth histograms over the exact windows (offline baseline).
    Histogram,
}

/// Which detection algorithm produced a score.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgorithmKind {
    /// Distance-based distributed detection.
    D3,
    /// MDEF-based multi-granular detection.
    Mgdd,
}

/// Key of one result series: algorithm × estimator × hierarchy level.
pub type SeriesKey = (AlgorithmKind, EstimatorKind, u8);

/// Configuration of one accuracy experiment.
pub struct AccuracyConfig {
    /// Leaf sensors (paper: 32).
    pub leaves: usize,
    /// Leader fan-outs above the leaves (paper reconstruction: 4/2/4).
    pub fanouts: Vec<usize>,
    /// Data dimensionality.
    pub dims: usize,
    /// Sliding window `|W|`.
    pub window: usize,
    /// Kernel sample size `|R|` (= histogram buckets `|B|`).
    pub sample_size: usize,
    /// Sample-propagation fraction `f`.
    pub sample_fraction: f64,
    /// Distance rule for D3 and its truth.
    pub dist_rule: DistanceOutlierConfig,
    /// MDEF rule for MGDD and its truth.
    pub mdef_rule: MdefConfig,
    /// Readings per leaf before scoring starts.
    pub warmup: u64,
    /// Scored readings per leaf.
    pub eval: u64,
    /// Rebuild period (in scored readings per leaf) of the offline
    /// histograms.
    pub hist_refresh: u64,
    /// Independent runs to average over (paper: 12).
    pub runs: u64,
    /// Base RNG seed; run `i` uses `seed + i`.
    pub seed: u64,
    /// Run the histogram baseline too (1-d only).
    pub with_histograms: bool,
    /// Run the D3 pass.
    pub with_d3: bool,
    /// Run the MGDD pass.
    pub with_mgdd: bool,
}

impl AccuracyConfig {
    /// The paper's §10.2 defaults for the 1-d synthetic experiment.
    pub fn paper_defaults_1d() -> Self {
        Self {
            leaves: 32,
            fanouts: vec![4, 2, 4],
            dims: 1,
            window: 10_000,
            sample_size: 500,
            sample_fraction: 0.5,
            dist_rule: DistanceOutlierConfig::new(45.0, 0.01),
            mdef_rule: MdefConfig::new(0.08, 0.01, 3.0).expect("paper parameters are valid"),
            warmup: 10_000,
            eval: 1_000,
            hist_refresh: 100,
            runs: 3,
            seed: 1,
            with_histograms: false,
            with_d3: true,
            with_mgdd: true,
        }
    }
}

/// Pooled results of an accuracy experiment.
#[derive(Debug, Default)]
pub struct AccuracyResults {
    /// Micro-averaged confusion counts per series.
    pub series: HashMap<SeriesKey, PrecisionRecall>,
    /// Total true distance outliers per level (diagnostics).
    pub true_dist: Vec<u64>,
    /// Total true MDEF outliers per level (diagnostics).
    pub true_mdef: Vec<u64>,
    /// Scored readings.
    pub scored: u64,
}

impl AccuracyResults {
    fn merge(&mut self, other: AccuracyResults) {
        for (k, v) in other.series {
            self.series.entry(k).or_default().merge(&v);
        }
        if self.true_dist.len() < other.true_dist.len() {
            self.true_dist.resize(other.true_dist.len(), 0);
            self.true_mdef.resize(other.true_mdef.len(), 0);
        }
        for (a, b) in self.true_dist.iter_mut().zip(other.true_dist.iter()) {
            *a += b;
        }
        for (a, b) in self.true_mdef.iter_mut().zip(other.true_mdef.iter()) {
            *a += b;
        }
        self.scored += other.scored;
    }
}

/// Runs the experiment, parallelising independent runs across threads.
/// `make_stream(run, sensor)` builds sensor `sensor`'s stream for run
/// `run` (must be deterministic in its arguments).
pub fn run_accuracy<F, S>(cfg: &AccuracyConfig, make_stream: F) -> AccuracyResults
where
    F: Fn(u64, usize) -> S + Sync,
    S: DataStream + Send + 'static,
{
    let mut total = AccuracyResults::default();
    let results: Vec<AccuracyResults> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.runs)
            .map(|run| {
                let make_stream = &make_stream;
                scope.spawn(move |_| single_run(cfg, run, make_stream))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("run panicked"))
            .collect()
    })
    .expect("scope");
    for r in results {
        total.merge(r);
    }
    total
}

fn estimator_config(cfg: &AccuracyConfig, seed: u64) -> EstimatorConfig {
    EstimatorConfig::builder()
        .window(cfg.window)
        .sample_size(cfg.sample_size)
        .dimensions(cfg.dims)
        .seed(seed)
        .build()
        .expect("accuracy config is valid")
}

fn single_run<F, S>(cfg: &AccuracyConfig, run: u64, make_stream: &F) -> AccuracyResults
where
    F: Fn(u64, usize) -> S,
    S: DataStream + Send + 'static,
{
    let topo = Hierarchy::balanced(cfg.leaves, &cfg.fanouts).expect("valid hierarchy");
    let sim = SimConfig::default();
    let levels = topo.level_count();
    let readings = cfg.warmup + cfg.eval;
    let mut results = AccuracyResults {
        true_dist: vec![0; levels],
        true_mdef: vec![0; levels],
        ..Default::default()
    };

    let mut diagnostic_records: Option<Vec<ReadingRecord>> = None;

    // ---- D3 over the kernel estimators --------------------------------
    if cfg.with_d3 {
        let d3_cfg = D3Config {
            estimator: estimator_config(cfg, cfg.seed + run * 1_000 + 7),
            rule: cfg.dist_rule,
            sample_fraction: cfg.sample_fraction,
        };
        let mut streams = SensorStreams::generate(cfg.leaves, |i| make_stream(run, i));
        let mut source = RecordingSource::new(
            &mut streams,
            &topo,
            cfg.window,
            cfg.dist_rule,
            cfg.mdef_rule,
            cfg.warmup,
        );
        let pipeline = OutlierPipeline::new(topo.clone(), sim, Algorithm::D3(d3_cfg));
        let report = pipeline.run(&mut source, readings).expect("d3 run");
        let records = std::mem::take(&mut source.records);
        for level in 1..=levels as u8 {
            let detections = report
                .detections_by_level
                .get(&level)
                .map(Vec::as_slice)
                .unwrap_or(&[]);
            let pr = score_level(&records, detections, level, |r| {
                r.dist_truth[(level - 1) as usize]
            });
            results
                .series
                .entry((AlgorithmKind::D3, EstimatorKind::Kernel, level))
                .or_default()
                .merge(&pr);
        }
        diagnostic_records = Some(records);
    }

    // ---- MGDD over the kernel estimators (fresh identical streams) ----
    if cfg.with_mgdd {
        let mgdd_cfg = MgddConfig {
            estimator: estimator_config(cfg, cfg.seed + run * 1_000 + 13),
            rule: cfg.mdef_rule,
            sample_fraction: cfg.sample_fraction,
            updates: UpdateStrategy::EveryAcceptance,
            staleness_bound_ns: None,
        };
        let broadcast_levels: Vec<u8> = (2..=levels as u8).collect();
        let mut streams2 = SensorStreams::generate(cfg.leaves, |i| make_stream(run, i));
        let mut source2 = RecordingSource::new(
            &mut streams2,
            &topo,
            cfg.window,
            cfg.dist_rule,
            cfg.mdef_rule,
            cfg.warmup,
        );
        let pipeline2 = OutlierPipeline::new(
            topo.clone(),
            sim,
            Algorithm::Mgdd(mgdd_cfg, broadcast_levels.clone()),
        );
        let report2 = pipeline2.run(&mut source2, readings).expect("mgdd run");
        let records2 = std::mem::take(&mut source2.records);
        for &level in &broadcast_levels {
            let detections = report2
                .detections_by_level
                .get(&level)
                .map(Vec::as_slice)
                .unwrap_or(&[]);
            let pr = score_level(&records2, detections, level, |r| {
                r.mdef_truth[(level - 1) as usize]
            });
            results
                .series
                .entry((AlgorithmKind::Mgdd, EstimatorKind::Kernel, level))
                .or_default()
                .merge(&pr);
        }
        if diagnostic_records.is_none() {
            diagnostic_records = Some(records2);
        }
    }

    // Truth diagnostics from whichever pass ran first.
    if let Some(records) = &diagnostic_records {
        for r in records {
            for level0 in 0..levels {
                results.true_dist[level0] += r.dist_truth[level0] as u64;
                results.true_mdef[level0] += r.mdef_truth[level0] as u64;
            }
        }
        results.scored = records.len() as u64;
    }

    // ---- Offline histogram baseline ------------------------------------
    if cfg.with_histograms {
        let hist = histogram_pass(cfg, run, make_stream, &topo);
        for (k, v) in hist {
            results.series.entry(k).or_default().merge(&v);
        }
    }
    results
}

/// The paper's histogram comparison: equi-depth histograms with
/// `|B| = |R|` buckets built *offline* over the exact union windows,
/// refreshed every `hist_refresh` readings per leaf, and used to answer
/// the same `N(p, r)` / MDEF queries.
fn histogram_pass<F, S>(
    cfg: &AccuracyConfig,
    run: u64,
    make_stream: &F,
    topo: &Hierarchy,
) -> HashMap<SeriesKey, PrecisionRecall>
where
    F: Fn(u64, usize) -> S,
    S: DataStream + Send + 'static,
{
    let levels = topo.level_count();
    // Exact per-leaf ring windows.
    let mut windows: Vec<std::collections::VecDeque<Vec<f64>>> =
        vec![std::collections::VecDeque::new(); cfg.leaves];
    let mut streams = SensorStreams::generate(cfg.leaves, |i| make_stream(run, i));

    // Ancestors per leaf, as node indices, one per level.
    let ancestors: Vec<Vec<usize>> = topo
        .leaves()
        .iter()
        .map(|&leaf| {
            let mut path = vec![leaf.index()];
            let mut n = leaf;
            while let Some(p) = topo.parent(n) {
                path.push(p.index());
                n = p;
            }
            path
        })
        .collect();
    // Members per node (leaf positions under it).
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); topo.node_count()];
    for (pos, path) in ancestors.iter().enumerate() {
        for &node in path {
            members[node].push(pos);
        }
    }

    enum HistModel {
        One(EquiDepthHistogram),
        Multi(GridHistogram),
    }
    impl HistModel {
        fn as_model(&self) -> &dyn DensityModel {
            match self {
                HistModel::One(h) => h,
                HistModel::Multi(h) => h,
            }
        }
    }
    let mut models: Vec<Option<HistModel>> = (0..topo.node_count()).map(|_| None).collect();
    let rebuild = |windows: &[std::collections::VecDeque<Vec<f64>>],
                   members: &[usize]|
     -> Option<HistModel> {
        if cfg.dims == 1 {
            let mut values: Vec<f64> = Vec::new();
            for &m in members {
                values.extend(windows[m].iter().map(|v| v[0]));
            }
            EquiDepthHistogram::from_window(&values, cfg.sample_size)
                .ok()
                .map(HistModel::One)
        } else {
            let mut pts: Vec<Vec<f64>> = Vec::new();
            for &m in members {
                pts.extend(windows[m].iter().cloned());
            }
            // bins per dim so that total cells ≈ |B| (comparable memory)
            let bins =
                ((cfg.sample_size as f64).powf(1.0 / cfg.dims as f64).round() as usize).max(2);
            GridHistogram::from_window(&pts, cfg.dims, bins)
                .ok()
                .map(HistModel::Multi)
        }
    };

    let detector = MdefDetector::new(cfg.mdef_rule);
    let mut truth =
        crate::harness::TruthTracker::new(topo, cfg.window, cfg.dist_rule, cfg.mdef_rule);
    let mut prs: HashMap<SeriesKey, PrecisionRecall> = HashMap::new();
    let total = cfg.warmup + cfg.eval;
    for seq in 0..total {
        if seq >= cfg.warmup && (seq - cfg.warmup).is_multiple_of(cfg.hist_refresh) {
            // Periodic offline rebuild of every node's histogram from the
            // exact union windows (once per instant, not per leaf).
            for node in 0..topo.node_count() {
                models[node] = rebuild(&windows, &members[node]);
            }
        }
        for leaf in 0..cfg.leaves {
            let v = streams.next_for(leaf);
            let (dist_t, mdef_t) = truth.ingest(leaf, &v);
            if windows[leaf].len() == cfg.window {
                windows[leaf].pop_front();
            }
            windows[leaf].push_back(v.clone());
            if seq < cfg.warmup {
                continue;
            }
            for (level0, &node) in ancestors[leaf].iter().enumerate() {
                let Some(model) = models[node].as_ref() else {
                    continue;
                };
                let level = (level0 + 1) as u8;
                // D3-Histogram: same (D, r) rule on the histogram model,
                // with the threshold density-scaled to the union window
                // (as everywhere else in the hierarchy).
                let n = model
                    .as_model()
                    .neighborhood_count(&v, cfg.dist_rule.radius)
                    .unwrap_or(f64::INFINITY);
                let t_eff =
                    cfg.dist_rule.min_neighbors * model.as_model().window_len() / cfg.window as f64;
                let d_pred = n < t_eff;
                prs.entry((AlgorithmKind::D3, EstimatorKind::Histogram, level))
                    .or_default()
                    .record(d_pred, dist_t[level0]);
                // MGDD-Histogram: MDEF test on the histogram model
                // (leaders only, matching MGDD's granularity levels).
                if level >= 2 {
                    let m_pred = detector
                        .evaluate(model.as_model(), &v)
                        .map(|e| e.is_outlier)
                        .unwrap_or(false);
                    prs.entry((AlgorithmKind::Mgdd, EstimatorKind::Histogram, level))
                        .or_default()
                        .record(m_pred, mdef_t[level0]);
                }
            }
        }
    }
    let _ = levels;
    prs
}

#[cfg(test)]
mod tests {
    use super::*;
    use snod_data::GaussianMixtureStream;

    /// A miniature end-to-end accuracy run: small windows, few readings —
    /// checks plumbing, not paper-scale numbers.
    #[test]
    fn miniature_accuracy_run_produces_all_series() {
        let cfg = AccuracyConfig {
            leaves: 4,
            fanouts: vec![2, 2],
            dims: 1,
            window: 300,
            sample_size: 40,
            sample_fraction: 0.5,
            dist_rule: DistanceOutlierConfig::new(5.0, 0.01),
            mdef_rule: MdefConfig::new(0.08, 0.01, 3.0).unwrap(),
            warmup: 300,
            eval: 150,
            hist_refresh: 50,
            runs: 2,
            seed: 9,
            with_histograms: true,
            with_d3: true,
            with_mgdd: true,
        };
        let results = run_accuracy(&cfg, |run, sensor| {
            GaussianMixtureStream::new(1, run * 100 + sensor as u64)
        });
        assert_eq!(results.scored, 2 * 4 * 150);
        // All series exist: D3 kernel levels 1–3, MGDD kernel levels 2–3,
        // histogram variants.
        for level in 1..=3u8 {
            assert!(results.series.contains_key(&(
                AlgorithmKind::D3,
                EstimatorKind::Kernel,
                level
            )));
            assert!(results.series.contains_key(&(
                AlgorithmKind::D3,
                EstimatorKind::Histogram,
                level
            )));
        }
        for level in 2..=3u8 {
            assert!(results.series.contains_key(&(
                AlgorithmKind::Mgdd,
                EstimatorKind::Kernel,
                level
            )));
            assert!(results.series.contains_key(&(
                AlgorithmKind::Mgdd,
                EstimatorKind::Histogram,
                level
            )));
        }
    }
}
