//! # snod-data — evaluation workloads and ground-truth distributions
//!
//! Generators for every dataset the paper's evaluation (Section 10) uses:
//!
//! * [`GaussianMixtureStream`] — the synthetic workload: *"Each dataset
//!   is a mixture of three Gaussian distributions with uniform noise; the
//!   mean is selected at random from (0.3, 0.35, 0.45), and the standard
//!   deviation is selected as 0.03 … we add 0.5% (of the dataset size)
//!   noise values, uniformly at random in the interval [0.5, 1]"*. One
//!   and two dimensional variants.
//! * [`DriftingGaussianStream`] — the Figure 6 workload: Gaussian
//!   readings whose mean shifts 0.3 → 0.5 every 4096 measurements, with
//!   the analytic [`TrueDistribution`] available for JS-distance
//!   comparison against the estimators.
//! * [`EngineStream`] — a calibrated stand-in for the paper's proprietary
//!   engine dataset (15 sensors, 5-minute readings, Jun–Dec 2002),
//!   matching the published Figure 5 statistics (mean 0.410, σ 0.053,
//!   skew −6.84) including a "major failure" burst mimicking the
//!   Oct 28 – Nov 1 event the paper describes.
//! * [`EnvironmentStream`] — a calibrated stand-in for the Pacific
//!   Northwest (pressure, dew-point) pairs with the Figure 5 marginals
//!   and realistic diurnal structure.
//!
//! Each sensor sees a *different* stream (per-sensor seeds), as in the
//! paper. Everything is deterministic given a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod drift;
mod engine;
mod environment;
mod stats;
mod streams;
mod synthetic;

pub use drift::{DriftingGaussianStream, TrueDistribution, DRIFT_PERIOD, REGIME_A, REGIME_B};
pub use engine::{EngineStream, ENGINE_FIG5};
pub use environment::EnvironmentStream;
pub use stats::{dataset_stats_table, per_dimension_stats};
pub use streams::{DataStream, SensorStreams};
pub use synthetic::{
    GaussianMixtureStream, MIXTURE_MEANS, MIXTURE_STD, NOISE_FRACTION, NOISE_RANGE,
};
