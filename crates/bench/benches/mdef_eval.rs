//! MDEF evaluation cost — the empirical check of **Theorem 4**: one
//! verdict costs `O(d·|R| / (2αr))` (one range query per `2αr`-cell of
//! the sampling box). Expect cost ∝ `1/αr` and ∝ `|R|`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use snod_density::Kde1d;
use snod_outlier::{MdefConfig, MdefDetector};

fn model(r: usize) -> Kde1d {
    let xs: Vec<f64> = (0..r)
        .map(|i| ((i * 2_654_435_761) % r) as f64 / r as f64)
        .collect();
    Kde1d::from_sample(&xs, 0.29, 10_000.0).unwrap()
}

fn bench_vs_counting_radius(c: &mut Criterion) {
    let kde = model(500);
    let mut group = c.benchmark_group("mdef_vs_counting_radius");
    for &ar in &[0.02f64, 0.01, 0.005, 0.0025] {
        let det = MdefDetector::new(MdefConfig::new(0.08, ar, 3.0).unwrap());
        group.bench_with_input(BenchmarkId::from_parameter(ar), &ar, |b, _| {
            b.iter(|| det.evaluate(&kde, black_box(&[0.5])).unwrap())
        });
    }
    group.finish();
}

fn bench_vs_sample_size(c: &mut Criterion) {
    let det = MdefDetector::new(MdefConfig::new(0.08, 0.01, 3.0).unwrap());
    let mut group = c.benchmark_group("mdef_vs_sample_size");
    for &r in &[125usize, 500, 2_000] {
        let kde = model(r);
        group.bench_with_input(BenchmarkId::from_parameter(r), &r, |b, _| {
            b.iter(|| det.evaluate(&kde, black_box(&[0.5])).unwrap())
        });
    }
    group.finish();
}

fn bench_aloci_tree(c: &mut Criterion) {
    use snod_outlier::{AlociTree, AlociTreeConfig};
    let mut tree = AlociTree::new(1, AlociTreeConfig::default()).unwrap();
    for i in 0..10_000u64 {
        tree.insert(&[((i * 48_271) % 10_007) as f64 / 10_007.0]);
    }
    c.bench_function("aloci_tree_insert_remove", |b| {
        let mut x = 0.123f64;
        b.iter(|| {
            x = (x * 997.0 + 0.123).fract();
            tree.insert(black_box(&[x]));
            tree.remove(black_box(&[x]));
        })
    });
    c.bench_function("aloci_tree_evaluate", |b| {
        b.iter(|| tree.evaluate(black_box(&[0.5]), false))
    });
}

fn bench_exact_window(c: &mut Criterion) {
    use snod_outlier::{DistanceOutlierConfig, ExactWindowDetector};
    let rule = DistanceOutlierConfig::new(45.0, 0.01);
    let mut det = ExactWindowDetector::new(rule.radius, 10_000);
    for i in 0..10_000u64 {
        det.push(vec![((i * 48_271) % 10_007) as f64 / 10_007.0]);
    }
    c.bench_function("exact_window_verdict", |b| {
        b.iter(|| det.is_outlier(black_box(&[0.5]), &rule))
    });
}


/// Short measurement windows: these benches check complexity *shape*
/// (linear vs flat), not absolute timings.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_vs_counting_radius,
    bench_vs_sample_size,
    bench_aloci_tree,
    bench_exact_window
}
criterion_main!(benches);
