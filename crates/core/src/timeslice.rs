//! Spatio-temporal range queries (paper Section 9, "Online Query
//! Processing").
//!
//! *"What is the average temperature in region (X, Y) during the time
//! interval [t₁, t₂]? … the sensors can estimate the density model for
//! the observations during the specified time interval and answer the
//! queries based on the estimated model."*
//!
//! A [`TimeSlicedEstimator`] keeps one small kernel model per *epoch*
//! (a fixed number of readings) for the most recent `K` epochs. A query
//! over a time interval composes the box-probability answers of the
//! epochs it covers — counts add, means combine count-weighted — so the
//! memory cost is `K` sketches rather than raw retention.

use std::collections::VecDeque;

use crate::apps::estimate_range_mean;
use crate::config::{CoreError, EstimatorConfig};
use crate::estimator::SensorEstimator;

/// One sealed epoch: its index and the estimator summarising it.
#[derive(Debug, Clone)]
struct Slice {
    epoch: u64,
    readings: u64,
    est: SensorEstimator,
}

/// Rolling per-epoch density models answering range queries with a
/// temporal extent.
#[derive(Debug, Clone)]
pub struct TimeSlicedEstimator {
    cfg: EstimatorConfig,
    epoch_len: u64,
    max_slices: usize,
    sealed: VecDeque<Slice>,
    current: SensorEstimator,
    current_epoch: u64,
    in_current: u64,
}

impl TimeSlicedEstimator {
    /// Creates a sliced estimator: each epoch covers `epoch_len`
    /// readings, summarised by an estimator built from `cfg` (its window
    /// should be ≥ `epoch_len` so an epoch is fully represented); the
    /// most recent `max_slices` epochs are retained.
    pub fn new(cfg: EstimatorConfig, epoch_len: u64, max_slices: usize) -> Result<Self, CoreError> {
        if epoch_len == 0 {
            return Err(CoreError::Config("epoch length must be positive"));
        }
        if max_slices == 0 {
            return Err(CoreError::Config("must retain at least one epoch"));
        }
        Ok(Self {
            cfg,
            epoch_len,
            max_slices,
            sealed: VecDeque::new(),
            current: SensorEstimator::new(cfg),
            current_epoch: 0,
            in_current: 0,
        })
    }

    /// Feeds one reading; epochs roll over automatically.
    pub fn observe(&mut self, value: &[f64]) -> Result<(), CoreError> {
        self.current.observe(value)?;
        self.in_current += 1;
        if self.in_current == self.epoch_len {
            let mut cfg = self.cfg;
            cfg.seed = cfg.seed.wrapping_add(self.current_epoch + 1);
            let finished = std::mem::replace(&mut self.current, SensorEstimator::new(cfg));
            self.sealed.push_back(Slice {
                epoch: self.current_epoch,
                readings: self.in_current,
                est: finished,
            });
            if self.sealed.len() > self.max_slices {
                self.sealed.pop_front();
            }
            self.current_epoch += 1;
            self.in_current = 0;
        }
        Ok(())
    }

    /// The epoch currently being filled.
    pub fn current_epoch(&self) -> u64 {
        self.current_epoch
    }

    /// Range of epochs answerable right now (inclusive), oldest first.
    pub fn retained_epochs(&self) -> Option<(u64, u64)> {
        let oldest = self.sealed.front().map(|s| s.epoch);
        let newest = if self.in_current > 0 {
            Some(self.current_epoch)
        } else {
            self.sealed.back().map(|s| s.epoch)
        };
        match (oldest, newest) {
            (Some(a), Some(b)) => Some((a, b)),
            (None, Some(b)) => Some((b, b)),
            _ => None,
        }
    }

    /// Iterates the slices overlapping `[from_epoch, to_epoch]`,
    /// including the in-progress epoch.
    fn covering(&self, from_epoch: u64, to_epoch: u64) -> Vec<(&SensorEstimator, u64)> {
        let mut out: Vec<(&SensorEstimator, u64)> = self
            .sealed
            .iter()
            .filter(|s| s.epoch >= from_epoch && s.epoch <= to_epoch)
            .map(|s| (&s.est, s.readings))
            .collect();
        if self.in_current > 0 && self.current_epoch >= from_epoch && self.current_epoch <= to_epoch
        {
            out.push((&self.current, self.in_current));
        }
        out
    }

    /// Estimated number of readings inside the box `[lo, hi]` during the
    /// epochs `[from_epoch, to_epoch]` (inclusive).
    pub fn range_count(
        &self,
        lo: &[f64],
        hi: &[f64],
        from_epoch: u64,
        to_epoch: u64,
    ) -> Result<f64, CoreError> {
        let mut total = 0.0;
        for (est, readings) in self.covering(from_epoch, to_epoch) {
            let model = est.model()?;
            let p =
                snod_density::DensityModel::box_prob(&model, lo, hi).map_err(CoreError::Density)?;
            total += p * readings as f64;
        }
        Ok(total)
    }

    /// Estimated mean of the readings inside the box during the epochs —
    /// the paper's "average temperature in region during [t₁, t₂]".
    /// `None` when the box holds (estimated) zero mass in the interval.
    pub fn range_mean(
        &self,
        lo: &[f64],
        hi: &[f64],
        from_epoch: u64,
        to_epoch: u64,
        grid_k: usize,
    ) -> Result<Option<Vec<f64>>, CoreError> {
        let dims = self.cfg.dimensions;
        let mut mass_total = 0.0;
        let mut weighted = vec![0.0; dims];
        for (est, readings) in self.covering(from_epoch, to_epoch) {
            let model = est.model()?;
            let p =
                snod_density::DensityModel::box_prob(&model, lo, hi).map_err(CoreError::Density)?;
            if p <= f64::EPSILON {
                continue;
            }
            if let Some(mean) = estimate_range_mean(&model, lo, hi, grid_k)? {
                let w = p * readings as f64;
                mass_total += w;
                for (acc, m) in weighted.iter_mut().zip(mean.iter()) {
                    *acc += w * m;
                }
            }
        }
        if mass_total <= f64::EPSILON {
            return Ok(None);
        }
        Ok(Some(weighted.into_iter().map(|w| w / mass_total).collect()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> EstimatorConfig {
        EstimatorConfig::builder()
            .window(500)
            .sample_size(100)
            .seed(4)
            .build()
            .unwrap()
    }

    /// Epoch e readings cluster at 0.2 + 0.1·e.
    fn fill(ts: &mut TimeSlicedEstimator, epochs: u64, per_epoch: u64) {
        for e in 0..epochs {
            let center = 0.2 + 0.1 * e as f64;
            for i in 0..per_epoch {
                ts.observe(&[center + 0.002 * ((i % 10) as f64)]).unwrap();
            }
        }
    }

    #[test]
    fn construction_validates() {
        assert!(TimeSlicedEstimator::new(cfg(), 0, 3).is_err());
        assert!(TimeSlicedEstimator::new(cfg(), 10, 0).is_err());
    }

    #[test]
    fn epochs_roll_over() {
        let mut ts = TimeSlicedEstimator::new(cfg(), 100, 4).unwrap();
        fill(&mut ts, 3, 100);
        assert_eq!(ts.current_epoch(), 3);
        assert_eq!(ts.retained_epochs(), Some((0, 2)));
    }

    #[test]
    fn old_epochs_are_evicted() {
        let mut ts = TimeSlicedEstimator::new(cfg(), 100, 2).unwrap();
        fill(&mut ts, 5, 100);
        assert_eq!(ts.retained_epochs(), Some((3, 4)));
    }

    #[test]
    fn counts_are_per_interval() {
        let mut ts = TimeSlicedEstimator::new(cfg(), 200, 8).unwrap();
        fill(&mut ts, 4, 200);
        // Epoch 1 clustered near 0.3: counting around 0.3 in epoch 1 only.
        let n1 = ts.range_count(&[0.28], &[0.34], 1, 1).unwrap();
        assert!((n1 - 200.0).abs() < 30.0, "epoch-1 count {n1}");
        // The same box over epoch 3 (cluster at 0.5) is nearly empty.
        let n3 = ts.range_count(&[0.28], &[0.34], 3, 3).unwrap();
        assert!(n3 < 30.0, "epoch-3 count {n3}");
        // Over all epochs, a wide box counts everything.
        let all = ts.range_count(&[0.0], &[1.0], 0, 3).unwrap();
        assert!((all - 800.0).abs() < 40.0, "total {all}");
    }

    #[test]
    fn mean_tracks_the_queried_interval() {
        let mut ts = TimeSlicedEstimator::new(cfg(), 200, 8).unwrap();
        fill(&mut ts, 4, 200);
        let m1 = ts.range_mean(&[0.0], &[1.0], 1, 1, 64).unwrap().unwrap();
        assert!((m1[0] - 0.31).abs() < 0.03, "epoch-1 mean {m1:?}");
        let m23 = ts.range_mean(&[0.0], &[1.0], 2, 3, 64).unwrap().unwrap();
        assert!((m23[0] - 0.46).abs() < 0.03, "epoch-2..3 mean {m23:?}");
    }

    #[test]
    fn empty_interval_returns_none() {
        let mut ts = TimeSlicedEstimator::new(cfg(), 100, 4).unwrap();
        fill(&mut ts, 2, 100);
        assert!(ts.range_mean(&[0.8], &[0.9], 0, 1, 16).unwrap().is_none());
        // Epochs that were never observed contribute nothing.
        assert_eq!(ts.range_count(&[0.0], &[1.0], 7, 9).unwrap(), 0.0);
    }

    #[test]
    fn in_progress_epoch_is_queryable() {
        let mut ts = TimeSlicedEstimator::new(cfg(), 100, 4).unwrap();
        fill(&mut ts, 1, 100); // epoch 0 sealed
        for _ in 0..50 {
            ts.observe(&[0.9]).unwrap();
        }
        let n = ts.range_count(&[0.85], &[0.95], 1, 1).unwrap();
        assert!((n - 50.0).abs() < 10.0, "in-progress count {n}");
    }
}
