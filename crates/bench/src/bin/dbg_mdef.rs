//! Diagnostics: sweep MDEF estimator variants over the paper's synthetic
//! workload to see which reconstruction yields the published outlier
//! rates (~40–80 per 10k window). Internal tool, not a figure.

use std::collections::{HashMap, VecDeque};

use snod_data::{DataStream, GaussianMixtureStream};

fn main() {
    let window = 10_000usize;
    let eval = 4_000usize;
    let (r, ar, k) = (0.08f64, 0.01f64, 3.0f64);
    let cell = 2.0 * ar;

    let mut stream = GaussianMixtureStream::new(1, 0);
    let mut ring: VecDeque<f64> = VecDeque::new();
    let mut cells: HashMap<i64, f64> = HashMap::new();
    let keyf = |x: f64| (x / cell).floor() as i64;

    // counts per variant: [w-pop, w-se, u-pop, u-se]
    let mut flags = [0u64; 4];
    let mut noise_flags = [0u64; 4];
    let mut n_eval = 0u64;
    let mut n_noise = 0u64;

    for i in 0..(window + eval) {
        let v = stream.next_reading()[0];
        if ring.len() == window {
            let old = ring.pop_front().unwrap();
            let e = cells.entry(keyf(old)).or_default();
            *e -= 1.0;
            if *e <= 0.0 {
                cells.remove(&keyf(old));
            }
        }
        ring.push_back(v);
        *cells.entry(keyf(v)).or_default() += 1.0;

        if i < window {
            continue;
        }
        n_eval += 1;
        let is_noise = v > 0.57;
        n_noise += is_noise as u64;

        let own_key = keyf(v);
        let own = (cells.get(&own_key).copied().unwrap_or(1.0) - 1.0).max(0.0);
        let lo = keyf(v - r);
        let hi = keyf(v + r);
        let mut cs: Vec<f64> = Vec::new();
        for kk in lo..=hi {
            if let Some(&c) = cells.get(&kk) {
                let c = if kk == own_key { (c - 1.0).max(0.0) } else { c };
                if c > 0.0 {
                    cs.push(c);
                }
            }
        }
        if cs.is_empty() {
            for f in &mut flags {
                *f += 1;
            }
            continue;
        }
        let m = cs.len() as f64;
        let sum: f64 = cs.iter().sum();
        let sum2: f64 = cs.iter().map(|c| c * c).sum();
        let sum3: f64 = cs.iter().map(|c| c * c * c).sum();
        // weighted
        let wavg = sum2 / sum;
        let wsig = (sum3 / sum - wavg * wavg).max(0.0).sqrt();
        // unweighted
        let uavg = sum / m;
        let usig = (sum2 / m - uavg * uavg).max(0.0).sqrt();
        let variants = [
            (wavg, wsig),
            (wavg, wsig / m.sqrt()),
            (uavg, usig),
            (uavg, usig / m.sqrt()),
        ];
        for (j, (avg, sig)) in variants.iter().enumerate() {
            let mdef = 1.0 - own / avg;
            if mdef > k * sig / avg {
                flags[j] += 1;
                if is_noise {
                    noise_flags[j] += 1;
                }
            }
        }
    }
    println!("eval={n_eval} noise(v>0.57)={n_noise}");
    let names = [
        "weighted-pop",
        "weighted-SE",
        "unweighted-pop",
        "unweighted-SE",
    ];
    for j in 0..4 {
        println!(
            "{:>15}: flagged {:5} (per-10k {:6.1})  noise hit {:3}/{}",
            names[j],
            flags[j],
            flags[j] as f64 / n_eval as f64 * 10_000.0,
            noise_flags[j],
            n_noise
        );
    }
}
