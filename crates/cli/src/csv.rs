//! Minimal CSV reading for the `snod` binary: one reading per line,
//! comma-separated coordinates, `#`-prefixed comment lines skipped.

use std::io::BufRead;

/// A line that failed to parse.
#[derive(Debug, Clone, PartialEq)]
pub struct CsvError {
    /// 1-based line number.
    pub line: u64,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CsvError {}

/// Parses one CSV line into coordinates.
pub fn parse_line(line: &str, lineno: u64) -> Result<Option<Vec<f64>>, CsvError> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Ok(None);
    }
    trimmed
        .split(',')
        .map(|f| {
            f.trim().parse::<f64>().map_err(|_| CsvError {
                line: lineno,
                message: format!("not a number: {f:?}"),
            })
        })
        .collect::<Result<Vec<f64>, _>>()
        .map(Some)
}

/// Streams readings from a buffered reader, calling `f` for each parsed
/// line. Dimensionality must stay constant after the first reading.
pub fn for_each_reading<R: BufRead>(
    reader: R,
    mut f: impl FnMut(u64, Vec<f64>) -> Result<(), CsvError>,
) -> Result<u64, CsvError> {
    let mut dims: Option<usize> = None;
    let mut count = 0u64;
    for (i, line) in reader.lines().enumerate() {
        let lineno = i as u64 + 1;
        let line = line.map_err(|e| CsvError {
            line: lineno,
            message: format!("read error: {e}"),
        })?;
        let Some(v) = parse_line(&line, lineno)? else {
            continue;
        };
        match dims {
            None => dims = Some(v.len()),
            Some(d) if d != v.len() => {
                return Err(CsvError {
                    line: lineno,
                    message: format!("expected {d} columns, found {}", v.len()),
                })
            }
            _ => {}
        }
        f(count, v)?;
        count += 1;
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_values_and_skips_comments() {
        assert_eq!(parse_line("0.5, 0.25", 1).unwrap(), Some(vec![0.5, 0.25]));
        assert_eq!(parse_line("# header", 1).unwrap(), None);
        assert_eq!(parse_line("   ", 1).unwrap(), None);
        assert!(parse_line("0.5,oops", 3).is_err());
    }

    #[test]
    fn streams_and_checks_dimensionality() {
        let data = "0.1,0.2\n# comment\n0.3,0.4\n";
        let mut seen = Vec::new();
        let n = for_each_reading(data.as_bytes(), |i, v| {
            seen.push((i, v));
            Ok(())
        })
        .unwrap();
        assert_eq!(n, 2);
        assert_eq!(seen[1].1, vec![0.3, 0.4]);

        let ragged = "0.1,0.2\n0.3\n";
        let err = for_each_reading(ragged.as_bytes(), |_, _| Ok(())).unwrap_err();
        assert_eq!(err.line, 2);
    }
}
