//! MMDEW equivalence (proptest): the incrementally maintained
//! exponential-window MMD statistic must agree with the naive O(n²)
//! MMD recomputed from scratch on the same retained samples.
//!
//! The incremental path accumulates within-bucket kernel sums across
//! merges (`self_sum_ab = self_sum_a + self_sum_b + 2·cross(a, b)`)
//! and only recomputes on a capacity subsample; the naive reference
//! evaluates every kernel pair with fresh double loops. Both are sums
//! of the same `T²` bounded terms in different association orders, so
//! the documented tolerance is **1e-9 relative** (f64 resummation
//! error is ≤ T·ε per sum, with T ≤ a few hundred here — comfortably
//! inside 1e-9 of slack).

use proptest::prelude::*;

use snod_robust::{Mmdew, MmdewConfig, RetainedBucket, SplitStat};

/// Documented agreement bound between the maintained and recomputed
/// statistics.
const RELATIVE_TOLERANCE: f64 = 1e-9;

fn rbf(x: &[f64], y: &[f64], gamma: f64) -> f64 {
    let d2: f64 = x
        .iter()
        .zip(y)
        .map(|(a, b)| {
            let d = a - b;
            d * d
        })
        .sum();
    (-gamma * d2).exp()
}

/// Naive biased-MMD evaluation of every admissible bucket split,
/// entirely from the retained samples (no maintained sums), mirroring
/// `Mmdew::evaluate`'s split-selection rule.
fn naive_best_split(
    buckets: &[RetainedBucket],
    gamma: f64,
    threshold_scale: f64,
    min_per_side: usize,
) -> Option<SplitStat> {
    let b = buckets.len();
    let mut best: Option<SplitStat> = None;
    for split in 0..b.saturating_sub(1) {
        let older: Vec<&Vec<f64>> = buckets[..=split].iter().flat_map(|bk| &bk.samples).collect();
        let newer: Vec<&Vec<f64>> = buckets[(split + 1)..]
            .iter()
            .flat_map(|bk| &bk.samples)
            .collect();
        if older.len() < min_per_side || newer.len() < min_per_side {
            continue;
        }
        let n = older.len() as f64;
        let m = newer.len() as f64;
        let mut xx = 0.0;
        for a in &older {
            for b in &older {
                xx += rbf(a, b, gamma);
            }
        }
        let mut yy = 0.0;
        for a in &newer {
            for b in &newer {
                yy += rbf(a, b, gamma);
            }
        }
        let mut xy = 0.0;
        for a in &older {
            for b in &newer {
                xy += rbf(a, b, gamma);
            }
        }
        let mmd2 = xx / (n * n) + yy / (m * m) - 2.0 * xy / (n * m);
        let cand = SplitStat {
            mmd: mmd2.max(0.0).sqrt(),
            threshold: threshold_scale * (1.0 / n + 1.0 / m).sqrt(),
            older: older.len(),
            newer: newer.len(),
        };
        let better = match &best {
            None => true,
            Some(cur) => cand.mmd - cand.threshold > cur.mmd - cur.threshold,
        };
        if better {
            best = Some(cand);
        }
    }
    best
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= RELATIVE_TOLERANCE * a.abs().max(b.abs()).max(1.0)
}

fn stream() -> impl Strategy<Value = Vec<f64>> {
    // Mixed regimes: a drifting base plus occasional level shifts, so
    // merges, subsampling and pruning all get exercised.
    prop::collection::vec(0.0f64..1.0, 24..220)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline property: after every insert, the maintained
    /// statistic of the best split agrees with the naive recompute on
    /// the retained samples within the documented tolerance.
    #[test]
    fn merged_statistic_matches_naive_recompute(
        values in stream(),
        gamma in 0.5f64..24.0,
        cap in 4usize..24,
        shift in 0u32..2,
    ) {
        let shift = shift == 1;
        let cfg = MmdewConfig {
            dimensions: 1,
            gamma,
            bucket_cap: cap,
            // Generous threshold: keep pruning rare so large bucket
            // cascades accumulate (pruning resets are covered below).
            threshold_scale: 2.5,
            min_per_side: 2,
            test_every: 1,
            seed: 11,
        };
        let mut det = Mmdew::new(cfg).unwrap();
        for (i, &v) in values.iter().enumerate() {
            let x = if shift && i > values.len() / 2 { v + 3.0 } else { v };
            det.insert(&[x]).unwrap();
            let incremental = det.evaluate();
            let naive = naive_best_split(
                det.buckets(),
                cfg.gamma,
                cfg.threshold_scale,
                cfg.min_per_side,
            );
            match (incremental, naive) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    if a.older == b.older {
                        prop_assert_eq!(a.newer, b.newer);
                        prop_assert!(
                            close(a.mmd, b.mmd),
                            "mmd diverged at insert {i}: maintained {} vs naive {}", a.mmd, b.mmd
                        );
                        prop_assert!(close(a.threshold, b.threshold));
                    } else {
                        // Resummation order may flip the argmax between
                        // two splits whose margins tie to within the
                        // tolerance — but only then.
                        prop_assert!(
                            close(a.mmd - a.threshold, b.mmd - b.threshold),
                            "split choice diverged at insert {i} with distinct margins: \
                             {a:?} vs {b:?}"
                        );
                    }
                }
                (a, b) => {
                    prop_assert!(false, "presence diverged at insert {i}: {a:?} vs {b:?}");
                }
            }
        }
    }

    /// Structural invariants under arbitrary streams: bucket count stays
    /// logarithmic, levels strictly decrease toward the fresh end, true
    /// counts are conserved, and no bucket exceeds its cap.
    #[test]
    fn exponential_bucket_invariants(values in stream(), cap in 4usize..16) {
        let cfg = MmdewConfig {
            dimensions: 1,
            gamma: 4.0,
            bucket_cap: cap,
            threshold_scale: 1.0,
            min_per_side: 4,
            test_every: 4,
            seed: 3,
        };
        let mut det = Mmdew::new(cfg).unwrap();
        let mut dropped_total = 0u64;
        for v in &values {
            if let Some(ev) = det.insert(&[*v]).unwrap() {
                dropped_total += ev.dropped_count;
                prop_assert!(ev.split.mmd > ev.split.threshold);
            }
            let levels: Vec<u32> = det.buckets().iter().map(|b| b.level).collect();
            prop_assert!(levels.windows(2).all(|w| w[0] > w[1]), "levels {:?}", levels);
            prop_assert!(det.buckets().iter().all(|b| b.samples.len() <= cap));
            let held: u64 = det.buckets().iter().map(|b| b.count).sum();
            prop_assert_eq!(held + dropped_total, det.inserts());
        }
    }

    /// Checkpoint round-trip mid-stream: the restored detector replays
    /// the identical future (subsampling RNG position included).
    #[test]
    fn snapshot_resumes_identically(
        prefix in stream(),
        suffix in prop::collection::vec(0.0f64..4.0, 8..120),
    ) {
        use snod_persist::Persist;
        let cfg = MmdewConfig {
            dimensions: 1,
            gamma: 6.0,
            bucket_cap: 8,
            threshold_scale: 0.8,
            min_per_side: 4,
            test_every: 2,
            seed: 5,
        };
        let mut live = Mmdew::new(cfg).unwrap();
        for v in &prefix {
            live.insert(&[*v]).unwrap();
        }
        let mut restored = Mmdew::from_bytes(&live.to_bytes()).unwrap();
        prop_assert_eq!(&restored, &live);
        for v in &suffix {
            prop_assert_eq!(live.insert(&[*v]).unwrap(), restored.insert(&[*v]).unwrap());
        }
        prop_assert_eq!(restored, live);
    }
}
