//! End-to-end throughput of the distributed pipelines: simulated
//! sensor-readings processed per second of host time, for D3, MGDD and
//! the centralized baseline on a small hierarchy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use snod_core::pipeline::{Algorithm, OutlierPipeline};
use snod_core::{D3Config, EstimatorConfig, MgddConfig, RebuildPolicy, UpdateStrategy};
use snod_outlier::{DistanceOutlierConfig, MdefConfig};
use snod_simnet::{NodeId, SimConfig};

fn source(node: NodeId, seq: u64) -> Option<Vec<f64>> {
    let h = node.0 as u64 * 1_000_003 + seq * 7_919;
    Some(vec![0.3 + 0.2 * ((h % 1_000) as f64 / 1_000.0)])
}

fn bench_pipelines(c: &mut Criterion) {
    let est = EstimatorConfig::builder()
        .window(1_000)
        .sample_size(100)
        .seed(5)
        .build()
        .unwrap();
    let readings = 2_000u64;
    let leaves = 16usize;

    // MGDD with the pre-epoch maintenance policy: every replica push
    // pays a full model rebuild. The default `est` uses the epoch
    // policy, so "mgdd" vs "mgdd_rebuild_always" measures the
    // incremental-maintenance speedup end to end.
    let mut est_rebuild_always = est;
    est_rebuild_always.rebuild = RebuildPolicy::always();

    let mgdd_cfg = |estimator: EstimatorConfig| MgddConfig {
        estimator,
        rule: MdefConfig::new(0.08, 0.01, 3.0).unwrap(),
        sample_fraction: 0.5,
        updates: UpdateStrategy::EveryAcceptance,
        staleness_bound_ns: None,
    };

    // "mgdd_parallel" runs the same workload with synchronous reading
    // phases and one worker per core — the per-level parallel engine.
    let parallel_sim = SimConfig {
        stagger_readings: false,
        ..SimConfig::default()
    }
    .with_worker_threads(0);

    let algorithms: Vec<(&str, Algorithm, SimConfig)> = vec![
        (
            "d3",
            Algorithm::D3(D3Config {
                estimator: est,
                rule: DistanceOutlierConfig::new(10.0, 0.01),
                sample_fraction: 0.5,
            }),
            SimConfig::default(),
        ),
        (
            "mgdd",
            Algorithm::Mgdd(mgdd_cfg(est), vec![]),
            SimConfig::default(),
        ),
        (
            "mgdd_rebuild_always",
            Algorithm::Mgdd(mgdd_cfg(est_rebuild_always), vec![]),
            SimConfig::default(),
        ),
        (
            "mgdd_parallel",
            Algorithm::Mgdd(mgdd_cfg(est), vec![]),
            parallel_sim,
        ),
        (
            "centralized",
            Algorithm::Centralized(DistanceOutlierConfig::new(10.0, 0.01), 1_000),
            SimConfig::default(),
        ),
    ];

    let mut group = c.benchmark_group("pipeline_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(readings * leaves as u64));
    for (name, alg, sim) in algorithms {
        group.bench_with_input(BenchmarkId::from_parameter(name), &alg, |b, alg| {
            b.iter(|| {
                let p = OutlierPipeline::balanced(leaves, &[4, 2], sim, alg.clone()).unwrap();
                let mut src = source;
                p.run(&mut src, readings).unwrap()
            })
        });
    }
    group.finish();
}


/// Short measurement windows: these benches check complexity *shape*
/// (linear vs flat), not absolute timings.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_pipelines
}
criterion_main!(benches);
