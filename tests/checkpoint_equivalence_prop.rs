//! Property: for every detector backend and *both* drivers, ingesting
//! to a cut point, checkpointing, restoring into a fresh instance and
//! ingesting the rest is indistinguishable from never stopping.
//!
//! "Indistinguishable" is checked at the strongest level available: the
//! final checkpoint bytes, which serialize every application model,
//! every RNG stream position, the pending/dedup protocol tables and the
//! full `NetStats` block. If any state escaped persistence, the resumed
//! run's final snapshot would differ.
//!
//! The cut instant, the workload salt and the fault schedule are all
//! drawn by proptest — the invariant must hold for *any* of them, not
//! just curated cut points. Backends: D3, MGDD and the model monitor
//! (the centralized baseline keeps no persistent distributed state and
//! has no checkpoint surface). Drivers: the deterministic simulator and
//! the live runtime; one extra case restores a *simulator* snapshot
//! into a *live* runtime mid-run, which only works because the two
//! produce byte-interchangeable checkpoints.

use proptest::prelude::*;

use sensor_outliers::core::{
    build_d3_live, build_d3_network, build_mgdd_live, build_mgdd_network, D3Config, EstimatorConfig,
    MgddConfig, MonitorConfig, MonitorNode, UpdateStrategy,
};
use sensor_outliers::outlier::{DistanceOutlierConfig, MdefConfig};
use sensor_outliers::simnet::{
    FaultPlan, Hierarchy, LiveRuntime, Network, NodeId, SimConfig, VirtualClock,
};

const READINGS: u64 = 360;
const HORIZON_NS: u64 = READINGS * 1_000_000_000;
const NODES: u32 = 7; // 4 leaves under [2, 2]

fn topo() -> Hierarchy {
    Hierarchy::balanced(4, &[2, 2]).unwrap()
}

/// Pure in `(salt, node, seq)`, hence trivially resumable: the fresh
/// process re-derives exactly the readings the original saw.
fn source_with(salt: u64) -> impl FnMut(NodeId, u64) -> Option<Vec<f64>> {
    move |node: NodeId, seq: u64| {
        let h = node.0 as u64 * 1_000_003 + seq * 7_919 + salt * 104_729;
        if seq % 157 == salt % 97 {
            Some(vec![0.9])
        } else {
            Some(vec![0.3 + 0.2 * ((h % 1_009) as f64 / 1_009.0)])
        }
    }
}

fn estimator() -> EstimatorConfig {
    EstimatorConfig::builder()
        .window(200)
        .sample_size(40)
        .seed(17)
        .build()
        .unwrap()
}

fn d3_config() -> D3Config {
    D3Config {
        estimator: estimator(),
        rule: DistanceOutlierConfig::new(8.0, 0.02),
        sample_fraction: 0.5,
    }
}

fn mgdd_config() -> MgddConfig {
    MgddConfig {
        estimator: estimator(),
        rule: MdefConfig::new(0.08, 0.01, 3.0).unwrap(),
        sample_fraction: 0.75,
        updates: UpdateStrategy::EveryAcceptance,
        staleness_bound_ns: Some(30_000_000_000),
    }
}

fn monitor_config() -> MonitorConfig {
    MonitorConfig {
        estimator: estimator(),
        report_every: 60,
        threshold: 0.35,
        grid_k: 24,
        staleness_bound_ns: None,
    }
}

/// An arbitrary-but-reproducible fault schedule (or none at all): one
/// loss burst and one crash, parameters drawn from the salt.
fn plan_from(faulted: bool, salt: u64) -> FaultPlan {
    if !faulted {
        return FaultPlan::none();
    }
    let burst_from = (salt * 37) % (HORIZON_NS / 2);
    let crash_from = (salt * 53) % (HORIZON_NS / 2) + HORIZON_NS / 8;
    FaultPlan::none()
        .with_seed(salt.wrapping_mul(0x9E37_79B9))
        .burst(burst_from, burst_from + HORIZON_NS / 4, 0.15)
        .crash(
            NodeId((salt % NODES as u64) as u32),
            crash_from,
            Some(crash_from + HORIZON_NS / 4),
        )
}

/// The property for one simulator-driven network: run to `cut_ns`,
/// snapshot, restore into a fresh build, finish — the final snapshot
/// must equal the uninterrupted run's, byte for byte.
macro_rules! sim_split_equals_straight {
    ($make:expr, $salt:expr, $cut:expr) => {{
        let mut src = source_with($salt);
        let mut straight = $make;
        straight.run(&mut src, READINGS);
        let expect = straight.checkpoint();

        let mut first = $make;
        first.run_until(&mut src, READINGS, $cut);
        let snap = first.checkpoint();
        let mut resumed = $make;
        resumed.restore(&snap).expect("snapshot restores");
        resumed.run_until(&mut src, READINGS, u64::MAX);
        prop_assert_eq!(
            expect,
            resumed.checkpoint(),
            "simulator resume diverged (salt {}, cut {})",
            $salt,
            $cut
        );
    }};
}

/// The same property under the live runtime (virtual clock, per-node
/// worker threads).
macro_rules! live_split_equals_straight {
    ($make:expr, $salt:expr, $cut:expr) => {{
        let mut src = source_with($salt);
        let mut straight = $make;
        straight.run(&mut src, READINGS);
        let expect = straight.checkpoint();

        let mut first = $make;
        first.run_until(&mut src, READINGS, $cut, &mut VirtualClock);
        let snap = first.checkpoint();
        let mut resumed = $make;
        resumed.restore(&snap).expect("snapshot restores");
        resumed.run_until(&mut src, READINGS, u64::MAX, &mut VirtualClock);
        prop_assert_eq!(
            expect,
            resumed.checkpoint(),
            "live resume diverged (salt {}, cut {})",
            $salt,
            $cut
        );
    }};
}

fn monitor_net(plan: &FaultPlan) -> Network<sensor_outliers::core::ModelReport, MonitorNode> {
    let cfg = monitor_config();
    Network::new(topo(), SimConfig::default(), |node, topo| {
        MonitorNode::new(node, topo, &cfg)
    })
    .with_fault_plan(plan.clone())
}

fn monitor_live(plan: &FaultPlan) -> LiveRuntime<sensor_outliers::core::ModelReport, MonitorNode> {
    let cfg = monitor_config();
    LiveRuntime::new(topo(), SimConfig::default(), |node, topo| {
        MonitorNode::new(node, topo, &cfg)
    })
    .with_fault_plan(plan.clone())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn d3_resume_equals_uninterrupted_under_both_drivers(
        salt in 0u64..1_000,
        cut_frac in 0.15f64..0.85,
        faulted in 0u32..2,
    ) {
        let cut = (HORIZON_NS as f64 * cut_frac) as u64;
        let plan = plan_from(faulted == 1, salt);
        sim_split_equals_straight!(
            build_d3_network(topo(), &d3_config(), SimConfig::default(), plan.clone()).unwrap(),
            salt,
            cut
        );
        live_split_equals_straight!(
            build_d3_live(topo(), &d3_config(), SimConfig::default(), plan.clone()).unwrap(),
            salt,
            cut
        );
    }

    #[test]
    fn mgdd_resume_equals_uninterrupted_under_both_drivers(
        salt in 0u64..1_000,
        cut_frac in 0.15f64..0.85,
        faulted in 0u32..2,
    ) {
        let cut = (HORIZON_NS as f64 * cut_frac) as u64;
        let plan = plan_from(faulted == 1, salt);
        let top = topo().level_count() as u8;
        sim_split_equals_straight!(
            build_mgdd_network(topo(), &mgdd_config(), SimConfig::default(), plan.clone(), &[top])
                .unwrap(),
            salt,
            cut
        );
        live_split_equals_straight!(
            build_mgdd_live(topo(), &mgdd_config(), SimConfig::default(), plan.clone(), &[top])
                .unwrap(),
            salt,
            cut
        );
    }

    #[test]
    fn monitor_resume_equals_uninterrupted_under_both_drivers(
        salt in 0u64..1_000,
        cut_frac in 0.15f64..0.85,
        faulted in 0u32..2,
    ) {
        let cut = (HORIZON_NS as f64 * cut_frac) as u64;
        let plan = plan_from(faulted == 1, salt);
        sim_split_equals_straight!(monitor_net(&plan), salt, cut);
        live_split_equals_straight!(monitor_live(&plan), salt, cut);
    }

    #[test]
    fn sim_snapshot_resumes_inside_a_live_runtime(
        salt in 0u64..1_000,
        cut_frac in 0.15f64..0.85,
        faulted in 0u32..2,
    ) {
        // Cross-driver restore: the snapshot comes from the simulator,
        // the remainder of the run happens under the live runtime — and
        // still lands on the uninterrupted simulator run's bytes.
        let cut = (HORIZON_NS as f64 * cut_frac) as u64;
        let plan = plan_from(faulted == 1, salt);
        let mut src = source_with(salt);

        let mut straight =
            build_d3_network(topo(), &d3_config(), SimConfig::default(), plan.clone()).unwrap();
        straight.run(&mut src, READINGS);
        let expect = straight.checkpoint();

        let mut first =
            build_d3_network(topo(), &d3_config(), SimConfig::default(), plan.clone()).unwrap();
        first.run_until(&mut src, READINGS, cut);
        let snap = first.checkpoint();

        let mut live =
            build_d3_live(topo(), &d3_config(), SimConfig::default(), plan.clone()).unwrap();
        live.restore(&snap).expect("a simulator snapshot restores into a live runtime");
        live.run_until(&mut src, READINGS, u64::MAX, &mut VirtualClock);
        prop_assert_eq!(
            expect,
            live.checkpoint(),
            "cross-driver resume diverged (salt {}, cut {})",
            salt,
            cut
        );
    }
}
