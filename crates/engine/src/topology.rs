//! The tiered virtual-grid hierarchy (paper Section 2, Figure 1).
//!
//! The network is organised in tiers: leaf sensors at the bottom, and at
//! each higher tier one leader per cell of an increasingly coarse virtual
//! grid, up to a single leader for the whole network. *"At each cell at
//! the lowest tier of the grid, there is one leader (or parent) node,
//! that is responsible for processing the measurements of all the sensors
//! in the cell."* Leader election itself is out of scope for the paper
//! (it defers to [17, 33, 47]); here leader assignment is deterministic,
//! which also makes simulations replayable.
//!
//! Two constructors cover the paper's experiments:
//!
//! * [`Hierarchy::balanced`] — explicit per-tier fan-outs, e.g.
//!   `balanced(32, &[4, 2, 4])` builds the 32-leaf / 8 / 4 / 1 four-level
//!   hierarchy used in the accuracy experiments (§10.2).
//! * [`Hierarchy::virtual_grid`] — a `side × side` leaf grid with
//!   quad-tree cells, the literal Figure 1 shape, used for the
//!   communication-scaling experiment (Figure 11).

use crate::node::{Location, NodeId, NodeRole};
use crate::SimError;

/// An immutable tiered hierarchy of nodes.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    roles: Vec<NodeRole>,
    locations: Vec<Location>,
    parents: Vec<Option<NodeId>>,
    children: Vec<Vec<NodeId>>,
    /// Node ids per level; `levels[0]` is the leaf tier (level 1).
    levels: Vec<Vec<NodeId>>,
}

impl Hierarchy {
    /// Builds a balanced hierarchy: `leaf_count` leaves, then one tier
    /// per entry of `fanouts`, where each leader adopts (up to)
    /// `fanouts[t]` nodes of the tier below. The final tier must reduce
    /// to a single root.
    ///
    /// ```
    /// use snod_engine::Hierarchy;
    /// // The paper's §10.2 setup: 32 leaf streams under 3 leader tiers.
    /// let h = Hierarchy::balanced(32, &[4, 2, 4]).unwrap();
    /// assert_eq!(h.leaves().len(), 32);
    /// assert_eq!(h.level_count(), 4);
    /// assert_eq!(h.node_count(), 32 + 8 + 4 + 1);
    /// ```
    pub fn balanced(leaf_count: usize, fanouts: &[usize]) -> Result<Self, SimError> {
        if leaf_count == 0 {
            return Err(SimError::ZeroSize("leaf count"));
        }
        if fanouts.contains(&0) {
            return Err(SimError::ZeroSize("fan-out"));
        }
        let mut roles = Vec::new();
        let mut parents: Vec<Option<NodeId>> = Vec::new();
        let mut children: Vec<Vec<NodeId>> = Vec::new();
        let mut levels: Vec<Vec<NodeId>> = Vec::new();

        let mut current: Vec<NodeId> = (0..leaf_count)
            .map(|i| {
                roles.push(NodeRole::Leaf);
                parents.push(None);
                children.push(Vec::new());
                NodeId(i as u32)
            })
            .collect();
        levels.push(current.clone());

        for (tier, &fanout) in fanouts.iter().enumerate() {
            let mut next = Vec::new();
            for group in current.chunks(fanout) {
                let leader = NodeId(roles.len() as u32);
                roles.push(NodeRole::Leader {
                    level: (tier + 2) as u8,
                });
                parents.push(None);
                children.push(group.to_vec());
                for &c in group {
                    parents[c.index()] = Some(leader);
                }
                next.push(leader);
            }
            levels.push(next.clone());
            current = next;
        }

        // Leaf placement on a near-square grid; leaders at child centroids.
        let side = (leaf_count as f64).sqrt().ceil() as usize;
        let mut locations = vec![Location { x: 0.0, y: 0.0 }; roles.len()];
        for (i, leaf) in levels[0].iter().enumerate() {
            locations[leaf.index()] = Location {
                x: (i % side) as f64 / side.max(1) as f64,
                y: (i / side) as f64 / side.max(1) as f64,
            };
        }
        for level in levels.iter().skip(1) {
            for &leader in level {
                let kids = &children[leader.index()];
                let n = kids.len() as f64;
                let (sx, sy) = kids.iter().fold((0.0, 0.0), |(sx, sy), c| {
                    let l = locations[c.index()];
                    (sx + l.x, sy + l.y)
                });
                locations[leader.index()] = Location {
                    x: sx / n,
                    y: sy / n,
                };
            }
        }

        Ok(Self {
            roles,
            locations,
            parents,
            children,
            levels,
        })
    }

    /// A `side × side` leaf grid organised by quad-tree cells (fan-out 4
    /// per tier) until a single root remains — the literal shape of the
    /// paper's Figure 1. `side` is rounded up to a power of two.
    pub fn virtual_grid(side: usize) -> Result<Self, SimError> {
        if side == 0 {
            return Err(SimError::ZeroSize("grid side"));
        }
        let side = side.next_power_of_two();
        let tiers = side.trailing_zeros() as usize; // log2(side) quad tiers
        let fanouts = vec![4usize; tiers];
        // Build by explicit quad-tree grouping (chunks() in `balanced`
        // would group linearly, breaking 2-d cell locality).
        let leaf_count = side * side;
        let mut roles = Vec::new();
        let mut parents: Vec<Option<NodeId>> = Vec::new();
        let mut children: Vec<Vec<NodeId>> = Vec::new();
        let mut levels: Vec<Vec<NodeId>> = Vec::new();
        let mut locations = Vec::new();

        // Leaf tier, row-major on the plane.
        let mut grid: Vec<Vec<NodeId>> = Vec::with_capacity(side);
        for y in 0..side {
            let mut row = Vec::with_capacity(side);
            for x in 0..side {
                let id = NodeId(roles.len() as u32);
                roles.push(NodeRole::Leaf);
                parents.push(None);
                children.push(Vec::new());
                locations.push(Location {
                    x: (x as f64 + 0.5) / side as f64,
                    y: (y as f64 + 0.5) / side as f64,
                });
                row.push(id);
            }
            grid.push(row);
        }
        levels.push(grid.iter().flatten().copied().collect());

        let mut dim = side;
        for (tier, _) in fanouts.iter().enumerate() {
            let next_dim = dim / 2;
            let mut next_grid: Vec<Vec<NodeId>> = Vec::with_capacity(next_dim);
            for cy in 0..next_dim {
                let mut row = Vec::with_capacity(next_dim);
                for cx in 0..next_dim {
                    let kids = vec![
                        grid[2 * cy][2 * cx],
                        grid[2 * cy][2 * cx + 1],
                        grid[2 * cy + 1][2 * cx],
                        grid[2 * cy + 1][2 * cx + 1],
                    ];
                    let leader = NodeId(roles.len() as u32);
                    roles.push(NodeRole::Leader {
                        level: (tier + 2) as u8,
                    });
                    let (sx, sy) = kids.iter().fold((0.0, 0.0), |(sx, sy), c| {
                        let l: Location = locations[c.index()];
                        (sx + l.x, sy + l.y)
                    });
                    locations.push(Location {
                        x: sx / 4.0,
                        y: sy / 4.0,
                    });
                    parents.push(None);
                    children.push(kids.clone());
                    for &c in &kids {
                        parents[c.index()] = Some(leader);
                    }
                    row.push(leader);
                }
                next_grid.push(row);
            }
            levels.push(next_grid.iter().flatten().copied().collect());
            grid = next_grid;
            dim = next_dim;
        }
        let _ = leaf_count;

        Ok(Self {
            roles,
            locations,
            parents,
            children,
            levels,
        })
    }

    /// Total number of nodes (leaves + leaders).
    pub fn node_count(&self) -> usize {
        self.roles.len()
    }

    /// Number of tiers, counting the leaf tier.
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Node ids at tier `level` (1-based; level 1 = leaves).
    pub fn level(&self, level: usize) -> &[NodeId] {
        &self.levels[level - 1]
    }

    /// All leaf sensors.
    pub fn leaves(&self) -> &[NodeId] {
        &self.levels[0]
    }

    /// The single node at the highest tier.
    pub fn root(&self) -> NodeId {
        *self
            .levels
            .last()
            .expect("non-empty hierarchy")
            .first()
            .expect("top tier has a node")
    }

    /// Role of `node`.
    pub fn role(&self, node: NodeId) -> NodeRole {
        self.roles[node.index()]
    }

    /// Tier of `node` (1 = leaf).
    pub fn level_of(&self, node: NodeId) -> u8 {
        self.roles[node.index()].level()
    }

    /// The leader `node` reports to, `None` for the root.
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.parents[node.index()]
    }

    /// The nodes reporting to `node` (empty for leaves).
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.children[node.index()]
    }

    /// Location of `node` on the unit square.
    pub fn location(&self, node: NodeId) -> Location {
        self.locations[node.index()]
    }

    /// Leaf sensors in the subtree rooted at `node` (the sensors whose
    /// combined sliding window the leader summarises — paper Section 3).
    pub fn descendant_leaves(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![node];
        while let Some(n) = stack.pop() {
            if self.role(n).is_leaf() {
                out.push(n);
            } else {
                stack.extend(self.children(n).iter().copied());
            }
        }
        out.sort();
        out
    }

    /// Validates that `node` exists.
    pub fn check(&self, node: NodeId) -> Result<(), SimError> {
        if node.index() < self.roles.len() {
            Ok(())
        } else {
            Err(SimError::UnknownNode(node))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_paper_setup() {
        let h = Hierarchy::balanced(32, &[4, 2, 4]).unwrap();
        assert_eq!(h.node_count(), 45);
        assert_eq!(h.level(1).len(), 32);
        assert_eq!(h.level(2).len(), 8);
        assert_eq!(h.level(3).len(), 4);
        assert_eq!(h.level(4).len(), 1);
        assert_eq!(h.level_of(h.root()), 4);
    }

    #[test]
    fn balanced_rejects_zero_parameters() {
        assert!(Hierarchy::balanced(0, &[4]).is_err());
        assert!(Hierarchy::balanced(8, &[0]).is_err());
    }

    #[test]
    fn parent_child_links_are_consistent() {
        let h = Hierarchy::balanced(32, &[4, 2, 4]).unwrap();
        for level in 1..=h.level_count() {
            for &n in h.level(level) {
                if let Some(p) = h.parent(n) {
                    assert!(h.children(p).contains(&n));
                    assert_eq!(h.level_of(p), h.level_of(n) + 1);
                } else {
                    assert_eq!(n, h.root());
                }
            }
        }
    }

    #[test]
    fn every_leaf_reaches_the_root() {
        let h = Hierarchy::balanced(32, &[4, 2, 4]).unwrap();
        for &leaf in h.leaves() {
            let mut n = leaf;
            let mut hops = 0;
            while let Some(p) = h.parent(n) {
                n = p;
                hops += 1;
                assert!(hops <= h.level_count());
            }
            assert_eq!(n, h.root());
        }
    }

    #[test]
    fn descendant_leaves_partition_the_network() {
        let h = Hierarchy::balanced(32, &[4, 2, 4]).unwrap();
        // The root covers every leaf.
        assert_eq!(h.descendant_leaves(h.root()).len(), 32);
        // Level-2 leaders partition the leaves.
        let mut seen = Vec::new();
        for &l in h.level(2) {
            seen.extend(h.descendant_leaves(l));
        }
        seen.sort();
        assert_eq!(seen, h.leaves());
    }

    #[test]
    fn virtual_grid_is_a_quad_tree() {
        let h = Hierarchy::virtual_grid(4).unwrap();
        assert_eq!(h.leaves().len(), 16);
        assert_eq!(h.level_count(), 3); // 16 → 4 → 1
        assert_eq!(h.level(2).len(), 4);
        assert_eq!(h.level(3).len(), 1);
        for &l in h.level(2) {
            assert_eq!(h.children(l).len(), 4);
            // children of a quad cell are mutually close on the plane
            let locs: Vec<_> = h.children(l).iter().map(|&c| h.location(c)).collect();
            for a in &locs {
                for b in &locs {
                    assert!(a.distance(b) < 0.5);
                }
            }
        }
    }

    #[test]
    fn virtual_grid_rounds_to_power_of_two() {
        let h = Hierarchy::virtual_grid(3).unwrap();
        assert_eq!(h.leaves().len(), 16);
    }

    #[test]
    fn leader_location_is_child_centroid() {
        let h = Hierarchy::virtual_grid(2).unwrap();
        let root = h.root();
        let loc = h.location(root);
        assert!((loc.x - 0.5).abs() < 1e-12);
        assert!((loc.y - 0.5).abs() < 1e-12);
    }

    #[test]
    fn check_rejects_unknown_nodes() {
        let h = Hierarchy::balanced(4, &[4]).unwrap();
        assert!(h.check(NodeId(0)).is_ok());
        assert!(h.check(NodeId(99)).is_err());
    }

    #[test]
    fn single_leaf_degenerate_hierarchy() {
        let h = Hierarchy::balanced(1, &[]).unwrap();
        assert_eq!(h.node_count(), 1);
        assert_eq!(h.root(), NodeId(0));
        assert!(h.parent(NodeId(0)).is_none());
    }
}
