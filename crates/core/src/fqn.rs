//! FQN — distributed streaming-Q_n outlier detection.
//!
//! The D3 protocol with the kernel-density distance rule swapped for the
//! robust-scale rule of Cafaro et al. (*Fast Detection of Outliers in
//! Data Streams with the Q_n Estimator*): a reading is an outlier when
//! any coordinate lands further than `k · Q_n` from the window median,
//! where `Q_n` is the 50%-breakdown pairwise-difference scale maintained
//! by [`snod_robust::QnWindow`]. Because Q_n ignores both tails, a
//! contamination burst cannot inflate the threshold the way it inflates
//! a σ-scaled rule — the detector keeps flagging through the burst.
//!
//! Message protocol, escalation and sample forwarding mirror D3
//! (`crates/core/src/d3.rs`): leaves test every reading against their
//! local window *before* admitting it, forward admitted values upward
//! with probability `f` so leaders build region-level windows, and
//! escalate flagged values on the reliable channel. Leaders re-check
//! received escalations against their own window and escalate survivors,
//! so parent detections stay a subset of child reports (the Theorem-3
//! containment shape).

use rand::Rng;

use snod_persist::{ByteReader, ByteWriter, Persist, PersistError, SeededRng};
use snod_robust::QnWindow;
use snod_simnet::{
    Ctx, DetectorEngine, FaultPlan, Hierarchy, Network, NodeId, SimConfig, StreamSource, Wire,
};

use crate::config::CoreError;
use crate::d3::Detection;

/// Configuration for the FQN detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FqnConfig {
    /// Dimensionality of the readings.
    pub dimensions: usize,
    /// Sliding-window capacity per dimension.
    pub window: usize,
    /// Threshold scale `k`: flag when `|x − median| > k · Q_n`.
    pub k_scale: f64,
    /// No verdicts until the window holds at least this many values.
    pub warmup: usize,
    /// Probability that an admitted reading is forwarded to the parent.
    pub sample_fraction: f64,
    /// Base RNG seed (decorrelated per node).
    pub seed: u64,
}

impl Default for FqnConfig {
    fn default() -> Self {
        Self {
            dimensions: 1,
            window: 256,
            k_scale: 3.0,
            warmup: 64,
            sample_fraction: 0.5,
            seed: 0xF9,
        }
    }
}

impl FqnConfig {
    /// Validates the parameter ranges.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.dimensions == 0 {
            return Err(CoreError::Config("fqn dimensions must be positive"));
        }
        if self.window < 2 {
            return Err(CoreError::Config("fqn window must hold at least 2 values"));
        }
        if !(self.k_scale > 0.0) || !self.k_scale.is_finite() {
            return Err(CoreError::Config("fqn k_scale must be positive and finite"));
        }
        if self.warmup < 2 || self.warmup > self.window {
            return Err(CoreError::Config("fqn warmup must be in [2, window]"));
        }
        if !(0.0..=1.0).contains(&self.sample_fraction) {
            return Err(CoreError::Config("fqn sample_fraction must be in [0, 1]"));
        }
        Ok(())
    }
}

impl Persist for FqnConfig {
    fn save(&self, w: &mut ByteWriter) {
        (self.dimensions as u64).save(w);
        (self.window as u64).save(w);
        self.k_scale.save(w);
        (self.warmup as u64).save(w);
        self.sample_fraction.save(w);
        self.seed.save(w);
    }

    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let cfg = Self {
            dimensions: u64::load(r)? as usize,
            window: u64::load(r)? as usize,
            k_scale: f64::load(r)?,
            warmup: u64::load(r)? as usize,
            sample_fraction: f64::load(r)?,
            seed: u64::load(r)?,
        };
        cfg.validate()
            .map_err(|_| PersistError::Corrupt("invalid fqn config"))?;
        Ok(cfg)
    }
}

/// FQN wire messages — the same two-message shape as D3.
#[derive(Debug, Clone)]
pub enum FqnPayload {
    /// An admitted value forwarded so the parent's window stays
    /// representative of the region.
    SampleValue(Vec<f64>),
    /// A value flagged by `median ± k·Q_n` at the sender's level.
    Outlier(Vec<f64>),
}

impl Wire for FqnPayload {
    fn size_bytes(&self) -> usize {
        match self {
            FqnPayload::SampleValue(v) | FqnPayload::Outlier(v) => v.len() * 2 + 1,
        }
    }
}

impl Persist for FqnPayload {
    fn save(&self, w: &mut ByteWriter) {
        match self {
            FqnPayload::SampleValue(v) => {
                w.put_u8(0);
                v.save(w);
            }
            FqnPayload::Outlier(v) => {
                w.put_u8(1);
                v.save(w);
            }
        }
    }

    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        match r.get_u8()? {
            0 => Ok(FqnPayload::SampleValue(Vec::<f64>::load(r)?)),
            1 => Ok(FqnPayload::Outlier(Vec::<f64>::load(r)?)),
            _ => Err(PersistError::Corrupt("unknown fqn payload tag")),
        }
    }
}

/// Per-node FQN state: one [`QnWindow`] per dimension.
pub struct FqnNode {
    windows: Vec<QnWindow>,
    cfg: FqnConfig,
    rng: SeededRng,
    /// Outliers this node has flagged.
    pub detections: Vec<Detection>,
    level: u8,
}

impl FqnNode {
    /// Builds the node for `node` within `topo`.
    pub fn new(node: NodeId, topo: &Hierarchy, cfg: &FqnConfig) -> Self {
        let level = topo.level_of(node);
        // Decorrelate RNGs across nodes (same scheme as D3).
        let seed = cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (node.0 as u64);
        let windows = (0..cfg.dimensions)
            .map(|_| QnWindow::new(cfg.window).expect("validated window"))
            .collect();
        Self {
            windows,
            cfg: *cfg,
            rng: SeededRng::seed_from_u64(seed ^ 0xF9),
            detections: Vec::new(),
            level,
        }
    }

    /// The per-dimension windows (for post-run inspection).
    pub fn windows(&self) -> &[QnWindow] {
        &self.windows
    }

    /// Verdict for `p` against the current windows: `Some(true)` when any
    /// coordinate is further than `k·Q_n` from its window median. `None`
    /// until warm-up completes.
    pub fn verdict(&self, p: &[f64]) -> Option<bool> {
        if p.len() != self.cfg.dimensions {
            return None;
        }
        if self.windows[0].len() < self.cfg.warmup {
            return None;
        }
        let mut hit = false;
        for (w, &x) in self.windows.iter().zip(p.iter()) {
            if w.is_outlier(x, self.cfg.k_scale) == Some(true) {
                hit = true;
            }
        }
        Some(hit)
    }

    /// Admits `p` into the windows. Returns false (and counts) on a
    /// mis-dimensioned or non-finite reading instead of panicking.
    fn admit(&mut self, p: &[f64]) -> bool {
        if p.len() != self.cfg.dimensions || p.iter().any(|x| !x.is_finite()) {
            snod_obs::counter!("core.bad_readings").incr();
            return false;
        }
        for (w, &x) in self.windows.iter_mut().zip(p.iter()) {
            w.push(x).expect("finite scalar push");
        }
        true
    }

    /// Checks `p` against this node's windows; records and escalates on
    /// a hit. Mirrors D3's `check_and_escalate`, including the reliable
    /// escalation channel.
    fn check_and_escalate(&mut self, ctx: &mut Ctx<'_, FqnPayload>, p: &[f64]) {
        match self.verdict(p) {
            Some(true) => {
                snod_obs::counter!("core.fqn.scored").incr();
                snod_obs::counter!("core.fqn.detections").incr();
                self.detections.push(Detection {
                    time_ns: ctx.time_ns,
                    value: p.to_vec(),
                    level: self.level,
                });
                snod_obs::counter!("core.fqn.escalations").incr();
                ctx.send_parent_reliable(FqnPayload::Outlier(p.to_vec()));
            }
            Some(false) => {
                snod_obs::counter!("core.fqn.scored").incr();
            }
            None => {}
        }
    }
}

impl DetectorEngine<FqnPayload> for FqnNode {
    fn ingest(&mut self, ctx: &mut Ctx<'_, FqnPayload>, value: &[f64]) {
        // Test against history *excluding* the reading itself, then admit
        // it — a burst of outliers must not poison its own threshold.
        self.check_and_escalate(ctx, value);
        if self.admit(value) && self.rng.gen::<f64>() < self.cfg.sample_fraction {
            ctx.send_parent(FqnPayload::SampleValue(value.to_vec()));
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, FqnPayload>, _from: NodeId, payload: FqnPayload) {
        match payload {
            FqnPayload::SampleValue(v) => {
                if self.admit(&v) && self.rng.gen::<f64>() < self.cfg.sample_fraction {
                    ctx.send_parent(FqnPayload::SampleValue(v));
                }
            }
            FqnPayload::Outlier(p) => {
                // Escalations are re-checked but never admitted: flagged
                // values must not drag the region window toward the tail.
                self.check_and_escalate(ctx, &p);
            }
        }
    }
}

impl Persist for FqnNode {
    fn save(&self, w: &mut ByteWriter) {
        self.windows.save(w);
        self.cfg.save(w);
        self.rng.save(w);
        self.detections.save(w);
        self.level.save(w);
    }

    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let node = Self {
            windows: Vec::<QnWindow>::load(r)?,
            cfg: FqnConfig::load(r)?,
            rng: SeededRng::load(r)?,
            detections: Vec::<Detection>::load(r)?,
            level: u8::load(r)?,
        };
        if node.windows.len() != node.cfg.dimensions {
            return Err(PersistError::Corrupt("fqn window/dimension mismatch"));
        }
        Ok(node)
    }
}

/// Runs FQN over `topo`: each leaf consumes `readings_per_leaf` readings
/// from `source`.
pub fn run_fqn<S: StreamSource>(
    topo: Hierarchy,
    cfg: &FqnConfig,
    sim: SimConfig,
    source: &mut S,
    readings_per_leaf: u64,
) -> Result<Network<FqnPayload, FqnNode>, CoreError> {
    run_fqn_with_faults(topo, cfg, sim, FaultPlan::none(), source, readings_per_leaf)
}

/// Runs FQN under a fault schedule. With [`FaultPlan::none()`] this is
/// bit-identical to [`run_fqn`].
pub fn run_fqn_with_faults<S: StreamSource>(
    topo: Hierarchy,
    cfg: &FqnConfig,
    sim: SimConfig,
    plan: FaultPlan,
    source: &mut S,
    readings_per_leaf: u64,
) -> Result<Network<FqnPayload, FqnNode>, CoreError> {
    let mut net = build_fqn_network(topo, cfg, sim, plan)?;
    net.run(source, readings_per_leaf);
    Ok(net)
}

/// Builds the FQN network without running it (checkpoint/resume drives
/// the simulation itself).
pub fn build_fqn_network(
    topo: Hierarchy,
    cfg: &FqnConfig,
    sim: SimConfig,
    plan: FaultPlan,
) -> Result<Network<FqnPayload, FqnNode>, CoreError> {
    cfg.validate()?;
    Ok(Network::new(topo, sim, |node, topo| FqnNode::new(node, topo, cfg)).with_fault_plan(plan))
}

/// Builds the live (wall-clock) runtime over the identical FQN engines.
pub fn build_fqn_live(
    topo: Hierarchy,
    cfg: &FqnConfig,
    sim: SimConfig,
    plan: FaultPlan,
) -> Result<snod_simnet::LiveRuntime<FqnPayload, FqnNode>, CoreError> {
    cfg.validate()?;
    Ok(
        snod_simnet::LiveRuntime::new(topo, sim, |node, topo| FqnNode::new(node, topo, cfg))
            .with_fault_plan(plan),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_config() -> FqnConfig {
        FqnConfig {
            dimensions: 1,
            window: 128,
            k_scale: 4.0,
            warmup: 32,
            sample_fraction: 0.5,
            seed: 7,
        }
    }

    /// 4 leaves emit a tight cluster; leaf 0 occasionally emits a value
    /// far from everything.
    fn spiky_source() -> impl FnMut(NodeId, u64) -> Option<Vec<f64>> {
        |node: NodeId, seq: u64| {
            if node.0 == 0 && seq % 100 == 99 {
                Some(vec![0.9])
            } else {
                Some(vec![
                    0.45 + 0.002 * ((seq % 25) as f64) + 0.001 * node.0 as f64,
                ])
            }
        }
    }

    fn run_small(readings: u64) -> Network<FqnPayload, FqnNode> {
        let topo = Hierarchy::balanced(4, &[2, 2]).unwrap();
        let mut source = spiky_source();
        run_fqn(
            topo,
            &test_config(),
            SimConfig::default(),
            &mut source,
            readings,
        )
        .unwrap()
    }

    #[test]
    fn leaf_detects_the_injected_outliers() {
        let net = run_small(600);
        let leaf0 = net.app(NodeId(0));
        assert!(
            !leaf0.detections.is_empty(),
            "leaf 0 saw injected outliers but flagged none"
        );
        assert!(leaf0.detections.iter().all(|d| d.value[0] > 0.8));
    }

    #[test]
    fn clean_leaves_stay_silent() {
        let net = run_small(600);
        for id in 1..4u32 {
            let leaf = net.app(NodeId(id));
            assert!(
                leaf.detections.is_empty(),
                "leaf {id} flagged {} values",
                leaf.detections.len()
            );
        }
    }

    #[test]
    fn contamination_burst_does_not_silence_the_detector() {
        // The robust-scale headline: a 10%-contaminated stretch inflates
        // σ enough to hide later outliers from a mean±kσ rule, but Q_n
        // (50% breakdown) holds its threshold and keeps flagging.
        let topo = Hierarchy::balanced(1, &[]).unwrap();
        let mut source = |_n: NodeId, seq: u64| {
            if (200..260).contains(&seq) && seq.is_multiple_of(6) {
                Some(vec![5.0 + 0.01 * (seq % 7) as f64]) // the burst
            } else if seq % 100 == 99 && seq > 300 {
                Some(vec![2.0]) // post-burst outliers, milder than the burst
            } else {
                Some(vec![0.5 + 0.002 * ((seq % 31) as f64)])
            }
        };
        let net = run_fqn(
            topo,
            &test_config(),
            SimConfig::default(),
            &mut source,
            800,
        )
        .unwrap();
        let leaf = net.app(NodeId(0));
        let post_burst_hits = leaf
            .detections
            .iter()
            .filter(|d| (1.5..3.0).contains(&d.value[0]))
            .count();
        assert!(
            post_burst_hits >= 3,
            "burst inflated the threshold: only {post_burst_hits} post-burst detections"
        );
    }

    #[test]
    fn parent_detections_are_subset_of_child_reports() {
        let net = run_small(800);
        let topo = net.topology();
        for level in 2..=topo.level_count() {
            for &leader in topo.level(level) {
                for d in &net.app(leader).detections {
                    let reported_below = topo.descendant_leaves(leader).iter().any(|&leaf| {
                        net.app(leaf)
                            .detections
                            .iter()
                            .any(|ld| ld.value == d.value)
                    });
                    assert!(reported_below, "parent flagged un-reported value {d:?}");
                }
            }
        }
    }

    #[test]
    fn fault_free_plan_is_identical_to_plain_run() {
        let topo = Hierarchy::balanced(4, &[2, 2]).unwrap();
        let mut a = spiky_source();
        let plain =
            run_fqn(topo.clone(), &test_config(), SimConfig::default(), &mut a, 600).unwrap();
        let mut b = spiky_source();
        let faulty = run_fqn_with_faults(
            topo,
            &test_config(),
            SimConfig::default(),
            FaultPlan::none(),
            &mut b,
            600,
        )
        .unwrap();
        assert_eq!(plain.stats(), faulty.stats());
        for (node, app) in plain.apps() {
            assert_eq!(app.detections, faulty.app(node).detections);
        }
    }

    #[test]
    fn checkpoint_resume_matches_uninterrupted_run() {
        let topo = Hierarchy::balanced(4, &[2, 2]).unwrap();
        let mut a = spiky_source();
        let mut straight = build_fqn_network(
            topo.clone(),
            &test_config(),
            SimConfig::default(),
            FaultPlan::none(),
        )
        .unwrap();
        straight.run(&mut a, 700);

        let mut b = spiky_source();
        let mut first = build_fqn_network(
            topo.clone(),
            &test_config(),
            SimConfig::default(),
            FaultPlan::none(),
        )
        .unwrap();
        first.run_until(&mut b, 700, 250_000_000_000);
        let bytes = first.checkpoint();
        let mut resumed = build_fqn_network(
            topo,
            &test_config(),
            SimConfig::default(),
            FaultPlan::none(),
        )
        .unwrap();
        resumed.restore(&bytes).unwrap();
        resumed.run(&mut b, 700);

        assert_eq!(straight.stats(), resumed.stats());
        for (node, app) in straight.apps() {
            assert_eq!(app.detections, resumed.app(node).detections);
        }
        assert_eq!(straight.checkpoint(), resumed.checkpoint());
    }

    #[test]
    fn sample_traffic_feeds_leader_windows() {
        let net = run_small(500);
        assert!(net.stats().messages > 0);
        let root = net.topology().root();
        assert!(
            !net.app(root).windows()[0].is_empty(),
            "root window starved"
        );
    }

    #[test]
    fn zero_sample_fraction_still_detects_locally() {
        let topo = Hierarchy::balanced(2, &[2]).unwrap();
        let mut cfg = test_config();
        cfg.sample_fraction = 0.0;
        let mut source =
            |_n: NodeId, seq: u64| Some(vec![if seq % 200 == 199 { 0.95 } else { 0.5 }]);
        let net = run_fqn(topo, &cfg, SimConfig::default(), &mut source, 400).unwrap();
        let hits: usize = net
            .topology()
            .leaves()
            .iter()
            .map(|&l| net.app(l).detections.len())
            .sum();
        assert!(hits > 0);
        let root = net.topology().root();
        assert!(net.app(root).windows()[0].is_empty());
    }

    #[test]
    fn invalid_config_is_rejected() {
        let topo = Hierarchy::balanced(2, &[2]).unwrap();
        let mut cfg = test_config();
        cfg.k_scale = 0.0;
        let mut source = |_: NodeId, _: u64| Some(vec![0.5]);
        assert!(run_fqn(topo, &cfg, SimConfig::default(), &mut source, 10).is_err());
    }
}
