//! Offline API-compatible subset of the `rand` crate (v0.8 surface).
//!
//! This workspace builds in hermetic environments with no crates.io
//! access, so the handful of `rand` APIs the repo uses are provided
//! here as a drop-in path dependency. The implementation mirrors the
//! upstream contracts the codebase relies on:
//!
//! * [`rngs::StdRng`] is the rand 0.8 `StdRng`: a ChaCha stream cipher
//!   with 12 rounds, a 64-bit block counter and a zero nonce, seeded
//!   from a `u64` via the same SplitMix64 expansion upstream uses. It
//!   is a pure 32-bit word stream — `next_u64` draws exactly two words
//!   (low word first) and `fill_bytes` one word per 4-byte chunk —
//!   which is the property `snod-persist`'s replayable `SeededRng`
//!   wrapper counts on for checkpoint fast-forward.
//! * [`Rng::gen`] for `f64` is the upstream `Standard` distribution:
//!   the top 53 bits of one `next_u64`, scaled into `[0, 1)`.
//! * [`Rng::gen_range`] uses unbiased rejection sampling for integers
//!   (widening-multiply, Lemire-style) and affine scaling for floats.
//!
//! Only what the workspace needs is implemented; anything else is out
//! of scope on purpose.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: an infinite word stream.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 random bits (two 32-bit draws, low word first).
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes (one 32-bit draw per 4-byte
    /// chunk, little-endian; a trailing partial chunk consumes a full
    /// word).
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be constructed from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed byte array type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with SplitMix64 (one step per
    /// 4-byte chunk, low 32 bits of each output), exactly as rand 0.8
    /// does, so seeded streams match upstream bit-for-bit.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Sampling conveniences layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T` (uniform
    /// over the type's natural unit domain; `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range (half-open or inclusive).
    ///
    /// Panics when the range is empty, matching upstream.
    fn gen_range<T, R2>(&mut self, range: R2) -> T
    where
        T: SampleUniform,
        R2: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one standard-distributed value from `rng`.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // Upstream `Standard` for f64: 53 high bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Types uniformly samplable by [`Rng::gen_range`].
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[low, high)`; `high > low` checked by caller.
    fn sample_half_open<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self;

    /// Uniform draw from `[low, high]`; `high >= low` checked by caller.
    fn sample_inclusive<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_uint {
    ($($t:ty => $raw:ty, $below:ident, $full:ident);* $(;)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as $raw).wrapping_sub(low as $raw);
                low.wrapping_add($below(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as $raw).wrapping_sub(low as $raw);
                if span == <$raw>::MAX {
                    return rng.$full() as $t;
                }
                low.wrapping_add($below(rng, span + 1) as $t)
            }
        }
    )*};
}

/// Unbiased `[0, span)` by widening multiply with rejection
/// (Lemire); `span > 0`.
fn uniform_below_next_u32<R: RngCore>(rng: &mut R, span: u32) -> u32 {
    let threshold = span.wrapping_neg() % span;
    loop {
        let m = u64::from(rng.next_u32()) * u64::from(span);
        if (m as u32) >= threshold {
            return (m >> 32) as u32;
        }
    }
}

/// 64-bit variant of [`uniform_below_next_u32`].
fn uniform_below_next_u64<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    let threshold = span.wrapping_neg() % span;
    loop {
        let m = u128::from(rng.next_u64()) * u128::from(span);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

impl_uniform_uint! {
    u32 => u32, uniform_below_next_u32, next_u32;
    i32 => u32, uniform_below_next_u32, next_u32;
    u64 => u64, uniform_below_next_u64, next_u64;
    i64 => u64, uniform_below_next_u64, next_u64;
    usize => u64, uniform_below_next_u64, next_u64;
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self {
        let unit = f64::sample_standard(rng);
        let v = low + (high - low) * unit;
        // Guard the open upper bound against round-up.
        if v >= high {
            high - (high - low) * f64::EPSILON
        } else {
            v
        }
    }
    fn sample_inclusive<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self {
        low + (high - low) * f64::sample_standard(rng)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self {
        let v = low + (high - low) * f32::sample_standard(rng);
        if v >= high {
            high - (high - low) * f32::EPSILON
        } else {
            v
        }
    }
    fn sample_inclusive<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self {
        low + (high - low) * f32::sample_standard(rng)
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "cannot sample empty range");
        T::sample_inclusive(rng, low, high)
    }
}

/// Deterministic generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The rand 0.8 `StdRng`: ChaCha with 12 rounds, 64-bit block
    /// counter, zero nonce. A pure 32-bit word stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        key: [u32; 8],
        /// 64-byte blocks generated so far.
        counter: u64,
        /// Current keystream block.
        buf: [u32; 16],
        /// Next unread word in `buf` (16 = exhausted).
        idx: usize,
    }

    impl StdRng {
        fn refill(&mut self) {
            chacha12_block(&self.key, self.counter, &mut self.buf);
            self.counter = self.counter.wrapping_add(1);
            self.idx = 0;
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut key = [0u32; 8];
            for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
                *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
            }
            Self {
                key,
                counter: 0,
                buf: [0; 16],
                idx: 16,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            if self.idx >= 16 {
                self.refill();
            }
            let w = self.buf[self.idx];
            self.idx += 1;
            w
        }

        fn next_u64(&mut self) -> u64 {
            let lo = u64::from(self.next_u32());
            let hi = u64::from(self.next_u32());
            (hi << 32) | lo
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(4) {
                let bytes = self.next_u32().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }

    #[inline]
    fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        x[a] = x[a].wrapping_add(x[b]);
        x[d] = (x[d] ^ x[a]).rotate_left(16);
        x[c] = x[c].wrapping_add(x[d]);
        x[b] = (x[b] ^ x[c]).rotate_left(12);
        x[a] = x[a].wrapping_add(x[b]);
        x[d] = (x[d] ^ x[a]).rotate_left(8);
        x[c] = x[c].wrapping_add(x[d]);
        x[b] = (x[b] ^ x[c]).rotate_left(7);
    }

    /// One 64-byte ChaCha12 keystream block (djb variant: 64-bit
    /// counter in words 12–13, zero nonce in words 14–15).
    fn chacha12_block(key: &[u32; 8], counter: u64, out: &mut [u32; 16]) {
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865; // "expa"
        state[1] = 0x3320_646e; // "nd 3"
        state[2] = 0x7962_2d32; // "2-by"
        state[3] = 0x6b20_6574; // "te k"
        state[4..12].copy_from_slice(key);
        state[12] = counter as u32;
        state[13] = (counter >> 32) as u32;
        let mut x = state;
        for _ in 0..6 {
            quarter(&mut x, 0, 4, 8, 12);
            quarter(&mut x, 1, 5, 9, 13);
            quarter(&mut x, 2, 6, 10, 14);
            quarter(&mut x, 3, 7, 11, 15);
            quarter(&mut x, 0, 5, 10, 15);
            quarter(&mut x, 1, 6, 11, 12);
            quarter(&mut x, 2, 7, 8, 13);
            quarter(&mut x, 3, 4, 9, 14);
        }
        for (o, (a, b)) in out.iter_mut().zip(x.iter().zip(state.iter())) {
            *o = a.wrapping_add(*b);
        }
    }
}

/// Distribution abstractions (`rand::distributions` subset).
pub mod distributions {
    use super::RngCore;

    /// A sampling distribution over `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore>(&self, rng: &mut R) -> T;
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn word_stream_accounting_holds() {
        // next_u64 must equal two next_u32 draws, low word first.
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let lo = u64::from(b.next_u32());
        let hi = u64::from(b.next_u32());
        assert_eq!(a.next_u64(), (hi << 32) | lo);
        // fill_bytes consumes one word per 4-byte chunk.
        let mut c = StdRng::seed_from_u64(7);
        let mut bytes = [0u8; 7];
        c.fill_bytes(&mut bytes);
        assert_eq!(c.next_u32(), {
            let mut d = StdRng::seed_from_u64(7);
            d.next_u32();
            d.next_u32();
            d.next_u32()
        });
    }

    #[test]
    fn seeds_produce_distinct_deterministic_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let xs: Vec<u32> = (0..64).map(|_| a.next_u32()).collect();
        let ys: Vec<u32> = (0..64).map(|_| b.next_u32()).collect();
        let zs: Vec<u32> = (0..64).map(|_| c.next_u32()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn chacha_keystream_matches_rfc_vector() {
        // RFC 7539 uses 20 rounds with a 96-bit nonce, so no published
        // vector matches ChaCha12/64-bit-counter directly; instead pin
        // the first block for seed 0 so accidental changes to the core
        // are caught. (The all-zero key/counter block only depends on
        // the permutation.)
        let mut rng = StdRng::from_seed([0u8; 32]);
        let w = rng.next_u32();
        let mut again = StdRng::from_seed([0u8; 32]);
        assert_eq!(w, again.next_u32());
        assert_ne!(w, 0);
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut seen = [false; 17];
        for _ in 0..2_000 {
            let v = rng.gen_range(0..17u64);
            assert!(v < 17);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
        for _ in 0..2_000 {
            let v = rng.gen_range(3..=5u64);
            assert!((3..=5).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn standard_f64_is_unit_uniform() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
