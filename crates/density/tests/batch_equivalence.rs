//! Property tests: the batched range-count sweep
//! ([`DensityModel::neighborhood_counts`]) is *exactly* equivalent to
//! the scalar query path, for every dimensionality the MDEF engine uses
//! (d ∈ {1, 2, 3}) and for both finite- and infinite-support kernels.
//!
//! Equality is asserted bit-for-bit, not within a tolerance: the sweep
//! evaluates the same floating-point expressions over the same kernel
//! centres in the same order as the scalar path, so any difference is a
//! bug in the frontier logic, not round-off.

use proptest::prelude::*;

use snod_density::{DensityModel, GaussianKernel, Kde, Kde1d};

fn unit_values(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..1.0, 4..n)
}

fn unit_rows(d: usize, n: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0.0f64..1.0, d..=d), 4..n)
}

/// Flattens query rows and checks batched == scalar on any model.
fn assert_batch_matches_scalar<M: DensityModel>(
    model: &M,
    queries: &[Vec<f64>],
    r: f64,
) -> Result<(), TestCaseError> {
    let flat: Vec<f64> = queries.iter().flat_map(|q| q.iter().copied()).collect();
    let batched = model.neighborhood_counts(&flat, r).unwrap();
    prop_assert_eq!(batched.len(), queries.len());
    for (q, &got) in queries.iter().zip(&batched) {
        let want = model.neighborhood_count(q, r).unwrap();
        prop_assert!(
            got.to_bits() == want.to_bits(),
            "batch {} != scalar {} at query {:?} (r = {})",
            got,
            want,
            q,
            r
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// 1-d sorted sweep (Epanechnikov, the paper's kernel).
    #[test]
    fn kde1d_batch_equals_scalar(
        sample in unit_values(200),
        queries in unit_values(40),
        r in 0.001f64..0.4,
        sigma in 0.02f64..0.3,
    ) {
        let kde = Kde1d::from_sample(&sample, sigma, 1_000.0).unwrap();
        let rows: Vec<Vec<f64>> = queries.iter().map(|&q| vec![q]).collect();
        assert_batch_matches_scalar(&kde, &rows, r)?;
    }

    /// 1-d with an infinite-support kernel: the sweep cannot prune and
    /// must fall back to full evaluation, still bit-identically.
    #[test]
    fn kde1d_gaussian_batch_equals_scalar(
        sample in unit_values(120),
        queries in unit_values(24),
        r in 0.001f64..0.4,
    ) {
        let kde = Kde1d::new(sample, 0.08, 500.0, GaussianKernel).unwrap();
        let rows: Vec<Vec<f64>> = queries.iter().map(|&q| vec![q]).collect();
        assert_batch_matches_scalar(&kde, &rows, r)?;
    }

    /// 2-d product-kernel sweep (frontier prunes on dimension 0 only).
    #[test]
    fn kde2d_batch_equals_scalar(
        sample in unit_rows(2, 80),
        queries in unit_rows(2, 24),
        r in 0.001f64..0.4,
    ) {
        let kde = Kde::from_sample(&sample, &[0.1, 0.15], 1_000.0).unwrap();
        assert_batch_matches_scalar(&kde, &queries, r)?;
    }

    /// 3-d product-kernel sweep.
    #[test]
    fn kde3d_batch_equals_scalar(
        sample in unit_rows(3, 60),
        queries in unit_rows(3, 16),
        r in 0.001f64..0.4,
    ) {
        let kde = Kde::from_sample(&sample, &[0.1, 0.12, 0.2], 1_000.0).unwrap();
        assert_batch_matches_scalar(&kde, &queries, r)?;
    }

    /// Duplicated and coincident query points must not confuse the
    /// monotone frontier (it only ever advances).
    #[test]
    fn repeated_queries_are_consistent(
        sample in unit_values(100),
        q in 0.0f64..1.0,
        r in 0.001f64..0.3,
    ) {
        let kde = Kde1d::from_sample(&sample, 0.1, 1_000.0).unwrap();
        let flat = vec![q, q, q];
        let batched = kde.neighborhood_counts(&flat, r).unwrap();
        prop_assert!(batched[0].to_bits() == batched[1].to_bits());
        prop_assert!(batched[1].to_bits() == batched[2].to_bits());
    }
}

#[test]
fn empty_query_batch_is_empty() {
    let kde = Kde1d::from_sample(&[0.2, 0.5, 0.8], 0.1, 100.0).unwrap();
    assert!(kde.neighborhood_counts(&[], 0.1).unwrap().is_empty());
}

#[test]
fn ragged_query_batch_is_rejected() {
    let kde = Kde::from_sample(&[vec![0.2, 0.4], vec![0.6, 0.1]], &[0.1, 0.1], 100.0).unwrap();
    assert!(kde.neighborhood_counts(&[0.5, 0.5, 0.5], 0.1).is_err());
}
