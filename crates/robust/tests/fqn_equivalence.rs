//! FQN equivalence (proptest): the streaming Q_n — sorted buffer kept
//! incrementally, rank-select by value-space bisection — must equal,
//! **bit for bit**, the offline Q_n recomputed from scratch on the same
//! window contents, across arbitrary insert/evict sequences. The
//! offline reference materialises all C(n,2) pairwise differences,
//! sorts them and indexes the k-th: any drift in the incremental sorted
//! buffer or any off-by-one in the bisection shows up as a bit
//! mismatch.

use proptest::prelude::*;

use snod_robust::QnWindow;

/// The O(n² log n) reference on an explicit window.
fn offline_qn(window: &[f64]) -> Option<f64> {
    let n = window.len();
    if n < 2 {
        return None;
    }
    let mut sorted = window.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mut diffs = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            diffs.push((sorted[j] - sorted[i]).abs());
        }
    }
    diffs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let h = n / 2 + 1;
    let k = h * (h - 1) / 2;
    let d_n = match n {
        0 | 1 => 1.0,
        2 => 0.399,
        3 => 0.994,
        4 => 0.512,
        5 => 0.844,
        6 => 0.611,
        7 => 0.857,
        8 => 0.669,
        9 => 0.872,
        _ if n % 2 == 1 => n as f64 / (n as f64 + 1.4),
        _ => n as f64 / (n as f64 + 3.8),
    };
    Some(2.219_144_465_985_076 * d_n * diffs[k - 1])
}

fn offline_median(window: &[f64]) -> Option<f64> {
    let n = window.len();
    if n == 0 {
        return None;
    }
    let mut sorted = window.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let m = if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    };
    Some(if m == 0.0 { 0.0 } else { m })
}

/// Value pools deliberately heavy on ties and near-ties — the regime
/// where rank-select off-by-ones hide.
fn stream_values() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(
        (0u32..10, -100.0f64..100.0).prop_map(|(tag, v)| match tag {
            0 => 0.0,
            1 => -0.0,
            2 => 1.0,
            3 => 2.5,
            _ => v,
        }),
        2..160,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The headline property: after EVERY push (insert + possible
    /// evict), streaming Q_n and median equal the offline recompute on
    /// the explicit arrival window, bit for bit.
    #[test]
    fn streaming_qn_equals_offline_recompute(
        values in stream_values(),
        capacity in 2usize..40,
    ) {
        let mut win = QnWindow::new(capacity).unwrap();
        let mut explicit: Vec<f64> = Vec::new();
        for &x in &values {
            win.push(x).unwrap();
            explicit.push(x);
            if explicit.len() > capacity {
                explicit.remove(0);
            }
            prop_assert_eq!(
                win.qn().map(f64::to_bits),
                offline_qn(&explicit).map(f64::to_bits),
                "window {:?}", explicit
            );
            prop_assert_eq!(
                win.median().map(f64::to_bits),
                offline_median(&explicit).map(f64::to_bits)
            );
        }
    }

    /// Checkpoint round-trip mid-stream: the restored window answers
    /// every later query identically to the never-snapshotted twin.
    #[test]
    fn snapshot_does_not_perturb_the_stream(
        prefix in stream_values(),
        suffix in stream_values(),
        capacity in 2usize..32,
    ) {
        use snod_persist::Persist;
        let mut live = QnWindow::new(capacity).unwrap();
        for &x in &prefix {
            live.push(x).unwrap();
        }
        let mut restored = QnWindow::from_bytes(&live.to_bytes()).unwrap();
        for &x in &suffix {
            live.push(x).unwrap();
            restored.push(x).unwrap();
            prop_assert_eq!(
                live.qn().map(f64::to_bits),
                restored.qn().map(f64::to_bits)
            );
        }
        prop_assert_eq!(live, restored);
    }

    /// The verdict rule is consistent with its ingredients: a value is
    /// flagged iff it sits outside median ± k·Q_n of the *current*
    /// window.
    #[test]
    fn verdict_matches_median_and_qn(
        values in stream_values(),
        probe in -150.0f64..150.0,
        k in 0.5f64..5.0,
    ) {
        let mut win = QnWindow::new(24).unwrap();
        for &x in &values {
            win.push(x).unwrap();
        }
        if win.len() >= 2 {
            let expected = (probe - win.median().unwrap()).abs() > k * win.qn().unwrap();
            prop_assert_eq!(win.is_outlier(probe, k), Some(expected));
        }
    }
}
