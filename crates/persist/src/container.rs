//! The checkpoint envelope: magic, version, checksum, atomic writes.

use std::fs;
use std::path::Path;

use crate::codec::Persist;
use crate::error::PersistError;

/// First eight bytes of every checkpoint file.
pub const MAGIC: [u8; 8] = *b"SNODCKPT";

/// Format version this build writes and reads. Bump on ANY change to
/// the encoding of any persisted type — the golden-file guard test
/// fails loudly when bytes change without a bump.
pub const FORMAT_VERSION: u32 = 2;

/// Envelope size: magic (8) + version (4) + payload length (8) +
/// CRC-32 (4).
pub const HEADER_LEN: usize = 24;

/// CRC-32 (IEEE 802.3, reflected) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `data` (IEEE, the zlib/PNG polynomial). CRC is chosen over
/// a mixing hash because it *guarantees* detection of any single-bit
/// flip — the exact corruption the test suite injects.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Wraps `payload` in the checkpoint envelope.
pub fn encode_checkpoint(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validates the envelope and returns the payload slice. Every
/// malformation — short header, wrong magic, future version, length
/// mismatch, checksum mismatch — is a typed [`PersistError`].
pub fn decode_checkpoint(bytes: &[u8]) -> Result<&[u8], PersistError> {
    if bytes.len() < HEADER_LEN {
        // A too-short file with intact magic is a truncation; anything
        // else is not a checkpoint at all.
        if bytes.len() >= 8 && bytes[..8] == MAGIC {
            return Err(PersistError::Truncated {
                needed: HEADER_LEN,
                available: bytes.len(),
            });
        }
        return Err(PersistError::BadMagic);
    }
    if bytes[..8] != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    if version != FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let len = u64::from_le_bytes([
        bytes[12], bytes[13], bytes[14], bytes[15], bytes[16], bytes[17], bytes[18], bytes[19],
    ]);
    let expected = u32::from_le_bytes([bytes[20], bytes[21], bytes[22], bytes[23]]);
    let payload = &bytes[HEADER_LEN..];
    let len = usize::try_from(len).map_err(|_| PersistError::Corrupt("payload length"))?;
    if payload.len() < len {
        return Err(PersistError::Truncated {
            needed: len,
            available: payload.len(),
        });
    }
    if payload.len() > len {
        return Err(PersistError::Corrupt("trailing bytes after payload"));
    }
    let found = crc32(payload);
    if found != expected {
        return Err(PersistError::BadChecksum { expected, found });
    }
    Ok(payload)
}

/// Writes `payload` to `path` atomically: the envelope goes to a
/// sibling temp file which is then renamed over `path`, so a crash
/// mid-write leaves either the old checkpoint or the new one — never a
/// torn hybrid.
pub fn write_checkpoint_file(path: &Path, payload: &[u8]) -> Result<(), PersistError> {
    let file_name = path
        .file_name()
        .ok_or(PersistError::Io(String::new()))
        .map_err(|_| PersistError::Io("checkpoint path has no file name".into()))?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    fs::write(&tmp, encode_checkpoint(payload))?;
    // Rename is the commit point; clean up the temp file if it fails.
    fs::rename(&tmp, path).map_err(|e| {
        let _ = fs::remove_file(&tmp);
        PersistError::from(e)
    })
}

/// Reads `path`, validates the envelope, and returns the payload.
pub fn read_checkpoint_file(path: &Path) -> Result<Vec<u8>, PersistError> {
    let bytes = fs::read(path)?;
    decode_checkpoint(&bytes).map(<[u8]>::to_vec)
}

/// [`write_checkpoint_file`] for any [`Persist`] value.
pub fn save_to_file<T: Persist>(path: &Path, value: &T) -> Result<(), PersistError> {
    write_checkpoint_file(path, &value.to_bytes())
}

/// [`read_checkpoint_file`] for any [`Persist`] value.
pub fn load_from_file<T: Persist>(path: &Path) -> Result<T, PersistError> {
    T::from_bytes(&read_checkpoint_file(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_reference_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn envelope_roundtrips() {
        let payload = b"sliding window state";
        let enc = encode_checkpoint(payload);
        assert_eq!(decode_checkpoint(&enc).unwrap(), payload);
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let mut enc = encode_checkpoint(b"x");
        enc[0] ^= 0xFF;
        assert_eq!(decode_checkpoint(&enc).unwrap_err(), PersistError::BadMagic);
        assert_eq!(decode_checkpoint(b"tiny").unwrap_err(), PersistError::BadMagic);
    }

    #[test]
    fn future_version_is_rejected() {
        let mut enc = encode_checkpoint(b"x");
        enc[8] = 0xFF;
        assert!(matches!(
            decode_checkpoint(&enc).unwrap_err(),
            PersistError::UnsupportedVersion { .. }
        ));
    }

    #[test]
    fn truncation_is_rejected() {
        let enc = encode_checkpoint(b"some payload");
        for cut in [9, HEADER_LEN - 1, HEADER_LEN + 3, enc.len() - 1] {
            assert!(
                matches!(
                    decode_checkpoint(&enc[..cut]).unwrap_err(),
                    PersistError::Truncated { .. }
                ),
                "cut at {cut} not reported as truncation"
            );
        }
    }

    #[test]
    fn every_payload_bit_flip_is_caught() {
        let enc = encode_checkpoint(b"guarded bytes");
        for i in HEADER_LEN..enc.len() {
            for bit in 0..8 {
                let mut bad = enc.clone();
                bad[i] ^= 1 << bit;
                assert!(
                    matches!(
                        decode_checkpoint(&bad).unwrap_err(),
                        PersistError::BadChecksum { .. }
                    ),
                    "flip at byte {i} bit {bit} slipped through"
                );
            }
        }
    }

    #[test]
    fn atomic_write_then_read() {
        let dir = std::env::temp_dir().join("snod-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("atomic.ckpt");
        write_checkpoint_file(&path, b"v1").unwrap();
        write_checkpoint_file(&path, b"v2").unwrap(); // overwrite via rename
        assert_eq!(read_checkpoint_file(&path).unwrap(), b"v2");
        assert!(!path.with_file_name("atomic.ckpt.tmp").exists());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn typed_value_file_roundtrip() {
        let dir = std::env::temp_dir().join("snod-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("typed.ckpt");
        save_to_file(&path, &vec![1.5f64, -2.5, 0.0]).unwrap();
        let back: Vec<f64> = load_from_file(&path).unwrap();
        assert_eq!(back, vec![1.5, -2.5, 0.0]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_checkpoint_file(Path::new("/nonexistent/snod.ckpt")).unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
    }
}
