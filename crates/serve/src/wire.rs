//! The length-prefixed TCP frame protocol.
//!
//! Every frame is a 24-byte header followed by a [`Persist`]-encoded
//! payload — deliberately the same envelope shape as a `snod-persist`
//! checkpoint (`magic · version · length · CRC-32 · payload`), with its
//! own magic so the two can never be confused:
//!
//! ```text
//! offset  size  field
//!      0     8  magic  "SNODWIRE"
//!      8     4  version (u32 LE) — currently 1
//!     12     8  payload length (u64 LE) — capped at MAX_FRAME_BYTES
//!     20     4  CRC-32 (IEEE) of the payload
//!     24     …  payload: a tag byte + Persist-encoded fields
//! ```
//!
//! [`FrameDecoder`] is an incremental splitter: feed it arbitrary byte
//! chunks (TCP gives no framing guarantees — frames arrive split,
//! merged, or one byte at a time) and pop complete messages. Every
//! malformation is a typed [`WireError`]; the decoder never panics and
//! never allocates from an unvalidated length — the length field is
//! bounds-checked against [`MAX_FRAME_BYTES`] *before* any buffer
//! grows, so a hostile 2⁶⁴-byte header costs 24 bytes of buffering,
//! not an allocation.

use snod_persist::{crc32, ByteReader, ByteWriter, Persist, PersistError};

/// Frame magic: distinguishes wire frames from checkpoint files.
pub const WIRE_MAGIC: [u8; 8] = *b"SNODWIRE";

/// Current protocol version.
pub const WIRE_VERSION: u32 = 1;

/// Header length: magic (8) + version (4) + payload length (8) +
/// CRC-32 (4).
pub const WIRE_HEADER_LEN: usize = 24;

/// Hard cap on a frame's payload. A `Reading` is a few dozen bytes; a
/// `Detections` reply over a long run is the largest legitimate frame.
pub const MAX_FRAME_BYTES: u64 = 1 << 22;

/// Typed wire-protocol violations. Modeled on
/// [`snod_persist::PersistError`]: every way a frame can be malformed
/// maps to a distinct variant, and none of them panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The first eight bytes were not [`WIRE_MAGIC`].
    BadMagic,
    /// The frame declares a protocol version this build does not speak.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Version this build speaks.
        supported: u32,
    },
    /// The declared payload length exceeds [`MAX_FRAME_BYTES`].
    Oversized {
        /// Length found in the header.
        len: u64,
    },
    /// The payload did not match the header's CRC-32.
    BadChecksum {
        /// CRC recorded in the header.
        expected: u32,
        /// CRC of the payload as received.
        found: u32,
    },
    /// The CRC matched but the payload did not decode as a message.
    BadPayload(PersistError),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "bad frame magic"),
            WireError::UnsupportedVersion { found, supported } => {
                write!(f, "unsupported wire version {found} (this build speaks {supported})")
            }
            WireError::Oversized { len } => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME_BYTES}-byte cap")
            }
            WireError::BadChecksum { expected, found } => {
                write!(f, "frame checksum mismatch: header says {expected:#010x}, payload is {found:#010x}")
            }
            WireError::BadPayload(e) => write!(f, "frame payload malformed: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<PersistError> for WireError {
    fn from(e: PersistError) -> Self {
        WireError::BadPayload(e)
    }
}

/// One protocol message, client→server or server→client.
///
/// Multi-tenancy is multiplexed per connection through small `handle`
/// integers: each [`Msg::Hello`] opens (or re-attaches to) one tenant
/// and is answered by [`Msg::HelloOk`] carrying the handle — assigned
/// densely in Hello order on that connection, so a pipelining client
/// can predict handles without waiting for the round trip.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// Client → server: open tenant `tenant` on this connection.
    /// `subscribe` requests escalation push frames.
    Hello {
        /// Tenant name (`[A-Za-z0-9_-]{1,64}`).
        tenant: String,
        /// Push live escalations to this connection.
        subscribe: bool,
    },
    /// Client → server: one sensor reading. At-least-once: duplicates
    /// (by `(node, seq)`) are deduplicated server-side, so clients
    /// retransmit freely after reconnects or missing acks.
    Reading {
        /// Tenant handle from [`Msg::HelloOk`].
        handle: u32,
        /// Leaf node id within the tenant's topology.
        node: u32,
        /// 0-based reading index of that leaf's stream.
        seq: u64,
        /// The reading.
        value: Vec<f64>,
    },
    /// Client → server: declares each leaf stream's total length so the
    /// server can drain to quiescence and reply [`Msg::FinishOk`].
    Finish {
        /// Tenant handle.
        handle: u32,
        /// `(node, total readings)` per leaf.
        totals: Vec<(u32, u64)>,
    },
    /// Client → server: request the tenant's full detection list.
    Query {
        /// Tenant handle.
        handle: u32,
    },
    /// Client → server: liveness probe.
    Ping,
    /// Client → server: fault-injection hook — makes the tenant's
    /// worker thread panic so supervision can be exercised end to end.
    /// Rejected unless the daemon was configured to allow it.
    Crash {
        /// Tenant handle.
        handle: u32,
    },
    /// Server → client: reply to [`Msg::Hello`].
    HelloOk {
        /// Handle to use in subsequent frames on this connection.
        handle: u32,
        /// True when the tenant was restored from a checkpoint.
        resumed: bool,
    },
    /// Server → client: ingestion progress. `received` is the
    /// contiguous high-water mark (first missing seq); `durable` is the
    /// mark covered by the last on-disk checkpoint — the client may
    /// drop its retransmit buffer below `durable`, and after a server
    /// crash must replay from `durable`, not `received`.
    Ack {
        /// Tenant handle.
        handle: u32,
        /// `(node, received, durable)` per leaf.
        acks: Vec<(u32, u64, u64)>,
    },
    /// Server → client (subscribers only): a node flagged an outlier.
    Escalation {
        /// Tenant handle.
        handle: u32,
        /// Node that flagged it.
        node: u32,
        /// Stream time of the detection.
        time_ns: u64,
        /// Tier of the flagging node (1 = leaf).
        level: u8,
        /// The flagged value.
        value: Vec<f64>,
    },
    /// Server → client: reply to [`Msg::Query`].
    Detections {
        /// Tenant handle.
        handle: u32,
        /// `(node, time_ns, level, value)` rows in detection order.
        rows: Vec<(u32, u64, u8, Vec<f64>)>,
    },
    /// Server → client: every declared stream total has been ingested,
    /// processed to quiescence and checkpointed.
    FinishOk {
        /// Tenant handle.
        handle: u32,
    },
    /// Server → client: the previous frame was rejected. The connection
    /// stays open unless the error was a framing violation.
    Error {
        /// Machine-readable reason (see `error_code`).
        code: u8,
        /// Human-readable detail.
        message: String,
    },
    /// Server → client: reply to [`Msg::Ping`].
    Pong,
}

/// Error codes carried by [`Msg::Error`].
pub mod error_code {
    /// The frame referenced a handle no Hello on this connection opened.
    pub const UNKNOWN_HANDLE: u8 = 1;
    /// The tenant name was empty, too long or had invalid characters.
    pub const BAD_TENANT_NAME: u8 = 2;
    /// The daemon is at its tenant capacity.
    pub const TENANT_LIMIT: u8 = 3;
    /// Crash frames are not enabled on this daemon.
    pub const CRASH_DISABLED: u8 = 4;
    /// The frame itself was malformed (connection will close).
    pub const MALFORMED_FRAME: u8 = 5;
    /// The reading referenced a node outside the tenant topology, or a
    /// seq at or past a declared stream total.
    pub const BAD_READING: u8 = 6;
}

impl Persist for Msg {
    fn save(&self, w: &mut ByteWriter) {
        match self {
            Msg::Hello { tenant, subscribe } => {
                w.put_u8(0);
                tenant.save(w);
                subscribe.save(w);
            }
            Msg::Reading {
                handle,
                node,
                seq,
                value,
            } => {
                w.put_u8(1);
                handle.save(w);
                node.save(w);
                seq.save(w);
                value.save(w);
            }
            Msg::Finish { handle, totals } => {
                w.put_u8(2);
                handle.save(w);
                totals.save(w);
            }
            Msg::Query { handle } => {
                w.put_u8(3);
                handle.save(w);
            }
            Msg::Ping => w.put_u8(4),
            Msg::Crash { handle } => {
                w.put_u8(5);
                handle.save(w);
            }
            Msg::HelloOk { handle, resumed } => {
                w.put_u8(16);
                handle.save(w);
                resumed.save(w);
            }
            Msg::Ack { handle, acks } => {
                w.put_u8(17);
                handle.save(w);
                acks.save(w);
            }
            Msg::Escalation {
                handle,
                node,
                time_ns,
                level,
                value,
            } => {
                w.put_u8(18);
                handle.save(w);
                node.save(w);
                time_ns.save(w);
                level.save(w);
                value.save(w);
            }
            Msg::Detections { handle, rows } => {
                w.put_u8(19);
                handle.save(w);
                rows.save(w);
            }
            Msg::FinishOk { handle } => {
                w.put_u8(20);
                handle.save(w);
            }
            Msg::Error { code, message } => {
                w.put_u8(21);
                code.save(w);
                message.save(w);
            }
            Msg::Pong => w.put_u8(22),
        }
    }

    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        Ok(match r.get_u8()? {
            0 => Msg::Hello {
                tenant: String::load(r)?,
                subscribe: bool::load(r)?,
            },
            1 => Msg::Reading {
                handle: u32::load(r)?,
                node: u32::load(r)?,
                seq: u64::load(r)?,
                value: Vec::load(r)?,
            },
            2 => Msg::Finish {
                handle: u32::load(r)?,
                totals: Vec::load(r)?,
            },
            3 => Msg::Query {
                handle: u32::load(r)?,
            },
            4 => Msg::Ping,
            5 => Msg::Crash {
                handle: u32::load(r)?,
            },
            16 => Msg::HelloOk {
                handle: u32::load(r)?,
                resumed: bool::load(r)?,
            },
            17 => Msg::Ack {
                handle: u32::load(r)?,
                acks: Vec::load(r)?,
            },
            18 => Msg::Escalation {
                handle: u32::load(r)?,
                node: u32::load(r)?,
                time_ns: u64::load(r)?,
                level: u8::load(r)?,
                value: Vec::load(r)?,
            },
            19 => Msg::Detections {
                handle: u32::load(r)?,
                rows: Vec::load(r)?,
            },
            20 => Msg::FinishOk {
                handle: u32::load(r)?,
            },
            21 => Msg::Error {
                code: u8::load(r)?,
                message: String::load(r)?,
            },
            22 => Msg::Pong,
            _ => return Err(PersistError::Corrupt("unknown wire message tag")),
        })
    }
}

/// Encodes one message as a complete frame (header + payload).
pub fn encode_frame(msg: &Msg) -> Vec<u8> {
    let mut w = ByteWriter::new();
    msg.save(&mut w);
    let payload = w.into_bytes();
    debug_assert!((payload.len() as u64) <= MAX_FRAME_BYTES);
    let mut out = Vec::with_capacity(WIRE_HEADER_LEN + payload.len());
    out.extend_from_slice(&WIRE_MAGIC);
    out.extend_from_slice(&WIRE_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Incremental frame splitter over an unframed byte stream.
///
/// After any `Err` the stream is unsynchronized and the connection must
/// be closed — the protocol resynchronizes by reconnecting, and the
/// at-least-once client replays whatever was in flight.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends received bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as a complete frame. Used by
    /// the server's slow-loris guard: a connection that holds a partial
    /// frame open past the frame deadline is dropped.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pops the next complete message, `Ok(None)` when more bytes are
    /// needed. Errors indicate an unrecoverable framing violation.
    pub fn next_frame(&mut self) -> Result<Option<Msg>, WireError> {
        if self.buf.len() < WIRE_HEADER_LEN {
            if !self.buf.is_empty() && self.buf[..self.buf.len().min(8)] != WIRE_MAGIC[..self.buf.len().min(8)] {
                return Err(WireError::BadMagic);
            }
            return Ok(None);
        }
        if self.buf[..8] != WIRE_MAGIC {
            return Err(WireError::BadMagic);
        }
        let version = u32::from_le_bytes(self.buf[8..12].try_into().expect("4 bytes"));
        if version != WIRE_VERSION {
            return Err(WireError::UnsupportedVersion {
                found: version,
                supported: WIRE_VERSION,
            });
        }
        let len = u64::from_le_bytes(self.buf[12..20].try_into().expect("8 bytes"));
        if len > MAX_FRAME_BYTES {
            return Err(WireError::Oversized { len });
        }
        let len = len as usize;
        if self.buf.len() < WIRE_HEADER_LEN + len {
            return Ok(None);
        }
        let expected = u32::from_le_bytes(self.buf[20..24].try_into().expect("4 bytes"));
        let payload = &self.buf[WIRE_HEADER_LEN..WIRE_HEADER_LEN + len];
        let found = crc32(payload);
        if found != expected {
            return Err(WireError::BadChecksum { expected, found });
        }
        let mut r = ByteReader::new(payload);
        let msg = Msg::load(&mut r)?;
        r.finish().map_err(WireError::BadPayload)?;
        self.buf.drain(..WIRE_HEADER_LEN + len);
        Ok(Some(msg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_msgs() -> Vec<Msg> {
        vec![
            Msg::Hello {
                tenant: "plant-7".into(),
                subscribe: true,
            },
            Msg::Reading {
                handle: 3,
                node: 1,
                seq: 42,
                value: vec![0.1 + 0.2, -1.5e-17],
            },
            Msg::Finish {
                handle: 3,
                totals: vec![(0, 100), (1, 99)],
            },
            Msg::Query { handle: 0 },
            Msg::Ping,
            Msg::Crash { handle: 9 },
            Msg::HelloOk {
                handle: 3,
                resumed: true,
            },
            Msg::Ack {
                handle: 3,
                acks: vec![(0, 10, 8), (1, 7, 7)],
            },
            Msg::Escalation {
                handle: 1,
                node: 4,
                time_ns: 123_456_789,
                level: 2,
                value: vec![0.99],
            },
            Msg::Detections {
                handle: 1,
                rows: vec![(0, 5, 1, vec![0.5, 0.25])],
            },
            Msg::FinishOk { handle: 3 },
            Msg::Error {
                code: error_code::UNKNOWN_HANDLE,
                message: "no such handle".into(),
            },
            Msg::Pong,
        ]
    }

    #[test]
    fn every_message_round_trips() {
        for msg in sample_msgs() {
            let frame = encode_frame(&msg);
            let mut dec = FrameDecoder::new();
            dec.feed(&frame);
            assert_eq!(dec.next_frame().expect("valid"), Some(msg.clone()));
            assert_eq!(dec.next_frame().expect("empty"), None);
            assert_eq!(dec.buffered(), 0);
        }
    }

    #[test]
    fn split_and_merged_feeds_reassemble() {
        let msgs = sample_msgs();
        let stream: Vec<u8> = msgs.iter().flat_map(encode_frame).collect();
        // One byte at a time.
        let mut dec = FrameDecoder::new();
        let mut out = Vec::new();
        for &b in &stream {
            dec.feed(&[b]);
            while let Some(m) = dec.next_frame().expect("valid stream") {
                out.push(m);
            }
        }
        assert_eq!(out, msgs);
        // Everything in one feed.
        let mut dec = FrameDecoder::new();
        dec.feed(&stream);
        let mut out = Vec::new();
        while let Some(m) = dec.next_frame().expect("valid stream") {
            out.push(m);
        }
        assert_eq!(out, msgs);
    }

    #[test]
    fn frame_header_mirrors_persist_envelope_shape() {
        let frame = encode_frame(&Msg::Ping);
        assert_eq!(&frame[..8], b"SNODWIRE");
        assert_eq!(frame.len(), WIRE_HEADER_LEN + 1);
        assert_eq!(WIRE_HEADER_LEN, snod_persist::HEADER_LEN);
    }
}
