//! Shared machinery for the precision/recall experiments
//! (Figures 7, 8, 9 and 10 of the paper).
//!
//! One *run* of an accuracy experiment:
//!
//! 1. builds the §10.2 hierarchy (32 leaves under 3 leader tiers by
//!    default),
//! 2. replays per-sensor streams through **D3** and **MGDD** (separate
//!    simulations over identical streams),
//! 3. maintains exact ground truth for every hierarchy level via
//!    [`crate::harness::RecordingSource`],
//! 4. additionally evaluates the offline **histogram** estimator of the
//!    paper's comparison (equi-depth over the exact union windows,
//!    periodically rebuilt — deliberately favoured, as in the paper),
//! 5. scores precision and recall per `(algorithm, estimator, level)`.
//!
//! Runs are farmed out to threads with `crossbeam`; results are pooled
//! micro-averages over runs, as in the paper's 12-run averages.

use std::collections::HashMap;

use snod_core::pipeline::{Algorithm, OutlierPipeline};
use snod_core::{
    run_fqn, run_mmdew, D3Config, EstimatorConfig, FqnConfig, MgddConfig, MmdewNodeConfig,
    UpdateStrategy,
};
use snod_data::{DataStream, SensorStreams};
use snod_density::{DensityModel, EquiDepthHistogram, GridHistogram};
use snod_outlier::{DistanceOutlierConfig, MdefConfig, MdefDetector, PrecisionRecall};
use snod_simnet::{Hierarchy, NodeId, SimConfig};

use crate::harness::{score_level, value_key, ReadingRecord, RecordingSource};

/// Which estimator produced a score.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EstimatorKind {
    /// The paper's kernel density models (online).
    Kernel,
    /// Equi-depth histograms over the exact windows (offline baseline).
    Histogram,
}

/// Which detection algorithm produced a score.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgorithmKind {
    /// Distance-based distributed detection.
    D3,
    /// MDEF-based multi-granular detection.
    Mgdd,
}

/// Key of one result series: algorithm × estimator × hierarchy level.
pub type SeriesKey = (AlgorithmKind, EstimatorKind, u8);

/// Configuration of one accuracy experiment.
pub struct AccuracyConfig {
    /// Leaf sensors (paper: 32).
    pub leaves: usize,
    /// Leader fan-outs above the leaves (paper reconstruction: 4/2/4).
    pub fanouts: Vec<usize>,
    /// Data dimensionality.
    pub dims: usize,
    /// Sliding window `|W|`.
    pub window: usize,
    /// Kernel sample size `|R|` (= histogram buckets `|B|`).
    pub sample_size: usize,
    /// Sample-propagation fraction `f`.
    pub sample_fraction: f64,
    /// Distance rule for D3 and its truth.
    pub dist_rule: DistanceOutlierConfig,
    /// MDEF rule for MGDD and its truth.
    pub mdef_rule: MdefConfig,
    /// Readings per leaf before scoring starts.
    pub warmup: u64,
    /// Scored readings per leaf.
    pub eval: u64,
    /// Rebuild period (in scored readings per leaf) of the offline
    /// histograms.
    pub hist_refresh: u64,
    /// Independent runs to average over (paper: 12).
    pub runs: u64,
    /// Base RNG seed; run `i` uses `seed + i`.
    pub seed: u64,
    /// Run the histogram baseline too (1-d only).
    pub with_histograms: bool,
    /// Run the D3 pass.
    pub with_d3: bool,
    /// Run the MGDD pass.
    pub with_mgdd: bool,
}

impl AccuracyConfig {
    /// The paper's §10.2 defaults for the 1-d synthetic experiment.
    pub fn paper_defaults_1d() -> Self {
        Self {
            leaves: 32,
            fanouts: vec![4, 2, 4],
            dims: 1,
            window: 10_000,
            sample_size: 500,
            sample_fraction: 0.5,
            dist_rule: DistanceOutlierConfig::new(45.0, 0.01),
            mdef_rule: MdefConfig::new(0.08, 0.01, 3.0).expect("paper parameters are valid"),
            warmup: 10_000,
            eval: 1_000,
            hist_refresh: 100,
            runs: 3,
            seed: 1,
            with_histograms: false,
            with_d3: true,
            with_mgdd: true,
        }
    }
}

/// Pooled results of an accuracy experiment.
#[derive(Debug, Default)]
pub struct AccuracyResults {
    /// Micro-averaged confusion counts per series.
    pub series: HashMap<SeriesKey, PrecisionRecall>,
    /// Total true distance outliers per level (diagnostics).
    pub true_dist: Vec<u64>,
    /// Total true MDEF outliers per level (diagnostics).
    pub true_mdef: Vec<u64>,
    /// Scored readings.
    pub scored: u64,
}

impl AccuracyResults {
    fn merge(&mut self, other: AccuracyResults) {
        for (k, v) in other.series {
            self.series.entry(k).or_default().merge(&v);
        }
        if self.true_dist.len() < other.true_dist.len() {
            self.true_dist.resize(other.true_dist.len(), 0);
            self.true_mdef.resize(other.true_mdef.len(), 0);
        }
        for (a, b) in self.true_dist.iter_mut().zip(other.true_dist.iter()) {
            *a += b;
        }
        for (a, b) in self.true_mdef.iter_mut().zip(other.true_mdef.iter()) {
            *a += b;
        }
        self.scored += other.scored;
    }
}

/// Runs the experiment, parallelising independent runs across threads.
/// `make_stream(run, sensor)` builds sensor `sensor`'s stream for run
/// `run` (must be deterministic in its arguments).
pub fn run_accuracy<F, S>(cfg: &AccuracyConfig, make_stream: F) -> AccuracyResults
where
    F: Fn(u64, usize) -> S + Sync,
    S: DataStream + Send + 'static,
{
    let mut total = AccuracyResults::default();
    let results: Vec<AccuracyResults> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.runs)
            .map(|run| {
                let make_stream = &make_stream;
                scope.spawn(move |_| single_run(cfg, run, make_stream))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("run panicked"))
            .collect()
    })
    .expect("scope");
    for r in results {
        total.merge(r);
    }
    total
}

fn estimator_config(cfg: &AccuracyConfig, seed: u64) -> EstimatorConfig {
    EstimatorConfig::builder()
        .window(cfg.window)
        .sample_size(cfg.sample_size)
        .dimensions(cfg.dims)
        .seed(seed)
        .build()
        .expect("accuracy config is valid")
}

fn single_run<F, S>(cfg: &AccuracyConfig, run: u64, make_stream: &F) -> AccuracyResults
where
    F: Fn(u64, usize) -> S,
    S: DataStream + Send + 'static,
{
    let topo = Hierarchy::balanced(cfg.leaves, &cfg.fanouts).expect("valid hierarchy");
    let sim = SimConfig::default();
    let levels = topo.level_count();
    let readings = cfg.warmup + cfg.eval;
    let mut results = AccuracyResults {
        true_dist: vec![0; levels],
        true_mdef: vec![0; levels],
        ..Default::default()
    };

    let mut diagnostic_records: Option<Vec<ReadingRecord>> = None;

    // ---- D3 over the kernel estimators --------------------------------
    if cfg.with_d3 {
        let d3_cfg = D3Config {
            estimator: estimator_config(cfg, cfg.seed + run * 1_000 + 7),
            rule: cfg.dist_rule,
            sample_fraction: cfg.sample_fraction,
        };
        let mut streams = SensorStreams::generate(cfg.leaves, |i| make_stream(run, i));
        let mut source = RecordingSource::new(
            &mut streams,
            &topo,
            cfg.window,
            cfg.dist_rule,
            cfg.mdef_rule,
            cfg.warmup,
        );
        let pipeline = OutlierPipeline::new(topo.clone(), sim, Algorithm::D3(d3_cfg));
        let report = pipeline.run(&mut source, readings).expect("d3 run");
        let records = std::mem::take(&mut source.records);
        for level in 1..=levels as u8 {
            let detections = report
                .detections_by_level
                .get(&level)
                .map(Vec::as_slice)
                .unwrap_or(&[]);
            let pr = score_level(&records, detections, level, |r| {
                r.dist_truth[(level - 1) as usize]
            });
            results
                .series
                .entry((AlgorithmKind::D3, EstimatorKind::Kernel, level))
                .or_default()
                .merge(&pr);
        }
        diagnostic_records = Some(records);
    }

    // ---- MGDD over the kernel estimators (fresh identical streams) ----
    if cfg.with_mgdd {
        let mgdd_cfg = MgddConfig {
            estimator: estimator_config(cfg, cfg.seed + run * 1_000 + 13),
            rule: cfg.mdef_rule,
            sample_fraction: cfg.sample_fraction,
            updates: UpdateStrategy::EveryAcceptance,
            staleness_bound_ns: None,
        };
        let broadcast_levels: Vec<u8> = (2..=levels as u8).collect();
        let mut streams2 = SensorStreams::generate(cfg.leaves, |i| make_stream(run, i));
        let mut source2 = RecordingSource::new(
            &mut streams2,
            &topo,
            cfg.window,
            cfg.dist_rule,
            cfg.mdef_rule,
            cfg.warmup,
        );
        let pipeline2 = OutlierPipeline::new(
            topo.clone(),
            sim,
            Algorithm::Mgdd(mgdd_cfg, broadcast_levels.clone()),
        );
        let report2 = pipeline2.run(&mut source2, readings).expect("mgdd run");
        let records2 = std::mem::take(&mut source2.records);
        for &level in &broadcast_levels {
            let detections = report2
                .detections_by_level
                .get(&level)
                .map(Vec::as_slice)
                .unwrap_or(&[]);
            let pr = score_level(&records2, detections, level, |r| {
                r.mdef_truth[(level - 1) as usize]
            });
            results
                .series
                .entry((AlgorithmKind::Mgdd, EstimatorKind::Kernel, level))
                .or_default()
                .merge(&pr);
        }
        if diagnostic_records.is_none() {
            diagnostic_records = Some(records2);
        }
    }

    // Truth diagnostics from whichever pass ran first.
    if let Some(records) = &diagnostic_records {
        for r in records {
            for level0 in 0..levels {
                results.true_dist[level0] += r.dist_truth[level0] as u64;
                results.true_mdef[level0] += r.mdef_truth[level0] as u64;
            }
        }
        results.scored = records.len() as u64;
    }

    // ---- Offline histogram baseline ------------------------------------
    if cfg.with_histograms {
        let hist = histogram_pass(cfg, run, make_stream, &topo);
        for (k, v) in hist {
            results.series.entry(k).or_default().merge(&v);
        }
    }
    results
}

/// The paper's histogram comparison: equi-depth histograms with
/// `|B| = |R|` buckets built *offline* over the exact union windows,
/// refreshed every `hist_refresh` readings per leaf, and used to answer
/// the same `N(p, r)` / MDEF queries.
fn histogram_pass<F, S>(
    cfg: &AccuracyConfig,
    run: u64,
    make_stream: &F,
    topo: &Hierarchy,
) -> HashMap<SeriesKey, PrecisionRecall>
where
    F: Fn(u64, usize) -> S,
    S: DataStream + Send + 'static,
{
    let levels = topo.level_count();
    // Exact per-leaf ring windows.
    let mut windows: Vec<std::collections::VecDeque<Vec<f64>>> =
        vec![std::collections::VecDeque::new(); cfg.leaves];
    let mut streams = SensorStreams::generate(cfg.leaves, |i| make_stream(run, i));

    // Ancestors per leaf, as node indices, one per level.
    let ancestors: Vec<Vec<usize>> = topo
        .leaves()
        .iter()
        .map(|&leaf| {
            let mut path = vec![leaf.index()];
            let mut n = leaf;
            while let Some(p) = topo.parent(n) {
                path.push(p.index());
                n = p;
            }
            path
        })
        .collect();
    // Members per node (leaf positions under it).
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); topo.node_count()];
    for (pos, path) in ancestors.iter().enumerate() {
        for &node in path {
            members[node].push(pos);
        }
    }

    enum HistModel {
        One(EquiDepthHistogram),
        Multi(GridHistogram),
    }
    impl HistModel {
        fn as_model(&self) -> &dyn DensityModel {
            match self {
                HistModel::One(h) => h,
                HistModel::Multi(h) => h,
            }
        }
    }
    let mut models: Vec<Option<HistModel>> = (0..topo.node_count()).map(|_| None).collect();
    let rebuild = |windows: &[std::collections::VecDeque<Vec<f64>>],
                   members: &[usize]|
     -> Option<HistModel> {
        if cfg.dims == 1 {
            let mut values: Vec<f64> = Vec::new();
            for &m in members {
                values.extend(windows[m].iter().map(|v| v[0]));
            }
            EquiDepthHistogram::from_window(&values, cfg.sample_size)
                .ok()
                .map(HistModel::One)
        } else {
            let mut pts: Vec<Vec<f64>> = Vec::new();
            for &m in members {
                pts.extend(windows[m].iter().cloned());
            }
            // bins per dim so that total cells ≈ |B| (comparable memory)
            let bins =
                ((cfg.sample_size as f64).powf(1.0 / cfg.dims as f64).round() as usize).max(2);
            GridHistogram::from_window(&pts, cfg.dims, bins)
                .ok()
                .map(HistModel::Multi)
        }
    };

    let detector = MdefDetector::new(cfg.mdef_rule);
    let mut truth =
        crate::harness::TruthTracker::new(topo, cfg.window, cfg.dist_rule, cfg.mdef_rule);
    let mut prs: HashMap<SeriesKey, PrecisionRecall> = HashMap::new();
    let total = cfg.warmup + cfg.eval;
    for seq in 0..total {
        if seq >= cfg.warmup && (seq - cfg.warmup).is_multiple_of(cfg.hist_refresh) {
            // Periodic offline rebuild of every node's histogram from the
            // exact union windows (once per instant, not per leaf).
            for node in 0..topo.node_count() {
                models[node] = rebuild(&windows, &members[node]);
            }
        }
        for leaf in 0..cfg.leaves {
            let v = streams.next_for(leaf);
            let (dist_t, mdef_t) = truth.ingest(leaf, &v);
            if windows[leaf].len() == cfg.window {
                windows[leaf].pop_front();
            }
            windows[leaf].push_back(v.clone());
            if seq < cfg.warmup {
                continue;
            }
            for (level0, &node) in ancestors[leaf].iter().enumerate() {
                let Some(model) = models[node].as_ref() else {
                    continue;
                };
                let level = (level0 + 1) as u8;
                // D3-Histogram: same (D, r) rule on the histogram model,
                // with the threshold density-scaled to the union window
                // (as everywhere else in the hierarchy).
                let n = model
                    .as_model()
                    .neighborhood_count(&v, cfg.dist_rule.radius)
                    .unwrap_or(f64::INFINITY);
                let t_eff =
                    cfg.dist_rule.min_neighbors * model.as_model().window_len() / cfg.window as f64;
                let d_pred = n < t_eff;
                prs.entry((AlgorithmKind::D3, EstimatorKind::Histogram, level))
                    .or_default()
                    .record(d_pred, dist_t[level0]);
                // MGDD-Histogram: MDEF test on the histogram model
                // (leaders only, matching MGDD's granularity levels).
                if level >= 2 {
                    let m_pred = detector
                        .evaluate(model.as_model(), &v)
                        .map(|e| e.is_outlier)
                        .unwrap_or(false);
                    prs.entry((AlgorithmKind::Mgdd, EstimatorKind::Histogram, level))
                        .or_default()
                        .record(m_pred, mdef_t[level0]);
                }
            }
        }
    }
    let _ = levels;
    prs
}

/// One point of a parameter sweep: the swept parameter value and the
/// pooled confusion counts measured there.
#[derive(Debug, Clone)]
pub struct OperatingPoint {
    /// The swept threshold (FQN `k_scale`, MMDEW `threshold_scale`).
    pub parameter: f64,
    /// Micro-averaged precision/recall at that threshold.
    pub pr: PrecisionRecall,
}

/// Configuration of the FQN labeled-contamination experiment: a
/// stationary base stream with **known** injected gross outliers, so
/// ground truth is exact by construction (every injected value is
/// bit-unique and far outside the base band).
pub struct FqnAccuracyConfig {
    /// Leaf sensors.
    pub leaves: usize,
    /// Leader fan-outs above the leaves.
    pub fanouts: Vec<usize>,
    /// Base FQN recipe; `k_scale` is overridden per sweep point.
    pub fqn: FqnConfig,
    /// Readings per leaf before injection starts (window training).
    pub warmup: u64,
    /// Scored readings per leaf.
    pub eval: u64,
    /// One outlier per leaf every this many scored readings.
    pub outlier_every: u64,
    /// The `k_scale` thresholds to sweep.
    pub k_scales: Vec<f64>,
    /// Stream seed.
    pub seed: u64,
}

/// The injected value for `(leaf, seq)`: far above the base band and
/// bit-unique, so detections can be matched back to labels exactly.
fn fqn_injected_value(leaf: u32, seq: u64) -> f64 {
    0.95 + 1e-9 * (leaf as f64 * 131_071.0 + seq as f64)
}

fn fqn_base_value(leaf: u32, seq: u64, seed: u64) -> f64 {
    let h = (leaf as u64 * 1_000_003) ^ seq.wrapping_mul(7_919 + seed);
    0.35 + 0.2 * ((h % 1_009) as f64 / 1_009.0)
}

/// Sweeps `k_scale` and scores leaf-level FQN detections against the
/// injected-contamination labels: a true positive is an injected value
/// flagged by its leaf, a false positive any flagged base value, a
/// false negative an injection that went unflagged.
pub fn run_fqn_accuracy(cfg: &FqnAccuracyConfig) -> Vec<OperatingPoint> {
    let topo = Hierarchy::balanced(cfg.leaves, &cfg.fanouts).expect("valid accuracy hierarchy");
    let readings = cfg.warmup + cfg.eval;
    let warmup = cfg.warmup;
    let outlier_every = cfg.outlier_every;
    let injected = move |seq: u64| seq >= warmup && (seq - warmup).is_multiple_of(outlier_every);
    let mut truth: std::collections::HashSet<Vec<u64>> = std::collections::HashSet::new();
    for &leaf in topo.leaves() {
        for seq in 0..readings {
            if injected(seq) {
                truth.insert(value_key(&[fqn_injected_value(leaf.0, seq)]));
            }
        }
    }

    let seed = cfg.seed;
    cfg.k_scales
        .iter()
        .map(|&k| {
            let fqn = FqnConfig {
                k_scale: k,
                ..cfg.fqn
            };
            let mut source = move |node: NodeId, seq: u64| {
                Some(vec![if injected(seq) {
                    fqn_injected_value(node.0, seq)
                } else {
                    fqn_base_value(node.0, seq, seed)
                }])
            };
            let net = run_fqn(topo.clone(), &fqn, SimConfig::default(), &mut source, readings)
                .expect("fqn accuracy recipe is valid");
            let mut pr = PrecisionRecall::new();
            let mut hit: std::collections::HashSet<Vec<u64>> = std::collections::HashSet::new();
            for (_, app) in net.apps() {
                for d in app.detections.iter().filter(|d| d.level == 1) {
                    let key = value_key(&d.value);
                    if truth.contains(&key) {
                        hit.insert(key);
                    } else {
                        pr.false_positives += 1;
                    }
                }
            }
            pr.true_positives = hit.len() as u64;
            pr.false_negatives = truth.len() as u64 - pr.true_positives;
            OperatingPoint { parameter: k, pr }
        })
        .collect()
}

/// Configuration of the MMDEW change-point experiment: a
/// piecewise-stationary stream whose mean jumps at **known** change
/// points every `segment` readings, scored event-wise — a change is
/// detected if some alarm lands within `tolerance` readings after it.
pub struct MmdewAccuracyConfig {
    /// Leaf sensors.
    pub leaves: usize,
    /// Leader fan-outs above the leaves.
    pub fanouts: Vec<usize>,
    /// Base MMDEW recipe; `threshold_scale` is overridden per point.
    pub node: MmdewNodeConfig,
    /// Segment length: the mean jumps every `segment` readings.
    pub segment: u64,
    /// Readings per leaf.
    pub readings: u64,
    /// Detection window after each change point, in readings.
    pub tolerance: u64,
    /// The `threshold_scale` values to sweep.
    pub threshold_scales: Vec<f64>,
    /// Stream seed.
    pub seed: u64,
}

/// Sweeps `threshold_scale` and scores leaf-level MMDEW alarms against
/// the planted change points, event-wise per leaf: each change point is
/// a true positive if any alarm on that leaf lands in
/// `[cp, cp + tolerance]` (extra alarms inside the window fold into the
/// same event), a false negative otherwise; alarms outside every window
/// are false positives.
pub fn run_mmdew_accuracy(cfg: &MmdewAccuracyConfig) -> Vec<OperatingPoint> {
    let topo = Hierarchy::balanced(cfg.leaves, &cfg.fanouts).expect("valid accuracy hierarchy");
    let sim = SimConfig::default();
    let period = sim.reading_period_ns;
    let change_points: Vec<u64> = (1..)
        .map(|k| k * cfg.segment)
        .take_while(|&cp| cp < cfg.readings)
        .collect();
    let seed = cfg.seed;
    let segment = cfg.segment;

    cfg.threshold_scales
        .iter()
        .map(|&ts| {
            let mut node_cfg = cfg.node;
            node_cfg.detector.threshold_scale = ts;
            let mut source = move |node: NodeId, seq: u64| {
                let h = (node.0 as u64 * 1_000_003) ^ seq.wrapping_mul(7_919 + seed);
                let base = if (seq / segment).is_multiple_of(2) { 0.2 } else { 0.8 };
                Some(vec![base + 0.02 * ((h % 1_009) as f64 / 1_009.0)])
            };
            let net = run_mmdew(topo.clone(), &node_cfg, sim, &mut source, cfg.readings)
                .expect("mmdew accuracy recipe is valid");
            let mut pr = PrecisionRecall::new();
            for &leaf in topo.leaves() {
                let alarm_seqs: Vec<u64> = net
                    .app(leaf)
                    .detections
                    .iter()
                    .map(|d| d.time_ns / period)
                    .collect();
                for &cp in &change_points {
                    let hit = alarm_seqs
                        .iter()
                        .any(|&s| s >= cp && s <= cp + cfg.tolerance);
                    if hit {
                        pr.true_positives += 1;
                    } else {
                        pr.false_negatives += 1;
                    }
                }
                pr.false_positives += alarm_seqs
                    .iter()
                    .filter(|&&s| {
                        !change_points
                            .iter()
                            .any(|&cp| s >= cp && s <= cp + cfg.tolerance)
                    })
                    .count() as u64;
            }
            OperatingPoint { parameter: ts, pr }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use snod_data::GaussianMixtureStream;

    /// A miniature end-to-end accuracy run: small windows, few readings —
    /// checks plumbing, not paper-scale numbers.
    #[test]
    fn miniature_accuracy_run_produces_all_series() {
        let cfg = AccuracyConfig {
            leaves: 4,
            fanouts: vec![2, 2],
            dims: 1,
            window: 300,
            sample_size: 40,
            sample_fraction: 0.5,
            dist_rule: DistanceOutlierConfig::new(5.0, 0.01),
            mdef_rule: MdefConfig::new(0.08, 0.01, 3.0).unwrap(),
            warmup: 300,
            eval: 150,
            hist_refresh: 50,
            runs: 2,
            seed: 9,
            with_histograms: true,
            with_d3: true,
            with_mgdd: true,
        };
        let results = run_accuracy(&cfg, |run, sensor| {
            GaussianMixtureStream::new(1, run * 100 + sensor as u64)
        });
        check_miniature(results);
    }

    #[test]
    fn fqn_sweep_traces_the_precision_recall_tradeoff() {
        let cfg = FqnAccuracyConfig {
            leaves: 4,
            fanouts: vec![2, 2],
            fqn: FqnConfig {
                dimensions: 1,
                window: 128,
                k_scale: 4.0, // overridden per sweep point
                warmup: 32,
                sample_fraction: 0.5,
                seed: 11,
            },
            warmup: 128,
            eval: 400,
            outlier_every: 50,
            k_scales: vec![2.0, 4.0, 12.0],
            seed: 5,
        };
        let points = run_fqn_accuracy(&cfg);
        assert_eq!(points.len(), 3);
        let planted = 4 * (400u64).div_ceil(50);
        for p in &points {
            assert_eq!(
                p.pr.true_positives + p.pr.false_negatives,
                planted,
                "k={}: label accounting drifted",
                p.parameter
            );
        }
        // Loosening the threshold can only add detections: recall is
        // monotone non-increasing in k.
        assert!(points[0].pr.recall() >= points[1].pr.recall());
        assert!(points[1].pr.recall() >= points[2].pr.recall());
        // The operating point the CLI defaults to actually works: the
        // gross injections are far outside the base band.
        let at4 = &points[1].pr;
        assert!(at4.recall() > 0.8, "k=4 recall {:.3}", at4.recall());
        assert!(at4.precision() > 0.8, "k=4 precision {:.3}", at4.precision());
    }

    #[test]
    fn mmdew_sweep_finds_the_planted_changes() {
        let mut node = MmdewNodeConfig::default();
        node.detector.bucket_cap = 16;
        node.detector.min_per_side = 8;
        node.detector.seed = 11;
        let cfg = MmdewAccuracyConfig {
            leaves: 4,
            fanouts: vec![2, 2],
            node,
            segment: 250,
            readings: 1_000,
            tolerance: 100,
            threshold_scales: vec![0.6, 5.0],
            seed: 5,
        };
        let points = run_mmdew_accuracy(&cfg);
        assert_eq!(points.len(), 2);
        let events = 4 * 3; // 4 leaves × change points at 250/500/750
        for p in &points {
            assert_eq!(
                p.pr.true_positives + p.pr.false_negatives,
                events,
                "ts={}: event accounting drifted",
                p.parameter
            );
        }
        // At the default threshold the detector catches the jumps…
        assert!(
            points[0].pr.recall() > 0.6,
            "ts=0.6 recall {:.3}",
            points[0].pr.recall()
        );
        // …and a much stricter threshold can only suppress alarms.
        assert!(points[1].pr.recall() <= points[0].pr.recall());
        assert!(
            points[1].pr.false_positives <= points[0].pr.false_positives,
            "a stricter threshold invented alarms"
        );
    }

    fn check_miniature(results: AccuracyResults) {
        assert_eq!(results.scored, 2 * 4 * 150);
        // All series exist: D3 kernel levels 1–3, MGDD kernel levels 2–3,
        // histogram variants.
        for level in 1..=3u8 {
            assert!(results.series.contains_key(&(
                AlgorithmKind::D3,
                EstimatorKind::Kernel,
                level
            )));
            assert!(results.series.contains_key(&(
                AlgorithmKind::D3,
                EstimatorKind::Histogram,
                level
            )));
        }
        for level in 2..=3u8 {
            assert!(results.series.contains_key(&(
                AlgorithmKind::Mgdd,
                EstimatorKind::Kernel,
                level
            )));
            assert!(results.series.contains_key(&(
                AlgorithmKind::Mgdd,
                EstimatorKind::Histogram,
                level
            )));
        }
    }
}
