//! Calibrated stand-in for the Pacific-Northwest environmental dataset.
//!
//! The paper's second real workload: *"measurements of various natural
//! phenomena, reported by a number of sensors in the Pacific Northwest
//! region … span a two year period, and form time sequences of 35,000
//! values. We report results where the observations at the sensors are
//! streams of pairs (pressure, dew-point)."*  The generator reproduces
//! the Figure 5 marginals —
//!
//! | attribute | min | max | mean | median | σ | skew |
//! |---|---|---|---|---|---|---|
//! | pressure  | 0.422 | 0.848 | 0.677 | 0.681 | 0.063 | −0.399 |
//! | dew-point | 0.113 | 0.282 | 0.213 | 0.212 | 0.027 | −0.182 |
//!
//! — using seasonal + diurnal harmonics, AR(1) weather noise, and
//! occasional multi-reading low-pressure fronts (the source of the mild
//! negative skew). Dew-point is negatively coupled to pressure
//! deviations, so the pair is genuinely two-dimensional.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};

use crate::streams::DataStream;

/// Readings per simulated day (two-year span over 35,000 values ≈ 48/day).
const READINGS_PER_DAY: f64 = 48.0;
/// Readings per simulated year.
const READINGS_PER_YEAR: f64 = 17_500.0;

/// One environmental sensor emitting `(pressure, dew_point)` pairs.
#[derive(Debug, Clone)]
pub struct EnvironmentStream {
    rng: StdRng,
    /// Per-sensor observation noise (instrument jitter), separate from
    /// the weather process so sensors can share a region's weather.
    obs_rng: StdRng,
    obs_noise: f64,
    noise: Normal<f64>,
    /// AR(1) states for the two attributes.
    ar_pressure: f64,
    ar_dew: f64,
    /// Remaining readings of an active low-pressure front.
    front_left: u32,
    /// Remaining readings of a dry-air spell (dew-point dip).
    dry_left: u32,
    emitted: u64,
}

impl EnvironmentStream {
    /// Deterministic stream for one sensor with its own weather process
    /// (sensors built this way are statistically independent).
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            obs_rng: StdRng::seed_from_u64(seed ^ 0x0B5),
            obs_noise: 0.0,
            noise: Normal::new(0.0, 1.0).expect("valid normal"),
            ar_pressure: 0.0,
            ar_dew: 0.0,
            front_left: 0,
            dry_left: 0,
            emitted: 0,
        }
    }

    /// A sensor observing a *shared regional weather process*: every
    /// stream built with the same `region_seed` sees identical weather
    /// (fronts, dry spells, AR noise), differing only by per-instrument
    /// observation noise derived from `sensor_seed`. This is the right
    /// model for sibling sensors in one cell — and what makes the §9
    /// faulty-sensor comparison meaningful (healthy siblings agree).
    pub fn for_region(region_seed: u64, sensor_seed: u64) -> Self {
        let mut s = Self::new(region_seed);
        s.obs_rng = StdRng::seed_from_u64(sensor_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        s.obs_noise = 0.004;
        s
    }

    /// Readings emitted so far.
    pub fn position(&self) -> u64 {
        self.emitted
    }
}

impl DataStream for EnvironmentStream {
    fn dims(&self) -> usize {
        2
    }

    fn next_reading(&mut self) -> Vec<f64> {
        let t = self.emitted as f64;
        self.emitted += 1;

        let seasonal = (2.0 * std::f64::consts::PI * t / READINGS_PER_YEAR).sin();
        let diurnal = (2.0 * std::f64::consts::PI * t / READINGS_PER_DAY).sin();

        // AR(1) weather noise, persistence 0.95.
        self.ar_pressure = 0.95 * self.ar_pressure + 0.013 * self.noise.sample(&mut self.rng);
        self.ar_dew = 0.95 * self.ar_dew + 0.0055 * self.noise.sample(&mut self.rng);

        // Low-pressure fronts: enter rarely, persist for ~a day.
        if self.front_left == 0 && self.rng.gen::<f64>() < 0.002 {
            self.front_left = self.rng.gen_range(24..96);
        }
        let front_dip = if self.front_left > 0 {
            self.front_left -= 1;
            -0.09
        } else {
            0.0
        };

        // Dry-air spells: rare multi-reading dew-point dips — the source
        // of the dew-point's mild *negative* skew (Figure 5: −0.182).
        if self.dry_left == 0 && self.rng.gen::<f64>() < 0.0015 {
            self.dry_left = self.rng.gen_range(24..72);
        }
        let dry_dip = if self.dry_left > 0 {
            self.dry_left -= 1;
            -0.04
        } else {
            0.0
        };

        // Per-instrument observation jitter (zero unless built with
        // `for_region`, whose siblings share everything above).
        let (jp, jd) = if self.obs_noise > 0.0 {
            (
                self.obs_noise * self.noise.sample(&mut self.obs_rng),
                0.5 * self.obs_noise * self.noise.sample(&mut self.obs_rng),
            )
        } else {
            (0.0, 0.0)
        };

        let pressure =
            (0.682 + 0.035 * seasonal + 0.012 * diurnal + self.ar_pressure + front_dip + jp)
                .clamp(0.422, 0.848);
        // Dew-point rises mildly when pressure drops (fronts bring
        // moisture) and dips hard in dry spells.
        let dew = (0.215 + 0.012 * seasonal - 0.006 * diurnal + self.ar_dew
            - 0.22 * (pressure - 0.682).min(0.0)
            + dry_dip
            + jd)
            .clamp(0.113, 0.282);
        vec![pressure, dew]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snod_sketch::DatasetStats;

    fn full_stream(seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut s = EnvironmentStream::new(seed);
        let mut p = Vec::with_capacity(35_000);
        let mut d = Vec::with_capacity(35_000);
        for _ in 0..35_000 {
            let v = s.next_reading();
            p.push(v[0]);
            d.push(v[1]);
        }
        (p, d)
    }

    #[test]
    fn pressure_matches_figure5() {
        let (p, _) = full_stream(42);
        let st = DatasetStats::from_slice(&p).unwrap();
        assert!(st.min >= 0.422 - 1e-9 && st.max <= 0.848 + 1e-9);
        assert!((st.mean - 0.677).abs() < 0.02, "mean {}", st.mean);
        assert!((st.std_dev - 0.063).abs() < 0.025, "σ {}", st.std_dev);
        assert!(st.skew < 0.1, "skew {}", st.skew);
    }

    #[test]
    fn dew_point_matches_figure5() {
        let (_, d) = full_stream(42);
        let st = DatasetStats::from_slice(&d).unwrap();
        assert!(st.min >= 0.113 - 1e-9 && st.max <= 0.282 + 1e-9);
        assert!((st.mean - 0.213).abs() < 0.015, "mean {}", st.mean);
        assert!((st.std_dev - 0.027).abs() < 0.02, "σ {}", st.std_dev);
    }

    #[test]
    fn attributes_are_correlated() {
        // Fronts push pressure down and dew-point up: correlation of the
        // deviations should be clearly negative.
        let (p, d) = full_stream(7);
        let mp = p.iter().sum::<f64>() / p.len() as f64;
        let md = d.iter().sum::<f64>() / d.len() as f64;
        let mut cov = 0.0;
        let mut vp = 0.0;
        let mut vd = 0.0;
        for (x, y) in p.iter().zip(d.iter()) {
            cov += (x - mp) * (y - md);
            vp += (x - mp) * (x - mp);
            vd += (y - md) * (y - md);
        }
        let corr = cov / (vp.sqrt() * vd.sqrt());
        assert!(corr < -0.05, "correlation {corr}");
    }

    #[test]
    fn has_diurnal_structure() {
        // Autocovariance of pressure at one day's lag should be positive
        // and substantial (periodic component survives the noise).
        let (p, _) = full_stream(11);
        let lag = READINGS_PER_DAY as usize;
        let m = p.iter().sum::<f64>() / p.len() as f64;
        let mut num = 0.0;
        let mut den = 0.0;
        for i in 0..p.len() - lag {
            num += (p[i] - m) * (p[i + lag] - m);
        }
        for x in &p {
            den += (x - m) * (x - m);
        }
        assert!(num / den > 0.3, "day-lag autocorrelation {}", num / den);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(full_stream(3).0, full_stream(3).0);
        assert_ne!(full_stream(3).0, full_stream(4).0);
    }

    #[test]
    fn regional_siblings_share_weather_but_not_noise() {
        let mut a = EnvironmentStream::for_region(9, 1);
        let mut b = EnvironmentStream::for_region(9, 2);
        let mut c = EnvironmentStream::for_region(10, 1);
        let mut max_sibling_gap = 0.0f64;
        let mut max_region_gap = 0.0f64;
        for _ in 0..2_000 {
            let (va, vb, vc) = (a.next_reading(), b.next_reading(), c.next_reading());
            max_sibling_gap = max_sibling_gap.max((va[0] - vb[0]).abs());
            max_region_gap = max_region_gap.max((va[0] - vc[0]).abs());
        }
        // Siblings track each other within instrument noise …
        assert!(max_sibling_gap < 0.05, "sibling gap {max_sibling_gap}");
        assert!(max_sibling_gap > 0.0, "siblings identical");
        // … while different regions genuinely diverge.
        assert!(max_region_gap > 0.05, "region gap {max_region_gap}");
    }
}
