//! The paper's kernel bandwidth rule (Section 4).
//!
//! *"we set the bandwidth of the kernel function in the i-th dimension as
//! Bᵢ = √5 · σᵢ · |R|^(−1/(d+4))"* — Scott's rule specialised to the
//! Epanechnikov kernel. σᵢ is the standard deviation of the window values
//! in dimension `i` (estimated online by
//! [`snod-sketch`](https://docs.rs/snod-sketch)'s `WindowedVariance`), and
//! `|R|` is the kernel sample size.

/// Minimum bandwidth used when σ collapses to zero (a constant stream);
/// keeps the estimator well-defined instead of degenerating to Dirac
/// spikes.
pub const MIN_BANDWIDTH: f64 = 1e-9;

/// Bandwidth for one dimension: `√5 · σ · n^(−1/(d+4))`.
///
/// ```
/// use snod_density::scott_bandwidth;
/// let b = scott_bandwidth(0.1, 1_000, 1);
/// assert!((b - 5f64.sqrt() * 0.1 * 1_000f64.powf(-0.2)).abs() < 1e-12);
/// ```
pub fn scott_bandwidth(sigma: f64, sample_size: usize, dims: usize) -> f64 {
    snod_obs::counter!("density.bandwidth.calls").incr();
    let n = sample_size.max(1) as f64;
    let d = dims.max(1) as f64;
    let b = 5f64.sqrt() * sigma * n.powf(-1.0 / (d + 4.0));
    b.max(MIN_BANDWIDTH)
}

/// Per-dimension bandwidths from per-dimension standard deviations.
pub fn scott_bandwidths(sigmas: &[f64], sample_size: usize) -> Vec<f64> {
    let d = sigmas.len();
    sigmas
        .iter()
        .map(|&s| scott_bandwidth(s, sample_size, d))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_with_sample_size() {
        let b1 = scott_bandwidth(0.1, 100, 1);
        let b2 = scott_bandwidth(0.1, 10_000, 1);
        assert!(b2 < b1);
    }

    #[test]
    fn grows_with_sigma() {
        assert!(scott_bandwidth(0.2, 100, 1) > scott_bandwidth(0.1, 100, 1));
    }

    #[test]
    fn exponent_depends_on_dimensionality() {
        // d=1 → n^(−1/5); d=2 → n^(−1/6); the d=2 bandwidth is larger.
        let b1 = scott_bandwidth(0.1, 1_000, 1);
        let b2 = scott_bandwidth(0.1, 1_000, 2);
        assert!(b2 > b1);
    }

    #[test]
    fn zero_sigma_falls_back_to_floor() {
        assert_eq!(scott_bandwidth(0.0, 100, 1), MIN_BANDWIDTH);
    }

    #[test]
    fn vector_version_matches_scalar() {
        let sigmas = [0.05, 0.2];
        let bs = scott_bandwidths(&sigmas, 500);
        assert_eq!(bs.len(), 2);
        assert_eq!(bs[0], scott_bandwidth(0.05, 500, 2));
        assert_eq!(bs[1], scott_bandwidth(0.2, 500, 2));
    }
}
