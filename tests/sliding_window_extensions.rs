//! Integration tests for the extension components in their intended
//! sliding-window roles: the multi-granularity aLOCI forest as a
//! windowed detector, windowed quantiles against exact order statistics
//! under drift, and the time-sliced estimator across regime changes.

use sensor_outliers::core::{EstimatorConfig, TimeSlicedEstimator};
use sensor_outliers::data::{DataStream, DriftingGaussianStream, GaussianMixtureStream};
use sensor_outliers::outlier::{AlociTree, AlociTreeConfig};
use sensor_outliers::sketch::WindowedQuantile;

#[test]
fn aloci_forest_tracks_a_sliding_window() {
    // Run the forest over a sliding window of the synthetic mixture and
    // check that flagged points concentrate in the sparse noise region.
    let window = 3_000usize;
    let mut tree = AlociTree::new(1, AlociTreeConfig::default()).expect("valid config");
    let mut ring: std::collections::VecDeque<f64> = Default::default();
    let mut stream = GaussianMixtureStream::new(1, 31);
    let mut flagged_noise = 0u32;
    let mut flagged_core = 0u32;
    let mut seen_core = 0u32;

    for i in 0..(window + 2_000) {
        let v = stream.next_reading()[0];
        if ring.len() == window {
            let old = ring.pop_front().expect("full ring");
            tree.remove(&[old]);
        }
        if i >= window {
            let outlier = tree.is_outlier(&[v], false);
            if v > 0.6 {
                flagged_noise += outlier as u32;
            } else if [0.30, 0.35, 0.45].iter().any(|m| (v - m).abs() < 0.015) {
                // Cluster cores only: the valley around 0.40 (the 0.35
                // and 0.45 components are 3.3σ apart) is genuinely
                // locally deviant and legitimately flagged.
                seen_core += 1;
                flagged_core += outlier as u32;
            }
        }
        tree.insert(&[v]);
        ring.push_back(v);
    }
    // Core values are rarely flagged; the window keeps moving so the
    // forest must stay consistent through ~5000 insert/removals. The
    // bound is 15%, not the k_σ=3 nominal rate: aLOCI evaluates every
    // point at several granularities over four shifted grids (paper
    // Section 4.2 / Papadimitriou et al.), so the per-point test is a
    // maximum over many correlated MDEF statistics and cell-boundary
    // effects inflate the false-alarm rate well above the single-test
    // Chebyshev level (measured 7.9% on this seed — 69/872 — leaving
    // roughly 2× headroom under the bound; both streams and the forest
    // are fully deterministic, so the measurement is stable).
    assert!(seen_core > 500, "only {seen_core} core readings in eval");
    assert!(
        (flagged_core as f64) < 0.15 * seen_core as f64,
        "{flagged_core}/{seen_core} core values flagged"
    );
    assert!(flagged_noise > 0, "no deep-noise value ever flagged");
}

#[test]
fn windowed_quantiles_follow_regime_shifts() {
    // The drifting Figure-6 stream: the windowed median must move from
    // ~0.3 to ~0.5 within roughly a window of the shift.
    let mut stream = DriftingGaussianStream::new(3);
    let mut wq = WindowedQuantile::new(2_048, 8, 0.02).expect("valid sketch");
    for _ in 0..4_096 {
        wq.push(stream.next_reading()[0]);
    }
    // The 0.03 tolerance is ~8× the measured error (|Δ| ≈ 0.004 on
    // this deterministic stream): wide enough to absorb sketch
    // quantization, tight enough that a regime mix-up (median stuck
    // between 0.3 and 0.5) still fails decisively.
    let before = wq.median().expect("warm sketch");
    assert!((before - 0.3).abs() < 0.03, "regime-A median {before}");
    // 3,000 readings into regime B the 2,048-window is fully post-shift.
    for _ in 0..3_000 {
        wq.push(stream.next_reading()[0]);
    }
    let after = wq.median().expect("warm sketch");
    assert!((after - 0.5).abs() < 0.03, "regime-B median {after}");
}

#[test]
fn time_sliced_estimator_separates_regimes() {
    // Epochs aligned to the drift period: queries over regime-A epochs
    // see mass near 0.3, regime-B epochs near 0.5.
    let mut stream = DriftingGaussianStream::new(9);
    let cfg = EstimatorConfig::builder()
        .window(4_096)
        .sample_size(256)
        .seed(2)
        .build()
        .expect("valid config");
    let mut ts = TimeSlicedEstimator::new(cfg, 4_096, 4).expect("valid slicing");
    for _ in 0..(3 * 4_096) {
        ts.observe(&stream.next_reading()).expect("1-d");
    }
    // Epoch 0 = regime A, epoch 1 = regime B, epoch 2 = regime A.
    // Measured: a ≈ 3865, b ≈ 122, b_high ≈ 3840 on this seed, so the
    // 3500/500 bounds hold with ~350-reading margins while still
    // requiring >85% of each epoch's mass in the right band.
    let a = ts.range_count(&[0.2], &[0.4], 0, 0).expect("query");
    let b = ts.range_count(&[0.2], &[0.4], 1, 1).expect("query");
    assert!(a > 3_500.0, "regime-A epoch count {a}");
    assert!(b < 500.0, "regime-B epoch count {b}");
    let b_high = ts.range_count(&[0.4], &[0.6], 1, 1).expect("query");
    assert!(b_high > 3_500.0, "regime-B high-band count {b_high}");
    // A cross-regime query combines both.
    let both = ts.range_count(&[0.0], &[1.0], 0, 1).expect("query");
    assert!((both - 2.0 * 4_096.0).abs() < 100.0, "combined count {both}");
}
