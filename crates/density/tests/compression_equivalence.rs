//! Property tests for online model compression (DESIGN.md §11):
//!
//! * the centre budget is a hard cap — `|R| ≤ max(budget, 1)` after
//!   `compress_to_budget`, whatever the sample looks like;
//! * total weight is preserved *exactly* for unit-weight models (integer
//!   sums below 2⁵³ are exact in f64);
//! * neighborhood counts move by at most the documented bound
//!   `2 · d · τ_eff · window_len`, where `τ_eff` is the effective
//!   (possibly escalated) merge tolerance reported in
//!   [`CompressionStats`] — on clustered *and* uniform samples;
//! * a compressed (weighted) model still answers batched queries
//!   bit-identically to its own scalar path.

use proptest::prelude::*;

use snod_density::{DensityModel, Kde, Kde1d};

fn unit_rows(d: usize, n: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0.0f64..1.0, d..=d), 8..n)
}

/// Clustered 1-d sample: `k` tight clusters with pseudo-random jitter.
fn clustered(k: usize, per: usize, spread: f64) -> Vec<f64> {
    let mut out = Vec::with_capacity(k * per);
    let mut state = 0x9e37_79b9_u64;
    for c in 0..k {
        let centre = (c as f64 + 0.5) / k as f64;
        for _ in 0..per {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let jitter = ((state % 2_048) as f64 / 2_048.0 - 0.5) * spread;
            out.push(centre + jitter);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Budget is a hard cap and unit weights survive merging exactly,
    /// even on uniform samples that force tolerance escalation.
    #[test]
    fn budget_caps_centres_and_preserves_weight(
        sample in prop::collection::vec(0.0f64..1.0, 8..200),
        budget in 1usize..40,
        tolerance in 0.0f64..0.1,
    ) {
        let n = sample.len();
        let mut kde = Kde1d::from_sample(&sample, 0.1, 1_000.0).unwrap();
        let stats = kde.compress_to_budget(budget, tolerance);
        prop_assert_eq!(stats.before, n);
        prop_assert_eq!(stats.after, kde.sample_size());
        prop_assert!(kde.sample_size() <= budget.max(1));
        prop_assert_eq!(kde.total_weight(), n as f64);
        prop_assert_eq!(
            kde.weights().iter().sum::<f64>(),
            n as f64
        );
        // Centres stay sorted (the merge clamps means into each run's
        // hull precisely to guarantee this).
        prop_assert!(kde.centers().windows(2).all(|w| w[0] <= w[1]));
    }

    /// Multidimensional budget cap and exact weight preservation.
    #[test]
    fn multi_budget_caps_centres_and_preserves_weight(
        rows in unit_rows(3, 120),
        budget in 1usize..30,
        tolerance in 0.0f64..0.1,
    ) {
        let n = rows.len();
        let mut kde = Kde::from_sample(&rows, &[0.1, 0.12, 0.15], 1_000.0).unwrap();
        let stats = kde.compress_to_budget(budget, tolerance);
        prop_assert_eq!(stats.before, n);
        prop_assert!(kde.sample_size() <= budget.max(1));
        prop_assert_eq!(kde.total_weight(), n as f64);
        prop_assert!(kde.column(0).windows(2).all(|w| w[0] <= w[1]));
    }

    /// Accuracy on *clustered* samples: counts move by at most
    /// `2 · d · τ_eff · window_len` per query.
    #[test]
    fn clustered_counts_stay_within_epsilon(
        k in 2usize..5,
        per in 10usize..40,
        queries in prop::collection::vec(0.0f64..1.0, 1..12),
        r in 0.01f64..0.3,
        tolerance in 0.005f64..0.08,
    ) {
        let sample = clustered(k, per, 1e-4);
        let window_len = 1_000.0;
        let full = Kde1d::from_sample(&sample, 0.1, window_len).unwrap();
        let mut packed = full.clone();
        // Budget of k: one centre per cluster is always reachable.
        let stats = packed.compress_to_budget(k, tolerance);
        let eps = 2.0 * 1.0 * stats.effective_tolerance * window_len;
        for &q in &queries {
            let a = full.neighborhood_count(&[q], r).unwrap();
            let b = packed.neighborhood_count(&[q], r).unwrap();
            prop_assert!(
                (a - b).abs() <= eps,
                "count moved {} > ε = {} at q = {} (τ_eff = {})",
                (a - b).abs(), eps, q, stats.effective_tolerance
            );
        }
    }

    /// Accuracy on *uniform* samples: escalation may push `τ_eff` up, but
    /// the reported tolerance still bounds the damage.
    #[test]
    fn uniform_counts_stay_within_epsilon(
        sample in prop::collection::vec(0.0f64..1.0, 30..150),
        queries in prop::collection::vec(0.0f64..1.0, 1..10),
        r in 0.01f64..0.3,
        budget in 8usize..30,
    ) {
        let window_len = 1_000.0;
        let full = Kde1d::from_sample(&sample, 0.1, window_len).unwrap();
        let mut packed = full.clone();
        let stats = packed.compress_to_budget(budget, 0.01);
        prop_assume!(stats.effective_tolerance.is_finite());
        let eps = 2.0 * 1.0 * stats.effective_tolerance * window_len;
        for &q in &queries {
            let a = full.neighborhood_count(&[q], r).unwrap();
            let b = packed.neighborhood_count(&[q], r).unwrap();
            prop_assert!(
                (a - b).abs() <= eps,
                "count moved {} > ε = {} at q = {} (τ_eff = {})",
                (a - b).abs(), eps, q, stats.effective_tolerance
            );
        }
    }

    /// Weighted (compressed) models answer batched queries bit-for-bit
    /// like their scalar path — in one and three dimensions.
    #[test]
    fn compressed_batch_equals_scalar(
        rows in unit_rows(3, 100),
        queries in unit_rows(3, 24),
        r in 0.001f64..0.4,
        budget in 5usize..40,
    ) {
        let mut kde = Kde::from_sample(&rows, &[0.1, 0.12, 0.15], 1_000.0).unwrap();
        kde.compress_to_budget(budget, 0.03);
        let flat: Vec<f64> = queries.iter().flat_map(|q| q.iter().copied()).collect();
        let batched = kde.neighborhood_counts(&flat, r).unwrap();
        for (q, &got) in queries.iter().zip(&batched) {
            let want = kde.neighborhood_count(q, r).unwrap();
            prop_assert!(got.to_bits() == want.to_bits());
        }
    }

    #[test]
    fn compressed_batch_equals_scalar_1d(
        sample in prop::collection::vec(0.0f64..1.0, 8..150),
        queries in prop::collection::vec(0.0f64..1.0, 1..30),
        r in 0.001f64..0.4,
        budget in 3usize..30,
    ) {
        let mut kde = Kde1d::from_sample(&sample, 0.08, 1_000.0).unwrap();
        kde.compress_to_budget(budget, 0.03);
        let batched = kde.neighborhood_counts(&queries, r).unwrap();
        for (&q, &got) in queries.iter().zip(&batched) {
            let want = kde.neighborhood_count(&[q], r).unwrap();
            prop_assert!(got.to_bits() == want.to_bits());
        }
    }
}
