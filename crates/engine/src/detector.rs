//! The runtime-agnostic per-node detector interface.

use snod_persist::{Persist, PersistError};

use crate::message::Wire;
use crate::node::NodeId;
use crate::topology::Hierarchy;

/// A per-node detector state machine, one instance per node.
///
/// Engines are *pure* in the driver's sense: they hold only their own
/// state, observe time exclusively through [`EngineCtx::time_ns`], and
/// interact with the world exclusively through the [`EngineCtx`] they
/// are handed — buffered sends, degradation notes and timer arming. No
/// event queue, no clock, no threads. That is what lets the
/// deterministic simulator and the [`crate::LiveRuntime`] drive the
/// identical code and produce bit-identical outcomes.
pub trait DetectorEngine<P: Wire> {
    /// A new sensor reading arrived at this (leaf) node.
    fn ingest(&mut self, ctx: &mut EngineCtx<'_, P>, value: &[f64]);

    /// A message from `from` was delivered to this node.
    fn on_message(&mut self, ctx: &mut EngineCtx<'_, P>, from: NodeId, payload: P);

    /// A timer armed via [`EngineCtx::set_timer`] fired. The default
    /// ignores it (no current detector arms timers; the hook exists so
    /// periodic maintenance can move out of the reading path).
    fn on_timer(&mut self, _ctx: &mut EngineCtx<'_, P>, _timer: u64) {}

    /// Serializes this engine's complete state. The default defers to
    /// the engine's [`Persist`] implementation.
    fn checkpoint(&self) -> Vec<u8>
    where
        Self: Persist,
    {
        Persist::to_bytes(self)
    }

    /// Rebuilds an engine from [`DetectorEngine::checkpoint`] bytes.
    fn restore(bytes: &[u8]) -> Result<Self, PersistError>
    where
        Self: Sized + Persist,
    {
        Persist::from_bytes(bytes)
    }
}

/// The engine's window onto the network during a callback.
pub struct EngineCtx<'a, P> {
    /// The node the callback runs on.
    pub node: NodeId,
    /// Current stream time (simulated or live-monotonic, in ns).
    pub time_ns: u64,
    topo: &'a Hierarchy,
    outbox: Vec<(NodeId, P, bool)>,
    timers: Vec<(u64, u64)>,
    degraded_scores: u64,
    local_fallbacks: u64,
}

impl<'a, P> EngineCtx<'a, P> {
    /// Builds the context one driver callback runs under. Driver
    /// plumbing — applications receive contexts, they never build them.
    pub fn new(node: NodeId, time_ns: u64, topo: &'a Hierarchy) -> Self {
        Self {
            node,
            time_ns,
            topo,
            outbox: Vec::new(),
            timers: Vec::new(),
            degraded_scores: 0,
            local_fallbacks: 0,
        }
    }

    /// Consumes the context into the callback's recorded side effects
    /// (driver plumbing, the post phase's input).
    pub fn into_out(self) -> CtxOut<P> {
        CtxOut {
            outbox: self.outbox,
            timers: self.timers,
            degraded_scores: self.degraded_scores,
            local_fallbacks: self.local_fallbacks,
        }
    }

    /// The hierarchy (read-only).
    pub fn topology(&self) -> &Hierarchy {
        self.topo
    }

    /// This node's leader, `None` at the root.
    pub fn parent(&self) -> Option<NodeId> {
        self.topo.parent(self.node)
    }

    /// This node's children.
    pub fn children(&self) -> &[NodeId] {
        self.topo.children(self.node)
    }

    /// This node's tier (1 = leaf).
    pub fn level(&self) -> u8 {
        self.topo.level_of(self.node)
    }

    /// Queues `payload` for delivery to `to`.
    pub fn send(&mut self, to: NodeId, payload: P) {
        self.outbox.push((to, payload, false));
    }

    /// Queues `payload` for acknowledged delivery to `to`: with
    /// [`crate::SimConfig::reliability`] enabled the engine retransmits
    /// on timeout until the receiver acks, and the receiver suppresses
    /// duplicate deliveries of the same message id. With reliability
    /// `None` this is exactly [`EngineCtx::send`].
    pub fn send_reliable(&mut self, to: NodeId, payload: P) {
        self.outbox.push((to, payload, true));
    }

    /// Queues `payload` for the parent; returns `false` at the root.
    pub fn send_parent(&mut self, payload: P) -> bool {
        match self.parent() {
            Some(p) => {
                self.send(p, payload);
                true
            }
            None => false,
        }
    }

    /// [`EngineCtx::send_reliable`] to the parent; returns `false` at
    /// the root.
    pub fn send_parent_reliable(&mut self, payload: P) -> bool {
        match self.parent() {
            Some(p) => {
                self.send_reliable(p, payload);
                true
            }
            None => false,
        }
    }

    /// Queues `payload` for every child (cloned per child).
    pub fn send_children(&mut self, payload: P)
    where
        P: Clone,
    {
        for &c in self.topo.children(self.node) {
            self.outbox.push((c, payload.clone(), false));
        }
    }

    /// [`EngineCtx::send_reliable`] to every child (cloned per child).
    pub fn send_children_reliable(&mut self, payload: P)
    where
        P: Clone,
    {
        for &c in self.topo.children(self.node) {
            self.outbox.push((c, payload.clone(), true));
        }
    }

    /// Arms a one-shot timer: `delay_ns` from now the driver calls
    /// [`DetectorEngine::on_timer`] on this node with `id`. Timers ride
    /// the driver's own wheel (the event queue in the simulator, the
    /// monotonic wheel in the live runtime) and are suppressed while the
    /// node is crashed, like any other callback.
    pub fn set_timer(&mut self, delay_ns: u64, id: u64) {
        self.timers.push((delay_ns, id));
    }

    /// Records that this node scored against a stale (last-known) child
    /// model instead of a fresh one — graceful degradation, surfaced in
    /// [`crate::NetStats::degraded_scores`].
    pub fn note_degraded_score(&mut self) {
        self.degraded_scores += 1;
    }

    /// Records that this node fell back to local-only detection because
    /// its upstream model source went silent — surfaced in
    /// [`crate::NetStats::local_fallbacks`].
    pub fn note_local_fallback(&mut self) {
        self.local_fallbacks += 1;
    }
}

/// What one callback produced: queued sends, armed timers and
/// degradation counters. Driver plumbing — collected by the parallel
/// phase, replayed by the post phase.
pub struct CtxOut<P> {
    pub(crate) outbox: Vec<(NodeId, P, bool)>,
    pub(crate) timers: Vec<(u64, u64)>,
    pub(crate) degraded_scores: u64,
    pub(crate) local_fallbacks: u64,
}

impl<P> Default for CtxOut<P> {
    fn default() -> Self {
        Self {
            outbox: Vec::new(),
            timers: Vec::new(),
            degraded_scores: 0,
            local_fallbacks: 0,
        }
    }
}
