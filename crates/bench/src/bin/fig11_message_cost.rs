//! **Figure 11**: number of messages per second in the network
//! (log-scale) while scaling the number of nodes — Centralized vs MGDD
//! vs D3.
//!
//! Paper setup (§10.3): each sensor generates one reading per second;
//! `|W| = 10,240`, `|R| = 1,024`, `f = 0.25`. Only the incremental
//! sample-propagation traffic is counted for D3/MGDD (*"we do not
//! account for the messages sent when a local outlier is identified,
//! since these are infrequent"*) — we run on outlier-free uniform
//! streams, so the accounting matches automatically.
//!
//! To keep the largest grids tractable the default run scales `|W|` and
//! `|R|` down by 8 (the acceptance rate, and therefore every message
//! rate, depends only on the ratio `|R|/|W|` once past warm-up).
//! Knobs: `FIG_WINDOW` (default 1280), `FIG_SAMPLE` (default 128),
//! `FIG_READINGS` (default 3·window), `FIG_MAX_SIDE` (default 64).

use snod_core::pipeline::{Algorithm, OutlierPipeline};
use snod_core::{D3Config, EstimatorConfig, MgddConfig, UpdateStrategy};
use snod_outlier::{DistanceOutlierConfig, MdefConfig};
use snod_simnet::{Hierarchy, NodeId, SimConfig};

use snod_bench::obs_report;
use snod_bench::report::Table;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Outlier-free uniform stream: every value is well-supported, so the
/// only traffic is sample propagation (and MGDD's model updates).
fn quiet_source(node: NodeId, seq: u64) -> Option<Vec<f64>> {
    let h = node.0 as u64 * 1_000_003 + seq * 7_919;
    Some(vec![0.3 + 0.2 * ((h % 1_000) as f64 / 1_000.0)])
}

fn main() {
    let window = env_u64("FIG_WINDOW", 1_280) as usize;
    let sample = env_u64("FIG_SAMPLE", 128) as usize;
    let readings = env_u64("FIG_READINGS", 6 * window as u64);
    let max_side = env_u64("FIG_MAX_SIDE", 64);

    let est = EstimatorConfig::builder()
        .window(window)
        .sample_size(sample)
        .seed(11)
        .build()
        .expect("valid config");
    let f = 0.25;

    println!(
        "Figure 11 — messages per second vs number of nodes\n\
         |W|={window}, |R|={sample}, f={f}, 1 reading/s/sensor, {readings} readings/leaf\n"
    );
    let mut t = Table::new([
        "nodes",
        "leaves",
        "centralized msg/s",
        "MGDD msg/s",
        "D3 msg/s",
        "cent/D3",
        "cent mJ/s",
        "D3 mJ/s",
    ]);

    let mut phases: Vec<(String, snod_obs::MetricsSnapshot)> = Vec::new();
    let mut side = 4u64;
    while side <= max_side {
        let topo = Hierarchy::virtual_grid(side as usize).expect("grid");
        let nodes = topo.node_count();
        let leaves = topo.leaves().len();
        let sim = SimConfig::default();

        // Centralized: every reading relayed hop-by-hop to the root.
        // (Only message *rates* matter here, so the root's window is
        // scaled with |W| like everything else.)
        let cent = OutlierPipeline::new(
            topo.clone(),
            sim,
            Algorithm::Centralized(DistanceOutlierConfig::new(45.0, 0.01), window),
        );
        let ((cent_rate, cent_mj_per_s), cent_metrics) = obs_report::phase(|| {
            let mut src = quiet_source;
            let report = cent.run(&mut src, readings).expect("centralized run");
            (
                report.stats.messages_per_second(),
                report.stats.total_joules() * 1e3 * 1e9 / report.stats.elapsed_ns as f64,
            )
        });
        phases.push((format!("centralized.n{nodes}"), cent_metrics));

        // D3.
        let d3 = OutlierPipeline::new(
            topo.clone(),
            sim,
            Algorithm::D3(D3Config {
                estimator: est,
                rule: DistanceOutlierConfig::new(45.0, 0.01),
                sample_fraction: f,
            }),
        );
        let ((d3_rate, d3_mj_per_s), d3_metrics) = obs_report::phase(|| {
            let mut src = quiet_source;
            let report = d3.run(&mut src, readings).expect("d3 run");
            let energy = report.stats.total_joules() * 1e3 * 1e9 / report.stats.elapsed_ns as f64;
            // The paper's accounting: "we do not account for the messages
            // sent when a local outlier is identified, since these are
            // infrequent" — every non-root detection sent one message.
            let root_level = topo.level_count() as u8;
            let outlier_msgs: usize = report
                .detections_by_level
                .iter()
                .filter(|(&l, _)| l != root_level)
                .map(|(_, v)| v.len())
                .sum();
            let msgs = report.stats.messages.saturating_sub(outlier_msgs as u64);
            (msgs as f64 * 1e9 / report.stats.elapsed_ns as f64, energy)
        });
        phases.push((format!("d3.n{nodes}"), d3_metrics));

        // MGDD with global models at every leader tier (the configuration
        // the accuracy experiments use).
        let levels: Vec<u8> = (2..=topo.level_count() as u8).collect();
        let mgdd = OutlierPipeline::new(
            topo.clone(),
            sim,
            Algorithm::Mgdd(
                MgddConfig {
                    estimator: est,
                    rule: MdefConfig::new(0.08, 0.01, 3.0).expect("valid rule"),
                    sample_fraction: f,
                    updates: UpdateStrategy::EveryAcceptance,
                    staleness_bound_ns: None,
                },
                levels,
            ),
        );
        let (mgdd_rate, mgdd_metrics) = obs_report::phase(|| {
            let mut src = quiet_source;
            let report = mgdd.run(&mut src, readings).expect("mgdd run");
            report.stats.messages_per_second()
        });
        phases.push((format!("mgdd.n{nodes}"), mgdd_metrics));

        t.row([
            nodes.to_string(),
            leaves.to_string(),
            format!("{cent_rate:.1}"),
            format!("{mgdd_rate:.1}"),
            format!("{d3_rate:.1}"),
            format!("{:.0}x", cent_rate / d3_rate.max(1e-9)),
            format!("{cent_mj_per_s:.2}"),
            format!("{d3_mj_per_s:.3}"),
        ]);
        side *= 2;
    }
    println!("{}", t.render());
    // Per-phase observability breakdown (message counters, retry
    // machinery, model-rebuild spans) per algorithm and grid size.
    obs_report::write_phases("FIG11_metrics.json", &phases).expect("write FIG11_metrics.json");
    println!("per-phase metrics: FIG11_metrics.json ({} phases)", phases.len());
}
