//! Ablations of the estimator design choices (single-sensor setting):
//!
//! 1. **Kernel choice** — the paper claims *"the choice of the kernel
//!    function is not significant for the results of the approximation"*
//!    (Section 4) and picks Epanechnikov for its integrability. We
//!    measure `(D, r)`-outlier precision/recall with Epanechnikov,
//!    Gaussian and uniform kernels under identical bandwidths.
//! 2. **Bandwidth rule** — sweep a multiplier on the paper's
//!    `√5·σ·|R|^(−1/(d+4))` to show the rule sits near the accuracy
//!    sweet spot (under-smoothing destroys precision, over-smoothing
//!    destroys recall).
//!
//! Knobs: `FIG_WINDOW` (default 10000), `FIG_EVAL` (default 2000),
//! `FIG_SEEDS` (default 3).

use std::collections::VecDeque;

use snod_bench::harness::TruthIndex;
use snod_bench::report::{pct, Table};
use snod_data::{DataStream, GaussianMixtureStream};
use snod_density::{
    scott_bandwidth, DensityModel, EpanechnikovKernel, GaussianKernel, Kde1d, UniformKernel,
};
use snod_outlier::{DistanceOutlierConfig, MdefConfig, PrecisionRecall};
use snod_sketch::{ChainSampler, WindowedVariance};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[derive(Clone, Copy)]
enum KernelChoice {
    Epanechnikov,
    Gaussian,
    Uniform,
}

impl KernelChoice {
    fn name(self) -> &'static str {
        match self {
            KernelChoice::Epanechnikov => "epanechnikov",
            KernelChoice::Gaussian => "gaussian",
            KernelChoice::Uniform => "uniform",
        }
    }
}

/// One single-sensor pass: returns (precision, recall) of the
/// `(45, 0.01)` rule against the exact windowed ground truth.
fn run_pass(
    seed: u64,
    window: usize,
    sample_size: usize,
    eval: usize,
    kernel: KernelChoice,
    bandwidth_scale: f64,
) -> PrecisionRecall {
    let rule = DistanceOutlierConfig::new(45.0, 0.01);
    let mdef_rule = MdefConfig::new(0.08, 0.01, 3.0).expect("valid");
    let mut stream = GaussianMixtureStream::new(1, seed);
    let mut sampler = ChainSampler::<f64>::new(window, sample_size, seed ^ 0xAB).expect("valid");
    let mut sigma = WindowedVariance::new(window, 0.2).expect("valid");
    let mut truth = TruthIndex::new(&rule, &mdef_rule);
    let mut ring: VecDeque<(u64, f64)> = VecDeque::new();
    let mut pr = PrecisionRecall::new();

    for i in 0..(window + eval) as u64 {
        let v = stream.next_reading()[0];
        if ring.len() == window {
            let (id, old) = ring.pop_front().expect("full ring");
            truth.remove(id, &[old]);
        }
        truth.insert(i, &[v]);
        ring.push_back((i, v));

        if i >= window as u64 {
            let bw = bandwidth_scale * scott_bandwidth(sigma.std_dev(), sample_size, 1);
            let centers = sampler.sample();
            let n = match kernel {
                KernelChoice::Epanechnikov => {
                    Kde1d::new(centers, bw, window as f64, EpanechnikovKernel)
                        .and_then(|m| m.neighborhood_count(&[v], rule.radius))
                }
                KernelChoice::Gaussian => Kde1d::new(centers, bw, window as f64, GaussianKernel)
                    .and_then(|m| m.neighborhood_count(&[v], rule.radius)),
                KernelChoice::Uniform => Kde1d::new(centers, bw, window as f64, UniformKernel)
                    .and_then(|m| m.neighborhood_count(&[v], rule.radius)),
            }
            .expect("model built");
            let predicted = n < rule.min_neighbors;
            let actual = truth.is_distance_outlier(&[v], &rule);
            pr.record(predicted, actual);
        }
        sampler.push(v);
        sigma.push(v);
    }
    pr
}

fn main() {
    let window = env_u64("FIG_WINDOW", 10_000) as usize;
    let eval = env_u64("FIG_EVAL", 2_000) as usize;
    let seeds = env_u64("FIG_SEEDS", 3);
    let sample_size = window / 20;

    println!(
        "Estimator ablations — 1-d synthetic, |W|={window}, |R|={sample_size}, \
         (45, 0.01)-outliers, {seeds} seeds\n"
    );

    println!("1. kernel choice (paper §4: 'not significant'):");
    let mut t = Table::new(["kernel", "precision", "recall"]);
    for kernel in [
        KernelChoice::Epanechnikov,
        KernelChoice::Gaussian,
        KernelChoice::Uniform,
    ] {
        let mut total = PrecisionRecall::new();
        for s in 0..seeds {
            total.merge(&run_pass(s, window, sample_size, eval, kernel, 1.0));
        }
        t.row([
            kernel.name().into(),
            pct(total.precision()),
            pct(total.recall()),
        ]);
    }
    println!("{}", t.render());

    println!("2. bandwidth multiplier on √5·σ·|R|^(−1/5):");
    let mut t = Table::new(["multiplier", "precision", "recall"]);
    for &m in &[0.25f64, 0.5, 1.0, 2.0, 4.0] {
        let mut total = PrecisionRecall::new();
        for s in 0..seeds {
            total.merge(&run_pass(
                s,
                window,
                sample_size,
                eval,
                KernelChoice::Epanechnikov,
                m,
            ));
        }
        t.row([format!("{m}×"), pct(total.precision()), pct(total.recall())]);
    }
    println!("{}", t.render());

    println!(
        "3. summary family at equal memory budget (|R| numbers): online kernel\n\
         sample vs offline equi-depth histogram vs offline wavelet synopsis:"
    );
    let mut t = Table::new(["estimator", "precision", "recall"]);
    for family in [
        "kernel (online)",
        "equi-depth (offline)",
        "wavelet (offline)",
    ] {
        let mut total = PrecisionRecall::new();
        for s in 0..seeds {
            total.merge(&run_family(s, window, sample_size, eval, family));
        }
        t.row([family.into(), pct(total.precision()), pct(total.recall())]);
    }
    println!("{}", t.render());
}

/// Compares summary families on the same task. The offline families get
/// the exact window (as the paper grants its histogram baseline) with a
/// memory budget of `|R|` numbers.
fn run_family(
    seed: u64,
    window: usize,
    sample_size: usize,
    eval: usize,
    family: &str,
) -> PrecisionRecall {
    use snod_density::{EquiDepthHistogram, WaveletHistogram};
    let rule = DistanceOutlierConfig::new(45.0, 0.01);
    let mdef_rule = MdefConfig::new(0.08, 0.01, 3.0).expect("valid");
    let mut stream = GaussianMixtureStream::new(1, seed);
    let mut sampler = ChainSampler::<f64>::new(window, sample_size, seed ^ 0xAB).expect("valid");
    let mut sigma = WindowedVariance::new(window, 0.2).expect("valid");
    let mut truth = TruthIndex::new(&rule, &mdef_rule);
    let mut ring: VecDeque<(u64, f64)> = VecDeque::new();
    let mut pr = PrecisionRecall::new();
    // Offline summaries are rebuilt periodically, as in Figure 7's
    // histogram pass.
    let refresh = 100u64;
    let mut offline: Option<Box<dyn DensityModel>> = None;

    for i in 0..(window + eval) as u64 {
        let v = stream.next_reading()[0];
        if ring.len() == window {
            let (id, old) = ring.pop_front().expect("full ring");
            truth.remove(id, &[old]);
        }
        truth.insert(i, &[v]);
        ring.push_back((i, v));

        if i >= window as u64 {
            let n = match family {
                "kernel (online)" => {
                    let bw = scott_bandwidth(sigma.std_dev(), sample_size, 1);
                    Kde1d::new(sampler.sample(), bw, window as f64, EpanechnikovKernel)
                        .and_then(|m| m.neighborhood_count(&[v], rule.radius))
                        .expect("model built")
                }
                _ => {
                    if (i - window as u64).is_multiple_of(refresh) || offline.is_none() {
                        let values: Vec<f64> = ring.iter().map(|(_, x)| *x).collect();
                        offline = Some(if family.starts_with("equi-depth") {
                            Box::new(
                                EquiDepthHistogram::from_window(&values, sample_size)
                                    .expect("non-empty window"),
                            )
                        } else {
                            Box::new(
                                WaveletHistogram::from_window(&values, 10, sample_size)
                                    .expect("non-empty window"),
                            )
                        });
                    }
                    offline
                        .as_ref()
                        .expect("just built")
                        .neighborhood_count(&[v], rule.radius)
                        .expect("1-d query")
                }
            };
            pr.record(
                n < rule.min_neighbors,
                truth.is_distance_outlier(&[v], &rule),
            );
        }
        sampler.push(v);
        sigma.push(v);
    }
    pr
}
