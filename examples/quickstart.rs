//! Quickstart: online outlier detection on a single sensor stream.
//!
//! Builds the paper's per-sensor state — a chain sample plus a streaming
//! σ estimate, materialised into an Epanechnikov kernel density model —
//! and flags `(D, r)`-outliers in a sliding window, one pass, bounded
//! memory.
//!
//! Run with: `cargo run --release --example quickstart`

use sensor_outliers::core::{EstimatorConfig, SensorEstimator};
use sensor_outliers::data::{DataStream, GaussianMixtureStream};
use sensor_outliers::outlier::DistanceOutlierConfig;

fn main() {
    // The paper's defaults: |W| = 10,000, |R| = 0.05·|W|.
    let cfg = EstimatorConfig::builder()
        .window(10_000)
        .sample_size(500)
        .seed(7)
        .build()
        .expect("valid configuration");
    let mut estimator = SensorEstimator::new(cfg);

    // (45, 0.01)-outliers: flag a reading when fewer than 45 of the last
    // 10,000 readings lie within ±0.01 of it.
    let rule = DistanceOutlierConfig::new(45.0, 0.01);

    // The paper's synthetic workload: three Gaussian clusters plus 0.5%
    // uniform noise in [0.5, 1] — the noise is what we want to catch.
    let mut stream = GaussianMixtureStream::new(1, 42);

    let mut flagged = 0u32;
    let mut noise_seen = 0u32;
    for i in 0..30_000u32 {
        let reading = stream.next_reading();
        // Warm-up: let the window fill before trusting verdicts.
        if i >= 10_000 {
            let is_outlier = estimator
                .is_distance_outlier_scaled(&reading, &rule)
                .expect("estimator has data");
            // Ground truth by construction: noise is drawn from [0.5, 1]
            // (the cluster tails reach ~0.57, so the label is approximate
            // in the overlap zone).
            let is_noise = reading[0] >= 0.5;
            noise_seen += is_noise as u32;
            if is_outlier {
                flagged += 1;
                println!(
                    "reading {:>6}: {:.4} flagged as outlier (injected noise: {})",
                    i, reading[0], is_noise
                );
            }
        }
        estimator.observe(&reading).expect("1-d reading");
    }

    println!(
        "\n{flagged} outliers flagged (injected noise plus cluster-fringe values); \
         {noise_seen} noise values were injected."
    );
    println!(
        "estimator memory: {} bytes (sample + variance sketch, 2 B/number)",
        estimator.memory_bytes(2)
    );
}
