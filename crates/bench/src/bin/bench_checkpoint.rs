//! Timing and size snapshot for the checkpoint/restore subsystem,
//! written to `BENCH_checkpoint.json` in the working directory.
//!
//! Methodology matches `bench_kde_snapshot`: every measurement is the
//! best wall-clock time over several runs. For each algorithm × fleet
//! size the harness runs a seeded workload to its horizon, then
//! measures the full-network snapshot (`Network::checkpoint`, every
//! sketch, density model and queue serialized behind the checksummed
//! envelope) and the decode-all-then-commit restore into a fresh
//! network. Sizes document how the format scales with fleet size;
//! ratios are host-independent.

use std::hint::black_box;
use std::time::Instant;

use snod_core::{
    build_d3_network, build_mgdd_network, D3Config, EstimatorConfig, MgddConfig, UpdateStrategy,
};
use snod_outlier::{DistanceOutlierConfig, MdefConfig};
use snod_simnet::{FaultPlan, Hierarchy, NodeId, SimConfig};

const RUNS: usize = 5;
const READINGS: u64 = 400;

fn best_secs<F: FnMut()>(mut f: F) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..RUNS {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn source(node: NodeId, seq: u64) -> Option<Vec<f64>> {
    let h = node.0 as u64 * 1_000_003 + seq * 7_919;
    Some(vec![0.3 + 0.2 * ((h % 1_009) as f64 / 1_009.0)])
}

fn estimator() -> EstimatorConfig {
    EstimatorConfig::builder()
        .window(300)
        .sample_size(50)
        .seed(7)
        .build()
        .unwrap()
}

/// One measured cell: `(checkpoint bytes, node count, encode s, restore s)`.
fn d3_cell(leaves: usize) -> (usize, usize, f64, f64) {
    let topo = Hierarchy::balanced(leaves, &[2, 2]).unwrap();
    let nodes = topo.node_count();
    let cfg = D3Config {
        estimator: estimator(),
        rule: DistanceOutlierConfig::new(8.0, 0.02),
        sample_fraction: 0.5,
    };
    let build = || {
        build_d3_network(topo.clone(), &cfg, SimConfig::default(), FaultPlan::none()).unwrap()
    };
    let mut net = build();
    net.run(&mut source, READINGS);
    let bytes = net.checkpoint();
    let encode = best_secs(|| {
        black_box(net.checkpoint());
    });
    let mut target = build();
    let restore = best_secs(|| {
        target.restore(black_box(&bytes)).unwrap();
    });
    (bytes.len(), nodes, encode, restore)
}

fn mgdd_cell(leaves: usize) -> (usize, usize, f64, f64) {
    let topo = Hierarchy::balanced(leaves, &[2, 2]).unwrap();
    let nodes = topo.node_count();
    let top = topo.level_count() as u8;
    let cfg = MgddConfig {
        estimator: estimator(),
        rule: MdefConfig::new(0.08, 0.01, 3.0).unwrap(),
        sample_fraction: 0.75,
        updates: UpdateStrategy::EveryAcceptance,
        staleness_bound_ns: Some(30_000_000_000),
    };
    let build = || {
        build_mgdd_network(topo.clone(), &cfg, SimConfig::default(), FaultPlan::none(), &[top])
            .unwrap()
    };
    let mut net = build();
    net.run(&mut source, READINGS);
    let bytes = net.checkpoint();
    let encode = best_secs(|| {
        black_box(net.checkpoint());
    });
    let mut target = build();
    let restore = best_secs(|| {
        target.restore(black_box(&bytes)).unwrap();
    });
    (bytes.len(), nodes, encode, restore)
}

fn cell_json(label: &str, (bytes, nodes, encode, restore): (usize, usize, f64, f64)) -> String {
    format!(
        "    \"{label}\": {{\"bytes\": {bytes}, \"nodes\": {nodes}, \
         \"bytes_per_node\": {per}, \"encode_secs\": {encode:.6}, \
         \"restore_secs\": {restore:.6}, \"encode_mb_s\": {emb:.1}, \
         \"restore_mb_s\": {rmb:.1}}}",
        per = bytes / nodes,
        emb = bytes as f64 / encode / 1e6,
        rmb = bytes as f64 / restore / 1e6,
    )
}

fn main() {
    let cells = [
        ("d3_leaves4", d3_cell(4)),
        ("d3_leaves16", d3_cell(16)),
        ("mgdd_leaves4", mgdd_cell(4)),
        ("mgdd_leaves16", mgdd_cell(16)),
    ];
    let body: Vec<String> = cells
        .iter()
        .map(|(label, cell)| cell_json(label, *cell))
        .collect();
    let json = format!(
        "{{\n  \"methodology\": \"best of {RUNS} runs after a {READINGS}-reading warm-up; \
         full-network snapshot + decode-all-then-commit restore\",\n  \"cells\": {{\n{}\n  }}\n}}\n",
        body.join(",\n")
    );
    std::fs::write("BENCH_checkpoint.json", &json).expect("write BENCH_checkpoint.json");
    print!("{json}");
    for (label, (bytes, nodes, encode, restore)) in cells {
        eprintln!(
            "{label}: {bytes} B over {nodes} nodes, encode {:.2} ms, restore {:.2} ms",
            encode * 1e3,
            restore * 1e3,
        );
    }
}
