//! Deterministic fault injection.
//!
//! The paper's evaluation assumes a benign network; real deployments see
//! crashes, delayed and duplicated frames, loss bursts and dead sensors.
//! A [`FaultPlan`] describes such an adversity schedule *declaratively*:
//! the engine consults it at the event-queue level (when scheduling a
//! delivery, when firing a reading) so applications never need
//! fault-specific code paths. Every stochastic choice the plan makes is
//! drawn from a per-node RNG stream seeded from [`FaultPlan::seed`],
//! disjoint from the loss and retry streams — see the determinism notes
//! in the crate-level docs and `network.rs`.
//!
//! [`FaultPlan::none`] is the identity: with it (the default), the
//! engine takes exactly the pre-fault-layer code paths and produces
//! bit-identical executions.

use crate::node::NodeId;

/// A node outage: the node neither reads, relays, receives nor
/// acknowledges inside `[down_ns, up_ns)`. State survives the outage
/// (a reboot with persistent storage); messages addressed to a down
/// node are lost and counted in [`crate::NetStats::lost_to_crash`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashWindow {
    /// The crashing node.
    pub node: NodeId,
    /// Start of the outage (inclusive).
    pub down_ns: u64,
    /// End of the outage (exclusive); `None` = never restarts.
    pub up_ns: Option<u64>,
}

/// A sensing outage: the leaf takes no readings inside
/// `[from_ns, to_ns)` but keeps relaying and receiving (a failed
/// transducer on a live mote). Skipped readings are never fetched from
/// the stream source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DropoutWindow {
    /// The affected leaf.
    pub node: NodeId,
    /// Start of the dropout (inclusive).
    pub from_ns: u64,
    /// End of the dropout (exclusive).
    pub to_ns: u64,
}

/// Per-link propagation faults. `from`/`to` of `None` match any node, so
/// a single wildcard rule degrades every link; the first matching rule
/// wins. Jitter permutes delivery order between frames sharing a link —
/// the reordering fault of the plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFault {
    /// Sending side filter (`None` = any).
    pub from: Option<NodeId>,
    /// Receiving side filter (`None` = any).
    pub to: Option<NodeId>,
    /// Fixed extra one-way delay added to every matching frame.
    pub extra_delay_ns: u64,
    /// Uniform random extra delay in `[0, jitter_ns]` per frame
    /// (drawn from the sender's fault stream); induces reordering.
    pub jitter_ns: u64,
    /// Probability that a matching frame is delivered twice (the copy
    /// takes an independent delay draw). Duplicates are radio artifacts:
    /// they cost the receiver energy but the sender nothing extra.
    pub duplicate_probability: f64,
}

impl LinkFault {
    /// A wildcard rule with the given delay parameters and no
    /// duplication.
    pub fn delay_all(extra_delay_ns: u64, jitter_ns: u64) -> Self {
        Self {
            from: None,
            to: None,
            extra_delay_ns,
            jitter_ns,
            duplicate_probability: 0.0,
        }
    }

    /// Returns the rule with its duplication probability set.
    pub fn duplicate(mut self, probability: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&probability),
            "probability in [0, 1]"
        );
        self.duplicate_probability = probability;
        self
    }

    fn matches(&self, from: NodeId, to: NodeId) -> bool {
        self.from.is_none_or(|f| f == from) && self.to.is_none_or(|t| t == to)
    }
}

/// A loss burst: inside `[from_ns, to_ns)` every frame is dropped with
/// `drop_probability` *in place of* the base
/// [`crate::SimConfig::drop_probability`] (the burst models interference
/// that swamps the ambient loss floor, so the larger of the two rates
/// applies).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstLoss {
    /// Start of the burst (inclusive).
    pub from_ns: u64,
    /// End of the burst (exclusive).
    pub to_ns: u64,
    /// Loss probability during the burst.
    pub drop_probability: f64,
}

/// A declarative, seeded fault schedule for one simulation run.
///
/// All stochastic decisions (jitter, duplication, burst-loss draws) are
/// deterministic per `seed`, drawn from per-node streams independent of
/// the ambient loss process — adding or removing faults never perturbs
/// the draws of the faultless path (see `crate::protocol` docs).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the per-node fault streams.
    pub seed: u64,
    /// Node outages.
    pub crashes: Vec<CrashWindow>,
    /// Sensing outages.
    pub dropouts: Vec<DropoutWindow>,
    /// Link degradations (first matching rule wins).
    pub links: Vec<LinkFault>,
    /// Loss bursts.
    pub bursts: Vec<BurstLoss>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// The empty plan: injects nothing, leaves the engine bit-identical
    /// to a run without a fault layer.
    pub fn none() -> Self {
        Self {
            seed: 0xFA_17,
            crashes: Vec::new(),
            dropouts: Vec::new(),
            links: Vec::new(),
            bursts: Vec::new(),
        }
    }

    /// True when the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty()
            && self.dropouts.is_empty()
            && self.links.is_empty()
            && self.bursts.is_empty()
    }

    /// Returns a copy with the given seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Adds a crash window (`up_ns = None` for a permanent crash).
    pub fn crash(mut self, node: NodeId, down_ns: u64, up_ns: Option<u64>) -> Self {
        self.crashes.push(CrashWindow { node, down_ns, up_ns });
        self
    }

    /// Adds a sensing dropout window.
    pub fn dropout(mut self, node: NodeId, from_ns: u64, to_ns: u64) -> Self {
        self.dropouts.push(DropoutWindow { node, from_ns, to_ns });
        self
    }

    /// Adds a link-fault rule.
    pub fn link(mut self, fault: LinkFault) -> Self {
        self.links.push(fault);
        self
    }

    /// Adds a loss burst.
    pub fn burst(mut self, from_ns: u64, to_ns: u64, drop_probability: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&drop_probability),
            "probability in [0, 1]"
        );
        self.bursts.push(BurstLoss {
            from_ns,
            to_ns,
            drop_probability,
        });
        self
    }

    /// Is `node` inside a crash window at `time_ns`?
    pub fn is_down(&self, node: NodeId, time_ns: u64) -> bool {
        self.crashes.iter().any(|c| {
            c.node == node && c.down_ns <= time_ns && c.up_ns.is_none_or(|up| time_ns < up)
        })
    }

    /// Is `node`'s sensor inside a dropout window at `time_ns`?
    pub fn is_sensor_down(&self, node: NodeId, time_ns: u64) -> bool {
        self.dropouts
            .iter()
            .any(|d| d.node == node && d.from_ns <= time_ns && time_ns < d.to_ns)
    }

    /// Will `node` ever act again after `time_ns`? (`false` exactly when
    /// it sits in a crash window that never ends — the engine then stops
    /// rescheduling its readings, like the permanent-failure path.)
    pub fn recovers(&self, node: NodeId, time_ns: u64) -> bool {
        !self.crashes.iter().any(|c| {
            c.node == node && c.down_ns <= time_ns && c.up_ns.is_none()
        })
    }

    /// The first link-fault rule matching `from → to`, if any.
    pub fn link_fault(&self, from: NodeId, to: NodeId) -> Option<&LinkFault> {
        self.links.iter().find(|l| l.matches(from, to))
    }

    /// The loss probability in force at `time_ns`: the largest active
    /// burst rate, floored at `base` (the ambient radio loss).
    pub fn loss_probability(&self, base: f64, time_ns: u64) -> f64 {
        self.bursts
            .iter()
            .filter(|b| b.from_ns <= time_ns && time_ns < b.to_ns)
            .map(|b| b.drop_probability)
            .fold(base, f64::max)
    }
}

/// Acknowledgement/retry parameters for reliable sends
/// ([`crate::EngineCtx::send_reliable`]). `None` in
/// [`crate::SimConfig::reliability`] disables the protocol entirely:
/// reliable sends then behave exactly like plain sends (no ids, no acks,
/// no timers) and the engine is bit-identical to the pre-retry engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Time the sender waits for an ack before the first retransmission.
    pub timeout_ns: u64,
    /// Retransmissions after the initial attempt; when all are spent the
    /// message is abandoned and counted in
    /// [`crate::NetStats::retry_exhausted`].
    pub max_retries: u32,
    /// Multiplier applied to the timeout per attempt (exponential
    /// backoff; 2.0 doubles the wait each time).
    pub backoff: f64,
    /// Uniform random extra wait in `[0, jitter_ns]` per timer, drawn
    /// from the sender's retry stream (decorrelates synchronized
    /// retries).
    pub jitter_ns: u64,
}

impl Default for RetryPolicy {
    /// 50 ms initial timeout (10× the default link latency), 3 retries,
    /// doubling backoff, no jitter.
    fn default() -> Self {
        Self {
            timeout_ns: 50_000_000,
            max_retries: 3,
            backoff: 2.0,
            jitter_ns: 0,
        }
    }
}

impl RetryPolicy {
    /// The wait before retry number `attempt` (0-based), without jitter:
    /// `timeout_ns · backoff^attempt`, saturating.
    pub fn backoff_ns(&self, attempt: u32) -> u64 {
        let scaled = self.timeout_ns as f64 * self.backoff.powi(attempt as i32);
        if scaled >= u64::MAX as f64 {
            u64::MAX
        } else {
            scaled as u64
        }
    }
}

/// What happens to a node's *application state* when it comes back from
/// a recoverable [`CrashWindow`].
///
/// The crash window itself only silences the node (no reads, relays or
/// acks); the policy decides what memory survives the outage. Warm
/// restarts are the checkpoint/restore story at mote granularity: a
/// node that persisted its model state periodically resumes from the
/// last snapshot instead of relearning from scratch, skipping the
/// replica-staleness degradation window a cold restart incurs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RestartPolicy {
    /// State survives the outage untouched (battery-backed RAM / the
    /// pre-persistence engine behaviour). The default.
    #[default]
    Persistent,
    /// The node reboots with the application state it had at the start
    /// of the run — everything learned since is lost. Counted in
    /// [`crate::NetStats::cold_restarts`].
    Cold,
    /// The node checkpoints its application state every
    /// `checkpoint_every_ns` of simulated time and reboots from the
    /// most recent snapshot (pristine state if it never reached the
    /// first checkpoint). Counted in
    /// [`crate::NetStats::warm_restarts`].
    Warm {
        /// Interval between on-node checkpoint captures.
        checkpoint_every_ns: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_identity() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        assert!(!p.is_down(NodeId(0), 0));
        assert!(!p.is_sensor_down(NodeId(0), 0));
        assert!(p.recovers(NodeId(0), u64::MAX));
        assert!(p.link_fault(NodeId(0), NodeId(1)).is_none());
        assert_eq!(p.loss_probability(0.25, 123), 0.25);
    }

    #[test]
    fn crash_windows_bound_downtime() {
        let p = FaultPlan::none().crash(NodeId(3), 100, Some(200));
        assert!(!p.is_down(NodeId(3), 99));
        assert!(p.is_down(NodeId(3), 100));
        assert!(p.is_down(NodeId(3), 199));
        assert!(!p.is_down(NodeId(3), 200));
        assert!(!p.is_down(NodeId(2), 150));
        assert!(p.recovers(NodeId(3), 150));
    }

    #[test]
    fn permanent_crash_never_recovers() {
        let p = FaultPlan::none().crash(NodeId(1), 50, None);
        assert!(p.is_down(NodeId(1), u64::MAX));
        assert!(p.recovers(NodeId(1), 49));
        assert!(!p.recovers(NodeId(1), 50));
    }

    #[test]
    fn link_rules_match_first() {
        let p = FaultPlan::none()
            .link(LinkFault {
                from: Some(NodeId(0)),
                to: None,
                extra_delay_ns: 7,
                jitter_ns: 0,
                duplicate_probability: 0.0,
            })
            .link(LinkFault::delay_all(99, 0));
        assert_eq!(p.link_fault(NodeId(0), NodeId(5)).unwrap().extra_delay_ns, 7);
        assert_eq!(p.link_fault(NodeId(1), NodeId(5)).unwrap().extra_delay_ns, 99);
    }

    #[test]
    fn burst_loss_floors_at_base() {
        let p = FaultPlan::none().burst(10, 20, 0.9).burst(15, 30, 0.4);
        assert_eq!(p.loss_probability(0.1, 5), 0.1);
        assert_eq!(p.loss_probability(0.1, 12), 0.9);
        assert_eq!(p.loss_probability(0.1, 17), 0.9); // max of overlapping
        assert_eq!(p.loss_probability(0.1, 25), 0.4);
        assert_eq!(p.loss_probability(0.5, 25), 0.5); // base floor
    }

    #[test]
    fn sensor_dropout_is_leaf_scoped() {
        let p = FaultPlan::none().dropout(NodeId(2), 5, 10);
        assert!(p.is_sensor_down(NodeId(2), 5));
        assert!(!p.is_sensor_down(NodeId(2), 10));
        assert!(!p.is_sensor_down(NodeId(0), 7));
        // A sensing dropout is not a node outage.
        assert!(!p.is_down(NodeId(2), 7));
    }

    #[test]
    fn backoff_is_exponential() {
        let r = RetryPolicy {
            timeout_ns: 100,
            max_retries: 5,
            backoff: 2.0,
            jitter_ns: 0,
        };
        assert_eq!(r.backoff_ns(0), 100);
        assert_eq!(r.backoff_ns(1), 200);
        assert_eq!(r.backoff_ns(3), 800);
    }
}
