//! Per-tenant workers: one thread per tenant owning a [`LiveRuntime`]
//! and an [`IngestBuffer`], fed through a bounded queue.
//!
//! ## Stream-time slicing
//!
//! The worker must produce escalations *bit-identical* to an
//! in-process run over the same trace, while readings arrive
//! incrementally, out of order, and more than once. The trick is to
//! advance the runtime only over **complete waves**: with `W =`
//! [`IngestBuffer::frontier`] (every leaf holds all readings
//! `seq < W`), every reading event scheduled before stream time
//! `W·period` is satisfiable, so
//! [`LiveRuntime::run_slice`]`(…, stop_ns = W·period − 1)` can never
//! ask the buffer for a reading that has not arrived — and the
//! run-split property (a `run_until` cut at any stop time equals the
//! uninterrupted run, pinned by the checkpoint-equivalence suite)
//! makes the sliced run equal the one-shot reference. Once every
//! declared stream total has arrived the worker runs to quiescence,
//! checkpoints, and reports [`Msg::FinishOk`].
//!
//! ## Crash safety
//!
//! A checkpoint atomically captures the ingest buffer (including
//! buffered-but-unprocessed readings), the pushed-escalation cursors
//! and the full runtime state. `durable` acks advance only when a
//! checkpoint lands on disk; a client that replays from `durable` after
//! a daemon kill therefore re-sends exactly the window the disk image
//! may have lost, and sequence-number dedup absorbs the overlap — no
//! reading is double-ingested, so no escalation is duplicated.

use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use snod_core::{BackendKind, D3Backend, DetectorBackend, FqnBackend, MmdewBackend};
use snod_engine::{IngestBuffer, LiveRuntime, NodeId, PushOutcome};
use snod_persist::{ByteReader, ByteWriter, Persist};

use crate::config::TenantSpec;
use crate::error::ServeError;
use crate::stats::{DaemonStats, EscalationLog, EscalationRecord};
use crate::wire::Msg;

/// A [`DetectorBackend`] the daemon knows how to derive from a
/// [`TenantSpec`].
pub(crate) trait TenantBackend: DetectorBackend {
    fn from_spec(spec: &TenantSpec) -> Result<Self, ServeError>;
}

impl TenantBackend for D3Backend {
    fn from_spec(spec: &TenantSpec) -> Result<Self, ServeError> {
        spec.d3_backend()
    }
}

impl TenantBackend for FqnBackend {
    fn from_spec(spec: &TenantSpec) -> Result<Self, ServeError> {
        spec.fqn_backend()
    }
}

impl TenantBackend for MmdewBackend {
    fn from_spec(spec: &TenantSpec) -> Result<Self, ServeError> {
        spec.mmdew_backend()
    }
}

/// A connection's outbound frame queue, as seen by a worker: `handle`
/// is what this connection calls the tenant, `tx` feeds the
/// connection's writer thread.
#[derive(Debug, Clone)]
pub(crate) struct ConnSink {
    pub conn_id: u64,
    pub handle: u32,
    pub subscribe: bool,
    pub tx: Sender<Msg>,
}

/// Messages routed to a tenant worker.
#[derive(Debug)]
pub(crate) enum TenantMsg {
    /// One reading (at-least-once; the worker dedups).
    Reading { node: u32, seq: u64, value: Vec<f64> },
    /// Declared per-leaf stream totals.
    Finish { totals: Vec<(u32, u64)> },
    /// A connection wants acks (and, if subscribed, escalations).
    Attach(ConnSink),
    /// A connection went away.
    Detach { conn_id: u64 },
    /// Reply the full detection list to this sink.
    Query(ConnSink),
    /// Fault injection: panic the worker (supervision test hook).
    Crash,
    /// Stop. `drain: true` processes everything buffered and writes a
    /// final checkpoint; `false` exits immediately (used by
    /// `hard_abort`, the in-process stand-in for `kill -9`).
    Shutdown { drain: bool },
}

/// Mutable-state shared between a worker and the daemon (gauges,
/// supervision).
#[derive(Debug, Default)]
pub(crate) struct TenantShared {
    /// Readings queued to this tenant.
    pub depth: std::sync::atomic::AtomicU64,
    /// Readings consumed by the runtime.
    pub processed: std::sync::atomic::AtomicU64,
    /// Milliseconds since daemon epoch of the last checkpoint (or
    /// worker start).
    pub last_ckpt_ms: std::sync::atomic::AtomicU64,
    /// FinishOk reached.
    pub finished: std::sync::atomic::AtomicBool,
}

/// Worker knobs distilled from the daemon config.
#[derive(Debug, Clone)]
pub(crate) struct WorkerConfig {
    pub spec: TenantSpec,
    pub ckpt_path: Option<PathBuf>,
    pub checkpoint_every: u64,
    pub checkpoint_interval: Duration,
}

/// Spawns the worker thread for `cfg.spec`'s configured backend. The
/// dispatch happens here, once, at tenant creation; everything past
/// this point is monomorphized over the backend.
pub(crate) fn spawn_worker(
    name: String,
    cfg: WorkerConfig,
    rx: Receiver<TenantMsg>,
    shared: Arc<TenantShared>,
    stats: Arc<DaemonStats>,
    esc_log: Arc<EscalationLog>,
    epoch: Instant,
) -> std::thread::JoinHandle<()> {
    fn spawn_typed<B: TenantBackend>(
        name: String,
        cfg: WorkerConfig,
        rx: Receiver<TenantMsg>,
        shared: Arc<TenantShared>,
        stats: Arc<DaemonStats>,
        esc_log: Arc<EscalationLog>,
        epoch: Instant,
    ) -> std::thread::JoinHandle<()> {
        let worker = Worker::<B>::new(name.clone(), cfg, rx, shared, stats, esc_log, epoch);
        std::thread::Builder::new()
            .name(format!("snod-tenant-{name}"))
            .spawn(move || worker.run())
            .expect("spawn tenant worker")
    }
    match cfg.spec.detector {
        BackendKind::D3 => spawn_typed::<D3Backend>(name, cfg, rx, shared, stats, esc_log, epoch),
        BackendKind::Fqn => spawn_typed::<FqnBackend>(name, cfg, rx, shared, stats, esc_log, epoch),
        BackendKind::Mmdew => {
            spawn_typed::<MmdewBackend>(name, cfg, rx, shared, stats, esc_log, epoch)
        }
        // Rejected by TenantSpec::validate when the daemon started.
        BackendKind::Mgdd => unreachable!("mgdd tenants rejected at daemon startup"),
    }
}

pub(crate) struct Worker<B: TenantBackend> {
    name: String,
    cfg: WorkerConfig,
    rx: Receiver<TenantMsg>,
    rt: LiveRuntime<B::Payload, B::Engine>,
    buf: IngestBuffer,
    /// Per-node count of detections already pushed to subscribers and
    /// the escalation log (persisted, so a warm restart does not replay
    /// checkpointed escalations).
    pushed: Vec<u64>,
    sinks: Vec<ConnSink>,
    shared: Arc<TenantShared>,
    stats: Arc<DaemonStats>,
    esc_log: Arc<EscalationLog>,
    epoch: Instant,
    /// Per-leaf contiguous mark covered by the last on-disk checkpoint.
    durable: Vec<u64>,
    last_acked: Vec<(u64, u64)>,
    dups_reported: u64,
    since_ckpt: u64,
    dirty: bool,
    last_ckpt: Instant,
    finish_sent: bool,
}

impl<B: TenantBackend> Worker<B> {
    /// Builds the worker, restoring from its checkpoint file when one
    /// exists. A checkpoint that fails to restore (torn write from a
    /// crash mid-rename cannot happen — writes are atomic — but a
    /// corrupted disk can) is reported and ignored: the tenant starts
    /// fresh rather than staying down, and the client's replay-from-
    /// zero resend path refills it.
    pub fn new(
        name: String,
        cfg: WorkerConfig,
        rx: Receiver<TenantMsg>,
        shared: Arc<TenantShared>,
        stats: Arc<DaemonStats>,
        esc_log: Arc<EscalationLog>,
        epoch: Instant,
    ) -> Self {
        let backend =
            B::from_spec(&cfg.spec).expect("tenant spec validated when the daemon started");
        let rt = cfg
            .spec
            .build_backend_runtime(&backend)
            .expect("tenant spec validated when the daemon started");
        let leaves = rt.topology().leaves().to_vec();
        let n_leaves = leaves.len();
        let mut worker = Self {
            buf: IngestBuffer::new(&leaves),
            pushed: vec![0; rt.topology().node_count()],
            rt,
            name,
            cfg,
            rx,
            sinks: Vec::new(),
            shared,
            stats,
            esc_log,
            epoch,
            durable: vec![0; n_leaves],
            last_acked: vec![(u64::MAX, u64::MAX); n_leaves],
            dups_reported: 0,
            since_ckpt: 0,
            dirty: false,
            last_ckpt: Instant::now(),
            finish_sent: false,
        };
        if let Some(path) = worker.cfg.ckpt_path.clone() {
            if path.exists() {
                if let Err(e) = worker.restore(&path) {
                    eprintln!("snod-serve: tenant {} checkpoint ignored: {e}", worker.name);
                }
            }
        }
        worker
            .shared
            .last_ckpt_ms
            .store(epoch.elapsed().as_millis() as u64, Ordering::Relaxed);
        worker.dups_reported = worker.buf.duplicates();
        worker
    }

    fn restore(&mut self, path: &std::path::Path) -> Result<(), snod_persist::PersistError> {
        let payload = snod_persist::read_checkpoint_file(path)?;
        let mut r = ByteReader::new(&payload);
        let buf = IngestBuffer::load(&mut r)?;
        let pushed = Vec::<u64>::load(&mut r)?;
        let finish_sent = bool::load(&mut r)?;
        let rt_bytes = Vec::<u8>::load(&mut r)?;
        r.finish()?;
        if pushed.len() != self.pushed.len() {
            return Err(snod_persist::PersistError::Corrupt(
                "tenant checkpoint node count mismatch",
            ));
        }
        self.rt.restore(&rt_bytes)?;
        self.durable = self
            .rt
            .topology()
            .leaves()
            .iter()
            .map(|&n| buf.received(n))
            .collect();
        self.buf = buf;
        self.pushed = pushed;
        self.finish_sent = finish_sent;
        if finish_sent {
            self.shared.finished.store(true, Ordering::Relaxed);
        }
        Ok(())
    }

    /// The worker loop. Exits on Shutdown, on a closed queue (the
    /// daemon dropped it — the `hard_abort` path), or by panicking on
    /// an injected Crash.
    pub fn run(mut self) {
        loop {
            let mut shutdown: Option<bool> = None;
            match self.rx.recv_timeout(Duration::from_millis(25)) {
                Ok(msg) => shutdown = self.handle(msg),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return, // hard abort: no checkpoint
            }
            // Fold in everything else already queued before running the
            // engine once over the enlarged frontier.
            while shutdown.is_none() {
                match self.rx.try_recv() {
                    Ok(msg) => shutdown = self.handle(msg),
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => return,
                }
            }
            self.advance();
            match shutdown {
                Some(true) => {
                    self.checkpoint(true);
                    return;
                }
                Some(false) => return,
                None => {}
            }
            self.maybe_checkpoint();
            self.send_acks();
        }
    }

    /// Returns `Some(drain)` on Shutdown.
    fn handle(&mut self, msg: TenantMsg) -> Option<bool> {
        match msg {
            TenantMsg::Reading { node, seq, value } => {
                self.shared.depth.fetch_sub(1, Ordering::Relaxed);
                self.stats.depth.fetch_sub(1, Ordering::Relaxed);
                snod_obs::counter!("serve.ingest.readings").incr();
                match self.buf.push(NodeId(node), seq, value) {
                    PushOutcome::Accepted => {}
                    PushOutcome::Duplicate => {
                        snod_obs::counter!("serve.ingest.duplicates").incr();
                        let dups = self.buf.duplicates();
                        self.stats
                            .duplicates
                            .fetch_add(dups - self.dups_reported, Ordering::Relaxed);
                        self.dups_reported = dups;
                    }
                    PushOutcome::UnknownNode | PushOutcome::BeyondEnd => {
                        snod_obs::counter!("serve.ingest.rejected").incr();
                    }
                }
            }
            TenantMsg::Finish { totals } => {
                for (node, total) in totals {
                    if !self.buf.finish(NodeId(node), total) {
                        snod_obs::counter!("serve.ingest.finish_conflicts").incr();
                    }
                }
            }
            TenantMsg::Attach(sink) => {
                // Fresh attachment (often a reconnect): immediately tell
                // the client where this tenant stands so it can trim and
                // replay its resend buffer.
                let _ = sink.tx.send(Msg::Ack {
                    handle: sink.handle,
                    acks: self.ack_rows(),
                });
                if self.finish_sent {
                    let _ = sink.tx.send(Msg::FinishOk {
                        handle: sink.handle,
                    });
                }
                self.sinks.retain(|s| s.conn_id != sink.conn_id || s.handle != sink.handle);
                self.sinks.push(sink);
            }
            TenantMsg::Detach { conn_id } => {
                self.sinks.retain(|s| s.conn_id != conn_id);
            }
            TenantMsg::Query(sink) => {
                let mut rows = Vec::new();
                for (node, engine) in self.rt.engines() {
                    for d in B::detections(engine) {
                        rows.push((node.0, d.time_ns, d.level, d.value.clone()));
                    }
                }
                let _ = sink.tx.send(Msg::Detections {
                    handle: sink.handle,
                    rows,
                });
            }
            TenantMsg::Crash => panic!("injected tenant crash ({})", self.name),
            TenantMsg::Shutdown { drain } => return Some(drain),
        }
        None
    }

    /// Advances the runtime over every complete wave (see module docs).
    fn advance(&mut self) {
        let stop = if self.buf.all_finished() {
            u64::MAX
        } else {
            let w = self.buf.frontier();
            if w == 0 {
                return;
            }
            w.saturating_mul(self.cfg.spec.reading_period_ns)
                .saturating_sub(1)
        };
        let before = self.buf.consumed_total();
        self.rt.run_slice(&mut self.buf, u64::MAX, stop);
        let processed = self.buf.consumed_total() - before;
        if processed > 0 {
            self.since_ckpt += processed;
            self.dirty = true;
            self.shared
                .processed
                .store(self.buf.consumed_total(), Ordering::Relaxed);
        }
        self.push_new_detections();
        if stop == u64::MAX && !self.finish_sent {
            // Fully drained: make the final state durable before
            // declaring the stream complete.
            self.checkpoint(true);
            self.finish_sent = true;
            self.shared.finished.store(true, Ordering::Relaxed);
            self.send_acks();
            let sinks = std::mem::take(&mut self.sinks);
            self.sinks = sinks
                .into_iter()
                .filter(|s| s.tx.send(Msg::FinishOk { handle: s.handle }).is_ok())
                .collect();
        }
    }

    fn push_new_detections(&mut self) {
        let mut fresh: Vec<(u32, u64, u8, Vec<f64>)> = Vec::new();
        for (node, engine) in self.rt.engines() {
            let seen = self.pushed[node.index()] as usize;
            for d in &B::detections(engine)[seen..] {
                fresh.push((node.0, d.time_ns, d.level, d.value.clone()));
            }
        }
        if fresh.is_empty() {
            return;
        }
        for (node, engine) in self.rt.engines() {
            self.pushed[node.index()] = B::detections(engine).len() as u64;
        }
        for (node, time_ns, level, _) in &fresh {
            snod_obs::counter!("serve.escalations").incr();
            self.esc_log.push(EscalationRecord {
                tenant: self.name.clone(),
                node: *node,
                time_ns: *time_ns,
                level: *level,
            });
        }
        self.sinks.retain(|s| {
            if !s.subscribe {
                return true;
            }
            fresh.iter().all(|(node, time_ns, level, value)| {
                s.tx
                    .send(Msg::Escalation {
                        handle: s.handle,
                        node: *node,
                        time_ns: *time_ns,
                        level: *level,
                        value: value.clone(),
                    })
                    .is_ok()
            })
        });
    }

    fn ack_rows(&self) -> Vec<(u32, u64, u64)> {
        self.rt
            .topology()
            .leaves()
            .iter()
            .enumerate()
            .map(|(i, &n)| (n.0, self.buf.received(n), self.durable[i]))
            .collect()
    }

    fn send_acks(&mut self) {
        // Without a checkpoint directory nothing is ever more durable
        // than "received": report the contiguous mark for both.
        if self.cfg.ckpt_path.is_none() {
            for (i, &n) in self.rt.topology().leaves().iter().enumerate() {
                self.durable[i] = self.buf.received(n);
            }
        }
        let now: Vec<(u64, u64)> = self
            .rt
            .topology()
            .leaves()
            .iter()
            .enumerate()
            .map(|(i, &n)| (self.buf.received(n), self.durable[i]))
            .collect();
        if now == self.last_acked {
            return;
        }
        self.last_acked = now;
        let acks = self.ack_rows();
        self.sinks.retain(|s| {
            s.tx
                .send(Msg::Ack {
                    handle: s.handle,
                    acks: acks.clone(),
                })
                .is_ok()
        });
    }

    fn maybe_checkpoint(&mut self) {
        let due = (self.cfg.checkpoint_every > 0 && self.since_ckpt >= self.cfg.checkpoint_every)
            || (self.dirty && self.last_ckpt.elapsed() >= self.cfg.checkpoint_interval);
        if due {
            self.checkpoint(false);
        }
    }

    fn checkpoint(&mut self, force: bool) {
        if !force && !self.dirty {
            return;
        }
        if let Some(path) = self.cfg.ckpt_path.clone() {
            let mut w = ByteWriter::new();
            self.buf.save(&mut w);
            self.pushed.save(&mut w);
            self.finish_sent.save(&mut w);
            self.rt.checkpoint().save(&mut w);
            if let Err(e) = snod_persist::write_checkpoint_file(&path, &w.into_bytes()) {
                eprintln!("snod-serve: tenant {} checkpoint failed: {e}", self.name);
                return;
            }
            snod_obs::counter!("serve.checkpoints").incr();
            self.stats.checkpoints.fetch_add(1, Ordering::Relaxed);
        }
        for (i, &n) in self.rt.topology().leaves().iter().enumerate() {
            self.durable[i] = self.buf.received(n);
        }
        self.since_ckpt = 0;
        self.dirty = false;
        self.last_ckpt = Instant::now();
        self.shared
            .last_ckpt_ms
            .store(self.epoch.elapsed().as_millis() as u64, Ordering::Relaxed);
    }
}
