//! # snod-robust — robust scale and distribution-shift statistics
//!
//! Two detector substrates that do *not* rest on kernel density models,
//! for streams where the paper's σ-scaled thresholds mislead:
//!
//! * [`QnWindow`] — the streaming Q_n robust scale estimator over a
//!   sliding window (Cafaro et al., *Fast Detection of Outliers in Data
//!   Streams with the Q_n Estimator*). Q_n is the k-th order statistic
//!   of the pairwise differences `|x_i − x_j|`, `i < j`, with
//!   `k = C(h, 2)`, `h = ⌊n/2⌋ + 1` — a 50%-breakdown scale that
//!   ignores both tails, so a contamination burst cannot inflate the
//!   outlier threshold the way it inflates σ. The window keeps a sorted
//!   buffer beside the arrival queue; Q_n queries run a value-space
//!   bisection with an O(n) two-pointer pair count per probe (the
//!   sorted-matrix rank-select), never materialising the O(n²)
//!   differences.
//! * [`Mmdew`] — maximum mean discrepancy on exponential windows
//!   (Kalinke et al., *Maximum Mean Discrepancy on Exponential Windows
//!   for Online Change Detection*). The stream is summarised by
//!   logarithmically many buckets whose sizes double with age (merged
//!   exponential-histogram style); each bucket retains a capped, seeded
//!   subsample and its exact within-bucket kernel sum. At test time the
//!   biased MMD² estimate between the samples older and newer than each
//!   bucket boundary is compared to the kernel-bound threshold
//!   `τ = c·√(1/n + 1/m)`; the maximal-margin split raises a
//!   distribution-shift alarm and prunes the pre-change buckets.
//!
//! Both structures checkpoint via `snod-persist` (bit-identical resume,
//! RNG position included) and are proven against from-scratch reference
//! computations by the proptest suites in `tests/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// `!(x > 0.0)` rejects NaN parameters as well as non-positive ones.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

mod mmdew;
mod qn;

pub use mmdew::{ChangeEvent, Mmdew, MmdewConfig, RetainedBucket, SplitStat};
pub use qn::QnWindow;

/// Errors surfaced by the robust-statistics structures.
#[derive(Debug, Clone, PartialEq)]
pub enum RobustError {
    /// A construction parameter was out of range.
    BadConfig(&'static str),
    /// A pushed value's dimensionality did not match the configuration.
    Dimension {
        /// Configured dimensionality.
        expected: usize,
        /// Dimensionality of the offending value.
        got: usize,
    },
    /// A pushed value contained a NaN or infinity.
    NonFinite,
}

impl std::fmt::Display for RobustError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RobustError::BadConfig(what) => write!(f, "invalid configuration: {what}"),
            RobustError::Dimension { expected, got } => {
                write!(f, "expected {expected}-dimensional value, got {got}")
            }
            RobustError::NonFinite => write!(f, "values must be finite"),
        }
    }
}

impl std::error::Error for RobustError {}
