//! Multi-granularity aLOCI over a dyadic cell tree — the full algorithm
//! of Papadimitriou et al. (the paper's reference 36).
//!
//! The VLDB'06 paper fixes one `(r, αr)` pair; the original aLOCI tests
//! MDEF at *every* granularity: counting cells of side `2^{-l}` inside
//! sampling cells of side `2^{-(l-k)}` (`α = 2^{-k}`), for a range of
//! levels `l`, flagging a point that is deviant at **any** granularity.
//! This catches outliers whose natural scale differs from any single
//! radius — e.g. a point sitting between a tight and a diffuse cluster.
//!
//! The tree supports insertion *and removal*, so it can run over sliding
//! windows; per-point detection reads `O(levels · 2^{k·d})` cell
//! counters.
//!
//! As in the original aLOCI, **several shifted grids** are maintained
//! (dyadic cells suffer boundary effects: a point just across a cell
//! boundary from its cluster would otherwise see an empty neighborhood).
//! Each query level uses the grid whose counting cell is best centred on
//! the query point.

use std::collections::HashMap;

use crate::mdef::MdefConfig;

/// Deterministic grid shifts (applied per coordinate before cell
/// flooring). Four grids, as the aLOCI paper recommends (10–30 % extra
/// space per grid, large boundary-robustness gain).
const GRID_SHIFTS: [f64; 4] = [0.0, 0.137, 0.389, 0.683];

/// Configuration of the multi-granularity detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlociTreeConfig {
    /// Finest counting level: cells of side `2^{-max_level}`.
    pub max_level: u32,
    /// Coarsest counting level tested.
    pub min_level: u32,
    /// `α = 2^{-alpha_shift}` — the sampling cell is `alpha_shift`
    /// levels coarser than the counting cell (LOCI recommends α ≈ 1/16;
    /// 3 gives 1/8).
    pub alpha_shift: u32,
    /// Significance factor `k_σ` and the degeneracy margin, shared with
    /// the single-granularity detector.
    pub k_sigma: f64,
    /// Minimum MDEF regardless of σ (see [`MdefConfig::min_deviation`]).
    pub min_deviation: f64,
    /// Minimum neighborhood mass to call a verdict at a level (LOCI's
    /// `n_min`, guarding tiny-sample significance claims).
    pub min_mass: f64,
}

impl Default for AlociTreeConfig {
    fn default() -> Self {
        Self {
            max_level: 7, // cells of 1/128
            min_level: 4, // cells of 1/16
            alpha_shift: 3,
            k_sigma: 3.0,
            min_deviation: 0.05,
            min_mass: 8.0,
        }
    }
}

impl AlociTreeConfig {
    /// Validates level ordering.
    pub fn validate(&self) -> bool {
        self.min_level <= self.max_level
            && self.alpha_shift >= 1
            && self.k_sigma > 0.0
            && self.min_mass >= 0.0
            && self.max_level + 1 < 30
    }
}

/// Verdict detail for one granularity level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelVerdict {
    /// Counting-cell side = `2^{-level}`.
    pub level: u32,
    /// `n(p)` at this granularity (self-excluded).
    pub count: f64,
    /// Count-weighted local average `n̂`.
    pub avg: f64,
    /// `MDEF` at this granularity.
    pub mdef: f64,
    /// `σ_MDEF` (standard error, as in the single-granularity detector).
    pub sigma_mdef: f64,
    /// Whether this granularity flags the point.
    pub flagged: bool,
}

/// A dyadic cell-count forest (one tree per grid shift) over `[0, 1]^d`
/// supporting sliding-window maintenance and multi-granularity MDEF
/// detection.
#[derive(Debug, Clone)]
pub struct AlociTree {
    dims: usize,
    cfg: AlociTreeConfig,
    /// `grids[shift]` maps level → cell counts for that shifted grid.
    grids: Vec<HashMap<u32, HashMap<Vec<i64>, f64>>>,
}

impl AlociTree {
    /// An empty forest for `dims`-dimensional points.
    pub fn new(dims: usize, cfg: AlociTreeConfig) -> Option<Self> {
        if dims == 0 || !cfg.validate() {
            return None;
        }
        let coarsest = cfg.min_level.saturating_sub(cfg.alpha_shift);
        let grids = GRID_SHIFTS
            .iter()
            .map(|_| {
                (coarsest..=cfg.max_level)
                    .map(|l| (l, HashMap::new()))
                    .collect()
            })
            .collect();
        Some(Self { dims, cfg, grids })
    }

    fn key(&self, p: &[f64], level: u32, shift: f64) -> Vec<i64> {
        let scale = (1u64 << level) as f64;
        p.iter()
            .map(|&c| ((c + shift) * scale).floor() as i64)
            .collect()
    }

    /// Distance (L∞, in cell-width units) from `p` to the centre of its
    /// counting cell in the shifted grid — the grid-selection criterion.
    fn center_offset(&self, p: &[f64], level: u32, shift: f64) -> f64 {
        let scale = (1u64 << level) as f64;
        p.iter()
            .map(|&c| {
                let pos = (c + shift) * scale;
                (pos - pos.floor() - 0.5).abs()
            })
            .fold(0.0, f64::max)
    }

    /// Inserts a point into every grid and level.
    pub fn insert(&mut self, p: &[f64]) {
        assert_eq!(p.len(), self.dims, "dimensionality mismatch");
        for (g, grid) in self.grids.iter_mut().enumerate() {
            let shift = GRID_SHIFTS[g];
            let levels: Vec<u32> = grid.keys().copied().collect();
            for l in levels {
                let scale = (1u64 << l) as f64;
                let k: Vec<i64> = p
                    .iter()
                    .map(|&c| ((c + shift) * scale).floor() as i64)
                    .collect();
                *grid
                    .get_mut(&l)
                    .expect("level exists")
                    .entry(k)
                    .or_insert(0.0) += 1.0;
            }
        }
    }

    /// Removes a previously inserted point from every grid and level.
    pub fn remove(&mut self, p: &[f64]) {
        assert_eq!(p.len(), self.dims, "dimensionality mismatch");
        for (g, grid) in self.grids.iter_mut().enumerate() {
            let shift = GRID_SHIFTS[g];
            let levels: Vec<u32> = grid.keys().copied().collect();
            for l in levels {
                let scale = (1u64 << l) as f64;
                let k: Vec<i64> = p
                    .iter()
                    .map(|&c| ((c + shift) * scale).floor() as i64)
                    .collect();
                let map = grid.get_mut(&l).expect("level exists");
                if let Some(c) = map.get_mut(&k) {
                    *c -= 1.0;
                    if *c <= 0.0 {
                        map.remove(&k);
                    }
                }
            }
        }
    }

    /// Number of cells stored across all grids and levels (memory
    /// diagnostic).
    pub fn cell_count(&self) -> usize {
        self.grids
            .iter()
            .flat_map(|g| g.values())
            .map(HashMap::len)
            .sum()
    }

    /// Evaluates `p` at every granularity; the point is an outlier when
    /// any level with sufficient neighborhood mass flags it. For each
    /// level, the shifted grid whose counting cell is best centred on
    /// `p` is used (the aLOCI grid-selection rule). `p` is scored as a
    /// new observation (exclude it from its own cells if `indexed` is
    /// true).
    pub fn evaluate(&self, p: &[f64], indexed: bool) -> Vec<LevelVerdict> {
        assert_eq!(p.len(), self.dims, "dimensionality mismatch");
        let mut out = Vec::new();
        for level in self.cfg.min_level..=self.cfg.max_level {
            let sampling_level = level - self.cfg.alpha_shift;
            // Grid selection: best-centred counting cell.
            let g = (0..GRID_SHIFTS.len())
                .min_by(|&a, &b| {
                    self.center_offset(p, level, GRID_SHIFTS[a])
                        .partial_cmp(&self.center_offset(p, level, GRID_SHIFTS[b]))
                        .expect("finite offsets")
                })
                .expect("grids exist");
            let shift = GRID_SHIFTS[g];
            let counting = &self.grids[g][&level];
            let own_key = self.key(p, level, shift);
            let discount = if indexed { 1.0 } else { 0.0 };
            let own = (counting.get(&own_key).copied().unwrap_or(discount) - discount).max(0.0);

            // Child counting cells of p's sampling cell in the same grid.
            let s_key = self.key(p, sampling_level, shift);
            let span = 1i64 << self.cfg.alpha_shift;
            let total = (span as usize).pow(self.dims as u32);
            let mut w_sum = 0.0;
            let mut w_mean = 0.0;
            let mut w_sq = 0.0;
            let mut nonempty = 0usize;
            let mut child = vec![0i64; self.dims];
            for flat in 0..total {
                let mut rem = flat;
                for j in 0..self.dims {
                    child[j] = s_key[j] * span + (rem % span as usize) as i64;
                    rem /= span as usize;
                }
                if let Some(&c) = counting.get(&child) {
                    let c = if child == own_key {
                        (c - discount).max(0.0)
                    } else {
                        c
                    };
                    if c > 0.0 {
                        w_sum += c;
                        w_mean += c * c;
                        w_sq += c * c * c;
                        nonempty += 1;
                    }
                }
            }
            if w_sum < self.cfg.min_mass {
                continue; // too little mass to make a significance claim
            }
            let avg = w_mean / w_sum;
            let var = (w_sq / w_sum - avg * avg).max(0.0);
            let sigma = var.sqrt() / (nonempty.max(1) as f64).sqrt() / avg;
            let mdef = 1.0 - own / avg;
            let flagged = mdef > self.cfg.k_sigma * sigma && mdef > self.cfg.min_deviation;
            out.push(LevelVerdict {
                level,
                count: own,
                avg,
                mdef,
                sigma_mdef: sigma,
                flagged,
            });
        }
        out
    }

    /// The any-granularity verdict.
    pub fn is_outlier(&self, p: &[f64], indexed: bool) -> bool {
        self.evaluate(p, indexed).iter().any(|v| v.flagged)
    }

    /// Convenience: derives a tree configuration from the paper's
    /// single-granularity [`MdefConfig`] — counting cells near `2αr`,
    /// sampling cells near `2r`, same `k_σ`.
    pub fn config_from_mdef(rule: &MdefConfig) -> AlociTreeConfig {
        let counting_level = (1.0 / (2.0 * rule.counting_radius)).log2().round() as u32;
        let alpha_shift = (rule.sampling_radius / rule.counting_radius)
            .log2()
            .round()
            .max(1.0) as u32;
        AlociTreeConfig {
            max_level: counting_level + 1,
            min_level: counting_level.saturating_sub(1).max(alpha_shift),
            alpha_shift,
            k_sigma: rule.k_sigma,
            min_deviation: rule.min_deviation,
            min_mass: 8.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block_tree() -> AlociTree {
        // Dense uniform block on [0.40, 0.50].
        let mut t = AlociTree::new(1, AlociTreeConfig::default()).expect("valid");
        for i in 0..4_000 {
            t.insert(&[0.40 + 0.10 * (i as f64 + 0.5) / 4_000.0]);
        }
        t
    }

    #[test]
    fn construction_validates() {
        assert!(AlociTree::new(0, AlociTreeConfig::default()).is_none());
        let bad = AlociTreeConfig {
            min_level: 9,
            max_level: 5,
            ..AlociTreeConfig::default()
        };
        assert!(AlociTree::new(1, bad).is_none());
    }

    #[test]
    fn skirt_point_is_flagged_core_is_not() {
        let t = block_tree();
        assert!(t.is_outlier(&[0.55], false), "skirt not flagged");
        assert!(!t.is_outlier(&[0.45], false), "core flagged");
    }

    #[test]
    fn removal_restores_state() {
        let mut t = block_tree();
        let cells_before = t.cell_count();
        for _ in 0..50 {
            t.insert(&[0.55]);
        }
        // The clump registers: some level now sees ~50 neighbors of 0.55.
        // (It may *still* be flagged at coarse granularity — a 50-point
        // clump beside a 4,000-point block is genuinely deviant there;
        // that is exactly what multi-granularity detection is for.)
        let max_count = t
            .evaluate(&[0.55], false)
            .iter()
            .map(|v| v.count)
            .fold(0.0, f64::max);
        assert!(max_count >= 49.0, "clump not visible: {max_count}");
        for _ in 0..50 {
            t.remove(&[0.55]);
        }
        assert_eq!(t.cell_count(), cells_before);
        assert!(t.is_outlier(&[0.55], false), "state not restored");
        let restored = t
            .evaluate(&[0.55], false)
            .iter()
            .map(|v| v.count)
            .fold(0.0, f64::max);
        assert_eq!(restored, 0.0, "counts not restored");
    }

    #[test]
    fn multi_granularity_catches_mixed_scale_outliers() {
        // A tight cluster and a diffuse cluster; a point in the diffuse
        // cluster's interior is normal, a point just outside the tight
        // cluster is deviant at fine levels even though coarse levels
        // blur it into the diffuse mass.
        let mut t = AlociTree::new(1, AlociTreeConfig::default()).expect("valid");
        for i in 0..3_000 {
            t.insert(&[0.250 + 0.008 * (i as f64 + 0.5) / 3_000.0]); // tight
        }
        for i in 0..3_000 {
            t.insert(&[0.60 + 0.25 * (i as f64 + 0.5) / 3_000.0]); // diffuse
        }
        assert!(!t.is_outlier(&[0.70], false), "diffuse interior flagged");
        let verdicts = t.evaluate(&[0.27], false);
        assert!(
            verdicts.iter().any(|v| v.flagged),
            "tight-cluster skirt missed at every level: {verdicts:?}"
        );
    }

    #[test]
    fn indexed_points_discount_themselves() {
        let mut t = block_tree();
        t.insert(&[0.55]);
        // As an indexed point, 0.55 must still look deviant (its own
        // single count is discounted).
        assert!(t.is_outlier(&[0.55], true));
    }

    #[test]
    fn insufficient_mass_gives_no_verdicts() {
        let mut t = AlociTree::new(1, AlociTreeConfig::default()).expect("valid");
        for i in 0..4 {
            t.insert(&[0.4 + 0.01 * i as f64]);
        }
        // Fewer than min_mass points anywhere: no level may claim
        // significance.
        assert!(t.evaluate(&[0.9], false).is_empty());
        assert!(!t.is_outlier(&[0.9], false));
    }

    #[test]
    fn two_dimensional_detection() {
        let mut t = AlociTree::new(2, AlociTreeConfig::default()).expect("valid");
        for i in 0..5_000 {
            let u = (i as f64 + 0.5) / 5_000.0;
            t.insert(&[0.40 + 0.10 * u, 0.40 + 0.10 * ((i % 97) as f64 / 97.0)]);
        }
        assert!(t.is_outlier(&[0.56, 0.45], false));
        assert!(!t.is_outlier(&[0.45, 0.45], false));
    }

    #[test]
    fn config_derivation_matches_paper_parameters() {
        let rule = MdefConfig::new(0.08, 0.01, 3.0).unwrap();
        let cfg = AlociTree::config_from_mdef(&rule);
        // 2αr = 0.02 → counting level ≈ log2(50) ≈ 6; α = 1/8 → shift 3.
        assert_eq!(cfg.alpha_shift, 3);
        assert!((5..=7).contains(&cfg.max_level.saturating_sub(1)));
        assert!(cfg.validate());
    }
}
