//! Cross-crate agreement tests: the online estimator-based detectors
//! against the exact brute-force baselines on identical data.

use sensor_outliers::core::{EstimatorConfig, SensorEstimator};
use sensor_outliers::data::{DataStream, GaussianMixtureStream};
use sensor_outliers::outlier::brute_force;
use sensor_outliers::outlier::{DistanceOutlierConfig, MdefConfig, PrecisionRecall};

/// Feeds `n` readings into a fresh estimator and returns them.
fn warmed(
    estimator: &mut SensorEstimator,
    stream: &mut GaussianMixtureStream,
    n: usize,
) -> Vec<Vec<f64>> {
    let mut readings = Vec::with_capacity(n);
    for _ in 0..n {
        let v = stream.next_reading();
        estimator.observe(&v).expect("dims match");
        readings.push(v);
    }
    readings
}

#[test]
fn kde_distance_verdicts_agree_with_brute_force_on_clear_cases() {
    let window = 4_000;
    let cfg = EstimatorConfig::builder()
        .window(window)
        .sample_size(400)
        .seed(17)
        .build()
        .unwrap();
    let mut est = SensorEstimator::new(cfg);
    let mut stream = GaussianMixtureStream::new(1, 23);
    let readings = warmed(&mut est, &mut stream, window);

    let rule = DistanceOutlierConfig::new(20.0, 0.01);
    let truth = brute_force::distance_outliers(&readings, &rule);

    // Score the estimator on "clear" cases — true neighbor counts far
    // from the threshold on either side (the paper's 94% agreement comes
    // from exactly these; the boundary band is genuinely ambiguous under
    // sampling).
    let mut pr = PrecisionRecall::new();
    for (v, &t) in readings.iter().zip(truth.iter()) {
        let exact_count = readings
            .iter()
            .filter(|q| (q[0] - v[0]).abs() <= rule.radius)
            .count() as f64
            - 1.0;
        if (exact_count - rule.min_neighbors).abs() < 15.0 {
            continue; // boundary band
        }
        let predicted = est.is_distance_outlier_scaled(v, &rule).unwrap();
        pr.record(predicted, t);
    }
    assert!(pr.precision() > 0.7, "clear-case precision too low: {pr}");
    assert!(pr.recall() > 0.6, "clear-case recall too low: {pr}");
}

#[test]
fn mdef_model_verdicts_track_aloci_on_block_data() {
    // Uniform block + injected skirt values: unambiguous MDEF geometry.
    let window = 2_000;
    let cfg = EstimatorConfig::builder()
        .window(window)
        .sample_size(250)
        .seed(29)
        .build()
        .unwrap();
    let mut est = SensorEstimator::new(cfg);
    let mut data: Vec<Vec<f64>> = Vec::new();
    for i in 0..window {
        let v = vec![0.40 + 0.10 * ((i * 7 % window) as f64 + 0.5) / window as f64];
        est.observe(&v).unwrap();
        data.push(v);
    }
    let rule = MdefConfig::new(0.08, 0.01, 3.0).unwrap();

    // Skirt probes are outliers for both the exact aLOCI window baseline
    // and the model-based detector.
    for probe in [0.55f64, 0.34, 0.58] {
        let mut with_probe = data.clone();
        with_probe.push(vec![probe]);
        let aloci = brute_force::mdef_outliers_aloci(&with_probe, &rule);
        assert!(aloci[window], "aLOCI missed skirt probe {probe}");
        let eval = est.evaluate_mdef(&[probe], &rule).unwrap();
        assert!(
            eval.is_outlier,
            "model missed skirt probe {probe}: {eval:?}"
        );
    }
    // Core probes are inliers for both.
    for probe in [0.45f64, 0.42, 0.48] {
        let mut with_probe = data.clone();
        with_probe.push(vec![probe]);
        let aloci = brute_force::mdef_outliers_aloci(&with_probe, &rule);
        assert!(!aloci[window], "aLOCI flagged core probe {probe}");
        let eval = est.evaluate_mdef(&[probe], &rule).unwrap();
        assert!(
            !eval.is_outlier,
            "model flagged core probe {probe}: {eval:?}"
        );
    }
}

#[test]
fn estimator_stays_within_sensor_memory_budget_while_streaming() {
    let cfg = EstimatorConfig::builder()
        .window(20_000)
        .sample_size(2_000)
        .seed(31)
        .build()
        .unwrap();
    let mut est = SensorEstimator::new(cfg);
    let mut stream = GaussianMixtureStream::new(1, 37);
    let mut max_bytes = 0usize;
    for _ in 0..60_000 {
        est.observe(&stream.next_reading()).unwrap();
        max_bytes = max_bytes.max(est.memory_bytes(2));
    }
    // Well inside the 512 KB of the paper's reference sensors, and the
    // variance component respects its theoretical bound.
    assert!(max_bytes < 65_536, "memory peaked at {max_bytes} B");
    assert!(est.max_variance_memory_bytes(2) <= est.variance_memory_bound(2));
}
