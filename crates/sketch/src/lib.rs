//! # snod-sketch — streaming summaries over sliding windows
//!
//! This crate is the streaming substrate of the `sensor-outliers` workspace.
//! It contains the per-sensor data structures that the VLDB'06 paper
//! *"Online Outlier Detection in Sensor Data Using Non-Parametric Models"*
//! (Subramaniam et al.) assumes each node maintains:
//!
//! * [`ChainSampler`] — a uniform random sample of the last `|W|` stream
//!   elements, maintained with the *chain-sample* algorithm of Babcock,
//!   Datar and Motwani (SODA 2002). This is the sample `R` the paper's
//!   kernel estimators are built from.
//! * [`WindowedVariance`] — an ε-approximate estimate of the variance (and
//!   standard deviation) of the last `|W|` elements using
//!   `O((1/ε²)·log|W|)` words, after Babcock, Datar, Motwani and
//!   O'Callaghan (PODS 2003). The paper's Theorem 1 charges
//!   `O((d/ε²)·log|W|)` memory to this component; the struct also reports
//!   its actual memory so that the §10.3 experiment can be reproduced.
//! * [`ExpHistogram`] — DGIM exponential histogram for ε-approximate counts
//!   over a sliding window (building block and baseline).
//! * [`GkSketch`] — Greenwald–Khanna ε-approximate quantiles, used by the
//!   equi-depth histogram baseline and for order-statistics queries
//!   (the paper's reference 19, Greenwald & Khanna PODS 2004).
//! * [`SlidingWindow`] — an exact ring-buffer window, used by the offline
//!   brute-force baselines and as ground truth in tests.
//! * [`StreamingMoments`] / [`DatasetStats`] — first-moment summaries
//!   (min/max/mean/median/σ/skew) used to regenerate the paper's Figure 5.
//!
//! All structures are single-threaded by design (they live inside one
//! simulated sensor); the network layer owns concurrency.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chain_sample;
mod exp_histogram;
mod gk;
mod moments;
mod reservoir;
mod variance;
mod window;
mod windowed_quantile;

pub use chain_sample::ChainSampler;
pub use exp_histogram::ExpHistogram;
pub use gk::GkSketch;
pub use moments::{DatasetStats, StreamingMoments};
pub use reservoir::ReservoirSampler;
pub use variance::WindowedVariance;
pub use window::SlidingWindow;
pub use windowed_quantile::WindowedQuantile;

/// Errors produced by sketch construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SketchError {
    /// A size parameter (window length, sample size, …) was zero.
    ZeroSize(&'static str),
    /// The accuracy parameter ε was outside `(0, 1]`.
    InvalidEpsilon,
}

impl std::fmt::Display for SketchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SketchError::ZeroSize(what) => write!(f, "{what} must be positive"),
            SketchError::InvalidEpsilon => write!(f, "epsilon must lie in (0, 1]"),
        }
    }
}

impl std::error::Error for SketchError {}
