//! # snod-engine — runtime-agnostic detector engines and their drivers
//!
//! The paper's algorithms (D3, MGDD, the centralized baseline) are
//! *per-node state machines*: they ingest sensor readings, exchange
//! messages along the hierarchy, maintain model epochs and react to
//! timers. Nothing about that logic depends on *how* time advances —
//! a discrete-event simulator and a live streaming process must drive
//! the very same code. This crate is that separation:
//!
//! * [`DetectorEngine`] — the pure per-node state machine trait:
//!   [`DetectorEngine::ingest`] for readings,
//!   [`DetectorEngine::on_message`] for hierarchy traffic,
//!   [`DetectorEngine::on_timer`] for engine-armed timers, plus
//!   checkpoint/restore via `snod-persist`. Engines never see an event
//!   queue or a clock; they observe time only through
//!   [`EngineCtx::time_ns`].
//! * [`EngineCtx`] — the engine's window onto the network during one
//!   callback: hierarchy links (parent/children), buffered sends,
//!   degradation counters and timer arming. Drivers construct it,
//!   collect it, and replay its side effects deterministically.
//! * [`protocol`] — the shared *driver core*: event classification (the
//!   pre phase) and side-effect replay (the post phase), including the
//!   ack/retry protocol, the fault layer, per-node RNG streams and all
//!   traffic/energy accounting. Both the simulator (`snod-simnet`'s
//!   `Network`) and the [`LiveRuntime`] here run this exact code, which
//!   is the backbone of the sim-vs-live equivalence argument.
//! * [`LiveRuntime`] — a streaming driver: one lightweight worker per
//!   node fed by bounded channels, a monotonic-clock timer wheel
//!   (the [`EventQueue`] keyed by stream time), and replayable input
//!   adapters ([`trace::ReadingTrace`] CSV traces or any
//!   [`StreamSource`]).
//!
//! ## The driver contract
//!
//! Every driver must deliver callbacks to one node in a single total
//! order, replay the protocol's side effects (sends, acks, retries,
//! timers, RNG draws, statistics) in event order, and timestamp
//! callbacks with a monotone `time_ns`. Under that contract two drivers
//! fed the same replayable inputs produce **bit-identical** outcomes:
//! the same escalations, the same model epochs, the same [`NetStats`],
//! and the same checkpoint bytes. The differential conformance suite in
//! `snod-bench` pins exactly this property between the simulator and
//! the [`LiveRuntime`], with and without fault injection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod detector;
mod energy;
mod event;
pub mod fault;
pub mod ingest;
mod live;
mod message;
mod node;
pub mod protocol;
mod stats;
mod topology;
pub mod trace;

pub use config::{SimConfig, StreamSource};
pub use detector::{CtxOut, DetectorEngine, EngineCtx};
pub use energy::EnergyModel;
pub use event::{Event, EventQueue};
pub use fault::{
    BurstLoss, CrashWindow, DropoutWindow, FaultPlan, LinkFault, RestartPolicy, RetryPolicy,
};
pub use ingest::{IngestBuffer, PushOutcome};
pub use live::{Clock, LiveRuntime, MonotonicClock, VirtualClock};
pub use message::{Envelope, Wire, ACK_BYTES, HEADER_BYTES, MSG_ID_BYTES};
pub use node::{Location, NodeId, NodeRole};
pub use protocol::EngineState;
pub use stats::NetStats;
pub use topology::Hierarchy;
pub use trace::{ReadingTrace, TraceRecorder};

/// Errors raised while building simulations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A structural parameter (leaf count, fan-out) was zero.
    ZeroSize(&'static str),
    /// A node id was out of range for the topology.
    UnknownNode(NodeId),
    /// The hierarchy's top tier did not reduce to a single root.
    MultiRoot {
        /// Number of nodes left at the top tier.
        top_tier: usize,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::ZeroSize(what) => write!(f, "{what} must be positive"),
            SimError::UnknownNode(id) => write!(f, "node {id:?} is not part of the topology"),
            SimError::MultiRoot { top_tier } => write!(
                f,
                "fan-outs leave {top_tier} nodes at the top tier (must reduce to 1 root)"
            ),
        }
    }
}

impl std::error::Error for SimError {}
