//! Sliding-window quantiles (Arasu–Manku style block decomposition).
//!
//! The paper's Section 9 applications and its references [19, 41]
//! (Greenwald–Khanna in sensor networks; "Medians and Beyond") revolve
//! around order statistics *over windows*. [`GkSketch`] summarises a
//! whole stream; this structure makes it windowed: the stream is cut
//! into blocks of `window / blocks` elements, each block carries its own
//! GK sketch, expired blocks are dropped whole, and a query merges the
//! live blocks' quantile surfaces by weighted rank.
//!
//! Memory: `O(blocks · (1/ε)·log(block))`; the window boundary is
//! honoured at block granularity (the classic Arasu–Manku trade-off).

use std::collections::VecDeque;

use snod_persist::{ByteReader, ByteWriter, Persist, PersistError};

use crate::gk::GkSketch;
use crate::SketchError;

/// ε-approximate quantiles over the last `window` stream values.
///
/// ```
/// use snod_sketch::WindowedQuantile;
/// let mut wq = WindowedQuantile::new(1_000, 8, 0.02).unwrap();
/// for i in 0..10_000u64 {
///     wq.push(i as f64);
/// }
/// // The window holds ~[9000, 10000): the median is ~9500.
/// let med = wq.quantile(0.5).unwrap();
/// assert!((med - 9_500.0).abs() < 200.0);
/// ```
#[derive(Debug, Clone)]
pub struct WindowedQuantile {
    block_len: u64,
    eps: f64,
    /// Live blocks, oldest first; each `(start index, sketch, count)`.
    blocks: VecDeque<(u64, GkSketch, u64)>,
    window: u64,
    pushed: u64,
}

impl WindowedQuantile {
    /// Creates a sketch over `window` values using `blocks` sub-sketches
    /// of rank error `eps` each.
    pub fn new(window: usize, blocks: usize, eps: f64) -> Result<Self, SketchError> {
        if window == 0 {
            return Err(SketchError::ZeroSize("window capacity"));
        }
        if blocks == 0 || blocks > window {
            return Err(SketchError::ZeroSize("block count"));
        }
        if !(eps > 0.0 && eps <= 1.0) {
            return Err(SketchError::InvalidEpsilon);
        }
        Ok(Self {
            block_len: (window / blocks).max(1) as u64,
            eps,
            blocks: VecDeque::new(),
            window: window as u64,
            pushed: 0,
        })
    }

    /// Feeds one value.
    pub fn push(&mut self, v: f64) {
        let start_new = match self.blocks.back() {
            Some((_, _, count)) => *count >= self.block_len,
            None => true,
        };
        if start_new {
            self.blocks.push_back((
                self.pushed,
                GkSketch::new(self.eps).expect("validated eps"),
                0,
            ));
        }
        let (_, sketch, count) = self.blocks.back_mut().expect("block just ensured");
        sketch.insert(v);
        *count += 1;
        self.pushed += 1;
        // Expire blocks that lie entirely before the window horizon.
        let horizon = self.pushed.saturating_sub(self.window);
        while let Some((start, _, count)) = self.blocks.front() {
            if start + count <= horizon {
                self.blocks.pop_front();
            } else {
                break;
            }
        }
    }

    /// Values currently covered (exact up to the straddling block).
    pub fn covered(&self) -> u64 {
        self.blocks.iter().map(|(_, _, c)| c).sum()
    }

    /// The φ-quantile of the (block-aligned) window. `None` while empty.
    pub fn quantile(&self, phi: f64) -> Option<f64> {
        if self.blocks.is_empty() {
            return None;
        }
        let phi = phi.clamp(0.0, 1.0);
        // Sample each block's quantile surface at m points and select by
        // weighted rank across blocks.
        let m = ((2.0 / self.eps).ceil() as usize).clamp(8, 256);
        let mut weighted: Vec<(f64, f64)> = Vec::with_capacity(self.blocks.len() * m);
        for (_, sketch, count) in &self.blocks {
            let w = *count as f64 / m as f64;
            for i in 0..m {
                let q = sketch.quantile((i as f64 + 0.5) / m as f64)?;
                weighted.push((q, w));
            }
        }
        weighted.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("non-NaN quantiles"));
        let total: f64 = weighted.iter().map(|(_, w)| w).sum();
        let target = phi * total;
        let mut acc = 0.0;
        for (v, w) in &weighted {
            acc += w;
            if acc >= target {
                return Some(*v);
            }
        }
        weighted.last().map(|(v, _)| *v)
    }

    /// The window median.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Total GK tuples stored across blocks (memory diagnostic).
    pub fn tuple_count(&self) -> usize {
        self.blocks.iter().map(|(_, s, _)| s.tuple_count()).sum()
    }
}


impl Persist for WindowedQuantile {
    fn save(&self, w: &mut ByteWriter) {
        w.put_u64(self.block_len);
        w.put_f64(self.eps);
        self.blocks.save(w);
        w.put_u64(self.window);
        w.put_u64(self.pushed);
    }

    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let wq = Self {
            block_len: r.get_u64()?,
            eps: r.get_f64()?,
            blocks: Persist::load(r)?,
            window: r.get_u64()?,
            pushed: r.get_u64()?,
        };
        if wq.window == 0 || wq.block_len == 0 {
            return Err(PersistError::Corrupt("quantile window must be positive"));
        }
        Ok(wq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_parameters() {
        assert!(WindowedQuantile::new(0, 4, 0.1).is_err());
        assert!(WindowedQuantile::new(100, 0, 0.1).is_err());
        assert!(WindowedQuantile::new(100, 200, 0.1).is_err());
        assert!(WindowedQuantile::new(100, 4, 0.0).is_err());
    }

    #[test]
    fn empty_sketch_has_no_quantiles() {
        let wq = WindowedQuantile::new(100, 4, 0.1).unwrap();
        assert_eq!(wq.median(), None);
    }

    #[test]
    fn tracks_shifting_windows() {
        let mut wq = WindowedQuantile::new(1_000, 10, 0.02).unwrap();
        for i in 0..5_000u64 {
            wq.push(i as f64);
        }
        // Window ≈ [4000, 5000): quartiles at ~4250/4500/4750, block
        // granularity adds up to one block (100) of slack.
        for (phi, expect) in [(0.25, 4_250.0), (0.5, 4_500.0), (0.75, 4_750.0)] {
            let q = wq.quantile(phi).unwrap();
            assert!((q - expect).abs() < 150.0, "phi {phi}: {q} vs {expect}");
        }
    }

    #[test]
    fn adapts_after_distribution_change() {
        let mut wq = WindowedQuantile::new(500, 10, 0.05).unwrap();
        for _ in 0..2_000 {
            wq.push(0.2);
        }
        for _ in 0..600 {
            wq.push(0.9);
        }
        // The window now holds only the new regime.
        assert!((wq.median().unwrap() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn mixed_blocks_interpolate_by_weight() {
        let mut wq = WindowedQuantile::new(400, 4, 0.02).unwrap();
        // Window half 0.1s, half 0.9s → median at the boundary, and the
        // 0.25/0.75 quantiles firmly in each half.
        for _ in 0..400 {
            wq.push(0.1);
        }
        for _ in 0..200 {
            wq.push(0.9);
        }
        assert!((wq.quantile(0.2).unwrap() - 0.1).abs() < 1e-9);
        assert!((wq.quantile(0.8).unwrap() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn memory_is_sublinear_in_window() {
        let mut wq = WindowedQuantile::new(10_000, 10, 0.02).unwrap();
        for i in 0..50_000u64 {
            wq.push(((i * 48_271) % 10_007) as f64);
        }
        assert!(wq.covered() <= 10_000);
        assert!(
            wq.tuple_count() < 4_000,
            "tuples {} not sublinear",
            wq.tuple_count()
        );
    }
}
