//! Messages on the (simulated) air.
//!
//! The simulator is agnostic to what applications say to each other: any
//! payload implementing [`Wire`] can be sent, and its reported size is
//! what the statistics and the energy model charge. The paper assumes a
//! 16-bit architecture (2 bytes per number, §10.3); `snod-core`'s payload
//! type follows that accounting.

use crate::node::NodeId;

/// A payload that knows its size on the wire.
pub trait Wire: Clone {
    /// Serialized size in bytes (excluding the link-layer header, which
    /// [`Envelope::wire_bytes`] adds).
    fn size_bytes(&self) -> usize;
}

/// Link-layer header overhead per message, in bytes (source, destination,
/// type, length — a deliberately small TinyOS-like header).
pub const HEADER_BYTES: usize = 8;

/// Extra bytes a reliable frame carries for its engine-assigned message
/// id (dedup + ack matching).
pub const MSG_ID_BYTES: usize = 8;

/// Size of an acknowledgement frame: a header plus the acked message id.
pub const ACK_BYTES: usize = HEADER_BYTES + MSG_ID_BYTES;

/// A payload in flight between two nodes.
#[derive(Debug, Clone)]
pub struct Envelope<P> {
    /// Sending node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Application payload.
    pub payload: P,
}

impl<P: Wire> Envelope<P> {
    /// Total bytes on the air: payload plus header.
    pub fn wire_bytes(&self) -> usize {
        self.payload.size_bytes() + HEADER_BYTES
    }
}

/// Blanket impl: raw readings are `d` numbers of 2 bytes each.
impl Wire for Vec<f64> {
    fn size_bytes(&self) -> usize {
        self.len() * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_payload_size_is_two_bytes_per_number() {
        let e = Envelope {
            from: NodeId(0),
            to: NodeId(1),
            payload: vec![0.1, 0.2],
        };
        assert_eq!(e.payload.size_bytes(), 4);
        assert_eq!(e.wire_bytes(), 4 + HEADER_BYTES);
    }
}
