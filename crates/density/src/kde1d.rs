//! Sorted-centre one-dimensional kernel estimator (paper Section 5.3).
//!
//! For one-dimensional data the paper improves the `O(|R|)` range query to
//! `O(log|R| + |R′|)` *"where R′ is the set of kernels that intersect the
//! query"*: keep the kernel centres sorted and binary-search for the ones
//! whose support overlaps `[lo − B, hi + B]`. Sensors spend almost all of
//! their query budget on `N(p, r)` calls (every arriving value triggers
//! one for D3 and `1/(2αr)` of them for MGDD), so this is the variant a
//! real deployment would run for scalar readings. The `kde_range_query`
//! benchmark compares it against the generic [`crate::Kde`].

use crate::kernel::{EpanechnikovKernel, Kernel1d};
use crate::model::{check_dims, DensityModel};
use crate::{scott_bandwidth, DensityError};

/// One-dimensional KDE with sorted centres and support-pruned queries.
///
/// ```
/// use snod_density::{Kde1d, DensityModel};
/// let sample: Vec<f64> = (0..100).map(|i| 0.4 + 0.002 * (i as f64)).collect();
/// let kde = Kde1d::from_sample(&sample, 0.06, 10_000.0).unwrap();
/// let n = kde.neighborhood_count(&[0.5], 0.1).unwrap();
/// assert!(n > 8_000.0); // most of the window within ±0.1 of 0.5
/// ```
#[derive(Debug, Clone)]
pub struct Kde1d<K: Kernel1d = EpanechnikovKernel> {
    /// Kernel centres in ascending order.
    centers: Vec<f64>,
    bandwidth: f64,
    window_len: f64,
    kernel: K,
}

impl Kde1d<EpanechnikovKernel> {
    /// Builds an Epanechnikov estimator from an (unsorted) sample, deriving
    /// the bandwidth from `sigma` via the paper's rule with `d = 1`.
    pub fn from_sample(sample: &[f64], sigma: f64, window_len: f64) -> Result<Self, DensityError> {
        let bandwidth = scott_bandwidth(sigma, sample.len(), 1);
        Self::new(sample.to_vec(), bandwidth, window_len, EpanechnikovKernel)
    }
}

impl<K: Kernel1d> Kde1d<K> {
    /// Builds an estimator with an explicit bandwidth and kernel; sorts the
    /// centres.
    pub fn new(
        mut centers: Vec<f64>,
        bandwidth: f64,
        window_len: f64,
        kernel: K,
    ) -> Result<Self, DensityError> {
        if centers.is_empty() {
            return Err(DensityError::EmptySample);
        }
        if !(bandwidth > 0.0) {
            return Err(DensityError::NonPositiveParameter("bandwidth"));
        }
        if !(window_len > 0.0) {
            return Err(DensityError::NonPositiveParameter("window length"));
        }
        centers.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN centres"));
        Ok(Self {
            centers,
            bandwidth,
            window_len,
            kernel,
        })
    }

    /// Sample size `|R|`.
    pub fn sample_size(&self) -> usize {
        self.centers.len()
    }

    /// The bandwidth `B`.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Index range of centres whose kernel support intersects `[lo, hi]` —
    /// the `R′` of the paper's complexity claim.
    fn intersecting(&self, lo: f64, hi: f64) -> (usize, usize) {
        let reach = self.kernel.support();
        if reach.is_infinite() {
            return (0, self.centers.len());
        }
        let span = reach * self.bandwidth;
        let start = self.centers.partition_point(|&c| c < lo - span);
        let end = self.centers.partition_point(|&c| c <= hi + span);
        (start, end)
    }

    /// Number of kernels the query `[lo, hi]` touches (exposed so the
    /// complexity experiment can report `|R′|`).
    pub fn kernels_intersecting(&self, lo: f64, hi: f64) -> usize {
        let (s, e) = self.intersecting(lo, hi);
        e - s
    }
}

impl<K: Kernel1d> DensityModel for Kde1d<K> {
    fn dims(&self) -> usize {
        1
    }

    fn window_len(&self) -> f64 {
        self.window_len
    }

    fn pdf(&self, x: &[f64]) -> Result<f64, DensityError> {
        check_dims(1, x)?;
        let x = x[0];
        let (s, e) = self.intersecting(x, x);
        let sum: f64 = self.centers[s..e]
            .iter()
            .map(|&c| self.kernel.density((x - c) / self.bandwidth))
            .sum();
        Ok(sum / (self.centers.len() as f64 * self.bandwidth))
    }

    fn box_prob(&self, lo: &[f64], hi: &[f64]) -> Result<f64, DensityError> {
        check_dims(1, lo)?;
        check_dims(1, hi)?;
        let (a, b) = (lo[0], hi[0]);
        if b <= a {
            return Ok(0.0);
        }
        let (s, e) = self.intersecting(a, b);
        let sum: f64 = self.centers[s..e]
            .iter()
            .map(|&c| {
                self.kernel
                    .mass((a - c) / self.bandwidth, (b - c) / self.bandwidth)
            })
            .sum();
        Ok(sum / self.centers.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kde::Kde;

    fn sample() -> Vec<f64> {
        (0..200).map(|i| ((i * 37) % 200) as f64 / 200.0).collect()
    }

    #[test]
    fn agrees_with_generic_kde() {
        let xs = sample();
        let pts: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
        let sigma = 0.28;
        let fast = Kde1d::from_sample(&xs, sigma, 1_000.0).unwrap();
        let slow = Kde::from_sample(&pts, &[sigma], 1_000.0).unwrap();
        for i in 0..=20 {
            let x = i as f64 / 20.0;
            let pf = fast.pdf(&[x]).unwrap();
            let ps = slow.pdf(&[x]).unwrap();
            assert!((pf - ps).abs() < 1e-12, "pdf mismatch at {x}: {pf} vs {ps}");
            let bf = fast.range_prob(&[x], 0.07).unwrap();
            let bs = slow.range_prob(&[x], 0.07).unwrap();
            assert!((bf - bs).abs() < 1e-12, "range mismatch at {x}");
        }
    }

    #[test]
    fn pruning_reduces_touched_kernels() {
        let xs: Vec<f64> = (0..10_000).map(|i| i as f64 / 10_000.0).collect();
        let kde = Kde1d::from_sample(&xs, 0.29, 10_000.0).unwrap();
        let touched = kde.kernels_intersecting(0.49, 0.51);
        assert!(touched < 10_000, "no pruning happened");
        assert!(touched > 0);
    }

    #[test]
    fn empty_interval_has_zero_mass() {
        let kde = Kde1d::from_sample(&sample(), 0.28, 100.0).unwrap();
        assert_eq!(kde.box_prob(&[0.5], &[0.5]).unwrap(), 0.0);
        assert_eq!(kde.box_prob(&[0.6], &[0.4]).unwrap(), 0.0);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let kde = Kde1d::from_sample(&[0.9, 0.1, 0.5], 0.3, 100.0).unwrap();
        // centres must be sorted internally for partition_point to work
        let p_all = kde.box_prob(&[-2.0], &[3.0]).unwrap();
        assert!((p_all - 1.0).abs() < 1e-12);
    }

    #[test]
    fn construction_validates_input() {
        assert!(Kde1d::from_sample(&[], 0.1, 100.0).is_err());
        assert!(Kde1d::new(vec![0.5], -0.1, 100.0, EpanechnikovKernel).is_err());
        assert!(Kde1d::new(vec![0.5], 0.1, -1.0, EpanechnikovKernel).is_err());
    }

    #[test]
    fn neighborhood_count_counts_cluster() {
        // Sample mirrors a window where ~half the mass sits at 0.2.
        let mut xs = vec![0.2; 100];
        xs.extend(std::iter::repeat(0.8).take(100));
        let kde = Kde1d::from_sample(&xs, 0.3, 2_000.0).unwrap();
        let n = kde.neighborhood_count(&[0.2], 0.25).unwrap();
        assert!((n - 1_000.0).abs() < 150.0, "count {n}");
    }
}
