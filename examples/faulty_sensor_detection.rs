//! The §9 applications: finding faulty sensors by comparing estimator
//! models, and windowed outlier-count alarms.
//!
//! *"a parent sensor can compute the difference between the estimator
//! models received from its children, to determine if any of them is
//! faulty"* — the difference being the Jensen–Shannon divergence of
//! Section 6 — and *"give a warning if the number of outliers in a given
//! region exceeds a given threshold T over the most recent time window
//! W"*, which we answer from an exponential histogram so the alarm stays
//! within sketch memory.
//!
//! Run with: `cargo run --release --example faulty_sensor_detection`

use sensor_outliers::core::apps::{detect_faulty_sensors, model_distance, OutlierCountAlarm};
use sensor_outliers::core::{EstimatorConfig, SensorEstimator};
use sensor_outliers::data::{DataStream, EnvironmentStream};

fn main() {
    let window = 3_000usize;
    let sensors = 6usize;
    let cfg = |seed: u64| {
        EstimatorConfig::builder()
            .window(window)
            .sample_size(150)
            .dimensions(2)
            .seed(seed)
            .build()
            .expect("valid configuration")
    };

    // Six sibling sensors in one region; sensor 4 drifts after a while
    // (stuck dew-point element reporting maximal humidity).
    let mut streams: Vec<EnvironmentStream> = (0..sensors)
        .map(|i| EnvironmentStream::new(500 + i as u64))
        .collect();
    let mut ests: Vec<SensorEstimator> = (0..sensors)
        .map(|i| SensorEstimator::new(cfg(i as u64)))
        .collect();

    for t in 0..(2 * window) {
        for (i, (s, e)) in streams.iter_mut().zip(ests.iter_mut()).enumerate() {
            let mut v = s.next_reading();
            if i == 4 && t > window {
                v[1] = 0.28; // stuck at the sensor's ceiling
            }
            e.observe(&v).expect("2-d reading");
        }
    }

    // The leader gathers the children's models and compares them.
    let models: Vec<_> = ests
        .iter()
        .map(|e| e.model().expect("estimators warmed up"))
        .collect();
    println!("pairwise JS-divergence from sensor 0:");
    for (i, m) in models.iter().enumerate() {
        let d = model_distance(&models[0], m, 24).expect("same dimensionality");
        println!("  sensor {i}: {d:.4}");
    }

    let flagged = detect_faulty_sensors(&models, 24, 0.25).expect("same dimensionality");
    println!("\nflagged as faulty (min sibling divergence > 0.25): {flagged:?}");
    assert_eq!(flagged, vec![4], "the stuck sensor should stand out");

    // Outlier-count alarm over the most recent 1,000 readings.
    let mut alarm = OutlierCountAlarm::new(1_000, 20, 0.1).expect("valid alarm");
    println!("\noutlier-count alarm (T = 20 over last 1,000 readings):");
    for burst in [5u32, 10, 30, 0, 0] {
        for i in 0..200 {
            alarm.record(i < burst);
        }
        println!(
            "  after a burst of {burst:>2} outliers in 200 readings: estimate {:>3}, alarmed: {}",
            alarm.estimate(),
            alarm.alarmed()
        );
    }
    // Once the bursts slide out of the 1,000-reading window, the alarm
    // clears by itself.
    for _ in 0..1_000 {
        alarm.record(false);
    }
    println!(
        "  after 1,000 further clean readings:                estimate {:>3}, alarmed: {}",
        alarm.estimate(),
        alarm.alarmed()
    );
}
