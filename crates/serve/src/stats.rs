//! Shared daemon health counters and the public stats snapshot.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One escalation as exposed on the `/escalations` endpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct EscalationRecord {
    /// Tenant that produced it.
    pub tenant: String,
    /// Node that flagged the value.
    pub node: u32,
    /// Stream time of the detection.
    pub time_ns: u64,
    /// Tier of the flagging node (1 = leaf).
    pub level: u8,
}

/// Bounded recent-escalation ring shared by workers and the metrics
/// endpoint.
#[derive(Debug, Default)]
pub(crate) struct EscalationLog {
    ring: Mutex<VecDeque<EscalationRecord>>,
    total: AtomicU64,
}

/// Retained escalations on the `/escalations` endpoint.
pub(crate) const ESCALATION_RING: usize = 1024;

impl EscalationLog {
    pub fn push(&self, rec: EscalationRecord) {
        self.total.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.ring.lock().expect("escalation log lock");
        if ring.len() == ESCALATION_RING {
            ring.pop_front();
        }
        ring.push_back(rec);
    }

    pub fn recent(&self) -> Vec<EscalationRecord> {
        self.ring.lock().expect("escalation log lock").iter().cloned().collect()
    }

    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }
}

/// Lock-free daemon counters, updated by connection handlers and tenant
/// workers, surfaced through [`ServeStats`] and the obs gauges.
#[derive(Debug, Default)]
pub(crate) struct DaemonStats {
    /// Readings currently queued across all tenants.
    pub depth: AtomicU64,
    /// Readings dropped because a tenant queue was full (unacked; the
    /// client retransmits them).
    pub shed: AtomicU64,
    /// Readings dropped as duplicates by sequence-number dedup.
    pub duplicates: AtomicU64,
    /// Hellos beyond the first for an already-known tenant.
    pub reconnects: AtomicU64,
    /// Crashed tenant workers respawned from their last checkpoint.
    pub worker_restarts: AtomicU64,
    /// Frames rejected by the decoder (connection closed each time).
    pub wire_errors: AtomicU64,
    /// Frames successfully decoded.
    pub frames: AtomicU64,
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Connections dropped by the slow-loris frame deadline.
    pub slow_loris_drops: AtomicU64,
    /// Checkpoint files written.
    pub checkpoints: AtomicU64,
}

/// A point-in-time snapshot of daemon health, readable without the obs
/// feature (the same numbers back the obs gauges).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Readings currently queued across all tenants.
    pub queued: u64,
    /// Readings shed by full tenant queues.
    pub shed: u64,
    /// Readings dropped by sequence-number dedup.
    pub duplicates: u64,
    /// Reconnects (Hellos for already-known tenants).
    pub reconnects: u64,
    /// Tenant workers respawned after a crash.
    pub worker_restarts: u64,
    /// Frames rejected by the wire decoder.
    pub wire_errors: u64,
    /// Frames decoded.
    pub frames: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Connections dropped by the slow-loris guard.
    pub slow_loris_drops: u64,
    /// Checkpoint files written.
    pub checkpoints: u64,
    /// Live tenants.
    pub tenants: usize,
    /// Escalations produced since start.
    pub escalations: u64,
}
