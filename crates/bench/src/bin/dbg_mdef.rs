//! Diagnostics: run the *production* MDEF path (chain-sampled
//! `SensorEstimator` → cached KDE → `MdefDetector`) over the paper's
//! synthetic workload and report the flag rate per 10k readings next to
//! the published ~40–80, with the observability layer attributing where
//! the work went. Internal tool, not a figure.
//!
//! This replaces the old hand-rolled grid-count variant sweep: the
//! estimator-reconstruction question it explored is settled (see
//! `MdefConfig` docs), so the diagnostic now exercises the same code the
//! detectors run and its output is the obs layer's — per-phase counters
//! (`core.score.mdef`, `core.model.rebuilds`, `density.scalar.kernels`)
//! and span timings (`core.model.rebuild`), written to
//! `DBG_mdef_metrics.json` and summarised on stdout.
//!
//! Knobs: `DBG_WINDOW` (default 10000), `DBG_SAMPLE` (default 1000),
//! `DBG_EVAL` (default 4000 post-warm-up readings).

use snod_bench::obs_report;
use snod_core::{EstimatorConfig, SensorEstimator};
use snod_data::{DataStream, GaussianMixtureStream};
use snod_outlier::MdefConfig;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let window = env_usize("DBG_WINDOW", 10_000);
    let sample = env_usize("DBG_SAMPLE", 1_000);
    let eval = env_usize("DBG_EVAL", 4_000);
    let rule = MdefConfig::new(0.08, 0.01, 3.0).expect("paper MDEF parameters");

    let mut est = SensorEstimator::new(
        EstimatorConfig::builder()
            .window(window)
            .sample_size(sample)
            .seed(7)
            .build()
            .expect("valid config"),
    );
    let mut stream = GaussianMixtureStream::new(1, 0);

    // Phase 1: warm the window (pure ingest: chain sampler + variance
    // sketches, no scoring).
    let ((), warmup) = obs_report::phase(|| {
        for _ in 0..window {
            let v = stream.next_reading();
            est.observe(&v).expect("1-d reading");
        }
    });

    // Phase 2: score each new reading with the production MDEF path,
    // counting flags and how often the planted noise tail is hit.
    let (tally, scoring) = obs_report::phase(|| {
        let (mut flags, mut noise_flags, mut noise) = (0u64, 0u64, 0u64);
        for _ in 0..eval {
            let v = stream.next_reading();
            let is_noise = v[0] > 0.57;
            noise += is_noise as u64;
            if let Ok(eval) = est.evaluate_mdef(&v, &rule) {
                if eval.is_outlier {
                    flags += 1;
                    noise_flags += is_noise as u64;
                }
            }
            est.observe(&v).expect("1-d reading");
        }
        (flags, noise_flags, noise)
    });

    let (flags, noise_flags, noise) = tally;
    println!(
        "|W|={window} |R|={sample} eval={eval}: flagged {flags} \
         (per-10k {:.1}, paper ~40-80), noise hit {noise_flags}/{noise}",
        flags as f64 / eval as f64 * 10_000.0
    );
    if snod_obs::enabled() {
        println!(
            "warm-up: {} sampler pushes, {} accepted",
            warmup.counter("sketch.chain.pushes").unwrap_or(0),
            warmup.counter("sketch.chain.accepts").unwrap_or(0),
        );
        println!(
            "scoring: {} MDEF evals, {} model rebuilds ({} cache hits), \
             {} sweep + {} scalar kernel evaluations",
            scoring.counter("core.score.mdef").unwrap_or(0),
            scoring.counter("core.model.rebuilds").unwrap_or(0),
            scoring.counter("core.model.cache_hits").unwrap_or(0),
            scoring.counter("density.sweep.kernels").unwrap_or(0),
            scoring.counter("density.scalar.kernels").unwrap_or(0),
        );
        if let Some(h) = scoring.histogram("core.model.rebuild") {
            println!(
                "model rebuild span: n={} mean={:.0}ns p99={}ns max={}ns",
                h.count,
                h.mean(),
                h.p99,
                h.max
            );
        }
    }
    let phases = vec![("warmup".to_string(), warmup), ("scoring".to_string(), scoring)];
    obs_report::write_phases("DBG_mdef_metrics.json", &phases)
        .expect("write DBG_mdef_metrics.json");
    println!("per-phase metrics: DBG_mdef_metrics.json");
}
