//! The daemon: listener, connection supervision, tenant registry and
//! lifecycle.
//!
//! ## Supervision and backpressure
//!
//! The accept loop is non-blocking with exponential backoff on listener
//! errors. Each connection gets a reader thread (with a read-poll
//! timeout, so shutdown and the slow-loris frame deadline are both
//! observed) and a writer thread fed by an unbounded channel. Tenant
//! workers hang off **bounded** queues: a full queue sheds the reading
//! — counted, surfaced in metrics, and *unacked*, so the at-least-once
//! client replays it later. A worker that panics is respawned from its
//! last checkpoint by the supervisor sweep (or on demand by the first
//! connection that notices the dead queue), and previously attached
//! connections are re-attached so acks keep flowing.
//!
//! ## Shutdown
//!
//! [`ServerHandle::shutdown`] stops accepting, lets workers drain their
//! queues, writes final checkpoints and joins everything.
//! [`ServerHandle::hard_abort`] is the crash path used by the restart
//! tests: it drops the worker queues without any drain or final
//! checkpoint, leaving the checkpoint directory exactly as a `kill -9`
//! would — recovery must work from periodic checkpoints alone.

use std::collections::HashMap;
use std::io::Read;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::config::{valid_tenant_name, ServeConfig};
use crate::error::ServeError;
use crate::stats::{DaemonStats, EscalationLog, EscalationRecord, ServeStats};
use crate::tenant::{spawn_worker, ConnSink, TenantMsg, TenantShared, WorkerConfig};
use crate::wire::{encode_frame, error_code, FrameDecoder, Msg};

pub(crate) struct TenantEntry {
    tx: SyncSender<TenantMsg>,
    shared: Arc<TenantShared>,
    join: JoinHandle<()>,
    /// Attachments to re-establish when the worker is respawned.
    sinks: Vec<ConnSink>,
    hellos: u64,
}

#[derive(Default)]
pub(crate) struct Registry {
    tenants: HashMap<String, TenantEntry>,
}

pub(crate) struct Inner {
    cfg: ServeConfig,
    pub(crate) stats: Arc<DaemonStats>,
    pub(crate) registry: Mutex<Registry>,
    pub(crate) shutdown: AtomicBool,
    epoch: Instant,
    pub(crate) esc_log: Arc<EscalationLog>,
    conn_seq: AtomicU64,
}

impl Inner {
    pub(crate) fn tenant_count(&self) -> usize {
        self.registry.lock().expect("registry lock").tenants.len()
    }

    fn worker_config(&self, name: &str) -> WorkerConfig {
        WorkerConfig {
            spec: self.cfg.tenant.clone(),
            ckpt_path: self
                .cfg
                .checkpoint_dir
                .as_ref()
                .map(|d| d.join(format!("{name}.ckpt"))),
            checkpoint_every: self.cfg.checkpoint_every,
            checkpoint_interval: self.cfg.checkpoint_interval,
        }
    }

    fn spawn_entry(self: &Arc<Self>, name: &str, sinks: Vec<ConnSink>) -> TenantEntry {
        let (tx, rx) = mpsc::sync_channel::<TenantMsg>(self.cfg.queue_capacity.max(1));
        let shared = Arc::new(TenantShared::default());
        let join = spawn_worker(
            name.to_string(),
            self.worker_config(name),
            rx,
            Arc::clone(&shared),
            Arc::clone(&self.stats),
            Arc::clone(&self.esc_log),
            self.epoch,
        );
        for sink in &sinks {
            let _ = tx.try_send(TenantMsg::Attach(sink.clone()));
        }
        TenantEntry {
            tx,
            shared,
            join,
            sinks,
            hellos: 0,
        }
    }

    /// Resolves (or creates, or respawns) a tenant for a Hello.
    /// Returns `(queue, shared, resumed)` or a protocol error code.
    fn ensure_tenant(
        self: &Arc<Self>,
        name: &str,
    ) -> Result<(SyncSender<TenantMsg>, Arc<TenantShared>, bool), u8> {
        let mut reg = self.registry.lock().expect("registry lock");
        if let Some(entry) = reg.tenants.get(name) {
            if !entry.join.is_finished() {
                return Ok((entry.tx.clone(), Arc::clone(&entry.shared), true));
            }
        }
        if let Some(dead) = reg.tenants.remove(name) {
            // Crashed worker: warm restart from its last checkpoint.
            let _ = dead.join.join();
            self.stats.worker_restarts.fetch_add(1, Ordering::Relaxed);
            snod_obs::counter!("serve.worker.restarts").incr();
            let mut entry = self.spawn_entry(name, dead.sinks);
            entry.hellos = dead.hellos;
            let out = (entry.tx.clone(), Arc::clone(&entry.shared), true);
            reg.tenants.insert(name.to_string(), entry);
            return Ok(out);
        }
        if reg.tenants.len() >= self.cfg.max_tenants {
            return Err(error_code::TENANT_LIMIT);
        }
        let resumed = self
            .worker_config(name)
            .ckpt_path
            .is_some_and(|p| p.exists());
        let entry = self.spawn_entry(name, Vec::new());
        let out = (entry.tx.clone(), Arc::clone(&entry.shared), resumed);
        reg.tenants.insert(name.to_string(), entry);
        Ok(out)
    }

    /// Replaces a dead worker (noticed via a disconnected queue).
    /// Returns the fresh queue, or None during shutdown.
    fn respawn(self: &Arc<Self>, name: &str) -> Option<SyncSender<TenantMsg>> {
        if self.shutdown.load(Ordering::Relaxed) {
            return None;
        }
        let mut reg = self.registry.lock().expect("registry lock");
        let entry = reg.tenants.get(name)?;
        if !entry.join.is_finished() {
            return Some(entry.tx.clone());
        }
        let dead = reg.tenants.remove(name)?;
        let _ = dead.join.join();
        self.stats.worker_restarts.fetch_add(1, Ordering::Relaxed);
        snod_obs::counter!("serve.worker.restarts").incr();
        let mut entry = self.spawn_entry(name, dead.sinks);
        entry.hellos = dead.hellos;
        let tx = entry.tx.clone();
        reg.tenants.insert(name.to_string(), entry);
        Some(tx)
    }

    fn detach_conn(&self, conn_id: u64, names: &[String]) {
        let mut reg = self.registry.lock().expect("registry lock");
        for name in names {
            if let Some(entry) = reg.tenants.get_mut(name) {
                entry.sinks.retain(|s| s.conn_id != conn_id);
                let _ = entry.tx.try_send(TenantMsg::Detach { conn_id });
            }
        }
    }

    pub(crate) fn snapshot(&self) -> ServeStats {
        let s = &self.stats;
        ServeStats {
            queued: s.depth.load(Ordering::Relaxed),
            shed: s.shed.load(Ordering::Relaxed),
            duplicates: s.duplicates.load(Ordering::Relaxed),
            reconnects: s.reconnects.load(Ordering::Relaxed),
            worker_restarts: s.worker_restarts.load(Ordering::Relaxed),
            wire_errors: s.wire_errors.load(Ordering::Relaxed),
            frames: s.frames.load(Ordering::Relaxed),
            connections: s.connections.load(Ordering::Relaxed),
            slow_loris_drops: s.slow_loris_drops.load(Ordering::Relaxed),
            checkpoints: s.checkpoints.load(Ordering::Relaxed),
            tenants: self.tenant_count(),
            escalations: self.esc_log.total(),
        }
    }
}

/// A running daemon. Dropping the handle hard-aborts (no drain, no
/// final checkpoints) — call [`ServerHandle::shutdown`] for the
/// graceful path.
pub struct ServerHandle {
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    inner: Arc<Inner>,
    threads: Vec<JoinHandle<()>>,
}

/// Starts the daemon. Binds the ingestion listener (and the metrics
/// listener when configured), spawns the accept loop and the
/// supervisor sweep, and returns immediately.
pub fn serve(cfg: ServeConfig) -> Result<ServerHandle, ServeError> {
    cfg.tenant.validate()?; // validate the tenant template up front
    if let Some(dir) = &cfg.checkpoint_dir {
        std::fs::create_dir_all(dir)?;
    }
    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let metrics_listener = match &cfg.metrics_addr {
        Some(a) => {
            let l = TcpListener::bind(a)?;
            l.set_nonblocking(true)?;
            Some(l)
        }
        None => None,
    };
    let metrics_addr = metrics_listener
        .as_ref()
        .map(|l| l.local_addr())
        .transpose()?;
    let inner = Arc::new(Inner {
        cfg,
        stats: Arc::new(DaemonStats::default()),
        registry: Mutex::new(Registry::default()),
        shutdown: AtomicBool::new(false),
        epoch: Instant::now(),
        esc_log: Arc::new(EscalationLog::default()),
        conn_seq: AtomicU64::new(0),
    });
    let mut threads = Vec::new();
    {
        let inner = Arc::clone(&inner);
        threads.push(
            std::thread::Builder::new()
                .name("snod-accept".into())
                .spawn(move || accept_loop(inner, listener))
                .expect("spawn accept loop"),
        );
    }
    {
        let inner = Arc::clone(&inner);
        threads.push(
            std::thread::Builder::new()
                .name("snod-supervisor".into())
                .spawn(move || supervisor_loop(inner))
                .expect("spawn supervisor"),
        );
    }
    if let Some(l) = metrics_listener {
        let inner = Arc::clone(&inner);
        threads.push(
            std::thread::Builder::new()
                .name("snod-metrics".into())
                .spawn(move || crate::http::metrics_loop(inner, l))
                .expect("spawn metrics endpoint"),
        );
    }
    Ok(ServerHandle {
        addr,
        metrics_addr,
        inner,
        threads,
    })
}

impl ServerHandle {
    /// The bound ingestion address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound metrics address, when enabled.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// Current daemon health counters.
    pub fn stats(&self) -> ServeStats {
        self.inner.snapshot()
    }

    /// Recent escalations (the `/escalations` ring).
    pub fn recent_escalations(&self) -> Vec<EscalationRecord> {
        self.inner.esc_log.recent()
    }

    /// Graceful stop: stop accepting, drain every tenant queue, write
    /// final checkpoints, join all threads.
    pub fn shutdown(mut self) {
        self.stop(true);
    }

    /// Crash stop: drop worker queues with no drain and no final
    /// checkpoint. The checkpoint directory is left exactly as a
    /// `kill -9` at this instant would leave it — the restart tests
    /// recover from this state.
    pub fn hard_abort(mut self) {
        self.stop(false);
    }

    fn stop(&mut self, drain: bool) {
        self.inner.shutdown.store(true, Ordering::Relaxed);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        let entries: Vec<(String, TenantEntry)> = {
            let mut reg = self.inner.registry.lock().expect("registry lock");
            reg.tenants.drain().collect()
        };
        if drain {
            for (_, e) in &entries {
                let _ = e.tx.send(TenantMsg::Shutdown { drain: true });
            }
        }
        for (_, e) in entries {
            // Without drain the queue sender drops here un-sent: the
            // worker sees a dead queue and exits with no checkpoint.
            drop(e.tx);
            let _ = e.join.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop(false);
    }
}

fn accept_loop(inner: Arc<Inner>, listener: TcpListener) {
    let mut backoff = Duration::from_millis(10);
    loop {
        if inner.shutdown.load(Ordering::Relaxed) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                backoff = Duration::from_millis(10);
                inner.stats.connections.fetch_add(1, Ordering::Relaxed);
                snod_obs::counter!("serve.connections").incr();
                let inner = Arc::clone(&inner);
                let _ = std::thread::Builder::new()
                    .name("snod-conn".into())
                    .spawn(move || run_conn(inner, stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => {
                // Transient listener failure: exponential backoff.
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_secs(1));
            }
        }
    }
}

/// Periodic sweep: respawn crashed workers, refresh health gauges.
fn supervisor_loop(inner: Arc<Inner>) {
    loop {
        if inner.shutdown.load(Ordering::Relaxed) {
            return;
        }
        let mut dead: Vec<String> = Vec::new();
        let mut max_age_ms = 0u64;
        let now_ms = inner.epoch.elapsed().as_millis() as u64;
        {
            let reg = inner.registry.lock().expect("registry lock");
            for (name, entry) in &reg.tenants {
                if entry.join.is_finished() {
                    dead.push(name.clone());
                } else if inner.cfg.checkpoint_dir.is_some() {
                    let last = entry.shared.last_ckpt_ms.load(Ordering::Relaxed);
                    max_age_ms = max_age_ms.max(now_ms.saturating_sub(last));
                }
            }
        }
        for name in dead {
            let _ = inner.respawn(&name);
        }
        if snod_obs::enabled() {
            let s = &inner.stats;
            snod_obs::gauge!("serve.queue.depth").set(s.depth.load(Ordering::Relaxed));
            snod_obs::gauge!("serve.shed.count").set(s.shed.load(Ordering::Relaxed));
            snod_obs::gauge!("serve.reconnects").set(s.reconnects.load(Ordering::Relaxed));
            snod_obs::gauge!("serve.checkpoint.age_ms").set(max_age_ms);
            snod_obs::gauge!("serve.tenants").set(inner.tenant_count() as u64);
        }
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// A tenant as one connection sees it.
struct LocalTenant {
    name: String,
    tx: SyncSender<TenantMsg>,
    shared: Arc<TenantShared>,
}

fn run_conn(inner: Arc<Inner>, stream: TcpStream) {
    let conn_id = inner.conn_seq.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_nodelay(true);
    if stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .is_err()
    {
        return;
    }
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (out_tx, out_rx) = mpsc::channel::<Msg>();
    let writer = std::thread::Builder::new()
        .name("snod-conn-writer".into())
        .spawn(move || {
            let mut write_half = write_half;
            while let Ok(msg) = out_rx.recv() {
                if write_half.write_all(&encode_frame(&msg)).is_err() {
                    return;
                }
            }
            let _ = write_half.flush();
        })
        .expect("spawn conn writer");

    let mut reader = ConnReader {
        inner: &inner,
        conn_id,
        out_tx: out_tx.clone(),
        locals: Vec::new(),
    };
    reader.read_loop(stream);
    let names: Vec<String> = reader.locals.iter().map(|l| l.name.clone()).collect();
    inner.detach_conn(conn_id, &names);
    drop(reader);
    drop(out_tx); // writer drains queued frames, then exits
    let _ = writer.join();
}

struct ConnReader<'a> {
    inner: &'a Arc<Inner>,
    conn_id: u64,
    out_tx: mpsc::Sender<Msg>,
    locals: Vec<LocalTenant>,
}

impl ConnReader<'_> {
    fn read_loop(&mut self, mut stream: TcpStream) {
        let mut dec = FrameDecoder::new();
        let mut partial_since: Option<Instant> = None;
        let mut rbuf = [0u8; 16 * 1024];
        loop {
            if self.inner.shutdown.load(Ordering::Relaxed) {
                return;
            }
            match stream.read(&mut rbuf) {
                Ok(0) => return,
                Ok(n) => {
                    dec.feed(&rbuf[..n]);
                    loop {
                        match dec.next_frame() {
                            Ok(Some(msg)) => {
                                self.inner.stats.frames.fetch_add(1, Ordering::Relaxed);
                                snod_obs::counter!("serve.frames").incr();
                                if !self.handle(msg) {
                                    return;
                                }
                            }
                            Ok(None) => break,
                            Err(e) => {
                                self.inner.stats.wire_errors.fetch_add(1, Ordering::Relaxed);
                                snod_obs::counter!("serve.wire_errors").incr();
                                let _ = self.out_tx.send(Msg::Error {
                                    code: error_code::MALFORMED_FRAME,
                                    message: e.to_string(),
                                });
                                return;
                            }
                        }
                    }
                    partial_since = if dec.buffered() > 0 {
                        partial_since.or_else(|| Some(Instant::now()))
                    } else {
                        None
                    };
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(_) => return,
            }
            if let Some(t0) = partial_since {
                // Slow-loris guard: a frame must complete within the
                // deadline, however slowly its bytes trickle in. Idle
                // connections (no partial frame) are never dropped.
                if t0.elapsed() > self.inner.cfg.frame_deadline {
                    self.inner
                        .stats
                        .slow_loris_drops
                        .fetch_add(1, Ordering::Relaxed);
                    snod_obs::counter!("serve.slow_loris_drops").incr();
                    return;
                }
            }
        }
    }

    fn error(&self, code: u8, message: impl Into<String>) {
        let _ = self.out_tx.send(Msg::Error {
            code,
            message: message.into(),
        });
    }

    /// Handles one decoded frame; false closes the connection.
    fn handle(&mut self, msg: Msg) -> bool {
        match msg {
            Msg::Hello { tenant, subscribe } => self.hello(&tenant, subscribe),
            Msg::Reading {
                handle,
                node,
                seq,
                value,
            } => self.reading(handle, node, seq, value),
            Msg::Finish { handle, totals } => {
                self.control(handle, TenantMsg::Finish { totals })
            }
            Msg::Query { handle } => {
                let sink = ConnSink {
                    conn_id: self.conn_id,
                    handle,
                    subscribe: false,
                    tx: self.out_tx.clone(),
                };
                self.control(handle, TenantMsg::Query(sink))
            }
            Msg::Crash { handle } => {
                if !self.inner.cfg.allow_crash_frames {
                    self.error(error_code::CRASH_DISABLED, "crash frames disabled");
                    return true;
                }
                self.control(handle, TenantMsg::Crash)
            }
            Msg::Ping => self.out_tx.send(Msg::Pong).is_ok(),
            // Server-side frames arriving at the server are misuse.
            _ => {
                self.error(error_code::MALFORMED_FRAME, "unexpected server frame");
                false
            }
        }
    }

    fn hello(&mut self, tenant: &str, subscribe: bool) -> bool {
        if !valid_tenant_name(tenant) {
            self.error(error_code::BAD_TENANT_NAME, "invalid tenant name");
            return false;
        }
        let (tx, shared, resumed) = match self.inner.ensure_tenant(tenant) {
            Ok(t) => t,
            Err(code) => {
                self.error(code, "tenant rejected");
                return false;
            }
        };
        let handle = self.locals.len() as u32;
        {
            let mut reg = self.inner.registry.lock().expect("registry lock");
            if let Some(entry) = reg.tenants.get_mut(tenant) {
                entry.hellos += 1;
                if entry.hellos > 1 {
                    self.inner.stats.reconnects.fetch_add(1, Ordering::Relaxed);
                    snod_obs::counter!("serve.reconnects").incr();
                }
                let sink = ConnSink {
                    conn_id: self.conn_id,
                    handle,
                    subscribe,
                    tx: self.out_tx.clone(),
                };
                entry.sinks.push(sink.clone());
                let _ = entry.tx.send(TenantMsg::Attach(sink));
            }
        }
        self.locals.push(LocalTenant {
            name: tenant.to_string(),
            tx,
            shared,
        });
        self.out_tx.send(Msg::HelloOk { handle, resumed }).is_ok()
    }

    fn reading(&mut self, handle: u32, node: u32, seq: u64, value: Vec<f64>) -> bool {
        let Some(local) = self.locals.get_mut(handle as usize) else {
            self.error(error_code::UNKNOWN_HANDLE, "unknown handle");
            return false;
        };
        local.shared.depth.fetch_add(1, Ordering::Relaxed);
        self.inner.stats.depth.fetch_add(1, Ordering::Relaxed);
        match local.tx.try_send(TenantMsg::Reading { node, seq, value }) {
            Ok(()) => true,
            Err(TrySendError::Full(_)) => {
                // Load shedding: drop, count, do not ack — the client's
                // resend pass retransmits once the queue drains.
                local.shared.depth.fetch_sub(1, Ordering::Relaxed);
                self.inner.stats.depth.fetch_sub(1, Ordering::Relaxed);
                self.inner.stats.shed.fetch_add(1, Ordering::Relaxed);
                snod_obs::counter!("serve.shed").incr();
                true
            }
            Err(TrySendError::Disconnected(m)) => {
                local.shared.depth.fetch_sub(1, Ordering::Relaxed);
                self.inner.stats.depth.fetch_sub(1, Ordering::Relaxed);
                // Worker crashed: respawn from checkpoint and retry once.
                match self.inner.respawn(&local.name) {
                    Some(tx) => {
                        local.tx = tx;
                        local.shared.depth.fetch_add(1, Ordering::Relaxed);
                        self.inner.stats.depth.fetch_add(1, Ordering::Relaxed);
                        if local.tx.try_send(m).is_err() {
                            local.shared.depth.fetch_sub(1, Ordering::Relaxed);
                            self.inner.stats.depth.fetch_sub(1, Ordering::Relaxed);
                            self.inner.stats.shed.fetch_add(1, Ordering::Relaxed);
                            snod_obs::counter!("serve.shed").incr();
                        }
                        true
                    }
                    None => true, // shutting down; reading is lost (unacked)
                }
            }
        }
    }

    /// Routes a control message (Finish/Query/Crash): blocking send so
    /// it is never shed, with one respawn retry if the worker died.
    fn control(&mut self, handle: u32, msg: TenantMsg) -> bool {
        let Some(local) = self.locals.get_mut(handle as usize) else {
            self.error(error_code::UNKNOWN_HANDLE, "unknown handle");
            return false;
        };
        match local.tx.send(msg) {
            Ok(()) => true,
            Err(mpsc::SendError(m)) => match self.inner.respawn(&local.name) {
                Some(tx) => {
                    local.tx = tx;
                    local.tx.send(m).is_ok() || {
                        self.error(error_code::UNKNOWN_HANDLE, "tenant unavailable");
                        true
                    }
                }
                None => true,
            },
        }
    }
}
