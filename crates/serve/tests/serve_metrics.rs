//! The scrape endpoint and daemon health gauges, plus the slow-loris
//! frame deadline.

mod common;

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use snod_serve::wire::WIRE_MAGIC;
use snod_serve::{serve, ClientConfig, ServeClient, ServeConfig};

/// One-shot HTTP GET against the metrics listener.
fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("dial metrics");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    let status = head.lines().next().expect("status line").to_string();
    (status, body.to_string())
}

#[test]
fn scrape_endpoints_report_daemon_health() {
    let spec = common::spec(1, &[]);
    let rows = common::synth_rows(&spec, 64, 21);
    let server = serve(ServeConfig {
        tenant: spec.clone(),
        metrics_addr: Some("127.0.0.1:0".into()),
        ..ServeConfig::default()
    })
    .expect("daemon starts");
    let maddr = server.metrics_addr().expect("metrics listener bound");

    let mut client = ServeClient::new(ClientConfig::new(server.addr().to_string()));
    let h = client.open("scraped");
    for (node, seq, value) in &rows {
        client.send(h, *node, *seq, value.clone());
    }
    client.finish(h, common::totals(&spec, 64));
    assert!(client.wait_finished(h, Duration::from_secs(60)));
    // Give the supervisor sweep a cycle to refresh the gauges.
    std::thread::sleep(Duration::from_millis(250));

    let (status, body) = http_get(maddr, "/healthz");
    assert!(status.contains("200"), "healthz: {status}");
    assert!(body.contains("\"status\":\"ok\""), "healthz body: {body}");
    assert!(body.contains("\"tenants\":1"), "healthz body: {body}");

    let (status, body) = http_get(maddr, "/escalations");
    assert!(status.contains("200"), "escalations: {status}");
    assert!(body.starts_with('[') && body.ends_with(']'), "escalations body: {body}");
    if !common::reference_detections(&spec, &rows, 64).is_empty() {
        assert!(
            body.contains("\"tenant\":\"scraped\""),
            "escalations must name the tenant: {body}"
        );
    }

    let (status, body) = http_get(maddr, "/metrics");
    assert!(status.contains("200"), "metrics: {status}");
    if snod_obs::enabled() {
        // The issue's required daemon-health gauges, by name. The obs
        // registry is process-global, so only presence is asserted.
        for gauge in [
            "serve.queue.depth",
            "serve.shed.count",
            "serve.reconnects",
            "serve.checkpoint.age_ms",
        ] {
            assert!(body.contains(gauge), "metrics missing {gauge}: {body}");
        }
    } else {
        assert!(body.contains("{"), "metrics body should be JSON: {body}");
    }

    let (status, _) = http_get(maddr, "/nope");
    assert!(status.contains("404"), "unknown path: {status}");

    server.shutdown();
}

#[test]
fn slow_loris_connections_are_dropped_at_the_frame_deadline() {
    let server = serve(ServeConfig {
        frame_deadline: Duration::from_millis(300),
        ..ServeConfig::default()
    })
    .expect("daemon starts");

    // Trickle half a header and then stall: the daemon must cut us off
    // rather than hold the partial frame forever.
    let mut stream = TcpStream::connect(server.addr()).expect("dial");
    stream.write_all(&WIRE_MAGIC).expect("send magic");
    stream.write_all(&[0x01]).expect("send a dribble");

    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if server.stats().slow_loris_drops >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "slow-loris never dropped");
        std::thread::sleep(Duration::from_millis(50));
    }
    // The socket is actually dead: reads reach EOF once the daemon
    // closes its side.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let mut buf = [0u8; 16];
    // EOF, an error frame or an RST are all acceptable forms of "dead".
    let _ = stream.read(&mut buf);

    // Idle-but-complete connections are NOT slow-loris: a Ping/Pong
    // conn sitting idle past the deadline stays up.
    let mut client = ServeClient::new(ClientConfig::new(server.addr().to_string()));
    let h = client.open("idle");
    client.pump(Duration::from_millis(500));
    client.send(h, 0, 0, vec![0.5]);
    client.pump(Duration::from_millis(200));
    assert_eq!(client.reconnects(), 0, "idle conn must not be culled");

    server.shutdown();
}
