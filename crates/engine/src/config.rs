//! Run configuration and stream supply, shared by every driver.

use crate::fault::RetryPolicy;
use crate::node::NodeId;

/// Timing and fault parameters of a run (simulated or live).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Interval between consecutive readings of one sensor
    /// (the paper's Figure 11 assumes one reading per second).
    pub reading_period_ns: u64,
    /// One-hop link latency.
    pub link_latency_ns: u64,
    /// Stagger leaf reading phases across the period (avoids artificial
    /// synchronisation of all sensors on the same instant).
    pub stagger_readings: bool,
    /// Probability that any sent message is lost on the air (lossy
    /// radio). Dropped messages are still charged transmit energy and
    /// counted in [`crate::NetStats::dropped`]. A
    /// [`crate::FaultPlan`] loss burst can raise (never lower) this
    /// rate for a window.
    pub drop_probability: f64,
    /// Seed for the loss process and retry-timer jitter (both are
    /// deterministic per seed, via per-node streams).
    pub loss_seed: u64,
    /// Ack/retry protocol parameters for
    /// [`crate::EngineCtx::send_reliable`]. `None` (the default)
    /// disables the protocol: reliable sends then behave exactly like
    /// plain sends — no ids, no acks, no timers — and the engine is
    /// bit-identical to one without the protocol.
    pub reliability: Option<RetryPolicy>,
    /// Worker threads running same-instant callbacks on *different*
    /// nodes concurrently. `1` (the default) forces the classic
    /// single-threaded engine; `0` means one worker per core. Results
    /// are bit-identical at every setting — see the crate docs for the
    /// determinism argument. Parallelism only pays off when many nodes
    /// act at the same instant (e.g. `stagger_readings = false`).
    pub worker_threads: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            reading_period_ns: 1_000_000_000, // 1 s
            link_latency_ns: 5_000_000,       // 5 ms
            stagger_readings: true,
            drop_probability: 0.0,
            loss_seed: 0x10_55,
            reliability: None,
            worker_threads: 1,
        }
    }
}

impl SimConfig {
    /// Returns a copy with the given message-loss probability.
    pub fn with_drop_probability(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability in [0, 1]");
        self.drop_probability = p;
        self
    }

    /// Returns a copy with the given worker-thread count (`0` = one per
    /// core, `1` = single-threaded).
    pub fn with_worker_threads(mut self, n: usize) -> Self {
        self.worker_threads = n;
        self
    }

    /// Returns a copy with the ack/retry protocol enabled under
    /// `policy`.
    pub fn with_reliability(mut self, policy: RetryPolicy) -> Self {
        self.reliability = Some(policy);
        self
    }

    /// The resolved worker count (`0` mapped to the machine's
    /// parallelism).
    pub fn resolved_workers(&self) -> usize {
        match self.worker_threads {
            0 => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            n => n,
        }
    }
}

/// Supplies the per-sensor data streams. `seq` is the 0-based reading
/// index; returning `None` ends that sensor's stream early.
pub trait StreamSource {
    /// The `seq`-th reading of leaf `node`.
    fn next(&mut self, node: NodeId, seq: u64) -> Option<Vec<f64>>;
}

impl<F: FnMut(NodeId, u64) -> Option<Vec<f64>>> StreamSource for F {
    fn next(&mut self, node: NodeId, seq: u64) -> Option<Vec<f64>> {
        self(node, seq)
    }
}
