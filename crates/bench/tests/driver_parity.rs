//! Sim-vs-live differential conformance: the same recorded reading
//! trace replayed through the sequential simulator, the parallel
//! simulator and the live runtime must produce identical outlier
//! escalations, model epochs, NetStats counters and checkpoint bytes —
//! across seeds, with and without fault injection.

use snod_bench::conformance::{run_backend_parity, run_driver_parity, ConformanceConfig};
use snod_core::{
    D3Config, EstimatorConfig, FqnBackend, FqnConfig, MmdewBackend, MmdewNodeConfig,
};
use snod_data::DataStream;
use snod_outlier::{DistanceOutlierConfig, MdefConfig};
use snod_simnet::{RetryPolicy, SimConfig};

/// Deterministic per-(seed, leaf) stream: a drifting sweep with rare
/// far-out spikes.
struct SeededSpikes {
    salt: u64,
    n: u64,
}

impl DataStream for SeededSpikes {
    fn dims(&self) -> usize {
        1
    }
    fn next_reading(&mut self) -> Vec<f64> {
        let n = self.n;
        self.n += 1;
        if n % 151 == self.salt % 97 {
            vec![0.91 + 0.0003 * (self.salt % 11) as f64]
        } else {
            let phase = (n * (self.salt % 17 + 3)) % 89;
            vec![0.34 + 0.0031 * phase as f64]
        }
    }
}

fn config() -> ConformanceConfig {
    ConformanceConfig {
        leaves: 4,
        fanouts: vec![2, 2],
        d3: D3Config {
            estimator: EstimatorConfig::builder()
                .window(300)
                .sample_size(60)
                .seed(9)
                .build()
                .unwrap(),
            rule: DistanceOutlierConfig::new(8.0, 0.02),
            sample_fraction: 0.5,
        },
        window: 300,
        mdef_rule: MdefConfig::new(0.08, 0.01, 3.0).unwrap(),
        warmup: 300,
        eval: 400,
        sim: SimConfig::default().with_reliability(RetryPolicy::default()),
    }
}

#[test]
fn drivers_are_bit_identical_across_seeds_and_faults() {
    // 3 seeds × (faultless, severe plan) = 6 cases; every case replays
    // one trace through three drivers.
    let report = run_driver_parity(&config(), &[1, 42, 0xFEED], |seed, leaf| SeededSpikes {
        salt: seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(leaf as u64 * 131),
        n: 0,
    });
    assert_eq!(report.cases.len(), 6);
    assert!(
        report.all_identical(),
        "drivers diverged on (seed, faulted) cases {:?}",
        report.divergent()
    );
    // The matrix is not vacuous: every case ingested data, and the
    // faulted runs actually exercised the fault layer.
    for case in &report.cases {
        assert!(case.trace_len > 0, "seed {} recorded no readings", case.seed);
        if case.faulted {
            let s = &case.reference.stats;
            assert!(
                s.dropped > 0 || s.lost_to_crash > 0 || s.duplicates > 0,
                "seed {}: severe plan produced no observable faults",
                case.seed
            );
        }
    }
    // Detections exist somewhere, or the equivalence claim is hollow.
    assert!(report
        .cases
        .iter()
        .any(|c| c.reference.detections.iter().any(|d| !d.is_empty())));
}

/// Deterministic per-(seed, leaf) piecewise-stationary stream: the mean
/// jumps between 0.2 and 0.8 every 250 readings (MMDEW's workload).
struct SeededShifts {
    salt: u64,
    n: u64,
}

impl DataStream for SeededShifts {
    fn dims(&self) -> usize {
        1
    }
    fn next_reading(&mut self) -> Vec<f64> {
        let n = self.n;
        self.n += 1;
        let base = if (n / 250).is_multiple_of(2) { 0.2 } else { 0.8 };
        vec![base + 0.01 * ((n.wrapping_mul(7) + self.salt) % 5) as f64]
    }
}

#[test]
fn fqn_drivers_are_bit_identical_across_seeds_and_faults() {
    let backend = FqnBackend(FqnConfig {
        dimensions: 1,
        window: 128,
        k_scale: 4.0,
        warmup: 32,
        sample_fraction: 0.5,
        seed: 9,
    });
    let report = run_backend_parity(
        &backend,
        4,
        &[2, 2],
        SimConfig::default().with_reliability(RetryPolicy::default()),
        700,
        &[1, 42, 0xFEED],
        |seed, leaf| SeededSpikes {
            salt: seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(leaf as u64 * 131),
            n: 0,
        },
    );
    assert_eq!(report.cases.len(), 6);
    assert!(
        report.all_identical(),
        "fqn drivers diverged on (seed, faulted) cases {:?}",
        report.divergent()
    );
    assert!(report
        .cases
        .iter()
        .any(|c| c.reference.detections.iter().any(|d| !d.is_empty())));
}

#[test]
fn mmdew_drivers_are_bit_identical_across_seeds_and_faults() {
    let mut cfg = MmdewNodeConfig::default();
    cfg.detector.bucket_cap = 16;
    cfg.detector.min_per_side = 8;
    let backend = MmdewBackend(cfg);
    let report = run_backend_parity(
        &backend,
        4,
        &[2, 2],
        SimConfig::default().with_reliability(RetryPolicy::default()),
        700,
        &[1, 42, 0xFEED],
        |seed, leaf| SeededShifts {
            salt: seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(leaf as u64 * 131),
            n: 0,
        },
    );
    assert_eq!(report.cases.len(), 6);
    assert!(
        report.all_identical(),
        "mmdew drivers diverged on (seed, faulted) cases {:?}",
        report.divergent()
    );
    assert!(report
        .cases
        .iter()
        .any(|c| c.reference.detections.iter().any(|d| !d.is_empty())));
}
