//! Load benchmark for the `snod serve` ingestion daemon, written to
//! `BENCH_serve.json` in the working directory.
//!
//! The harness starts an in-process daemon, then fans a fleet of tenant
//! streams across a handful of client connections (each connection
//! multiplexes its share of tenants over one socket, exactly as a real
//! gateway would). Every tenant streams a seeded synthetic signal to
//! completion; the run reports end-to-end ingestion throughput,
//! ack-latency percentiles (send → received-ack round trip, sampled on
//! a rotating tenant), and the daemon's shed/duplicate/reconnect
//! counters.
//!
//! `SNOD_BENCH_SMOKE=1` shrinks the fleet for CI; the committed JSON
//! comes from a full run (>= 1k concurrent tenant streams).

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snod_serve::{serve, ClientConfig, ServeClient, ServeConfig, TenantSpec};

/// Ack latency is sampled every this-many readings per connection.
const SAMPLE_EVERY: u64 = 16;

/// Per-tenant in-flight ceiling. The daemon sheds when a tenant's
/// bounded queue (`queue_capacity`, 64 here) overflows, so a healthy
/// client keeps its unacked window under that — shedding in this bench
/// should mean the server fell behind, not that the harness firehosed.
const MAX_INFLIGHT_PER_TENANT: usize = 48;

struct Shape {
    smoke: bool,
    tenants: usize,
    readings: u64,
    connections: usize,
}

impl Shape {
    fn from_env() -> Self {
        if std::env::var("SNOD_BENCH_SMOKE").is_ok() {
            Self { smoke: true, tenants: 32, readings: 40, connections: 2 }
        } else {
            Self { smoke: false, tenants: 1200, readings: 150, connections: 8 }
        }
    }
}

/// The same cluster-plus-spikes signal the serve test-suite streams:
/// a tight cluster at 0.5 with a 5 % spike rate.
fn reading(rng: &mut StdRng) -> Vec<f64> {
    if rng.gen::<f64>() < 0.05 {
        vec![5.0 + rng.gen::<f64>()]
    } else {
        vec![0.5 + 0.05 * (rng.gen::<f64>() - 0.5)]
    }
}

/// One connection worker: streams `tenants` interleaved tenant streams
/// over a single multiplexed client, returning sampled ack latencies
/// (ms) and how many tenants reached FinishOk.
fn run_connection(
    addr: String,
    first_tenant: usize,
    tenants: usize,
    readings: u64,
) -> (Vec<f64>, usize) {
    // Under full bench load the server's ack latency runs to ~1 s
    // (p99); the stall threshold must sit above that or late acks get
    // mistaken for stalls and in-flight rows are retransmitted as
    // spurious "duplicates".
    let cfg = ClientConfig {
        resend_interval: Duration::from_secs(2),
        ..ClientConfig::new(addr)
    };
    let mut client = ServeClient::new(cfg);
    let handles: Vec<u32> = (0..tenants)
        .map(|i| client.open(format!("bench-{:04}", first_tenant + i)))
        .collect();
    let mut rngs: Vec<StdRng> = (0..tenants)
        .map(|i| StdRng::seed_from_u64(0xBE7C_u64 ^ ((first_tenant + i) as u64) << 8))
        .collect();
    let mut latencies = Vec::new();
    for seq in 0..readings {
        for (i, &h) in handles.iter().enumerate() {
            let value = reading(&mut rngs[i]);
            client.send(h, 0, seq, value);
        }
        if seq % SAMPLE_EVERY == 0 {
            // Flush-to-ack round trip on a rotating tenant.
            let probe = handles[(seq / SAMPLE_EVERY) as usize % handles.len()];
            let t0 = Instant::now();
            while client.unacked(probe) > 0 && t0.elapsed() < Duration::from_secs(30) {
                client.pump(Duration::from_millis(2));
            }
            latencies.push(t0.elapsed().as_secs_f64() * 1e3);
        } else {
            // Drain acks without stalling the send loop.
            client.pump(Duration::ZERO);
        }
        // Backpressure: hold the wave loop until every tenant's
        // unacked window is back under the per-tenant queue bound.
        let t0 = Instant::now();
        loop {
            let worst = handles.iter().map(|&h| client.unacked(h)).max().unwrap_or(0);
            if worst <= MAX_INFLIGHT_PER_TENANT || t0.elapsed() > Duration::from_secs(30) {
                break;
            }
            client.pump(Duration::from_millis(2));
        }
    }
    for &h in &handles {
        client.finish(h, vec![(0, readings)]);
    }
    let deadline = Duration::from_secs(600);
    let finished = handles
        .iter()
        .filter(|&&h| client.wait_finished(h, deadline))
        .count();
    (latencies, finished)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    let shape = Shape::from_env();
    let per_conn = shape.tenants / shape.connections;
    assert_eq!(per_conn * shape.connections, shape.tenants, "even split");

    let cfg = ServeConfig {
        max_tenants: shape.tenants + 16,
        queue_capacity: 64,
        tenant: TenantSpec { window: 128, sample_size: 16, ..TenantSpec::default() },
        ..ServeConfig::default()
    };
    let server = serve(cfg).expect("daemon starts");
    let addr = server.addr().to_string();

    let wall = Instant::now();
    let workers: Vec<_> = (0..shape.connections)
        .map(|c| {
            let addr = addr.clone();
            let readings = shape.readings;
            std::thread::spawn(move || run_connection(addr, c * per_conn, per_conn, readings))
        })
        .collect();
    let mut latencies = Vec::new();
    let mut finished = 0usize;
    for w in workers {
        let (lat, fin) = w.join().expect("connection worker");
        latencies.extend(lat);
        finished += fin;
    }
    let wall_s = wall.elapsed().as_secs_f64();
    assert_eq!(finished, shape.tenants, "every tenant stream must complete");

    let stats = server.stats();
    server.shutdown();

    latencies.sort_by(|a, b| a.total_cmp(b));
    let total_readings = shape.tenants as u64 * shape.readings;
    let shed_rate = stats.shed as f64 / total_readings as f64;
    let json = format!(
        "{{\n  \"smoke\": {smoke},\n  \"tenants\": {tenants},\n  \
         \"readings_per_tenant\": {readings},\n  \"connections\": {conns},\n  \
         \"throughput_rps\": {rps:.1},\n  \"latency_ms\": {{\"p50\": {p50:.3}, \
         \"p90\": {p90:.3}, \"p99\": {p99:.3}}},\n  \
         \"shed\": {{\"count\": {shed}, \"rate\": {rate:.6}}},\n  \
         \"duplicates\": {dups},\n  \"reconnects\": {reconnects},\n  \
         \"wall_ms\": {wall_ms:.0}\n}}\n",
        smoke = shape.smoke,
        tenants = shape.tenants,
        readings = shape.readings,
        conns = shape.connections,
        rps = total_readings as f64 / wall_s,
        p50 = percentile(&latencies, 0.50),
        p90 = percentile(&latencies, 0.90),
        p99 = percentile(&latencies, 0.99),
        shed = stats.shed,
        rate = shed_rate,
        dups = stats.duplicates,
        reconnects = stats.reconnects,
        wall_ms = wall_s * 1e3,
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    print!("{json}");
    eprintln!(
        "{} tenants x {} readings over {} connections: {:.0} readings/s, \
         ack p50 {:.1} ms / p99 {:.1} ms, shed {} ({:.4}), wall {:.1} s",
        shape.tenants,
        shape.readings,
        shape.connections,
        total_readings as f64 / wall_s,
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.99),
        stats.shed,
        shed_rate,
        wall_s,
    );
}
