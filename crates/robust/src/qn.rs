//! Streaming Q_n over a sliding window: sorted buffer + rank-select on
//! the implicit matrix of pairwise differences.

use std::collections::VecDeque;

use snod_persist::{ByteReader, ByteWriter, Persist, PersistError};

use crate::RobustError;

/// Asymptotic consistency constant: `1 / (√2 · Φ⁻¹(5/8))`, making Q_n
/// estimate σ for Gaussian data (Rousseeuw & Croux 1993).
const QN_CONSISTENCY: f64 = 2.219_144_465_985_076;

/// Finite-sample correction factor `d_n` (Croux & Rousseeuw 1992):
/// tabulated for n ≤ 9, then `n/(n + 1.4)` for odd and `n/(n + 3.8)`
/// for even window fills.
fn small_sample_factor(n: usize) -> f64 {
    match n {
        0 | 1 => 1.0,
        2 => 0.399,
        3 => 0.994,
        4 => 0.512,
        5 => 0.844,
        6 => 0.611,
        7 => 0.857,
        8 => 0.669,
        9 => 0.872,
        _ if n % 2 == 1 => n as f64 / (n as f64 + 1.4),
        _ => n as f64 / (n as f64 + 3.8),
    }
}

/// A sliding window maintaining both arrival order (for eviction) and a
/// sorted buffer (for the median and the Q_n rank-select).
///
/// Push is `O(window)` (one binary search plus a memmove); a [`Self::qn`]
/// query is `O(window · log(range/ulp))` via bisection over the
/// difference value with an exact two-pointer count per probe — the
/// bisection bounds snap to *achievable* differences every step, so the
/// returned value is bit-identical to the k-th element of the fully
/// materialised, sorted difference set (the property
/// `tests/fqn_equivalence.rs` pins).
#[derive(Debug, Clone, PartialEq)]
pub struct QnWindow {
    capacity: usize,
    arrival: VecDeque<f64>,
    sorted: Vec<f64>,
}

impl QnWindow {
    /// An empty window holding at most `capacity` values.
    pub fn new(capacity: usize) -> Result<Self, RobustError> {
        if capacity < 2 {
            return Err(RobustError::BadConfig("window capacity must be at least 2"));
        }
        Ok(Self {
            capacity,
            arrival: VecDeque::with_capacity(capacity),
            sorted: Vec::with_capacity(capacity),
        })
    }

    /// Window capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Values currently held.
    pub fn len(&self) -> usize {
        self.arrival.len()
    }

    /// True when no value has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.arrival.is_empty()
    }

    /// The window contents in arrival order.
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.arrival.iter().copied()
    }

    /// Pushes `x`, evicting the oldest value once the window is full.
    /// Non-finite values are rejected (they would poison the sorted
    /// order and every subsequent rank query).
    pub fn push(&mut self, x: f64) -> Result<(), RobustError> {
        if !x.is_finite() {
            return Err(RobustError::NonFinite);
        }
        if self.arrival.len() == self.capacity {
            let old = self.arrival.pop_front().expect("window is full");
            // Remove by bit pattern so -0.0/0.0 evictions take out the
            // exact float that was inserted.
            let lo = self.sorted.partition_point(|&v| v < old);
            let idx = self.sorted[lo..]
                .iter()
                .position(|&v| v.to_bits() == old.to_bits())
                .map(|off| lo + off)
                .unwrap_or(lo);
            self.sorted.remove(idx);
        }
        self.arrival.push_back(x);
        let pos = self.sorted.partition_point(|&v| v < x);
        self.sorted.insert(pos, x);
        Ok(())
    }

    /// The window median (mean of the two central order statistics for
    /// even fills); `None` while empty. Canonicalised so a `-0.0` at
    /// the middle rank — whose position among tied `+0.0`s depends on
    /// insertion order — reports as `+0.0` regardless of history.
    pub fn median(&self) -> Option<f64> {
        let n = self.sorted.len();
        if n == 0 {
            return None;
        }
        let m = if n % 2 == 1 {
            self.sorted[n / 2]
        } else {
            0.5 * (self.sorted[n / 2 - 1] + self.sorted[n / 2])
        };
        Some(if m == 0.0 { 0.0 } else { m })
    }

    /// The Q_n scale estimate: `d_n · 2.2219 · {|x_i − x_j|; i<j}_(k)`
    /// with `k = C(h,2)`, `h = ⌊n/2⌋+1`. `None` until two values are
    /// present.
    pub fn qn(&self) -> Option<f64> {
        let n = self.sorted.len();
        if n < 2 {
            return None;
        }
        let h = n / 2 + 1;
        let k = h * (h - 1) / 2;
        let kth = kth_smallest_pairwise_diff(&self.sorted, k);
        Some(QN_CONSISTENCY * small_sample_factor(n) * kth)
    }

    /// The robust outlier verdict `|x − median| > k_scale · Q_n`;
    /// `None` until the window holds at least two values.
    pub fn is_outlier(&self, x: f64, k_scale: f64) -> Option<bool> {
        let median = self.median()?;
        let qn = self.qn()?;
        Some((x - median).abs() > k_scale * qn)
    }
}

/// Exact k-th smallest (1-based) of `{xs[j] − xs[i]; i < j}` for a
/// sorted `xs`: bisection on the difference value, where each probe
/// counts pairs at or under the probe in `O(n)` and simultaneously
/// finds the largest achievable difference ≤ the probe and the smallest
/// one above it — the bounds therefore land on achievable differences,
/// so the loop terminates on the exact answer (no float-tolerance
/// fuzz).
fn kth_smallest_pairwise_diff(xs: &[f64], k: usize) -> f64 {
    debug_assert!(xs.windows(2).all(|w| w[0] <= w[1]));
    let n = xs.len();
    let mut lo = 0.0_f64;
    let mut hi = xs[n - 1] - xs[0];
    while lo < hi {
        let mid = lo + 0.5 * (hi - lo);
        if !(mid > lo && mid < hi) {
            // [lo, hi] is no longer splittable in f64; the count at lo
            // decides which endpoint is the answer.
            let (count, _, _) = sweep(xs, lo);
            return if count >= k { lo } else { hi };
        }
        let (count, below_max, above_min) = sweep(xs, mid);
        if count >= k {
            // k-th diff ≤ mid, and it is achievable, so ≤ below_max.
            hi = below_max;
        } else {
            // k-th diff > mid, so ≥ the smallest achievable above mid.
            lo = above_min;
        }
    }
    lo
}

/// One two-pointer pass: `(pairs with xs[j]−xs[i] ≤ v, largest
/// achievable difference ≤ v, smallest achievable difference > v)`.
fn sweep(xs: &[f64], v: f64) -> (usize, f64, f64) {
    let n = xs.len();
    let mut count = 0usize;
    let mut below_max = f64::NEG_INFINITY;
    let mut above_min = f64::INFINITY;
    let mut i = 0usize;
    for j in 1..n {
        while i < j && xs[j] - xs[i] > v {
            i += 1;
        }
        count += j - i;
        if i < j {
            // `.abs()` canonicalises the one negative achievable
            // difference, `-0.0` from the pair (-0.0, +0.0), to +0.0.
            below_max = below_max.max((xs[j] - xs[i]).abs());
        }
        if i > 0 {
            above_min = above_min.min(xs[j] - xs[i - 1]);
        }
    }
    (count, below_max, above_min)
}

impl Persist for QnWindow {
    fn save(&self, w: &mut ByteWriter) {
        self.capacity.save(w);
        self.arrival.save(w);
        // The sorted buffer is persisted too: with equal values of
        // different bit patterns (-0.0/0.0) a re-sort could place them
        // differently than the incremental inserts did.
        self.sorted.save(w);
    }

    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let capacity = usize::load(r)?;
        let arrival = VecDeque::<f64>::load(r)?;
        let sorted = Vec::<f64>::load(r)?;
        if capacity < 2 {
            return Err(PersistError::Corrupt("qn window capacity under 2"));
        }
        if arrival.len() > capacity || arrival.len() != sorted.len() {
            return Err(PersistError::Corrupt("qn window buffers inconsistent"));
        }
        if arrival.iter().any(|v| !v.is_finite()) {
            return Err(PersistError::Corrupt("qn window holds non-finite value"));
        }
        if sorted.windows(2).any(|w| !(w[0] <= w[1])) {
            return Err(PersistError::Corrupt("qn sorted buffer out of order"));
        }
        Ok(Self {
            capacity,
            arrival,
            sorted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The O(n²) reference: materialise, sort, index.
    fn offline_kth(xs: &[f64], k: usize) -> f64 {
        let mut diffs = Vec::new();
        for i in 0..xs.len() {
            for j in (i + 1)..xs.len() {
                diffs.push((xs[j] - xs[i]).abs());
            }
        }
        diffs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        diffs[k - 1]
    }

    #[test]
    fn rank_select_matches_materialised_differences() {
        let xs = [0.1, 0.4, 0.45, 0.8, 1.3, 2.0, 2.05];
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let pairs = xs.len() * (xs.len() - 1) / 2;
        for k in 1..=pairs {
            assert_eq!(
                kth_smallest_pairwise_diff(&sorted, k).to_bits(),
                offline_kth(&sorted, k).to_bits(),
                "rank {k}"
            );
        }
    }

    #[test]
    fn duplicates_yield_zero_differences() {
        let sorted = [1.0, 1.0, 1.0, 2.0];
        assert_eq!(kth_smallest_pairwise_diff(&sorted, 1), 0.0);
        assert_eq!(kth_smallest_pairwise_diff(&sorted, 3), 0.0);
        assert_eq!(kth_smallest_pairwise_diff(&sorted, 4), 1.0);
    }

    #[test]
    fn window_evicts_in_arrival_order() {
        let mut w = QnWindow::new(3).unwrap();
        for x in [5.0, 1.0, 3.0, 2.0] {
            w.push(x).unwrap();
        }
        let held: Vec<f64> = w.values().collect();
        assert_eq!(held, vec![1.0, 3.0, 2.0]);
        assert_eq!(w.median(), Some(2.0));
    }

    #[test]
    fn qn_tracks_gaussian_sigma() {
        // Deterministic low-discrepancy normals via the probit of a
        // uniform grid: Q_n should land near σ = 1.
        let mut w = QnWindow::new(256).unwrap();
        for i in 0..256u32 {
            let u = (f64::from(i) + 0.5) / 256.0;
            // Rational probit approximation is overkill; a symmetric
            // triangular-ish stand-in suffices for a sanity bound.
            let z = (u - 0.5) * 5.0;
            w.push(z).unwrap();
        }
        let qn = w.qn().unwrap();
        assert!(qn > 0.0 && qn.is_finite());
    }

    #[test]
    fn robust_to_contamination_where_sigma_is_not() {
        // 90 tight values + 10 gross outliers: Q_n stays near the bulk
        // scale; the classical σ would be dragged far out.
        let mut w = QnWindow::new(100).unwrap();
        for i in 0..90 {
            w.push(0.5 + 0.001 * f64::from(i % 10)).unwrap();
        }
        for _ in 0..10 {
            w.push(50.0).unwrap();
        }
        let qn = w.qn().unwrap();
        assert!(qn < 0.1, "Q_n inflated by contamination: {qn}");
        // And the verdict machinery uses it: the gross value is out,
        // the bulk value is in.
        assert_eq!(w.is_outlier(50.0, 3.0), Some(true));
        assert_eq!(w.is_outlier(0.5, 3.0), Some(false));
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(QnWindow::new(1).is_err());
        let mut w = QnWindow::new(4).unwrap();
        assert_eq!(w.push(f64::NAN), Err(RobustError::NonFinite));
        assert_eq!(w.push(f64::INFINITY), Err(RobustError::NonFinite));
        assert!(w.qn().is_none());
        w.push(1.0).unwrap();
        assert!(w.qn().is_none());
        w.push(2.0).unwrap();
        assert!(w.qn().is_some());
    }

    #[test]
    fn persist_round_trip_is_exact() {
        let mut w = QnWindow::new(8).unwrap();
        for x in [3.0, -0.0, 0.0, 7.5, 2.25, 9.0, 1.0, 4.0, 5.0, 6.0] {
            w.push(x).unwrap();
        }
        let back = QnWindow::from_bytes(&w.to_bytes()).unwrap();
        assert_eq!(back, w);
        assert_eq!(back.qn().unwrap().to_bits(), w.qn().unwrap().to_bits());
    }
}
