//! A full distributed deployment: 32 environmental sensors under a
//! three-tier leader hierarchy, running the D3 algorithm end-to-end in
//! the network simulator.
//!
//! Mirrors the paper's §10.2 setup on the Pacific-Northwest-style
//! (pressure, dew-point) workload, with one sensor developing a fault
//! that produces regionally-rare readings — the kind of event the
//! hierarchy is designed to surface at increasing granularity.
//!
//! Run with: `cargo run --release --example environmental_network`

use sensor_outliers::core::pipeline::{Algorithm, OutlierPipeline};
use sensor_outliers::core::{D3Config, EstimatorConfig};
use sensor_outliers::data::{EnvironmentStream, SensorStreams};
use sensor_outliers::outlier::DistanceOutlierConfig;
use sensor_outliers::simnet::{NodeId, SimConfig};

fn main() {
    let window = 4_000usize;
    let cfg = D3Config {
        estimator: EstimatorConfig::builder()
            .window(window)
            .sample_size(200)
            .dimensions(2)
            .seed(3)
            .build()
            .expect("valid configuration"),
        rule: DistanceOutlierConfig::new(10.0, 0.02),
        sample_fraction: 0.5,
    };

    // 32 leaves under leader tiers of fan-out 4/2/4 — the §10.2 shape.
    let pipeline =
        OutlierPipeline::balanced(32, &[4, 2, 4], SimConfig::default(), Algorithm::D3(cfg))
            .expect("valid hierarchy");
    let topo = pipeline.topology().clone();

    // Sensor 11 intermittently reports a (pressure, dew-point) combination
    // no other sensor in the region produces.
    let mut streams = SensorStreams::generate(32, |i| EnvironmentStream::new(100 + i as u64));
    let mut source = move |node: NodeId, seq: u64| {
        let leaf = OutlierPipeline::leaf_position(&topo, node)?;
        let mut v = streams.next_for(leaf);
        if leaf == 11 && seq > 4_000 && seq.is_multiple_of(500) {
            v = vec![0.44, 0.275]; // storm-low pressure with saturated air
        }
        Some(v)
    };

    let readings = (window + 2_000) as u64;
    println!("running D3 over 32 environmental sensors ({readings} readings each)…");
    let report = pipeline.run(&mut source, readings).expect("pipeline run");

    println!("\ndetections by hierarchy level:");
    for (level, dets) in &report.detections_by_level {
        let faulty = dets
            .iter()
            .filter(|d| (d.value[0] - 0.44).abs() < 1e-9)
            .count();
        println!(
            "  level {level}: {:>4} detections ({faulty} from the faulty sensor's signature)",
            dets.len()
        );
    }

    let s = &report.stats;
    println!(
        "\nnetwork cost over {:.0} simulated seconds:",
        s.elapsed_ns as f64 / 1e9
    );
    println!(
        "  messages: {} ({:.2}/s)",
        s.messages,
        s.messages_per_second()
    );
    println!(
        "  bytes on air: {} ({:.1}/s)",
        s.bytes,
        s.bytes_per_second()
    );
    println!("  radio energy: {:.4} J", s.total_joules());
    println!("  messages per level: {:?}", s.messages_per_level);
}
