//! Differential conformance harness for the fault-injection layer.
//!
//! The fault layer promises three things, and this module checks all of
//! them by *replaying the identical reading streams* through differently
//! configured engines and diffing the results:
//!
//! 1. **Absence is free** — an all-zero-probability [`FaultPlan`] (and a
//!    faultless plan under the parallel engine) must produce results
//!    **bit-identical** to the plain engine: same [`NetStats`], same
//!    detections at every node, same timestamps.
//! 2. **Faults are sound** — whatever the plan does, D3 stays sound in
//!    the sense of the paper's Theorem 3: every value flagged at a
//!    leader level was first flagged by some leaf. Faults can *lose*
//!    flagged values; they can never *invent* them, so containment is a
//!    hard invariant, not a statistical one.
//! 3. **Degradation is graceful** — as loss rates climb, recall against
//!    the exact offline oracles (`BruteForce-D` via
//!    [`crate::harness::TruthTracker`]) may only degrade, and leaf-level
//!    behaviour — which never crosses the network — must not move at
//!    all.
//!
//! The harness runs one *capture* pass (faultless engine + oracle
//! recording) and then replays the same streams through each fault level
//! of a severity ladder, scoring precision/recall per level against the
//! captured ground truth.
//!
//! On top of the fault ladder, [`run_driver_parity`] is the **sim-vs-live
//! differential suite**: the same recorded reading trace is replayed
//! through the sequential simulator, the parallel simulator and the
//! wall-clock [`LiveRuntime`] (virtual clock), and the outcomes —
//! outlier escalation sequences, model epochs, every [`NetStats`]
//! counter and the complete checkpoint bytes — must be `==` across all
//! three. This pins the engine crate's driver contract: the detector
//! engines are pure state machines, and every observable side effect is
//! produced by shared protocol code executed in the same order by every
//! driver.

use std::collections::HashSet;

use snod_core::{
    build_backend_live, build_d3_live, run_backend_with_faults, run_d3_with_faults, D3Config,
    D3Node, D3Payload, Detection, DetectorBackend,
};
use snod_data::{DataStream, SensorStreams};
use snod_outlier::{MdefConfig, PrecisionRecall};
use snod_simnet::{
    FaultPlan, Hierarchy, LinkFault, LiveRuntime, NetStats, Network, NodeId, ReadingTrace,
    SimConfig, StreamSource, TraceRecorder,
};

use crate::harness::{score_level, value_key, ReadingRecord, RecordingSource};

/// Configuration of one conformance experiment.
pub struct ConformanceConfig {
    /// Leaf sensors.
    pub leaves: usize,
    /// Leader fan-outs above the leaves.
    pub fanouts: Vec<usize>,
    /// The D3 configuration under test (shared by every engine run).
    pub d3: D3Config,
    /// Sliding window `|W|` of the exact oracle (normally the estimator
    /// window).
    pub window: usize,
    /// MDEF rule for the oracle tracker (required by the shared harness;
    /// unused by D3 scoring).
    pub mdef_rule: MdefConfig,
    /// Readings per leaf before scoring starts.
    pub warmup: u64,
    /// Scored readings per leaf.
    pub eval: u64,
    /// Simulator configuration (reliability, timing); worker-thread
    /// overrides are applied internally for the parallel parity check.
    pub sim: SimConfig,
}

impl ConformanceConfig {
    fn readings_per_leaf(&self) -> u64 {
        self.warmup + self.eval
    }

    fn topology(&self) -> Hierarchy {
        Hierarchy::balanced(self.leaves, &self.fanouts).expect("valid conformance hierarchy")
    }
}

/// Everything one engine run produced that bit-identity cares about.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineOutcome {
    /// Full network accounting (message/byte/energy/fault counters).
    pub stats: NetStats,
    /// Detections per node, indexed by `NodeId::index()`.
    pub detections: Vec<Vec<Detection>>,
}

impl EngineOutcome {
    fn capture(net: &Network<D3Payload, D3Node>) -> Self {
        let mut detections = vec![Vec::new(); net.topology().node_count()];
        for (node, app) in net.apps() {
            detections[node.index()] = app.detections.clone();
        }
        Self {
            stats: net.stats().clone(),
            detections,
        }
    }

    /// All detections across nodes, flattened (for level scoring).
    pub fn all_detections(&self) -> Vec<Detection> {
        self.detections.iter().flatten().cloned().collect()
    }

    /// Theorem 3 containment: every value flagged at a level above the
    /// leaves was flagged (bit-identically) by some leaf. Faults may
    /// lose escalations but never fabricate them, so this must hold
    /// under *any* plan.
    pub fn containment_holds(&self) -> bool {
        let leaf_keys: HashSet<Vec<u64>> = self
            .detections
            .iter()
            .flatten()
            .filter(|d| d.level == 1)
            .map(|d| value_key(&d.value))
            .collect();
        self.detections
            .iter()
            .flatten()
            .filter(|d| d.level > 1)
            .all(|d| leaf_keys.contains(&value_key(&d.value)))
    }
}

/// One rung of the fault-severity ladder, scored against the oracle.
#[derive(Debug, Clone)]
pub struct FaultOutcome {
    /// Human-readable plan label ("baseline", "moderate", …).
    pub label: String,
    /// The plan this rung ran under.
    pub plan: FaultPlan,
    /// The raw engine outcome (stats + per-node detections).
    pub outcome: EngineOutcome,
    /// Theorem 3 containment verdict for this run.
    pub containment_ok: bool,
    /// Precision/recall of root-level detections vs `BruteForce-D`.
    pub root: PrecisionRecall,
    /// Precision/recall of leaf-level detections vs `BruteForce-D`.
    pub leaf: PrecisionRecall,
}

/// The full differential report.
#[derive(Debug, Clone)]
pub struct ConformanceReport {
    /// The faultless run every claim is measured against.
    pub baseline: FaultOutcome,
    /// An all-zero-probability plan (burst at `p = 0`, zero-delay link,
    /// `duplicate = 0`) reproduced the baseline bit-for-bit.
    pub zero_fault_bit_identical: bool,
    /// The parallel engine reproduced the sequential *faulty* run
    /// bit-for-bit under the severest plan.
    pub parallel_bit_identical: bool,
    /// Severity ladder outcomes, mildest first (excludes the baseline).
    pub ladder: Vec<FaultOutcome>,
}

impl ConformanceReport {
    /// True when Theorem 3 containment held in the baseline and at every
    /// ladder rung.
    pub fn all_contained(&self) -> bool {
        self.baseline.containment_ok && self.ladder.iter().all(|o| o.containment_ok)
    }

    /// True when root-level recall never *rises* by more than
    /// `tolerance` from one severity rung to the next (baseline
    /// included as rung zero). Losing messages can only hide true
    /// outliers from the root, so recall must fall monotonically up to
    /// sampling noise.
    pub fn recall_degrades_monotonically(&self, tolerance: f64) -> bool {
        let mut prev = self.baseline.root.recall();
        for o in &self.ladder {
            let r = o.root.recall();
            if r > prev + tolerance {
                return false;
            }
            prev = r;
        }
        true
    }

    /// True when every run's *leaf-level* detections are bit-identical
    /// to the baseline's on every leaf the plan leaves alone. Leaf
    /// verdicts never cross the network, so link faults and loss bursts
    /// must not move them; only a crashed or dropped-out leaf may differ
    /// (it legitimately observes a different reading sequence).
    pub fn leaves_unperturbed(&self) -> bool {
        let base = leaf_only(&self.baseline.outcome, &FaultPlan::none());
        self.ladder
            .iter()
            .all(|o| leaf_only(&o.outcome, &o.plan) == base_minus_touched(&base, &o.plan))
    }
}

/// Per-node leaf-level detections, with nodes the plan crashes or drops
/// out blanked (their streams legitimately diverge).
fn leaf_only(outcome: &EngineOutcome, plan: &FaultPlan) -> Vec<Vec<Detection>> {
    outcome
        .detections
        .iter()
        .enumerate()
        .map(|(i, per_node)| {
            if plan_touches(plan, NodeId(i as u32)) {
                Vec::new()
            } else {
                per_node
                    .iter()
                    .filter(|d| d.level == 1)
                    .cloned()
                    .collect()
            }
        })
        .collect()
}

fn base_minus_touched(base: &[Vec<Detection>], plan: &FaultPlan) -> Vec<Vec<Detection>> {
    base.iter()
        .enumerate()
        .map(|(i, dets)| {
            if plan_touches(plan, NodeId(i as u32)) {
                Vec::new()
            } else {
                dets.clone()
            }
        })
        .collect()
}

fn plan_touches(plan: &FaultPlan, node: NodeId) -> bool {
    plan.crashes.iter().any(|c| c.node == node)
        || plan.dropouts.iter().any(|d| d.node == node)
}

/// The default severity ladder over a run of `horizon_ns` nanoseconds:
/// moderate loss, then heavy loss plus a mid-run leaf crash plus link
/// delay and duplication. `seed` feeds every plan's fault streams.
pub fn default_ladder(topo: &Hierarchy, seed: u64, horizon_ns: u64) -> Vec<(String, FaultPlan)> {
    let victim = topo.leaves()[0];
    vec![
        (
            "moderate".into(),
            FaultPlan::none()
                .with_seed(seed)
                .burst(horizon_ns / 4, horizon_ns / 2, 0.3),
        ),
        (
            "severe".into(),
            FaultPlan::none()
                .with_seed(seed)
                .burst(horizon_ns / 8, horizon_ns, 0.85)
                .crash(victim, horizon_ns / 3, Some(2 * horizon_ns / 3))
                .link(LinkFault::delay_all(2_000_000, 0).duplicate(0.05)),
        ),
    ]
}

/// The all-zero-probability plan: structurally non-empty (so every fault
/// code path is armed) yet observationally absent. Runs under it must be
/// bit-identical to [`FaultPlan::none()`].
pub fn zero_probability_plan(seed: u64, horizon_ns: u64) -> FaultPlan {
    FaultPlan::none()
        .with_seed(seed)
        .burst(0, horizon_ns, 0.0)
        .link(LinkFault::delay_all(0, 0).duplicate(0.0))
}

/// Feeds the simulator from a regenerated stream bank without recording
/// (the oracle pass already captured ground truth for these readings).
struct BankSource {
    streams: SensorStreams,
    /// `NodeId::index() -> leaf position`, `usize::MAX` for non-leaves.
    leaf_of: Vec<usize>,
}

impl BankSource {
    fn new(streams: SensorStreams, topo: &Hierarchy) -> Self {
        let mut leaf_of = vec![usize::MAX; topo.node_count()];
        for (pos, &leaf) in topo.leaves().iter().enumerate() {
            leaf_of[leaf.index()] = pos;
        }
        Self { streams, leaf_of }
    }
}

impl StreamSource for BankSource {
    fn next(&mut self, node: NodeId, _seq: u64) -> Option<Vec<f64>> {
        let pos = self.leaf_of[node.index()];
        (pos != usize::MAX).then(|| self.streams.next_for(pos))
    }
}

/// Runs the full differential experiment: capture pass (faultless engine
/// and exact oracles), zero-probability bit-identity, parallel-engine
/// parity under the severest plan, and the severity ladder.
///
/// `make_stream(leaf)` must be deterministic in its argument — every
/// engine run replays the streams it builds from scratch.
pub fn run_conformance<F, S>(cfg: &ConformanceConfig, make_stream: F) -> ConformanceReport
where
    F: Fn(usize) -> S,
    S: DataStream + Send + 'static,
{
    let topo = cfg.topology();
    let root_level = topo.level_count() as u8;
    // Readings are injected once per sim tick per leaf; the horizon in
    // sim time is conservatively the reading count times the default
    // tick — severity windows only need to overlap the run, so a loose
    // upper bound is fine.
    let horizon_ns = cfg.readings_per_leaf() * cfg.sim.reading_period_ns;

    // Capture pass: faultless engine + oracle.
    let mut streams = SensorStreams::generate(cfg.leaves, &make_stream);
    let mut recording = RecordingSource::new(
        &mut streams,
        &topo,
        cfg.window,
        cfg.d3.rule,
        cfg.mdef_rule,
        cfg.warmup,
    );
    let net = run_d3_with_faults(
        topo.clone(),
        &cfg.d3,
        cfg.sim,
        FaultPlan::none(),
        &mut recording,
        cfg.readings_per_leaf(),
    )
    .expect("conformance D3 config is valid");
    let records = std::mem::take(&mut recording.records);
    let baseline_outcome = EngineOutcome::capture(&net);
    let baseline = score_outcome(
        "baseline",
        FaultPlan::none(),
        baseline_outcome.clone(),
        &records,
        root_level,
    );

    let replay = |plan: FaultPlan, sim: SimConfig| -> EngineOutcome {
        let mut source = BankSource::new(SensorStreams::generate(cfg.leaves, &make_stream), &topo);
        let net = run_d3_with_faults(
            topo.clone(),
            &cfg.d3,
            sim,
            plan,
            &mut source,
            cfg.readings_per_leaf(),
        )
        .expect("conformance D3 config is valid");
        EngineOutcome::capture(&net)
    };

    // Claim 1a: zero-probability plan == no plan, bit for bit.
    let zero = replay(zero_probability_plan(7, horizon_ns), cfg.sim);
    let zero_fault_bit_identical = zero == baseline.outcome;

    // Severity ladder.
    let ladder_plans = default_ladder(&topo, 0x00C0_FFEE, horizon_ns);
    let ladder: Vec<FaultOutcome> = ladder_plans
        .iter()
        .map(|(label, plan)| {
            score_outcome(
                label,
                plan.clone(),
                replay(plan.clone(), cfg.sim),
                &records,
                root_level,
            )
        })
        .collect();

    // Claim 1b: the parallel engine reproduces the sequential run under
    // the severest plan, bit for bit.
    let severest = &ladder_plans.last().expect("non-empty ladder").1;
    let parallel = replay(severest.clone(), cfg.sim.with_worker_threads(4));
    let parallel_bit_identical =
        parallel == ladder.last().expect("non-empty ladder").outcome;

    ConformanceReport {
        baseline,
        zero_fault_bit_identical,
        parallel_bit_identical,
        ladder,
    }
}

/// Everything the sim-vs-live equivalence claim covers, captured from
/// one driver run: network counters, per-node outlier escalations,
/// per-node model-maintenance epochs, and the complete checkpoint bytes.
/// Two drivers are conformant exactly when their `DriverOutcome`s are
/// `==`.
#[derive(Debug, Clone, PartialEq)]
pub struct DriverOutcome {
    /// Full network accounting ([`NetStats`]-equivalent counters; the
    /// live runtime reuses the type verbatim).
    pub stats: NetStats,
    /// Detections per node, indexed by `NodeId::index()` — order,
    /// timestamps and values all participate in equality.
    pub detections: Vec<Vec<Detection>>,
    /// Model epochs per node estimator (evictions/admissions of the
    /// online model — the "model maintenance" clock).
    pub epochs: Vec<u64>,
    /// The driver's complete end-of-run checkpoint. Sim and live share
    /// the checkpoint format (the live runtime's restart policy is
    /// pinned to `Persistent`, the simulator's default), so the bytes
    /// must match exactly.
    pub checkpoint: Vec<u8>,
}

impl DriverOutcome {
    fn from_sim(net: &Network<D3Payload, D3Node>) -> Self {
        let base = EngineOutcome::capture(net);
        Self {
            stats: base.stats,
            detections: base.detections,
            epochs: net.apps().map(|(_, a)| a.estimator().epochs()).collect(),
            checkpoint: net.checkpoint(),
        }
    }

    fn from_live(rt: &LiveRuntime<D3Payload, D3Node>) -> Self {
        let mut detections = vec![Vec::new(); rt.topology().node_count()];
        for (node, engine) in rt.engines() {
            detections[node.index()] = engine.detections.clone();
        }
        Self {
            stats: rt.stats().clone(),
            detections,
            epochs: rt.engines().map(|(_, a)| a.estimator().epochs()).collect(),
            checkpoint: rt.checkpoint(),
        }
    }
}

/// One seed × fault setting of the driver-parity matrix.
#[derive(Debug, Clone)]
pub struct DriverParityCase {
    /// Stream/fault seed of this case.
    pub seed: u64,
    /// Whether the severe fault plan was installed.
    pub faulted: bool,
    /// Readings the recorded trace carries (sanity: non-empty).
    pub trace_len: usize,
    /// The sequential simulator's outcome (the reference).
    pub reference: DriverOutcome,
    /// Parallel simulator (4 workers) replayed the trace bit-identically.
    pub sim_parallel_identical: bool,
    /// The live runtime replayed the trace bit-identically — same
    /// escalation sequence, epochs, counters and checkpoint bytes.
    pub live_identical: bool,
}

/// The full sim-vs-live differential report.
#[derive(Debug, Clone)]
pub struct DriverParityReport {
    /// One row per seed × fault setting.
    pub cases: Vec<DriverParityCase>,
}

impl DriverParityReport {
    /// True when every case was bit-identical across all three drivers.
    pub fn all_identical(&self) -> bool {
        !self.cases.is_empty()
            && self
                .cases
                .iter()
                .all(|c| c.sim_parallel_identical && c.live_identical && c.trace_len > 0)
    }

    /// Cases that diverged, for failure messages.
    pub fn divergent(&self) -> Vec<(u64, bool)> {
        self.cases
            .iter()
            .filter(|c| !(c.sim_parallel_identical && c.live_identical))
            .map(|c| (c.seed, c.faulted))
            .collect()
    }
}

/// The severe rung of [`default_ladder`], reseeded — the plan the parity
/// matrix uses for its fault-injected cases.
fn severe_plan(topo: &Hierarchy, seed: u64, horizon_ns: u64) -> FaultPlan {
    default_ladder(topo, seed, horizon_ns)
        .pop()
        .expect("non-empty ladder")
        .1
}

/// Runs the sim-vs-live differential conformance matrix: for every seed
/// and fault setting, the identical reading trace is replayed through
/// three drivers —
///
/// 1. the **sequential simulator** (records the trace and serves as the
///    reference),
/// 2. the **parallel simulator** (4 workers), and
/// 3. the **live runtime** (one worker thread per node, virtual clock),
///
/// asserting that outlier escalations, model epochs, every [`NetStats`]
/// counter and the complete checkpoint bytes are identical. This is the
/// executable form of the engine crate's driver contract: all three
/// drivers run the same pre/post-phase protocol code around the same
/// [`snod_simnet::DetectorEngine`] callbacks, so nothing observable may
/// depend on which runtime hosts the engines.
///
/// `make_stream(seed, leaf)` must be deterministic in its arguments.
pub fn run_driver_parity<F, S>(
    cfg: &ConformanceConfig,
    seeds: &[u64],
    make_stream: F,
) -> DriverParityReport
where
    F: Fn(u64, usize) -> S,
    S: DataStream + Send + 'static,
{
    let topo = cfg.topology();
    let horizon_ns = cfg.readings_per_leaf() * cfg.sim.reading_period_ns;
    let mut cases = Vec::new();
    for &seed in seeds {
        for faulted in [false, true] {
            let plan = if faulted {
                severe_plan(&topo, seed, horizon_ns)
            } else {
                FaultPlan::none()
            };

            // Reference pass: the sequential simulator, recording the
            // trace it actually ingested.
            let bank = BankSource::new(
                SensorStreams::generate(cfg.leaves, |leaf| make_stream(seed, leaf)),
                &topo,
            );
            let mut recorder = TraceRecorder::new(bank);
            let net = run_d3_with_faults(
                topo.clone(),
                &cfg.d3,
                cfg.sim,
                plan.clone(),
                &mut recorder,
                cfg.readings_per_leaf(),
            )
            .expect("conformance D3 config is valid");
            let trace = recorder.into_trace();
            let reference = DriverOutcome::from_sim(&net);

            // Replay 1: parallel simulator on the recorded trace.
            let mut replay: ReadingTrace = trace.clone();
            let par = run_d3_with_faults(
                topo.clone(),
                &cfg.d3,
                cfg.sim.with_worker_threads(4),
                plan.clone(),
                &mut replay,
                cfg.readings_per_leaf(),
            )
            .expect("conformance D3 config is valid");
            let par_outcome = DriverOutcome::from_sim(&par);

            // Replay 2: the live runtime on the same trace.
            let mut rt = build_d3_live(topo.clone(), &cfg.d3, cfg.sim, plan.clone())
                .expect("conformance D3 config is valid");
            let mut replay = trace.clone();
            rt.run(&mut replay, cfg.readings_per_leaf());
            let live_outcome = DriverOutcome::from_live(&rt);

            cases.push(DriverParityCase {
                seed,
                faulted,
                trace_len: trace.len(),
                sim_parallel_identical: par_outcome == reference,
                live_identical: live_outcome == reference,
                reference,
            });
        }
    }
    DriverParityReport { cases }
}

/// Backend-generic driver outcome: the observables every
/// [`DetectorBackend`] exposes. (The D3-specific [`DriverOutcome`]
/// additionally pins the estimator's model-epoch clock, which not every
/// backend has.)
#[derive(Debug, Clone, PartialEq)]
pub struct BackendOutcome {
    /// Full network accounting.
    pub stats: NetStats,
    /// Detections per node, indexed by `NodeId::index()`.
    pub detections: Vec<Vec<Detection>>,
    /// The driver's complete end-of-run checkpoint bytes.
    pub checkpoint: Vec<u8>,
}

fn capture_backend_sim<B: DetectorBackend>(net: &Network<B::Payload, B::Engine>) -> BackendOutcome {
    let mut detections = vec![Vec::new(); net.topology().node_count()];
    for (node, app) in net.apps() {
        detections[node.index()] = B::detections(app).to_vec();
    }
    BackendOutcome {
        stats: net.stats().clone(),
        detections,
        checkpoint: net.checkpoint(),
    }
}

fn capture_backend_live<B: DetectorBackend>(
    rt: &LiveRuntime<B::Payload, B::Engine>,
) -> BackendOutcome {
    let mut detections = vec![Vec::new(); rt.topology().node_count()];
    for (node, engine) in rt.engines() {
        detections[node.index()] = B::detections(engine).to_vec();
    }
    BackendOutcome {
        stats: rt.stats().clone(),
        detections,
        checkpoint: rt.checkpoint(),
    }
}

/// One seed × fault setting of the backend parity matrix.
#[derive(Debug, Clone)]
pub struct BackendParityCase {
    /// Stream/fault seed of this case.
    pub seed: u64,
    /// Whether the severe fault plan was installed.
    pub faulted: bool,
    /// Readings the recorded trace carries.
    pub trace_len: usize,
    /// The sequential simulator's outcome (the reference).
    pub reference: BackendOutcome,
    /// Parallel simulator (4 workers) replayed the trace bit-identically.
    pub sim_parallel_identical: bool,
    /// The live runtime replayed the trace bit-identically.
    pub live_identical: bool,
}

/// The backend-generic sim-vs-live differential report.
#[derive(Debug, Clone)]
pub struct BackendParityReport {
    /// One row per seed × fault setting.
    pub cases: Vec<BackendParityCase>,
}

impl BackendParityReport {
    /// True when every case was bit-identical across all three drivers.
    pub fn all_identical(&self) -> bool {
        !self.cases.is_empty()
            && self
                .cases
                .iter()
                .all(|c| c.sim_parallel_identical && c.live_identical && c.trace_len > 0)
    }

    /// Cases that diverged, for failure messages.
    pub fn divergent(&self) -> Vec<(u64, bool)> {
        self.cases
            .iter()
            .filter(|c| !(c.sim_parallel_identical && c.live_identical))
            .map(|c| (c.seed, c.faulted))
            .collect()
    }
}

/// [`run_driver_parity`] for an arbitrary [`DetectorBackend`] recipe:
/// for every seed × fault setting, record one trace under the
/// sequential simulator, then replay it through the parallel simulator
/// (4 workers) and the live runtime, asserting the stats, the per-node
/// detection sequences and the checkpoint bytes are all `==`.
///
/// `make_stream(seed, leaf)` must be deterministic in its arguments.
pub fn run_backend_parity<B, F, S>(
    backend: &B,
    leaves: usize,
    fanouts: &[usize],
    sim: SimConfig,
    readings_per_leaf: u64,
    seeds: &[u64],
    make_stream: F,
) -> BackendParityReport
where
    B: DetectorBackend,
    F: Fn(u64, usize) -> S,
    S: DataStream + Send + 'static,
{
    let topo = Hierarchy::balanced(leaves, fanouts).expect("valid parity hierarchy");
    let horizon_ns = readings_per_leaf * sim.reading_period_ns;
    let mut cases = Vec::new();
    for &seed in seeds {
        for faulted in [false, true] {
            let plan = if faulted {
                severe_plan(&topo, seed, horizon_ns)
            } else {
                FaultPlan::none()
            };

            // Reference pass: the sequential simulator, recording the
            // trace it actually ingested.
            let bank = BankSource::new(
                SensorStreams::generate(leaves, |leaf| make_stream(seed, leaf)),
                &topo,
            );
            let mut recorder = TraceRecorder::new(bank);
            let net = run_backend_with_faults(
                backend,
                topo.clone(),
                sim,
                plan.clone(),
                &mut recorder,
                readings_per_leaf,
            )
            .expect("backend recipe is valid");
            let trace = recorder.into_trace();
            let reference = capture_backend_sim::<B>(&net);

            // Replay 1: parallel simulator on the recorded trace.
            let mut replay: ReadingTrace = trace.clone();
            let par = run_backend_with_faults(
                backend,
                topo.clone(),
                sim.with_worker_threads(4),
                plan.clone(),
                &mut replay,
                readings_per_leaf,
            )
            .expect("backend recipe is valid");
            let par_outcome = capture_backend_sim::<B>(&par);

            // Replay 2: the live runtime on the same trace.
            let mut rt = build_backend_live(backend, topo.clone(), sim, plan.clone())
                .expect("backend recipe is valid");
            let mut replay = trace.clone();
            rt.run(&mut replay, readings_per_leaf);
            let live_outcome = capture_backend_live::<B>(&rt);

            cases.push(BackendParityCase {
                seed,
                faulted,
                trace_len: trace.len(),
                sim_parallel_identical: par_outcome == reference,
                live_identical: live_outcome == reference,
                reference,
            });
        }
    }
    BackendParityReport { cases }
}

fn score_outcome(
    label: &str,
    plan: FaultPlan,
    outcome: EngineOutcome,
    records: &[ReadingRecord],
    root_level: u8,
) -> FaultOutcome {
    let all = outcome.all_detections();
    let root = score_level(records, &all, root_level, |r| {
        r.dist_truth[root_level as usize - 1]
    });
    let leaf = score_level(records, &all, 1, |r| r.dist_truth[0]);
    FaultOutcome {
        label: label.to_string(),
        plan,
        containment_ok: outcome.containment_holds(),
        outcome,
        root,
        leaf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snod_core::EstimatorConfig;
    use snod_outlier::DistanceOutlierConfig;

    /// Deterministic per-leaf stream: a slow sweep with rare far-out
    /// spikes (true outliers under a tight radius).
    struct SpikeStream {
        sensor: usize,
        n: u64,
    }

    impl DataStream for SpikeStream {
        fn dims(&self) -> usize {
            1
        }
        fn next_reading(&mut self) -> Vec<f64> {
            let n = self.n;
            self.n += 1;
            if n % 157 == 150 + self.sensor as u64 % 7 {
                vec![0.93 + 0.004 * self.sensor as f64]
            } else {
                let phase = (n * (self.sensor as u64 * 13 + 7)) % 97;
                vec![0.35 + 0.003 * phase as f64]
            }
        }
    }

    fn test_config() -> ConformanceConfig {
        ConformanceConfig {
            leaves: 4,
            fanouts: vec![2, 2],
            d3: D3Config {
                estimator: EstimatorConfig::builder()
                    .window(300)
                    .sample_size(60)
                    .seed(9)
                    .build()
                    .unwrap(),
                rule: DistanceOutlierConfig::new(8.0, 0.02),
                sample_fraction: 0.5,
            },
            window: 300,
            mdef_rule: MdefConfig::new(0.08, 0.01, 3.0).unwrap(),
            warmup: 300,
            eval: 500,
            sim: SimConfig::default().with_reliability(snod_simnet::RetryPolicy::default()),
        }
    }

    fn run() -> ConformanceReport {
        run_conformance(&test_config(), |sensor| SpikeStream { sensor, n: 0 })
    }

    #[test]
    fn zero_probability_plan_is_bit_identical() {
        let report = run();
        assert!(report.zero_fault_bit_identical);
    }

    #[test]
    fn parallel_engine_matches_sequential_under_faults() {
        let report = run();
        assert!(report.parallel_bit_identical);
    }

    #[test]
    fn theorem3_containment_holds_at_every_severity() {
        let report = run();
        assert!(report.all_contained());
        assert!(
            report.baseline.root.true_positives + report.baseline.root.false_positives > 0,
            "baseline never escalated anything — the ladder is vacuous"
        );
    }

    #[test]
    fn live_runtime_matches_simulator_on_one_seed() {
        // The full 3-seed × fault matrix runs as an integration test
        // (`tests/driver_parity.rs`); this pins one faulted seed inline.
        let report = run_driver_parity(&test_config(), &[5], |seed, sensor| SpikeStream {
            sensor: sensor + seed as usize,
            n: 0,
        });
        assert!(
            report.all_identical(),
            "drivers diverged on {:?}",
            report.divergent()
        );
        assert!(report
            .cases
            .iter()
            .any(|c| c.faulted && !c.reference.checkpoint.is_empty()));
    }

    #[test]
    fn backend_parity_matches_the_d3_specific_harness_shape() {
        // One faulted seed through the generic harness for each new
        // backend; the full matrix runs in `tests/driver_parity.rs`.
        let fqn = snod_core::FqnBackend(snod_core::FqnConfig {
            dimensions: 1,
            window: 128,
            k_scale: 4.0,
            warmup: 32,
            sample_fraction: 0.5,
            seed: 9,
        });
        let report = run_backend_parity(
            &fqn,
            4,
            &[2, 2],
            SimConfig::default().with_reliability(snod_simnet::RetryPolicy::default()),
            500,
            &[5],
            |seed, sensor| SpikeStream {
                sensor: sensor + seed as usize,
                n: 0,
            },
        );
        assert!(
            report.all_identical(),
            "fqn drivers diverged on {:?}",
            report.divergent()
        );
        assert!(report
            .cases
            .iter()
            .any(|c| c.reference.detections.iter().any(|d| !d.is_empty())));
    }

    #[test]
    fn recall_degrades_monotonically_and_leaves_hold_still() {
        let report = run();
        assert!(
            report.recall_degrades_monotonically(0.05),
            "root recall rose under heavier faults: baseline {:.3}, ladder {:?}",
            report.baseline.root.recall(),
            report
                .ladder
                .iter()
                .map(|o| (o.label.clone(), o.root.recall()))
                .collect::<Vec<_>>()
        );
        assert!(report.leaves_unperturbed());
    }
}
