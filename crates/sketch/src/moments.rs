//! First-moment summaries of datasets and streams.
//!
//! The paper's Figure 5 tabulates min / max / mean / median / stddev / skew
//! for the real datasets. [`DatasetStats`] computes those exactly from a
//! slice (used by the `fig05_dataset_stats` experiment to validate our
//! calibrated generators), and [`StreamingMoments`] maintains the same
//! moments online with Welford-style updates — the paper's §9 mentions
//! *"monitoring the first moments of the data distribution (i.e., mean,
//! standard deviation, and skew)"* as a supported application.

/// Streaming min/max/mean/σ/skewness via numerically stable one-pass
/// central-moment updates (Welford / Pébay).
///
/// ```
/// use snod_sketch::StreamingMoments;
/// let mut m = StreamingMoments::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     m.push(x);
/// }
/// assert!((m.mean() - 5.0).abs() < 1e-12);
/// assert!((m.std_dev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct StreamingMoments {
    n: u64,
    min: f64,
    max: f64,
    mean: f64,
    m2: f64,
    m3: f64,
}

impl StreamingMoments {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            mean: 0.0,
            m2: 0.0,
            m3: 0.0,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let n = self.n as f64;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        let delta = x - self.mean;
        let delta_n = delta / n;
        let term = delta * delta_n * (n - 1.0);
        self.m3 += term * delta_n * (n - 2.0) - 3.0 * delta_n * self.m2;
        self.m2 += term;
        self.mean += delta_n;
    }

    /// Observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Minimum observed value (∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observed value (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance.
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Fisher skewness `√n·M₃ / M₂^{3/2}` (0 when degenerate).
    pub fn skewness(&self) -> f64 {
        if self.m2 <= 0.0 || self.n == 0 {
            return 0.0;
        }
        let n = self.n as f64;
        n.sqrt() * self.m3 / self.m2.powf(1.5)
    }
}

/// Exact offline statistics of a dataset — one row of the paper's Figure 5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetStats {
    /// Smallest value.
    pub min: f64,
    /// Largest value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (average of middle pair for even lengths).
    pub median: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Fisher skewness.
    pub skew: f64,
}

impl DatasetStats {
    /// Computes exact statistics of `xs`. Returns `None` for empty input.
    pub fn from_slice(xs: &[f64]) -> Option<Self> {
        if xs.is_empty() {
            return None;
        }
        let mut m = StreamingMoments::new();
        for &x in xs {
            m.push(x);
        }
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN data"));
        let n = sorted.len();
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        Some(Self {
            min: m.min(),
            max: m.max(),
            mean: m.mean(),
            median,
            std_dev: m.std_dev(),
            skew: m.skewness(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_slice_yields_none() {
        assert_eq!(DatasetStats::from_slice(&[]), None);
    }

    #[test]
    fn single_value() {
        let s = DatasetStats::from_slice(&[3.0]).unwrap();
        assert_eq!(s.min, 3.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.skew, 0.0);
    }

    #[test]
    fn symmetric_data_has_zero_skew() {
        let xs: Vec<f64> = (-50..=50).map(|i| i as f64).collect();
        let s = DatasetStats::from_slice(&xs).unwrap();
        assert!(s.skew.abs() < 1e-9);
        assert_eq!(s.median, 0.0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn left_skewed_data_has_negative_skew() {
        // Mostly high values with a long left tail — like the paper's
        // engine dataset (skew −6.844).
        let mut xs = vec![0.42; 990];
        xs.extend(std::iter::repeat_n(0.05, 10));
        let s = DatasetStats::from_slice(&xs).unwrap();
        assert!(s.skew < -5.0, "skew {}", s.skew);
    }

    #[test]
    fn even_length_median_averages_middle_pair() {
        let s = DatasetStats::from_slice(&[1.0, 2.0, 3.0, 10.0]).unwrap();
        assert_eq!(s.median, 2.5);
    }

    #[test]
    fn streaming_matches_exact_on_random_walk() {
        let mut xs = Vec::new();
        let mut v = 0.0;
        let mut state = 99u64;
        for _ in 0..10_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            v += ((state % 2_001) as f64 - 1_000.0) / 1_000.0;
            xs.push(v);
        }
        let exact = DatasetStats::from_slice(&xs).unwrap();
        let mut m = StreamingMoments::new();
        for &x in &xs {
            m.push(x);
        }
        assert!((m.mean() - exact.mean).abs() < 1e-9);
        assert!((m.std_dev() - exact.std_dev).abs() < 1e-9);
        assert!((m.skewness() - exact.skew).abs() < 1e-9);
    }
}
