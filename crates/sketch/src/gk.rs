//! Greenwald–Khanna ε-approximate quantile sketch (SIGMOD 2001).
//!
//! The paper cites order-statistics maintenance in sensor networks
//! (Greenwald & Khanna, PODS 2004 — reference [19]) as a related
//! capability of distribution approximation. We use this sketch for the
//! equi-depth histogram baseline (bucket boundaries are quantiles) and to
//! answer median/percentile queries in the §9 applications.
//!
//! A summary is a sorted list of tuples `(v, g, Δ)` where `g` is the gap in
//! minimum rank to the previous tuple and `Δ` bounds the rank uncertainty.
//! The invariant `g + Δ ≤ ⌊2εn⌋` guarantees any rank query is answered
//! within `εn`.

use snod_persist::{ByteReader, ByteWriter, Persist, PersistError};

use crate::SketchError;

#[derive(Debug, Clone, Copy)]
struct Tuple {
    v: f64,
    g: u64,
    delta: u64,
}

/// ε-approximate quantiles over an unbounded stream.
///
/// ```
/// use snod_sketch::GkSketch;
/// let mut gk = GkSketch::new(0.01).unwrap();
/// for i in 0..10_000 {
///     gk.insert(i as f64);
/// }
/// let med = gk.quantile(0.5).unwrap();
/// assert!((med - 5_000.0).abs() <= 0.01 * 10_000.0 + 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct GkSketch {
    eps: f64,
    tuples: Vec<Tuple>,
    n: u64,
    since_compress: u64,
}

impl GkSketch {
    /// Creates a sketch with rank error at most `eps·n`.
    pub fn new(eps: f64) -> Result<Self, SketchError> {
        if !(eps > 0.0 && eps <= 1.0) {
            return Err(SketchError::InvalidEpsilon);
        }
        Ok(Self {
            eps,
            tuples: Vec::new(),
            n: 0,
            since_compress: 0,
        })
    }

    /// Inserts one value.
    pub fn insert(&mut self, v: f64) {
        let pos = self.tuples.partition_point(|t| t.v < v);
        let delta = if pos == 0 || pos == self.tuples.len() {
            0
        } else {
            (2.0 * self.eps * self.n as f64).floor() as u64
        };
        self.tuples.insert(pos, Tuple { v, g: 1, delta });
        self.n += 1;
        self.since_compress += 1;
        if self.since_compress as f64 >= 1.0 / (2.0 * self.eps) {
            self.compress();
            self.since_compress = 0;
        }
    }

    fn compress(&mut self) {
        if self.tuples.len() < 3 {
            return;
        }
        let cap = (2.0 * self.eps * self.n as f64).floor() as u64;
        let mut i = self.tuples.len() - 2;
        while i >= 1 {
            let merged_g = self.tuples[i].g + self.tuples[i + 1].g;
            if merged_g + self.tuples[i + 1].delta <= cap {
                self.tuples[i + 1].g = merged_g;
                self.tuples.remove(i);
            }
            i -= 1;
        }
    }

    /// The φ-quantile (φ ∈ [0, 1]) with rank error at most `εn`.
    /// Returns `None` while the sketch is empty.
    pub fn quantile(&self, phi: f64) -> Option<f64> {
        if self.tuples.is_empty() {
            return None;
        }
        let phi = phi.clamp(0.0, 1.0);
        let rank = (phi * self.n as f64).ceil().max(1.0) as u64;
        let allow = (self.eps * self.n as f64).ceil() as u64;
        let mut rmin = 0u64;
        for (i, t) in self.tuples.iter().enumerate() {
            rmin += t.g;
            let rmax = rmin + t.delta;
            if rmax >= rank.saturating_sub(allow) && rmin + allow >= rank {
                return Some(t.v);
            }
            // If the next tuple would overshoot, answer with this one.
            if i + 1 < self.tuples.len() {
                let next = &self.tuples[i + 1];
                if rmin + next.g + next.delta > rank + allow {
                    return Some(t.v);
                }
            }
        }
        self.tuples.last().map(|t| t.v)
    }

    /// `k` equi-depth boundaries (the `1/k … (k−1)/k` quantiles), used to
    /// build equi-depth histograms.
    pub fn equi_depth_boundaries(&self, buckets: usize) -> Vec<f64> {
        (1..buckets)
            .filter_map(|i| self.quantile(i as f64 / buckets as f64))
            .collect()
    }

    /// Values observed so far.
    pub fn stream_len(&self) -> u64 {
        self.n
    }

    /// Tuples currently stored (the sketch's memory footprint in entries).
    pub fn tuple_count(&self) -> usize {
        self.tuples.len()
    }
}


impl Persist for Tuple {
    fn save(&self, w: &mut ByteWriter) {
        w.put_f64(self.v);
        w.put_u64(self.g);
        w.put_u64(self.delta);
    }

    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        Ok(Self {
            v: r.get_f64()?,
            g: r.get_u64()?,
            delta: r.get_u64()?,
        })
    }
}

impl Persist for GkSketch {
    fn save(&self, w: &mut ByteWriter) {
        w.put_f64(self.eps);
        self.tuples.save(w);
        w.put_u64(self.n);
        w.put_u64(self.since_compress);
    }

    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let gk = Self {
            eps: r.get_f64()?,
            tuples: Persist::load(r)?,
            n: r.get_u64()?,
            since_compress: r.get_u64()?,
        };
        if !(gk.eps > 0.0 && gk.eps <= 1.0) {
            return Err(PersistError::Corrupt("quantile epsilon must lie in (0, 1]"));
        }
        Ok(gk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_epsilon() {
        assert!(GkSketch::new(0.0).is_err());
        assert!(GkSketch::new(1.1).is_err());
    }

    #[test]
    fn empty_sketch_has_no_quantiles() {
        let gk = GkSketch::new(0.1).unwrap();
        assert_eq!(gk.quantile(0.5), None);
    }

    #[test]
    fn quantiles_on_sorted_input() {
        let n = 20_000u64;
        let eps = 0.01;
        let mut gk = GkSketch::new(eps).unwrap();
        for i in 0..n {
            gk.insert(i as f64);
        }
        for &phi in &[0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let q = gk.quantile(phi).unwrap();
            let truth = phi * n as f64;
            assert!(
                (q - truth).abs() <= 2.0 * eps * n as f64,
                "phi {phi}: got {q}, want ~{truth}"
            );
        }
    }

    #[test]
    fn quantiles_on_shuffled_input() {
        // Deterministic shuffle via multiplicative hashing.
        let n = 10_007u64; // prime
        let eps = 0.02;
        let mut gk = GkSketch::new(eps).unwrap();
        for i in 0..n {
            let v = (i * 48_271) % n;
            gk.insert(v as f64);
        }
        let med = gk.quantile(0.5).unwrap();
        assert!((med - n as f64 / 2.0).abs() <= 2.0 * eps * n as f64);
    }

    #[test]
    fn memory_is_sublinear() {
        let mut gk = GkSketch::new(0.01).unwrap();
        for i in 0..100_000 {
            gk.insert((i as f64).sin());
        }
        assert!(
            gk.tuple_count() < 10_000,
            "tuples {} not sublinear",
            gk.tuple_count()
        );
    }

    #[test]
    fn equi_depth_boundaries_are_sorted() {
        let mut gk = GkSketch::new(0.01).unwrap();
        for i in 0..5_000 {
            gk.insert((i % 997) as f64);
        }
        let b = gk.equi_depth_boundaries(10);
        assert_eq!(b.len(), 9);
        assert!(b.windows(2).all(|w| w[0] <= w[1]));
    }
}
