//! MMDEW — distributed distribution-shift detection on exponential
//! windows.
//!
//! Each node runs an [`snod_robust::Mmdew`] change detector (Kalinke et
//! al., *Maximum Mean Discrepancy on Exponential Windows for Online
//! Change Detection*) over its arrival stream: leaves over their raw
//! readings, leaders over the sample traffic forwarded by their
//! children. When the maximal-margin MMD² split exceeds the kernel-bound
//! threshold `τ = c·√(1/n + 1/m)`, the node records a [`Detection`]
//! carrying the triggering reading, prunes its pre-change history, and
//! escalates a `ChangeAlarm` to its parent on the reliable channel.
//!
//! Unlike D3/FQN, leaders do *not* re-check child alarms against their
//! own model — a distribution shift visible at a leaf may be invisible
//! in the regional mixture and vice versa. Child alarms are tallied
//! (`child_alarms`) as corroborating evidence; a leader's own detections
//! come only from its own MMD statistic over the sample stream.

use rand::Rng;

use snod_persist::{ByteReader, ByteWriter, Persist, PersistError, SeededRng};
use snod_robust::{Mmdew, MmdewConfig, RobustError};
use snod_simnet::{
    Ctx, DetectorEngine, FaultPlan, Hierarchy, Network, NodeId, SimConfig, StreamSource, Wire,
};

use crate::config::CoreError;
use crate::d3::Detection;

/// Configuration for the distributed MMDEW detector: the per-node change
/// detector plus the sample-forwarding fraction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MmdewNodeConfig {
    /// The per-node change-detector parameters.
    pub detector: MmdewConfig,
    /// Probability that an ingested reading is forwarded to the parent.
    pub sample_fraction: f64,
}

impl Default for MmdewNodeConfig {
    fn default() -> Self {
        Self {
            detector: MmdewConfig {
                dimensions: 1,
                gamma: 8.0,
                bucket_cap: 32,
                threshold_scale: 0.6,
                min_per_side: 16,
                test_every: 4,
                seed: 0x33D,
            },
            sample_fraction: 0.5,
        }
    }
}

impl MmdewNodeConfig {
    /// Validates the parameter ranges.
    pub fn validate(&self) -> Result<(), CoreError> {
        self.detector
            .validate()
            .map_err(|_| CoreError::Config("invalid mmdew detector config"))?;
        if !(0.0..=1.0).contains(&self.sample_fraction) {
            return Err(CoreError::Config(
                "mmdew sample_fraction must be in [0, 1]",
            ));
        }
        Ok(())
    }
}

impl Persist for MmdewNodeConfig {
    fn save(&self, w: &mut ByteWriter) {
        self.detector.save(w);
        self.sample_fraction.save(w);
    }

    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let cfg = Self {
            detector: MmdewConfig::load(r)?,
            sample_fraction: f64::load(r)?,
        };
        cfg.validate()
            .map_err(|_| PersistError::Corrupt("invalid mmdew node config"))?;
        Ok(cfg)
    }
}

/// MMDEW wire messages.
#[derive(Debug, Clone)]
pub enum MmdewPayload {
    /// A reading forwarded upward so leaders observe the regional
    /// mixture.
    SampleValue(Vec<f64>),
    /// A distribution-shift alarm, carrying the reading that triggered
    /// it.
    ChangeAlarm(Vec<f64>),
}

impl Wire for MmdewPayload {
    fn size_bytes(&self) -> usize {
        match self {
            MmdewPayload::SampleValue(v) | MmdewPayload::ChangeAlarm(v) => v.len() * 2 + 1,
        }
    }
}

impl Persist for MmdewPayload {
    fn save(&self, w: &mut ByteWriter) {
        match self {
            MmdewPayload::SampleValue(v) => {
                w.put_u8(0);
                v.save(w);
            }
            MmdewPayload::ChangeAlarm(v) => {
                w.put_u8(1);
                v.save(w);
            }
        }
    }

    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        match r.get_u8()? {
            0 => Ok(MmdewPayload::SampleValue(Vec::<f64>::load(r)?)),
            1 => Ok(MmdewPayload::ChangeAlarm(Vec::<f64>::load(r)?)),
            _ => Err(PersistError::Corrupt("unknown mmdew payload tag")),
        }
    }
}

/// Per-node MMDEW state.
pub struct MmdewNode {
    det: Mmdew,
    cfg: MmdewNodeConfig,
    rng: SeededRng,
    /// Distribution shifts this node has flagged.
    pub detections: Vec<Detection>,
    child_alarms: u64,
    level: u8,
}

impl MmdewNode {
    /// Builds the node for `node` within `topo`.
    pub fn new(node: NodeId, topo: &Hierarchy, cfg: &MmdewNodeConfig) -> Self {
        let level = topo.level_of(node);
        let mut det_cfg = cfg.detector;
        // Decorrelate subsampling RNGs across nodes (same scheme as D3).
        det_cfg.seed = det_cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (node.0 as u64);
        Self {
            det: Mmdew::new(det_cfg).expect("validated detector config"),
            cfg: *cfg,
            rng: SeededRng::seed_from_u64(det_cfg.seed ^ 0x33D),
            detections: Vec::new(),
            child_alarms: 0,
            level,
        }
    }

    /// The node's change detector (for post-run inspection).
    pub fn detector(&self) -> &Mmdew {
        &self.det
    }

    /// Alarms received from children (corroborating evidence, not
    /// re-checked — see the module docs).
    pub fn child_alarms(&self) -> u64 {
        self.child_alarms
    }

    /// Feeds `value` to the change detector; on an alarm, records a
    /// detection and escalates on the reliable channel.
    fn observe(&mut self, ctx: &mut Ctx<'_, MmdewPayload>, value: &[f64]) {
        snod_obs::counter!("core.mmdew.scored").incr();
        match self.det.insert(value) {
            Ok(Some(_event)) => {
                snod_obs::counter!("core.mmdew.detections").incr();
                self.detections.push(Detection {
                    time_ns: ctx.time_ns,
                    value: value.to_vec(),
                    level: self.level,
                });
                snod_obs::counter!("core.mmdew.escalations").incr();
                ctx.send_parent_reliable(MmdewPayload::ChangeAlarm(value.to_vec()));
            }
            Ok(None) => {}
            // Mis-dimensioned or non-finite readings are dropped and
            // counted rather than crashing the node mid-simulation.
            Err(RobustError::Dimension { .. }) | Err(RobustError::NonFinite) => {
                snod_obs::counter!("core.bad_readings").incr();
            }
            Err(RobustError::BadConfig(_)) => unreachable!("config validated at build"),
        }
    }
}

impl DetectorEngine<MmdewPayload> for MmdewNode {
    fn ingest(&mut self, ctx: &mut Ctx<'_, MmdewPayload>, value: &[f64]) {
        self.observe(ctx, value);
        if self.rng.gen::<f64>() < self.cfg.sample_fraction {
            ctx.send_parent(MmdewPayload::SampleValue(value.to_vec()));
        }
    }

    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_, MmdewPayload>,
        _from: NodeId,
        payload: MmdewPayload,
    ) {
        match payload {
            MmdewPayload::SampleValue(v) => {
                self.observe(ctx, &v);
                if self.rng.gen::<f64>() < self.cfg.sample_fraction {
                    ctx.send_parent(MmdewPayload::SampleValue(v));
                }
            }
            MmdewPayload::ChangeAlarm(_) => {
                snod_obs::counter!("core.mmdew.child_alarms").incr();
                self.child_alarms += 1;
            }
        }
    }
}

impl Persist for MmdewNode {
    fn save(&self, w: &mut ByteWriter) {
        self.det.save(w);
        self.cfg.save(w);
        self.rng.save(w);
        self.detections.save(w);
        self.child_alarms.save(w);
        self.level.save(w);
    }

    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        Ok(Self {
            det: Mmdew::load(r)?,
            cfg: MmdewNodeConfig::load(r)?,
            rng: SeededRng::load(r)?,
            detections: Vec::<Detection>::load(r)?,
            child_alarms: u64::load(r)?,
            level: u8::load(r)?,
        })
    }
}

/// Runs MMDEW over `topo`: each leaf consumes `readings_per_leaf`
/// readings from `source`.
pub fn run_mmdew<S: StreamSource>(
    topo: Hierarchy,
    cfg: &MmdewNodeConfig,
    sim: SimConfig,
    source: &mut S,
    readings_per_leaf: u64,
) -> Result<Network<MmdewPayload, MmdewNode>, CoreError> {
    run_mmdew_with_faults(topo, cfg, sim, FaultPlan::none(), source, readings_per_leaf)
}

/// Runs MMDEW under a fault schedule. With [`FaultPlan::none()`] this is
/// bit-identical to [`run_mmdew`].
pub fn run_mmdew_with_faults<S: StreamSource>(
    topo: Hierarchy,
    cfg: &MmdewNodeConfig,
    sim: SimConfig,
    plan: FaultPlan,
    source: &mut S,
    readings_per_leaf: u64,
) -> Result<Network<MmdewPayload, MmdewNode>, CoreError> {
    let mut net = build_mmdew_network(topo, cfg, sim, plan)?;
    net.run(source, readings_per_leaf);
    Ok(net)
}

/// Builds the MMDEW network without running it (checkpoint/resume drives
/// the simulation itself).
pub fn build_mmdew_network(
    topo: Hierarchy,
    cfg: &MmdewNodeConfig,
    sim: SimConfig,
    plan: FaultPlan,
) -> Result<Network<MmdewPayload, MmdewNode>, CoreError> {
    cfg.validate()?;
    Ok(Network::new(topo, sim, |node, topo| MmdewNode::new(node, topo, cfg)).with_fault_plan(plan))
}

/// Builds the live (wall-clock) runtime over the identical MMDEW
/// engines.
pub fn build_mmdew_live(
    topo: Hierarchy,
    cfg: &MmdewNodeConfig,
    sim: SimConfig,
    plan: FaultPlan,
) -> Result<snod_simnet::LiveRuntime<MmdewPayload, MmdewNode>, CoreError> {
    cfg.validate()?;
    Ok(
        snod_simnet::LiveRuntime::new(topo, sim, |node, topo| MmdewNode::new(node, topo, cfg))
            .with_fault_plan(plan),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_config() -> MmdewNodeConfig {
        MmdewNodeConfig {
            detector: MmdewConfig {
                dimensions: 1,
                gamma: 8.0,
                bucket_cap: 16,
                threshold_scale: 0.6,
                min_per_side: 8,
                test_every: 4,
                seed: 7,
            },
            sample_fraction: 0.5,
        }
    }

    /// All leaves shift their mean at reading 300.
    fn shifting_source() -> impl FnMut(NodeId, u64) -> Option<Vec<f64>> {
        |node: NodeId, seq: u64| {
            let base = if seq < 300 { 0.2 } else { 0.8 };
            Some(vec![base + 0.01 * ((seq.wrapping_mul(7) + node.0 as u64) % 5) as f64])
        }
    }

    #[test]
    fn leaves_alarm_after_the_shift() {
        let topo = Hierarchy::balanced(4, &[2, 2]).unwrap();
        let mut source = shifting_source();
        let net = run_mmdew(
            topo,
            &test_config(),
            SimConfig::default(),
            &mut source,
            600,
        )
        .unwrap();
        for &leaf in net.topology().leaves() {
            let hits = &net.app(leaf).detections;
            assert!(!hits.is_empty(), "leaf {leaf:?} missed the mean shift");
            // All alarms fire on post-shift readings.
            assert!(hits.iter().all(|d| d.value[0] > 0.5), "{hits:?}");
        }
    }

    #[test]
    fn stationary_stream_stays_quiet() {
        let topo = Hierarchy::balanced(4, &[2, 2]).unwrap();
        let mut source = |node: NodeId, seq: u64| {
            Some(vec![
                0.5 + 0.01 * ((seq.wrapping_mul(11) + node.0 as u64) % 7) as f64,
            ])
        };
        let net = run_mmdew(
            topo,
            &test_config(),
            SimConfig::default(),
            &mut source,
            800,
        )
        .unwrap();
        let total: usize = net.apps().map(|(_, a)| a.detections.len()).sum();
        assert_eq!(total, 0, "false alarms on a stationary stream");
    }

    #[test]
    fn alarms_reach_the_parent_tally() {
        let topo = Hierarchy::balanced(4, &[2, 2]).unwrap();
        let mut source = shifting_source();
        let net = run_mmdew(
            topo,
            &test_config(),
            SimConfig::default(),
            &mut source,
            600,
        )
        .unwrap();
        let tally: u64 = net
            .topology()
            .level(2)
            .iter()
            .map(|&n| net.app(n).child_alarms())
            .sum();
        assert!(tally > 0, "no leaf alarm reached a leader");
    }

    #[test]
    fn fault_free_plan_is_identical_to_plain_run() {
        let topo = Hierarchy::balanced(4, &[2, 2]).unwrap();
        let mut a = shifting_source();
        let plain = run_mmdew(
            topo.clone(),
            &test_config(),
            SimConfig::default(),
            &mut a,
            600,
        )
        .unwrap();
        let mut b = shifting_source();
        let faulty = run_mmdew_with_faults(
            topo,
            &test_config(),
            SimConfig::default(),
            FaultPlan::none(),
            &mut b,
            600,
        )
        .unwrap();
        assert_eq!(plain.stats(), faulty.stats());
        for (node, app) in plain.apps() {
            assert_eq!(app.detections, faulty.app(node).detections);
        }
    }

    #[test]
    fn checkpoint_resume_matches_uninterrupted_run() {
        let topo = Hierarchy::balanced(4, &[2, 2]).unwrap();
        let mut a = shifting_source();
        let mut straight = build_mmdew_network(
            topo.clone(),
            &test_config(),
            SimConfig::default(),
            FaultPlan::none(),
        )
        .unwrap();
        straight.run(&mut a, 600);

        let mut b = shifting_source();
        let mut first = build_mmdew_network(
            topo.clone(),
            &test_config(),
            SimConfig::default(),
            FaultPlan::none(),
        )
        .unwrap();
        first.run_until(&mut b, 600, 200_000_000_000);
        let bytes = first.checkpoint();
        let mut resumed = build_mmdew_network(
            topo,
            &test_config(),
            SimConfig::default(),
            FaultPlan::none(),
        )
        .unwrap();
        resumed.restore(&bytes).unwrap();
        resumed.run(&mut b, 600);

        assert_eq!(straight.stats(), resumed.stats());
        for (node, app) in straight.apps() {
            assert_eq!(app.detections, resumed.app(node).detections);
            assert_eq!(app.child_alarms(), resumed.app(node).child_alarms());
        }
        assert_eq!(straight.checkpoint(), resumed.checkpoint());
    }

    #[test]
    fn invalid_config_is_rejected() {
        let topo = Hierarchy::balanced(2, &[2]).unwrap();
        let mut cfg = test_config();
        cfg.detector.gamma = 0.0;
        let mut source = |_: NodeId, _: u64| Some(vec![0.5]);
        assert!(run_mmdew(topo, &cfg, SimConfig::default(), &mut source, 10).is_err());
        let mut cfg2 = test_config();
        cfg2.sample_fraction = 1.5;
        assert!(run_mmdew(
            Hierarchy::balanced(2, &[2]).unwrap(),
            &cfg2,
            SimConfig::default(),
            &mut source,
            10
        )
        .is_err());
    }
}
