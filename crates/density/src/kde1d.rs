//! Sorted-centre one-dimensional kernel estimator (paper Section 5.3).
//!
//! For one-dimensional data the paper improves the `O(|R|)` range query to
//! `O(log|R| + |R′|)` *"where R′ is the set of kernels that intersect the
//! query"*: keep the kernel centres sorted and binary-search for the ones
//! whose support overlaps `[lo − B, hi + B]`. Sensors spend almost all of
//! their query budget on `N(p, r)` calls (every arriving value triggers
//! one for D3 and `1/(2αr)` of them for MGDD), so this is the variant a
//! real deployment would run for scalar readings. The `kde_range_query`
//! benchmark compares it against the generic [`crate::Kde`].
//!
//! Like [`crate::Kde`], centres carry weights (all `1.0` until
//! [`Kde1d::compress_to_budget`] merges near-duplicates) and the
//! Epanechnikov hot path evaluates through the vectorised engine in
//! [`crate::eval`].

use snod_persist::{ByteReader, ByteWriter, Persist, PersistError};

use crate::eval;
use crate::kde::CompressionStats;
use crate::kernel::{EpanechnikovKernel, Kernel1d};
use crate::model::{check_dims, DensityModel};
use crate::{scott_bandwidth, DensityError};

/// One-dimensional KDE with sorted centres and support-pruned queries.
///
/// ```
/// use snod_density::{Kde1d, DensityModel};
/// let sample: Vec<f64> = (0..100).map(|i| 0.4 + 0.002 * (i as f64)).collect();
/// let kde = Kde1d::from_sample(&sample, 0.06, 10_000.0).unwrap();
/// let n = kde.neighborhood_count(&[0.5], 0.1).unwrap();
/// assert!(n > 8_000.0); // most of the window within ±0.1 of 0.5
/// ```
#[derive(Debug, Clone)]
pub struct Kde1d<K: Kernel1d = EpanechnikovKernel> {
    /// Kernel centres in ascending order.
    centers: Vec<f64>,
    /// Per-centre weights, parallel to `centers` (`1.0` until merged).
    weights: Vec<f64>,
    /// Cached `Σ weights`; the normaliser generalising `1/|R|`.
    total_weight: f64,
    /// Whether every weight is exactly `1.0` (true until a compression
    /// pass actually merges something). Lets the hot loop skip streaming
    /// the weight column — numerically invisible since `1.0 · m == m`.
    unit_weights: bool,
    bandwidth: f64,
    /// Cached `1/B` so the hot loop multiplies instead of divides.
    inv_bandwidth: f64,
    window_len: f64,
    kernel: K,
}

impl Kde1d<EpanechnikovKernel> {
    /// Builds an Epanechnikov estimator from an (unsorted) sample, deriving
    /// the bandwidth from `sigma` via the paper's rule with `d = 1`.
    pub fn from_sample(sample: &[f64], sigma: f64, window_len: f64) -> Result<Self, DensityError> {
        let bandwidth = scott_bandwidth(sigma, sample.len(), 1);
        Self::new(sample.to_vec(), bandwidth, window_len, EpanechnikovKernel)
    }

    /// Like [`Kde1d::from_sample`] but consumes the values straight from an
    /// iterator, so callers projecting a coordinate out of richer records
    /// (e.g. `window.iter().map(|v| v[0])`) need no intermediate `Vec`.
    pub fn from_sample_iter<I>(values: I, sigma: f64, window_len: f64) -> Result<Self, DensityError>
    where
        I: IntoIterator<Item = f64>,
    {
        let centers: Vec<f64> = values.into_iter().collect();
        let bandwidth = scott_bandwidth(sigma, centers.len(), 1);
        Self::new(centers, bandwidth, window_len, EpanechnikovKernel)
    }
}

impl<K: Kernel1d> Kde1d<K> {
    /// Builds an estimator with an explicit bandwidth and kernel; sorts the
    /// centres. Every centre starts with weight `1.0`.
    pub fn new(
        mut centers: Vec<f64>,
        bandwidth: f64,
        window_len: f64,
        kernel: K,
    ) -> Result<Self, DensityError> {
        if centers.is_empty() {
            return Err(DensityError::EmptySample);
        }
        if !(bandwidth > 0.0) {
            return Err(DensityError::NonPositiveParameter("bandwidth"));
        }
        if !(window_len > 0.0) {
            return Err(DensityError::NonPositiveParameter("window length"));
        }
        let _build = snod_obs::span!("density.kde1d.build");
        centers.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN centres"));
        let n = centers.len();
        Ok(Self {
            centers,
            weights: vec![1.0; n],
            total_weight: n as f64,
            unit_weights: true,
            bandwidth,
            inv_bandwidth: 1.0 / bandwidth,
            window_len,
            kernel,
        })
    }

    /// Number of kernels `|R|` (weighted representatives after
    /// compression; see [`Kde1d::total_weight`] for the sampled-point
    /// count).
    pub fn sample_size(&self) -> usize {
        self.centers.len()
    }

    /// The bandwidth `B`.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// The kernel centres in ascending order.
    pub fn centers(&self) -> &[f64] {
        &self.centers
    }

    /// Per-centre kernel weights, parallel to [`Kde1d::centers`].
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Total kernel weight `Σ wᵢ` — equal to the number of sampled points
    /// regardless of compression.
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// Merges a new weight-1 centre into the sorted array in
    /// `O(log|R| + shift)`.
    ///
    /// The bandwidth is deliberately **not** recomputed: under epoch-based
    /// maintenance the centres track the window exactly while the kernel
    /// widths stay at their last-rebuild values until the owner decides the
    /// drift warrants a full rebuild (see `snod-core`'s rebuild policy).
    pub fn insert_center(&mut self, x: f64) -> Result<(), DensityError> {
        if x.is_nan() {
            return Err(DensityError::NonFiniteValue("kernel centre"));
        }
        let i = self.centers.partition_point(|&c| c < x);
        self.centers.insert(i, x);
        self.weights.insert(i, 1.0);
        self.total_weight += 1.0;
        Ok(())
    }

    /// Removes one unit of weight from a centre equal to `x` in
    /// `O(log|R| + shift)`; returns whether one was found. A centre
    /// holding merged weight is decremented in place; a weight-1 centre
    /// is removed outright. Removing the last remaining centre is refused
    /// (returns `false`) so the estimator never becomes empty.
    pub fn remove_center(&mut self, x: f64) -> bool {
        let i = self.centers.partition_point(|&c| c < x);
        if i >= self.centers.len() || self.centers[i] != x {
            return false;
        }
        if self.weights[i] > 1.0 {
            self.weights[i] -= 1.0;
            self.total_weight -= 1.0;
            return true;
        }
        if self.centers.len() == 1 {
            return false;
        }
        self.centers.remove(i);
        self.total_weight -= self.weights.remove(i);
        true
    }

    /// Replaces the bandwidth (an epoch-boundary rebuild in place when the
    /// centres are already current).
    pub fn set_bandwidth(&mut self, bandwidth: f64) -> Result<(), DensityError> {
        if !(bandwidth > 0.0) {
            return Err(DensityError::NonPositiveParameter("bandwidth"));
        }
        self.bandwidth = bandwidth;
        self.inv_bandwidth = 1.0 / bandwidth;
        Ok(())
    }

    /// Replaces the window length `|W|` that scales probabilities into
    /// counts.
    pub fn set_window_len(&mut self, window_len: f64) -> Result<(), DensityError> {
        if !(window_len > 0.0) {
            return Err(DensityError::NonPositiveParameter("window length"));
        }
        self.window_len = window_len;
        Ok(())
    }

    /// Index range of centres whose kernel support intersects `[lo, hi]` —
    /// the `R′` of the paper's complexity claim.
    fn intersecting(&self, lo: f64, hi: f64) -> (usize, usize) {
        let reach = self.kernel.support();
        if reach.is_infinite() {
            return (0, self.centers.len());
        }
        let span = reach * self.bandwidth;
        let start = self.centers.partition_point(|&c| c < lo - span);
        let end = self.centers.partition_point(|&c| c <= hi + span);
        (start, end)
    }

    /// Number of kernels the query `[lo, hi]` touches (exposed so the
    /// complexity experiment can report `|R′|`).
    pub fn kernels_intersecting(&self, lo: f64, hi: f64) -> usize {
        let (s, e) = self.intersecting(lo, hi);
        e - s
    }

    /// Compresses the kernel set to at most `max(budget, 1)` weighted
    /// centres — the one-dimensional counterpart of
    /// [`crate::Kde::compress_to_budget`], with the same greedy
    /// consecutive-run merge, the same tolerance-doubling escalation, and
    /// the same exact preservation of total weight.
    pub fn compress_to_budget(&mut self, budget: usize, tolerance: f64) -> CompressionStats {
        let _span = snod_obs::span!("density.kde1d.compress");
        let before = self.centers.len();
        let budget = budget.max(1);
        let mut tol = if tolerance > 0.0 { tolerance } else { 0.0 };
        let mut passes = 0u32;
        let mut effective = 0.0;
        if tol > 0.0 && self.centers.len() > 1 {
            self.merge_within(tol);
            passes += 1;
            effective = tol;
        }
        while self.centers.len() > budget {
            tol = if !(tol > 0.0) {
                1e-3
            } else if passes >= 60 {
                f64::INFINITY
            } else {
                tol * 2.0
            };
            self.merge_within(tol);
            passes += 1;
            effective = tol;
        }
        let after = self.centers.len();
        snod_obs::counter!("density.compress.merged").add((before - after) as u64);
        snod_obs::counter!("density.compress.passes").add(passes as u64);
        CompressionStats {
            before,
            after,
            passes,
            effective_tolerance: effective,
        }
    }

    /// One greedy merge pass at radius `tol` (in bandwidth units).
    fn merge_within(&mut self, tol: f64) {
        let n = self.centers.len();
        if n <= 1 {
            return;
        }
        let thresh = tol * self.bandwidth;
        let mut out_c: Vec<f64> = Vec::new();
        let mut out_w: Vec<f64> = Vec::new();
        let mut i = 0usize;
        while i < n {
            let mut j = i + 1;
            while j < n && (self.centers[j] - self.centers[i]).abs() <= thresh {
                j += 1;
            }
            if j == i + 1 {
                out_c.push(self.centers[i]);
                out_w.push(self.weights[i]);
            } else {
                let wsum: f64 = self.weights[i..j].iter().sum();
                let num: f64 = (i..j).map(|k| self.weights[k] * self.centers[k]).sum();
                // Clamp into the (sorted) group hull so rounding can
                // never violate the sortedness invariant.
                out_c.push((num / wsum).max(self.centers[i]).min(self.centers[j - 1]));
                out_w.push(wsum);
            }
            i = j;
        }
        debug_assert!(out_c.windows(2).all(|w| w[0] <= w[1]));
        self.centers = out_c;
        self.total_weight = out_w.iter().sum();
        self.unit_weights = out_w.iter().all(|&w| w == 1.0);
        self.weights = out_w;
    }

    /// Un-normalised weighted interval mass over the pre-pruned centre
    /// range `[s, e)`. Every query path lands here — the bit-identity
    /// anchor between scalar and batched evaluation.
    fn interval_mass(&self, a: f64, b: f64, s: usize, e: usize) -> f64 {
        if self.kernel.is_epanechnikov() {
            if self.unit_weights {
                eval::epan_interval_unweighted(&self.centers, s, e, a, b, self.inv_bandwidth)
            } else {
                eval::epan_interval_weighted(
                    &self.centers,
                    &self.weights,
                    s,
                    e,
                    a,
                    b,
                    self.inv_bandwidth,
                )
            }
        } else {
            self.centers[s..e]
                .iter()
                .zip(&self.weights[s..e])
                .map(|(&c, &w)| {
                    w * self
                        .kernel
                        .mass((a - c) / self.bandwidth, (b - c) / self.bandwidth)
                })
                .sum()
        }
    }
}

impl<K: Kernel1d> DensityModel for Kde1d<K> {
    fn dims(&self) -> usize {
        1
    }

    fn window_len(&self) -> f64 {
        self.window_len
    }

    fn pdf(&self, x: &[f64]) -> Result<f64, DensityError> {
        check_dims(1, x)?;
        let x = x[0];
        let (s, e) = self.intersecting(x, x);
        let sum: f64 = self.centers[s..e]
            .iter()
            .zip(&self.weights[s..e])
            .map(|(&c, &w)| w * self.kernel.density((x - c) / self.bandwidth))
            .sum();
        Ok(sum / (self.total_weight * self.bandwidth))
    }

    fn box_prob(&self, lo: &[f64], hi: &[f64]) -> Result<f64, DensityError> {
        check_dims(1, lo)?;
        check_dims(1, hi)?;
        let (a, b) = (lo[0], hi[0]);
        if b <= a {
            return Ok(0.0);
        }
        let (s, e) = self.intersecting(a, b);
        snod_obs::counter!("density.scalar.queries").incr();
        snod_obs::counter!("density.scalar.kernels").add((e - s) as u64);
        Ok(self.interval_mass(a, b, s, e) / self.total_weight)
    }

    fn compress(&mut self, budget: usize, tolerance: f64) -> usize {
        let stats = self.compress_to_budget(budget, tolerance);
        stats.before - stats.after
    }

    /// Batched neighborhood counts. Large batches sort the queries and
    /// advance the support-pruning frontier `[s, e)` monotonically —
    /// `O(q·log q + |R| + Σ|R′|)`; small batches against large models
    /// skip the frontier walk and binary-search per query
    /// ([`eval::sweep_beats_per_query`]). Both paths derive identical
    /// centre ranges and share one evaluator, so the choice never changes
    /// a single output bit.
    fn neighborhood_counts(&self, points: &[f64], r: f64) -> Result<Vec<f64>, DensityError> {
        let mut out = vec![0.0; points.len()];
        if r <= 0.0 {
            // box_prob short-circuits degenerate intervals to zero mass.
            return Ok(out);
        }
        let _sweep = snod_obs::span!("density.kde1d.sweep");
        let reach = self.kernel.support();
        if reach.is_infinite() {
            // No pruning possible; every query touches every kernel.
            for (o, &p) in out.iter_mut().zip(points) {
                *o = self.box_prob(&[p - r], &[p + r])? * self.window_len;
            }
            return Ok(out);
        }
        let len = self.centers.len();
        if eval::sweep_beats_per_query(points.len(), len) {
            snod_obs::counter!("density.sweep.queries").add(points.len() as u64);
            let mut order: Vec<u32> = (0..points.len() as u32).collect();
            order.sort_unstable_by(|&a, &b| points[a as usize].total_cmp(&points[b as usize]));
            let span = reach * self.bandwidth;
            let kernels = snod_obs::counter!("density.sweep.kernels");
            let (mut s, mut e) = (0usize, 0usize);
            for &qi in &order {
                let p = points[qi as usize];
                let (a, b) = (p - r, p + r);
                while s < len && self.centers[s] < a - span {
                    s += 1;
                }
                while e < len && self.centers[e] <= b + span {
                    e += 1;
                }
                kernels.add((e - s) as u64);
                out[qi as usize] =
                    self.interval_mass(a, b, s, e) / self.total_weight * self.window_len;
            }
        } else {
            snod_obs::counter!("density.batch.per_query").add(points.len() as u64);
            let kernels = snod_obs::counter!("density.batch.kernels");
            for (o, &p) in out.iter_mut().zip(points) {
                let (a, b) = (p - r, p + r);
                let (s, e) = self.intersecting(a, b);
                kernels.add((e - s) as u64);
                *o = self.interval_mass(a, b, s, e) / self.total_weight * self.window_len;
            }
        }
        Ok(out)
    }
}

impl<K: Kernel1d + Default> Persist for Kde1d<K> {
    fn save(&self, w: &mut ByteWriter) {
        self.centers.save(w);
        self.weights.save(w);
        self.bandwidth.save(w);
        self.window_len.save(w);
    }

    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let centers = Vec::<f64>::load(r)?;
        let weights = Vec::<f64>::load(r)?;
        let bandwidth = f64::load(r)?;
        let window_len = f64::load(r)?;
        let corrupt = || PersistError::Corrupt("invalid kde1d parameters");
        // Loading bypasses the sorting constructor (weights must stay
        // aligned with their centres), so validate here instead.
        if centers.is_empty() || weights.len() != centers.len() {
            return Err(corrupt());
        }
        if centers.windows(2).any(|p| !(p[0] <= p[1])) {
            return Err(corrupt());
        }
        if weights.iter().any(|&w| !w.is_finite() || !(w > 0.0)) {
            return Err(corrupt());
        }
        if !(bandwidth > 0.0) || !(window_len > 0.0) {
            return Err(corrupt());
        }
        let total_weight = weights.iter().sum();
        let unit_weights = weights.iter().all(|&w| w == 1.0);
        Ok(Self {
            centers,
            weights,
            total_weight,
            unit_weights,
            bandwidth,
            inv_bandwidth: 1.0 / bandwidth,
            window_len,
            kernel: K::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kde::Kde;

    fn sample() -> Vec<f64> {
        (0..200).map(|i| ((i * 37) % 200) as f64 / 200.0).collect()
    }

    #[test]
    fn agrees_with_generic_kde() {
        let xs = sample();
        let pts: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
        let sigma = 0.28;
        let fast = Kde1d::from_sample(&xs, sigma, 1_000.0).unwrap();
        let slow = Kde::from_sample(&pts, &[sigma], 1_000.0).unwrap();
        for i in 0..=20 {
            let x = i as f64 / 20.0;
            let pf = fast.pdf(&[x]).unwrap();
            let ps = slow.pdf(&[x]).unwrap();
            assert!((pf - ps).abs() < 1e-12, "pdf mismatch at {x}: {pf} vs {ps}");
            let bf = fast.range_prob(&[x], 0.07).unwrap();
            let bs = slow.range_prob(&[x], 0.07).unwrap();
            assert!((bf - bs).abs() < 1e-12, "range mismatch at {x}");
        }
    }

    #[test]
    fn pruning_reduces_touched_kernels() {
        let xs: Vec<f64> = (0..10_000).map(|i| i as f64 / 10_000.0).collect();
        let kde = Kde1d::from_sample(&xs, 0.29, 10_000.0).unwrap();
        let touched = kde.kernels_intersecting(0.49, 0.51);
        assert!(touched < 10_000, "no pruning happened");
        assert!(touched > 0);
    }

    #[test]
    fn empty_interval_has_zero_mass() {
        let kde = Kde1d::from_sample(&sample(), 0.28, 100.0).unwrap();
        assert_eq!(kde.box_prob(&[0.5], &[0.5]).unwrap(), 0.0);
        assert_eq!(kde.box_prob(&[0.6], &[0.4]).unwrap(), 0.0);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let kde = Kde1d::from_sample(&[0.9, 0.1, 0.5], 0.3, 100.0).unwrap();
        // centres must be sorted internally for partition_point to work
        let p_all = kde.box_prob(&[-2.0], &[3.0]).unwrap();
        assert!((p_all - 1.0).abs() < 1e-12);
    }

    #[test]
    fn construction_validates_input() {
        assert!(Kde1d::from_sample(&[], 0.1, 100.0).is_err());
        assert!(Kde1d::new(vec![0.5], -0.1, 100.0, EpanechnikovKernel).is_err());
        assert!(Kde1d::new(vec![0.5], 0.1, -1.0, EpanechnikovKernel).is_err());
    }

    #[test]
    fn batched_counts_match_scalar_exactly() {
        let kde = Kde1d::from_sample(&sample(), 0.28, 2_000.0).unwrap();
        // Unsorted, duplicated and out-of-support queries.
        let queries = [0.93, 0.1, 0.1, -0.4, 0.5, 1.7, 0.02, 0.5001];
        for r in [0.01, 0.1, 0.35] {
            let batch = kde.neighborhood_counts(&queries, r).unwrap();
            for (i, &q) in queries.iter().enumerate() {
                let scalar = kde.neighborhood_count(&[q], r).unwrap();
                assert_eq!(batch[i], scalar, "q={q} r={r}");
            }
        }
        assert_eq!(kde.neighborhood_counts(&queries, 0.0).unwrap(), vec![0.0; 8]);
        assert!(kde.neighborhood_counts(&[], 0.1).unwrap().is_empty());
    }

    #[test]
    fn batched_counts_match_scalar_for_gaussian_kernel() {
        // Infinite support exercises the no-pruning fallback.
        let kde = Kde1d::new(
            vec![0.2, 0.5, 0.8],
            0.1,
            500.0,
            crate::kernel::GaussianKernel,
        )
        .unwrap();
        let queries = [0.9, 0.1, 0.55];
        let batch = kde.neighborhood_counts(&queries, 0.2).unwrap();
        for (i, &q) in queries.iter().enumerate() {
            let scalar = kde.neighborhood_count(&[q], 0.2).unwrap();
            assert_eq!(batch[i], scalar);
        }
    }

    #[test]
    fn insert_and_remove_maintain_sorted_centers() {
        let mut kde = Kde1d::from_sample(&[0.5, 0.1, 0.9], 0.3, 100.0).unwrap();
        kde.insert_center(0.4).unwrap();
        kde.insert_center(0.0).unwrap();
        kde.insert_center(1.2).unwrap();
        assert_eq!(kde.centers(), &[0.0, 0.1, 0.4, 0.5, 0.9, 1.2]);
        assert!(kde.remove_center(0.5));
        assert!(!kde.remove_center(0.5), "already gone");
        assert!(!kde.remove_center(0.77), "never present");
        assert_eq!(kde.centers(), &[0.0, 0.1, 0.4, 0.9, 1.2]);
        assert!(kde.insert_center(f64::NAN).is_err());
        // Removals stop before emptying the estimator.
        for x in [0.0, 0.1, 0.4, 0.9] {
            assert!(kde.remove_center(x));
        }
        assert!(!kde.remove_center(1.2));
        assert_eq!(kde.sample_size(), 1);
    }

    #[test]
    fn incrementally_built_model_matches_from_scratch() {
        let xs = sample();
        let mut inc = Kde1d::from_sample(&xs[..150], 0.28, 2_000.0).unwrap();
        for &x in &xs[150..] {
            inc.insert_center(x).unwrap();
        }
        for &x in &xs[..50] {
            assert!(inc.remove_center(x));
        }
        // Same centres, same bandwidth ⇒ identical queries.
        let scratch = Kde1d::new(xs[50..].to_vec(), inc.bandwidth(), 2_000.0, EpanechnikovKernel)
            .unwrap();
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            assert_eq!(
                inc.neighborhood_count(&[q], 0.1).unwrap(),
                scratch.neighborhood_count(&[q], 0.1).unwrap()
            );
        }
    }

    #[test]
    fn setters_validate_and_apply() {
        let mut kde = Kde1d::from_sample(&sample(), 0.28, 100.0).unwrap();
        assert!(kde.set_bandwidth(0.0).is_err());
        assert!(kde.set_window_len(-1.0).is_err());
        kde.set_bandwidth(0.5).unwrap();
        kde.set_window_len(400.0).unwrap();
        assert_eq!(kde.bandwidth(), 0.5);
        assert_eq!(kde.window_len(), 400.0);
    }

    #[test]
    fn from_sample_iter_matches_from_sample() {
        let xs = sample();
        let a = Kde1d::from_sample(&xs, 0.28, 1_000.0).unwrap();
        let b = Kde1d::from_sample_iter(xs.iter().copied(), 0.28, 1_000.0).unwrap();
        assert_eq!(a.bandwidth(), b.bandwidth());
        assert_eq!(a.centers(), b.centers());
    }

    #[test]
    fn neighborhood_count_counts_cluster() {
        // Sample mirrors a window where ~half the mass sits at 0.2.
        let mut xs = vec![0.2; 100];
        xs.extend(vec![0.8; 100]);
        let kde = Kde1d::from_sample(&xs, 0.3, 2_000.0).unwrap();
        let n = kde.neighborhood_count(&[0.2], 0.25).unwrap();
        assert!((n - 1_000.0).abs() < 150.0, "count {n}");
    }

    #[test]
    fn compression_merges_duplicates_into_weights() {
        // 100 copies of 0.2 and 100 of 0.8 collapse to two centres of
        // weight 100 each; queries are unchanged to the merge bound
        // (here: exactly, since every group is a single point).
        let mut xs = vec![0.2; 100];
        xs.extend(vec![0.8; 100]);
        let mut kde = Kde1d::from_sample(&xs, 0.3, 2_000.0).unwrap();
        let reference = kde.clone();
        let stats = kde.compress_to_budget(50, 1e-9);
        assert_eq!(kde.sample_size(), 2);
        assert_eq!(stats.before, 200);
        assert_eq!(stats.after, 2);
        assert_eq!(kde.total_weight(), 200.0);
        assert_eq!(kde.weights(), &[100.0, 100.0]);
        for q in [0.1, 0.2, 0.5, 0.8, 0.95] {
            let a = reference.neighborhood_count(&[q], 0.25).unwrap();
            let b = kde.neighborhood_count(&[q], 0.25).unwrap();
            assert!((a - b).abs() < 1e-9, "q={q}: {a} vs {b}");
        }
    }

    #[test]
    fn compressed_batch_matches_scalar_bit_for_bit() {
        let mut kde = Kde1d::from_sample(&sample(), 0.28, 2_000.0).unwrap();
        kde.compress_to_budget(40, 0.05);
        assert!(kde.sample_size() <= 40);
        assert!(kde.weights().iter().any(|&w| w > 1.0));
        let queries = [0.93, 0.1, 0.1, -0.4, 0.5, 1.7, 0.02, 0.5001];
        for r in [0.05, 0.2] {
            let batch = kde.neighborhood_counts(&queries, r).unwrap();
            for (i, &q) in queries.iter().enumerate() {
                assert_eq!(batch[i], kde.neighborhood_count(&[q], r).unwrap());
            }
        }
        // Mass axiom survives compression.
        let p = kde.box_prob(&[-5.0], &[5.0]).unwrap();
        assert!((p - 1.0).abs() < 1e-12);
    }
}
