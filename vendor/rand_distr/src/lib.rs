//! Offline API-compatible subset of `rand_distr` 0.4.
//!
//! Provides exactly the surface this workspace uses: the
//! [`Distribution`] trait (re-exported from the vendored `rand`) and a
//! [`Normal`] distribution over `f64`. Sampling uses the polar
//! Box–Muller transform rather than upstream's ziggurat tables, so the
//! *stream* differs from crates.io `rand_distr` while the distribution
//! (and per-seed determinism) is the same. See `vendor/README.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rand::distributions::Distribution;
use rand::{Rng, RngCore};

/// Error type for invalid [`Normal`] parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    /// The mean was NaN.
    MeanTooSmall,
    /// The standard deviation was negative or NaN.
    BadVariance,
}

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NormalError::MeanTooSmall => write!(f, "mean of normal distribution is NaN"),
            NormalError::BadVariance => {
                write!(f, "standard deviation of normal distribution is not finite and >= 0")
            }
        }
    }
}

impl std::error::Error for NormalError {}

/// Normal (Gaussian) distribution with given mean and standard deviation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal<F> {
    mean: F,
    std_dev: F,
}

impl Normal<f64> {
    /// Builds a normal distribution; `std_dev` must be finite and `>= 0`
    /// (a zero deviation degenerates to a point mass, as upstream allows).
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if mean.is_nan() {
            return Err(NormalError::MeanTooSmall);
        }
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(NormalError::BadVariance);
        }
        Ok(Normal { mean, std_dev })
    }

    /// The configured mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The configured standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

impl Distribution<f64> for Normal<f64> {
    fn sample<R: RngCore>(&self, rng: &mut R) -> f64 {
        // Polar Box–Muller: draw (u, v) uniform on [-1, 1)² until inside
        // the unit disc, then map the radius through the Gaussian CDF
        // inverse. Rejection keeps the draw exact; each attempt consumes
        // exactly two 64-bit words, so the stream stays deterministic.
        loop {
            let u = 2.0 * rng.gen::<f64>() - 1.0;
            let v = 2.0 * rng.gen::<f64>() - 1.0;
            let s = u * u + v * v;
            if s >= 1.0 || s == 0.0 {
                continue;
            }
            let factor = (-2.0 * s.ln() / s).sqrt();
            return self.mean + self.std_dev * (u * factor);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, f64::NAN).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
        assert!(Normal::new(3.0, 0.0).is_ok());
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let n = Normal::new(1.0, 2.0).unwrap();
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(n.sample(&mut a), n.sample(&mut b));
        }
    }

    #[test]
    fn moments_are_approximately_right() {
        let n = Normal::new(-0.5, 1.5).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let draws: Vec<f64> = (0..40_000).map(|_| n.sample(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
            / (draws.len() - 1) as f64;
        assert!((mean - -0.5).abs() < 0.03, "mean {mean}");
        assert!((var - 2.25).abs() < 0.08, "var {var}");
    }

    #[test]
    fn zero_std_dev_is_a_point_mass() {
        let n = Normal::new(4.0, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..8 {
            assert_eq!(n.sample(&mut rng), 4.0);
        }
    }
}
