//! Observability substrate for the snod crates: structured timing spans
//! and a lock-free metrics registry (counters, gauges and HDR-style
//! log-linear histograms).
//!
//! # Design constraints (DESIGN.md §9)
//!
//! * **Zero off-path cost.** Everything here is compiled out unless the
//!   `enabled` cargo feature is on. [`enabled`] is a `const fn`, so the
//!   `if snod_obs::enabled()` branches the [`counter!`]/[`span!`] macros
//!   expand to fold away entirely in disabled builds — call sites in the
//!   library crates never need `#[cfg]` attributes of their own.
//! * **Lock-free hot path.** Handles point at leaked, `'static` atomic
//!   cells; recording is a relaxed `fetch_add`. The registry mutex is
//!   only taken when a call site first materialises its handle (the
//!   macros cache handles in a `OnceLock`, so that happens once per call
//!   site per process).
//! * **Determinism.** Instrumentation only *reads* simulation state and
//!   increments process-global atomics. It never draws randomness, never
//!   advances simulated time, and never feeds anything back into the
//!   code under observation, so a run is bit-identical with the feature
//!   on or off (`tests/obs_determinism.rs` in the workspace root proves
//!   it). Wall-clock timestamps ([`std::time::Instant`]) are taken only
//!   for span histograms and never influence control flow.
//!
//! # Naming
//!
//! Metric names are dot-separated paths, `crate.component.event`
//! (e.g. `density.sweep.queries`, `simnet.radio.dropped`). Span
//! histograms record nanoseconds and use the same scheme with a verb
//! leaf (e.g. `core.model.rebuild`). See DESIGN.md §9 for the taxonomy.
//!
//! ```
//! let c = snod_obs::counter!("doc.example.events");
//! c.add(3);
//! {
//!     let _span = snod_obs::span!("doc.example.work");
//!     // ... timed region ...
//! }
//! let snap = snod_obs::snapshot();
//! # let _ = snap.to_json();
//! ```

#[cfg(feature = "enabled")]
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
#[cfg(feature = "enabled")]
use std::sync::{Mutex, OnceLock};
#[cfg(feature = "enabled")]
use std::time::Instant;

/// Whether instrumentation is compiled into this build. `const`, so
/// disabled-path branches are removed by the compiler.
pub const fn enabled() -> bool {
    cfg!(feature = "enabled")
}

// ------------------------------------------------------------ registry --

#[cfg(feature = "enabled")]
struct Registry {
    counters: Mutex<Vec<(String, &'static AtomicU64)>>,
    gauges: Mutex<Vec<(String, &'static AtomicU64)>>,
    histograms: Mutex<Vec<(String, &'static HistCells)>>,
    /// Runtime kill-switch (used by the determinism test); collection
    /// defaults to on when compiled in.
    active: AtomicBool,
}

#[cfg(feature = "enabled")]
fn registry() -> &'static Registry {
    static REG: OnceLock<Registry> = OnceLock::new();
    REG.get_or_init(|| Registry {
        counters: Mutex::new(Vec::new()),
        gauges: Mutex::new(Vec::new()),
        histograms: Mutex::new(Vec::new()),
        active: AtomicBool::new(true),
    })
}

#[cfg(feature = "enabled")]
fn find_or_insert<T: ?Sized>(
    table: &Mutex<Vec<(String, &'static T)>>,
    name: &str,
    make: impl FnOnce() -> &'static T,
) -> &'static T {
    let mut t = table.lock().expect("obs registry poisoned");
    if let Some((_, cell)) = t.iter().find(|(n, _)| n == name) {
        cell
    } else {
        let cell = make();
        t.push((name.to_string(), cell));
        cell
    }
}

/// Runtime toggle for collection (compiled-in builds only; a no-op
/// otherwise). Collection starts enabled.
pub fn set_active(on: bool) {
    #[cfg(feature = "enabled")]
    registry().active.store(on, Ordering::Relaxed);
    #[cfg(not(feature = "enabled"))]
    let _ = on;
}

/// Whether collection is compiled in *and* runtime-active.
#[inline]
pub fn is_active() -> bool {
    #[cfg(feature = "enabled")]
    {
        registry().active.load(Ordering::Relaxed)
    }
    #[cfg(not(feature = "enabled"))]
    false
}

// ------------------------------------------------------------- counter --

/// Monotonic event counter. Copyable handle to a `'static` cell.
#[derive(Clone, Copy)]
pub struct Counter {
    #[cfg(feature = "enabled")]
    cell: &'static AtomicU64,
}

impl Counter {
    /// Registers (or re-acquires) the counter called `name`.
    pub fn named(name: &str) -> Self {
        #[cfg(feature = "enabled")]
        {
            let cell = find_or_insert(&registry().counters, name, || {
                Box::leak(Box::new(AtomicU64::new(0)))
            });
            Counter { cell }
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = name;
            Counter {}
        }
    }

    /// A handle that records nothing (what [`counter!`] expands to in
    /// disabled builds).
    pub fn null() -> Self {
        #[cfg(feature = "enabled")]
        {
            static NULL: AtomicU64 = AtomicU64::new(0);
            Counter { cell: &NULL }
        }
        #[cfg(not(feature = "enabled"))]
        Counter {}
    }

    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(feature = "enabled")]
        if is_active() {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = n;
    }

    /// Current value (0 in disabled builds).
    pub fn get(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.cell.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "enabled"))]
        0
    }
}

// --------------------------------------------------------------- gauge --

/// Last-write-wins (or high-water-mark) value.
#[derive(Clone, Copy)]
pub struct Gauge {
    #[cfg(feature = "enabled")]
    cell: &'static AtomicU64,
}

impl Gauge {
    pub fn named(name: &str) -> Self {
        #[cfg(feature = "enabled")]
        {
            let cell = find_or_insert(&registry().gauges, name, || {
                Box::leak(Box::new(AtomicU64::new(0)))
            });
            Gauge { cell }
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = name;
            Gauge {}
        }
    }

    pub fn null() -> Self {
        #[cfg(feature = "enabled")]
        {
            static NULL: AtomicU64 = AtomicU64::new(0);
            Gauge { cell: &NULL }
        }
        #[cfg(not(feature = "enabled"))]
        Gauge {}
    }

    #[inline]
    pub fn set(&self, v: u64) {
        #[cfg(feature = "enabled")]
        if is_active() {
            self.cell.store(v, Ordering::Relaxed);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = v;
    }

    /// Raises the gauge to `v` if `v` is larger (high-water mark).
    #[inline]
    pub fn record_max(&self, v: u64) {
        #[cfg(feature = "enabled")]
        if is_active() {
            self.cell.fetch_max(v, Ordering::Relaxed);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = v;
    }

    pub fn get(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.cell.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "enabled"))]
        0
    }
}

// ----------------------------------------------------------- histogram --

/// Log-linear bucket layout (HDR-histogram style): `1 << SUB_BITS`
/// linear sub-buckets per power of two, giving a worst-case relative
/// error of `2^-SUB_BITS` (12.5%) on any recorded value while covering
/// the full `u64` range in [`BUCKETS`] cells.
const SUB_BITS: u32 = 3;
const SUB: u64 = 1 << SUB_BITS;
/// Number of buckets needed to cover `0..=u64::MAX`.
pub const BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUB as usize;

// Only the enabled histogram path (and the layout test) use the bucket
// mapping; keep it compiled under both settings so the test covers it.
#[cfg_attr(not(feature = "enabled"), allow(dead_code))]
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as u64;
        let shift = msb - SUB_BITS as u64;
        let sub = (v >> shift) - SUB;
        ((shift + 1) * SUB + sub) as usize
    }
}

/// Smallest value mapping to bucket `i` (the quantile estimate the
/// snapshot reports — a conservative lower bound).
#[cfg_attr(not(feature = "enabled"), allow(dead_code))]
fn bucket_floor(i: usize) -> u64 {
    if i < SUB as usize {
        i as u64
    } else {
        let shift = (i / SUB as usize - 1) as u32;
        (SUB + (i % SUB as usize) as u64) << shift
    }
}

#[cfg(feature = "enabled")]
struct HistCells {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: Vec<AtomicU64>,
}

#[cfg(feature = "enabled")]
impl HistCells {
    fn new() -> Self {
        HistCells {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// Histogram of `u64` observations (span histograms record
/// nanoseconds). Copyable handle.
#[derive(Clone, Copy)]
pub struct Histogram {
    #[cfg(feature = "enabled")]
    cells: &'static HistCells,
}

impl Histogram {
    pub fn named(name: &str) -> Self {
        #[cfg(feature = "enabled")]
        {
            let cells = find_or_insert(&registry().histograms, name, || {
                Box::leak(Box::new(HistCells::new()))
            });
            Histogram { cells }
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = name;
            Histogram {}
        }
    }

    pub fn null() -> Self {
        #[cfg(feature = "enabled")]
        {
            static NULL: OnceLock<&'static HistCells> = OnceLock::new();
            Histogram {
                cells: NULL.get_or_init(|| Box::leak(Box::new(HistCells::new()))),
            }
        }
        #[cfg(not(feature = "enabled"))]
        Histogram {}
    }

    #[inline]
    pub fn record(&self, v: u64) {
        #[cfg(feature = "enabled")]
        if is_active() {
            self.cells.count.fetch_add(1, Ordering::Relaxed);
            self.cells.sum.fetch_add(v, Ordering::Relaxed);
            self.cells.max.fetch_max(v, Ordering::Relaxed);
            self.cells.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = v;
    }

    /// Starts a timing span that records its elapsed nanoseconds into
    /// this histogram when dropped.
    #[inline]
    pub fn start(&self) -> SpanGuard {
        #[cfg(feature = "enabled")]
        {
            SpanGuard {
                inner: is_active().then(|| (*self, Instant::now())),
            }
        }
        #[cfg(not(feature = "enabled"))]
        SpanGuard {}
    }

    /// Times `f`, recording its wall-clock nanoseconds.
    #[inline]
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        let _guard = self.start();
        f()
    }
}

/// RAII timing span; records into its histogram on drop. Bind it to a
/// named variable (`let _span = ...`), not `_`, or it drops immediately.
#[must_use = "a span records on drop; binding to _ times nothing"]
pub struct SpanGuard {
    #[cfg(feature = "enabled")]
    inner: Option<(Histogram, Instant)>,
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        #[cfg(feature = "enabled")]
        if let Some((h, t0)) = self.inner.take() {
            h.record(t0.elapsed().as_nanos() as u64);
        }
    }
}

// -------------------------------------------------------------- macros --

/// Cached [`Counter`] handle for a static name; ≈ one relaxed atomic
/// load per use once initialised, and nothing at all in disabled builds.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        if $crate::enabled() {
            static __SNOD_OBS: ::std::sync::OnceLock<$crate::Counter> =
                ::std::sync::OnceLock::new();
            *__SNOD_OBS.get_or_init(|| $crate::Counter::named($name))
        } else {
            $crate::Counter::null()
        }
    }};
}

/// Cached [`Gauge`] handle for a static name.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        if $crate::enabled() {
            static __SNOD_OBS: ::std::sync::OnceLock<$crate::Gauge> =
                ::std::sync::OnceLock::new();
            *__SNOD_OBS.get_or_init(|| $crate::Gauge::named($name))
        } else {
            $crate::Gauge::null()
        }
    }};
}

/// Cached [`Histogram`] handle for a static name.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        if $crate::enabled() {
            static __SNOD_OBS: ::std::sync::OnceLock<$crate::Histogram> =
                ::std::sync::OnceLock::new();
            *__SNOD_OBS.get_or_init(|| $crate::Histogram::named($name))
        } else {
            $crate::Histogram::null()
        }
    }};
}

/// Opens a timing span recording into the histogram `$name`; returns a
/// [`SpanGuard`] that records on drop.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::histogram!($name).start()
    };
}

// ------------------------------------------------------------ snapshot --

/// Point-in-time export of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    pub name: String,
    /// Observations recorded.
    pub count: u64,
    /// Sum of recorded values (ns for span histograms).
    pub sum: u64,
    /// Largest recorded value (exact).
    pub max: u64,
    /// Quantile lower bounds (≤ 12.5% relative error).
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Mean recorded value, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Point-in-time export of every registered metric, sorted by name so
/// the serialised form is deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, u64)>,
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Value of a counter by name, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// A histogram by name, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Whether nothing was registered (always true in disabled builds).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Hand-rolled JSON encoding (the workspace pins no JSON crate).
    /// Shape:
    /// `{"counters": {name: u64, ...}, "gauges": {...},
    ///   "histograms": {name: {"count": .., "sum": .., "max": ..,
    ///                         "p50": .., "p90": .., "p99": ..}, ...}}`
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (n, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            out.push_str(&format!("{sep}\n    \"{}\": {v}", esc(n)));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (n, v)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            out.push_str(&format!("{sep}\n    \"{}\": {v}", esc(n)));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, h) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            out.push_str(&format!(
                "{sep}\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"max\": {}, \
                 \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                esc(&h.name),
                h.count,
                h.sum,
                h.max,
                h.p50,
                h.p90,
                h.p99
            ));
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

/// Snapshots every registered metric. Empty in disabled builds.
pub fn snapshot() -> MetricsSnapshot {
    #[cfg(feature = "enabled")]
    {
        let reg = registry();
        let mut counters: Vec<(String, u64)> = reg
            .counters
            .lock()
            .expect("obs registry poisoned")
            .iter()
            .map(|(n, c)| (n.clone(), c.load(Ordering::Relaxed)))
            .collect();
        counters.sort();
        let mut gauges: Vec<(String, u64)> = reg
            .gauges
            .lock()
            .expect("obs registry poisoned")
            .iter()
            .map(|(n, c)| (n.clone(), c.load(Ordering::Relaxed)))
            .collect();
        gauges.sort();
        let mut histograms: Vec<HistogramSnapshot> = reg
            .histograms
            .lock()
            .expect("obs registry poisoned")
            .iter()
            .map(|(n, cells)| {
                let count = cells.count.load(Ordering::Relaxed);
                let counts: Vec<u64> =
                    cells.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
                let q = |p: f64| -> u64 {
                    let target = (count as f64 * p).ceil() as u64;
                    let mut seen = 0u64;
                    for (i, &c) in counts.iter().enumerate() {
                        seen += c;
                        if seen >= target && c > 0 {
                            return bucket_floor(i);
                        }
                    }
                    0
                };
                HistogramSnapshot {
                    name: n.clone(),
                    count,
                    sum: cells.sum.load(Ordering::Relaxed),
                    max: cells.max.load(Ordering::Relaxed),
                    p50: q(0.50),
                    p90: q(0.90),
                    p99: q(0.99),
                }
            })
            .collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
    #[cfg(not(feature = "enabled"))]
    MetricsSnapshot::default()
}

/// Zeroes every registered metric (bench binaries call this between
/// phases to attribute counts per phase). Handles stay valid.
pub fn reset() {
    #[cfg(feature = "enabled")]
    {
        let reg = registry();
        for (_, c) in reg.counters.lock().expect("obs registry poisoned").iter() {
            c.store(0, Ordering::Relaxed);
        }
        for (_, g) in reg.gauges.lock().expect("obs registry poisoned").iter() {
            g.store(0, Ordering::Relaxed);
        }
        for (_, h) in reg.histograms.lock().expect("obs registry poisoned").iter() {
            h.count.store(0, Ordering::Relaxed);
            h.sum.store(0, Ordering::Relaxed);
            h.max.store(0, Ordering::Relaxed);
            for b in &h.buckets {
                b.store(0, Ordering::Relaxed);
            }
        }
    }
}

// --------------------------------------------------------------- tests --

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_contiguous_and_monotone() {
        // Every index from 0..BUCKETS is hit, floors are non-decreasing,
        // and a value always lands in a bucket whose floor is ≤ it.
        let mut prev_floor = 0;
        for i in 0..BUCKETS {
            let f = bucket_floor(i);
            assert!(f >= prev_floor, "floor regressed at {i}");
            assert_eq!(bucket_index(f), i, "floor of {i} maps elsewhere");
            prev_floor = f;
        }
        for v in [0u64, 1, 7, 8, 9, 1_000, 123_456_789, u64::MAX] {
            let i = bucket_index(v);
            assert!(i < BUCKETS);
            assert!(bucket_floor(i) <= v);
        }
    }

    // One test covers registration, snapshots and the runtime
    // kill-switch: `set_active` is process-global, so splitting these
    // into parallel #[test]s would race.
    #[cfg(feature = "enabled")]
    #[test]
    fn registry_roundtrip_and_kill_switch() {
        let c = Counter::named("test.obs.inactive");
        set_active(false);
        c.incr();
        set_active(true);
        assert_eq!(c.get(), 0);
        c.incr();
        assert_eq!(c.get(), 1);

        let c = Counter::named("test.obs.counter");
        let before = c.get();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), before + 5);
        assert_eq!(Counter::named("test.obs.counter").get(), before + 5);

        let h = Histogram::named("test.obs.hist");
        for v in [10u64, 20, 30, 1_000] {
            h.record(v);
        }
        let snap = snapshot();
        assert!(snap.counter("test.obs.counter").unwrap() >= 5);
        let hs = snap.histogram("test.obs.hist").unwrap();
        assert!(hs.count >= 4);
        assert!(hs.max >= 1_000);
        assert!(hs.p50 <= hs.p90 && hs.p90 <= hs.p99 && hs.p99 <= hs.max);
        assert!(snap.to_json().contains("\"test.obs.counter\""));
    }

    #[test]
    fn disabled_build_is_inert() {
        // Valid under both feature settings; in disabled builds the
        // handles are zero-sized and the snapshot is empty.
        let c = counter!("test.obs.macro");
        c.incr();
        let _g = gauge!("test.obs.gauge");
        let s = span!("test.obs.span");
        drop(s);
        if !enabled() {
            assert!(snapshot().is_empty());
            assert_eq!(c.get(), 0);
        }
    }
}
