//! Per-phase metrics attribution for the figure binaries.
//!
//! The obs registry is process-global, so a binary that wants to report
//! "what did phase X cost" brackets each phase with [`phase`]: reset the
//! registry, run the phase, snapshot. The snapshots are then written
//! next to the figure's table by [`write_phases`] as a single JSON
//! object keyed by phase name, the shape DESIGN.md §9 documents and the
//! CI schema check validates.
//!
//! With the `obs` feature off every snapshot is empty but the file is
//! still written (valid JSON, all-empty sections), so downstream
//! scripts never have to special-case disabled builds.

use snod_obs::MetricsSnapshot;

/// Runs `f` against a zeroed metrics registry and returns its result
/// together with everything the phase recorded.
///
/// Phases must not overlap (the registry is global); run them back to
/// back. Wall-clock span histograms recorded inside `f` are attributed
/// to this phase only.
pub fn phase<R>(f: impl FnOnce() -> R) -> (R, MetricsSnapshot) {
    snod_obs::reset();
    let out = f();
    (out, snod_obs::snapshot())
}

/// Serialises named phase snapshots as one JSON object
/// (`{"<phase>": <MetricsSnapshot>, ...}`) to `path`.
pub fn write_phases(
    path: &str,
    phases: &[(String, MetricsSnapshot)],
) -> std::io::Result<()> {
    let mut out = String::from("{");
    for (i, (name, snap)) in phases.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let esc = name.replace('\\', "\\\\").replace('"', "\\\"");
        out.push_str(&format!("{sep}\n\"{esc}\": "));
        // MetricsSnapshot::to_json ends with a newline; trim so the
        // enclosing object stays tidy.
        out.push_str(snap.to_json().trim_end());
    }
    out.push_str("\n}\n");
    std::fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_file_is_well_formed() {
        let (value, snap) = phase(|| {
            snod_obs::counter!("bench.obs_report.test").add(3);
            41 + 1
        });
        assert_eq!(value, 42);
        if snod_obs::enabled() {
            assert_eq!(snap.counter("bench.obs_report.test"), Some(3));
        }
        let path = std::env::temp_dir().join("snod_obs_report_test.json");
        let path = path.to_string_lossy().into_owned();
        write_phases(&path, &[("warm".into(), snap.clone()), ("hot".into(), snap)]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"warm\"") && text.contains("\"hot\""), "{text}");
        assert!(text.trim_start().starts_with('{') && text.trim_end().ends_with('}'));
        std::fs::remove_file(&path).ok();
    }
}
