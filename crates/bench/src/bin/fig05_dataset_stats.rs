//! **Figure 5**: statistical characteristics of the real datasets
//! (min / max / mean / median / stddev / skew).
//!
//! The paper's engine and Pacific-Northwest datasets are proprietary;
//! this binary prints the same table for our calibrated generators next
//! to the paper's published values, which is the calibration check for
//! the Figure 10 experiments.

use snod_bench::report::Table;
use snod_data::{per_dimension_stats, DataStream, EngineStream, EnvironmentStream};
use snod_sketch::DatasetStats;

fn row(t: &mut Table, name: &str, s: &DatasetStats) {
    t.row([
        name.to_string(),
        format!("{:.3}", s.min),
        format!("{:.3}", s.max),
        format!("{:.3}", s.mean),
        format!("{:.3}", s.median),
        format!("{:.3}", s.std_dev),
        format!("{:.3}", s.skew),
    ]);
}

fn paper_row(t: &mut Table, name: &str, v: [f64; 6]) {
    t.row([
        name.to_string(),
        format!("{:.3}", v[0]),
        format!("{:.3}", v[1]),
        format!("{:.3}", v[2]),
        format!("{:.3}", v[3]),
        format!("{:.3}", v[4]),
        format!("{:.3}", v[5]),
    ]);
}

fn main() {
    let mut engine = EngineStream::new(42);
    let engine_vals: Vec<Vec<f64>> = engine.take_readings(50_000);
    let engine_stats = per_dimension_stats(&engine_vals).expect("non-empty");

    let mut env = EnvironmentStream::new(42);
    let env_vals: Vec<Vec<f64>> = env.take_readings(35_000);
    let env_stats = per_dimension_stats(&env_vals).expect("non-empty");

    let mut t = Table::new(["Dataset", "Min", "Max", "Mean", "Median", "StdDev", "Skew"]);
    row(&mut t, "Engine (ours)", &engine_stats[0]);
    paper_row(
        &mut t,
        "Engine (paper)",
        [0.020, 0.427, 0.410, 0.419, 0.053, -6.844],
    );
    row(&mut t, "Pressure (ours)", &env_stats[0]);
    paper_row(
        &mut t,
        "Pressure (paper)",
        [0.422, 0.848, 0.677, 0.681, 0.063, -0.399],
    );
    row(&mut t, "Dew-point (ours)", &env_stats[1]);
    paper_row(
        &mut t,
        "Dew-point (paper)",
        [0.113, 0.282, 0.213, 0.212, 0.027, -0.182],
    );

    println!("Figure 5 — statistical characteristics of the (calibrated) real datasets");
    println!("{}", t.render());
}
