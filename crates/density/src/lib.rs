//! # snod-density — non-parametric distribution approximation
//!
//! The central contribution of the VLDB'06 paper is a *"general and
//! flexible data distribution approximation framework that does not
//! require a priori knowledge about the input distribution"*. This crate
//! is that framework:
//!
//! * [`EpanechnikovKernel`] (plus Gaussian and uniform alternatives) — the
//!   kernel functions of Section 4, with closed-form CDFs so that range
//!   queries integrate exactly.
//! * [`scott_bandwidth`] — the paper's bandwidth rule
//!   `Bᵢ = √5 · σᵢ · |R|^(−1/(d+4))`.
//! * [`Kde`] — the d-dimensional product-kernel estimator of Equation 1,
//!   answering `P[p−r, p+r]` (Equation 5) and the neighborhood count
//!   `N(p,r) = P(p,r)·|W|` (Equation 4) in `O(d|R|)` (Theorem 2).
//! * [`Kde1d`] — the sorted-centre one-dimensional variant whose range
//!   query costs `O(log|R| + |R′|)` where `R′` are the kernels that
//!   intersect the query (Section 5.3).
//! * [`EquiDepthHistogram`] / [`GridHistogram`] — the histogram baseline
//!   of Section 10 (with `|B| = |R|` buckets for comparable memory).
//! * [`js_divergence_models`] — the Jensen–Shannon divergence between two
//!   estimator models on a finite grid (Equations 7–8), used to measure
//!   estimation accuracy (Figure 6), to decide when a parent's model has
//!   changed enough to re-broadcast (Section 8.1), and to flag faulty
//!   sensors (Section 9).
//!
//! All models implement the [`DensityModel`] trait so the outlier
//! detectors are agnostic to the estimator in use.

// `deny` rather than `forbid`: the explicit AVX2 module (behind the
// `simd` feature) is the one sanctioned `allow(unsafe_code)` scope.
#![deny(unsafe_code)]
#![warn(missing_docs)]
// `!(x > 0.0)` is deliberate throughout: unlike `x <= 0.0` it also
// rejects NaN parameters, which must never enter a model.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

mod bandwidth;
mod divergence;
mod eval;
mod grid;
mod histogram;
mod kde;
mod kde1d;
mod kernel;
mod model;
#[cfg(all(feature = "simd", target_arch = "x86_64", target_feature = "avx2"))]
#[allow(unsafe_code)]
mod simd;
mod wavelet;

pub use bandwidth::{scott_bandwidth, scott_bandwidths};
pub use divergence::{js_divergence, js_divergence_models, kl_divergence};
pub use grid::GridDiscretization;
pub use histogram::{EquiDepthHistogram, GridHistogram};
pub use kde::{CompressionStats, Kde};
pub use kde1d::Kde1d;
pub use kernel::{EpanechnikovKernel, GaussianKernel, Kernel1d, UniformKernel};
pub use model::DensityModel;
pub use wavelet::WaveletHistogram;

/// Errors produced while building density models.
#[derive(Debug, Clone, PartialEq)]
pub enum DensityError {
    /// The sample used to build the estimator was empty.
    EmptySample,
    /// A point had the wrong number of coordinates.
    DimensionMismatch {
        /// Dimensionality the model was built with.
        expected: usize,
        /// Dimensionality of the offending input.
        got: usize,
    },
    /// A bandwidth, window length or bucket count was not positive.
    NonPositiveParameter(&'static str),
    /// The flattened sample length was not a multiple of the dimensionality.
    RaggedSample,
    /// A value that must be a real number (e.g. a kernel centre handed to
    /// an incremental update) was NaN.
    NonFiniteValue(&'static str),
}

impl std::fmt::Display for DensityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DensityError::EmptySample => write!(f, "sample must not be empty"),
            DensityError::DimensionMismatch { expected, got } => {
                write!(f, "expected {expected}-dimensional point, got {got}")
            }
            DensityError::NonPositiveParameter(p) => write!(f, "{p} must be positive"),
            DensityError::RaggedSample => {
                write!(
                    f,
                    "flattened sample length must be a multiple of the dimensionality"
                )
            }
            DensityError::NonFiniteValue(p) => write!(f, "{p} must not be NaN"),
        }
    }
}

impl std::error::Error for DensityError {}
