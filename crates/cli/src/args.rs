//! Hand-rolled argument parsing for the `snod` binary.

use std::fmt;

/// Which subcommand to run.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Stream outlier detection over CSV input.
    Detect(DetectArgs),
    /// Per-dimension dataset statistics.
    Stats(StatsArgs),
    /// Distributed simulation over a synthetic hierarchy.
    Simulate(SimulateArgs),
    /// Long-lived multi-tenant ingestion daemon.
    Serve(ServeArgs),
    /// Stream a recorded trace into a running daemon.
    Client(ClientArgs),
    /// Self-contained synthetic demo.
    Demo,
    /// Print usage.
    Help,
}

/// Arguments of `snod serve`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// Ingestion listener address.
    pub addr: String,
    /// Metrics/health HTTP listener address (off when absent).
    pub metrics_addr: Option<String>,
    /// Per-tenant checkpoint directory (durability off when absent).
    pub checkpoint_dir: Option<String>,
    /// Leaf sensors per tenant.
    pub leaves: usize,
    /// Hierarchy fan-outs above the leaves, comma-separated.
    pub fanouts: Vec<usize>,
    /// Sliding window `|W|` per node.
    pub window: usize,
    /// Chain-sample size `|R|`.
    pub sample: Option<usize>,
    /// Distance rule radius `r`.
    pub radius: f64,
    /// Distance rule neighbor threshold `t`.
    pub neighbors: f64,
    /// Bounded per-tenant queue capacity.
    pub queue: usize,
    /// Detector backend every tenant runs: "d3", "mmdew" or "fqn".
    pub detector: String,
}

impl Default for ServeArgs {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7433".into(),
            metrics_addr: None,
            checkpoint_dir: None,
            leaves: 1,
            fanouts: Vec::new(),
            window: 256,
            sample: None,
            radius: 0.02,
            neighbors: 10.0,
            queue: 256,
            detector: "d3".into(),
        }
    }
}

/// Arguments of `snod client`.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientArgs {
    /// Daemon address.
    pub addr: String,
    /// Tenant name to stream as.
    pub tenant: String,
    /// Recorded reading trace (CSV, from `snod simulate --record`).
    pub replay: String,
    /// Subscribe to live escalation frames and print them as they
    /// arrive.
    pub follow: bool,
}

/// Arguments of `snod simulate`.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulateArgs {
    /// Leaf sensor count.
    pub leaves: usize,
    /// Readings per leaf.
    pub readings: u64,
    /// Detector backend: "d3", "mgdd", "mmdew", "fqn" or "centralized".
    /// (`--detector` and `--algorithm` are interchangeable spellings.)
    pub algorithm: String,
    /// Sample-propagation fraction `f`.
    pub fraction: f64,
    /// Message-loss probability.
    pub loss: f64,
    /// Write a JSON metrics snapshot here after the run.
    pub metrics_out: Option<String>,
    /// Write a checkpoint of the run to this file (d3/mgdd only).
    pub checkpoint_out: Option<String>,
    /// With `checkpoint_out`: snapshot after this many readings per
    /// leaf instead of at the end, then continue to completion.
    pub checkpoint_at: Option<u64>,
    /// Restore this checkpoint before the run; the remaining readings
    /// replay bit-identically to the run the snapshot was taken from.
    pub resume_from: Option<String>,
    /// Which runtime drives the engines: "sim" (event-driven simulator)
    /// or "live" (one worker thread per node, virtual clock).
    pub driver: String,
    /// Write the reading trace the run ingested to this CSV file.
    pub record: Option<String>,
    /// Replay a recorded reading trace from this file instead of the
    /// synthetic streams.
    pub replay: Option<String>,
}

impl Default for SimulateArgs {
    fn default() -> Self {
        Self {
            leaves: 16,
            readings: 6_000,
            algorithm: "d3".into(),
            fraction: 0.5,
            loss: 0.0,
            metrics_out: None,
            checkpoint_out: None,
            checkpoint_at: None,
            resume_from: None,
            driver: "sim".into(),
            record: None,
            replay: None,
        }
    }
}

/// Arguments of `snod detect`.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectArgs {
    /// Sliding-window length `|W|`.
    pub window: usize,
    /// Kernel sample size `|R|` (default `|W|/20`).
    pub sample: Option<usize>,
    /// Distance rule radius `r`.
    pub radius: f64,
    /// Distance rule threshold `t`.
    pub neighbors: f64,
    /// MDEF rule `(r, αr, k_σ)` — switches the detector when present.
    pub mdef: Option<(f64, f64, f64)>,
    /// Readings to skip before verdicts (default: `|W|`).
    pub warmup: Option<u64>,
    /// Per-coordinate normalisation bounds, applied as
    /// `(x − min)/(max − min)`.
    pub min: Option<f64>,
    /// See [`Self::min`].
    pub max: Option<f64>,
    /// Write a JSON metrics snapshot here after the run.
    pub metrics_out: Option<String>,
    /// Input path; stdin when `None`.
    pub input: Option<String>,
}

impl Default for DetectArgs {
    fn default() -> Self {
        Self {
            window: 10_000,
            sample: None,
            radius: 0.01,
            neighbors: 45.0,
            mdef: None,
            warmup: None,
            min: None,
            max: None,
            metrics_out: None,
            input: None,
        }
    }
}

/// Arguments of `snod stats`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsArgs {
    /// Input path; stdin when `None`.
    pub input: Option<String>,
}

/// A parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

/// Usage text printed by `snod help` and on errors.
pub const USAGE: &str = "\
snod — online outlier detection in sensor data (VLDB'06 reproduction)

USAGE:
  snod detect [OPTIONS] [FILE]    flag outliers in a CSV stream
  snod stats  [FILE]              per-dimension dataset statistics
  snod simulate [OPTIONS]         distributed run over a synthetic hierarchy
  snod serve [OPTIONS]            multi-tenant TCP ingestion daemon
  snod client [OPTIONS]           stream a recorded trace into a daemon
  snod demo                       synthetic end-to-end demo
  snod help                       this text

A leading flag is shorthand for simulate: `snod --detector mmdew` runs
`snod simulate --detector mmdew`.

SIMULATE OPTIONS:
  --leaves N        leaf sensors                  (default 16)
  --readings N      readings per leaf             (default 6000)
  --detector A      d3 | mgdd | mmdew | fqn | centralized  (default d3;
                    --algorithm is an alias)
  --fraction F      sample-propagation fraction f (default 0.5)
  --loss P          message-loss probability      (default 0)
  --metrics-out F   write a JSON metrics snapshot to F after the run
  --checkpoint-out F  write a checkpoint of the run to F (all but
                    centralized)
  --checkpoint-at K   with --checkpoint-out: snapshot after K readings
                      per leaf, then continue to completion
  --resume-from F   restore checkpoint F before running; the remaining
                    readings replay bit-identically to the original run
  --driver D        sim | live (default sim): the event-driven simulator
                    or the live runtime (one worker thread per node);
                    fed the same trace, both produce identical results
  --record F        write the ingested reading trace to F (CSV)
  --replay F        feed readings from trace F instead of the synthetic
                    streams (works under either driver)

SERVE OPTIONS:
  --addr A          ingestion listener             (default 127.0.0.1:7433)
  --metrics-addr A  also serve /metrics /healthz /escalations over HTTP
  --checkpoint-dir D  per-tenant checkpoints in D: tenants survive a
                    daemon kill and acks carry a durable mark
  --leaves N        leaf sensors per tenant        (default 1)
  --fanouts L       hierarchy fan-outs above the leaves, e.g. 2,2
  --window N        sliding window |W| per node    (default 256)
  --sample N        chain-sample |R|               (default 32)
  --radius R        (D,r) rule: neighborhood radius    (default 0.02)
  --neighbors T     (D,r) rule: neighbor threshold     (default 10)
  --queue N         bounded per-tenant queue; a full queue sheds
                    readings, which clients retransmit (default 256)
  --detector A      backend every tenant runs: d3 | mmdew | fqn
                    (default d3)

CLIENT OPTIONS:
  --addr A          daemon address                 (default 127.0.0.1:7433)
  --tenant NAME     tenant to stream as            (required)
  --replay F        recorded trace CSV to stream   (required; see
                    `snod simulate --record`)
  --follow          print escalations live as the daemon pushes them

DETECT OPTIONS:
  --window N        sliding window |W|            (default 10000)
  --sample N        kernel sample |R|             (default |W|/20)
  --radius R        (D,r) rule: neighborhood radius   (default 0.01)
  --neighbors T     (D,r) rule: neighbor threshold    (default 45)
  --mdef r,ar,k     use the MDEF rule instead (sampling radius,
                    counting radius, k_sigma)
  --warmup N        readings before verdicts      (default |W|)
  --min X --max Y   normalise coordinates to [0,1] on the fly
  --metrics-out F   write a JSON metrics snapshot to F after the run

Input: one reading per line, comma-separated coordinates. Output: one
line per outlier, `index,coords…`. Reads stdin when FILE is omitted.";

fn parse_value<T: std::str::FromStr>(flag: &str, v: Option<String>) -> Result<T, ArgError> {
    let raw = v.ok_or_else(|| ArgError(format!("{flag} needs a value")))?;
    raw.parse()
        .map_err(|_| ArgError(format!("invalid value for {flag}: {raw}")))
}

fn parse_simulate<I: Iterator<Item = String>>(mut it: I) -> Result<Command, ArgError> {
    let mut s = SimulateArgs::default();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--leaves" => s.leaves = parse_value(&a, it.next())?,
            "--readings" => s.readings = parse_value(&a, it.next())?,
            "--algorithm" | "--detector" => s.algorithm = parse_value(&a, it.next())?,
            "--fraction" => s.fraction = parse_value(&a, it.next())?,
            "--loss" => s.loss = parse_value(&a, it.next())?,
            "--metrics-out" => s.metrics_out = Some(parse_value(&a, it.next())?),
            "--checkpoint-out" => s.checkpoint_out = Some(parse_value(&a, it.next())?),
            "--checkpoint-at" => s.checkpoint_at = Some(parse_value(&a, it.next())?),
            "--resume-from" => s.resume_from = Some(parse_value(&a, it.next())?),
            "--driver" => s.driver = parse_value(&a, it.next())?,
            "--record" => s.record = Some(parse_value(&a, it.next())?),
            "--replay" => s.replay = Some(parse_value(&a, it.next())?),
            other => return Err(ArgError(format!("unknown flag for simulate: {other}"))),
        }
    }
    if s.leaves == 0 {
        return Err(ArgError("--leaves must be positive".into()));
    }
    if s.checkpoint_at.is_some() && s.checkpoint_out.is_none() {
        return Err(ArgError("--checkpoint-at needs --checkpoint-out".into()));
    }
    if (s.checkpoint_out.is_some() || s.resume_from.is_some()) && s.algorithm == "centralized" {
        return Err(ArgError(
            "checkpoint/resume supports d3, mgdd, mmdew and fqn only".into(),
        ));
    }
    if !["d3", "mgdd", "mmdew", "fqn", "centralized"].contains(&s.algorithm.as_str()) {
        return Err(ArgError(format!(
            "unknown detector {:?} (d3 | mgdd | mmdew | fqn | centralized)",
            s.algorithm
        )));
    }
    if !(0.0..=1.0).contains(&s.fraction) || !(0.0..=1.0).contains(&s.loss) {
        return Err(ArgError("--fraction and --loss must lie in [0, 1]".into()));
    }
    if !["sim", "live"].contains(&s.driver.as_str()) {
        return Err(ArgError(format!(
            "unknown driver {:?} (sim | live)",
            s.driver
        )));
    }
    if s.driver == "live" {
        if s.algorithm == "centralized" {
            return Err(ArgError(
                "--driver live supports the d3, mgdd, mmdew and fqn detectors only".into(),
            ));
        }
        if s.checkpoint_out.is_some() || s.resume_from.is_some() {
            return Err(ArgError(
                "checkpoint/resume flags run under the simulator driver only".into(),
            ));
        }
    }
    Ok(Command::Simulate(s))
}

fn parse_serve<I: Iterator<Item = String>>(mut it: I) -> Result<Command, ArgError> {
    let mut s = ServeArgs::default();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => s.addr = parse_value(&a, it.next())?,
            "--metrics-addr" => s.metrics_addr = Some(parse_value(&a, it.next())?),
            "--checkpoint-dir" => s.checkpoint_dir = Some(parse_value(&a, it.next())?),
            "--leaves" => s.leaves = parse_value(&a, it.next())?,
            "--fanouts" => {
                let raw: String = parse_value(&a, it.next())?;
                let parsed: Result<Vec<usize>, _> =
                    raw.split(',').map(|p| p.trim().parse()).collect();
                s.fanouts = parsed.map_err(|_| ArgError(format!("invalid --fanouts: {raw}")))?;
            }
            "--window" => s.window = parse_value(&a, it.next())?,
            "--sample" => s.sample = Some(parse_value(&a, it.next())?),
            "--radius" => s.radius = parse_value(&a, it.next())?,
            "--neighbors" => s.neighbors = parse_value(&a, it.next())?,
            "--queue" => s.queue = parse_value(&a, it.next())?,
            "--detector" => s.detector = parse_value(&a, it.next())?,
            other => return Err(ArgError(format!("unknown flag for serve: {other}"))),
        }
    }
    if s.leaves == 0 {
        return Err(ArgError("--leaves must be positive".into()));
    }
    if s.window == 0 {
        return Err(ArgError("--window must be positive".into()));
    }
    if s.queue == 0 {
        return Err(ArgError("--queue must be positive".into()));
    }
    if !["d3", "mmdew", "fqn"].contains(&s.detector.as_str()) {
        return Err(ArgError(format!(
            "unknown serve detector {:?} (d3 | mmdew | fqn)",
            s.detector
        )));
    }
    Ok(Command::Serve(s))
}

/// Parses a full argument vector (without the program name).
///
/// A leading flag (`snod --detector mmdew`) is shorthand for
/// `snod simulate` with those flags.
pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Command, ArgError> {
    let mut it = args.into_iter();
    let cmd = it.next().unwrap_or_else(|| "help".into());
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "demo" => Ok(Command::Demo),
        "simulate" => parse_simulate(it),
        "serve" => parse_serve(it),
        "client" => {
            let mut addr = "127.0.0.1:7433".to_string();
            let mut tenant: Option<String> = None;
            let mut replay: Option<String> = None;
            let mut follow = false;
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--addr" => addr = parse_value(&a, it.next())?,
                    "--tenant" => tenant = Some(parse_value(&a, it.next())?),
                    "--replay" => replay = Some(parse_value(&a, it.next())?),
                    "--follow" => follow = true,
                    other => return Err(ArgError(format!("unknown flag for client: {other}"))),
                }
            }
            let tenant = tenant.ok_or_else(|| ArgError("client needs --tenant".into()))?;
            let replay = replay.ok_or_else(|| ArgError("client needs --replay".into()))?;
            Ok(Command::Client(ClientArgs {
                addr,
                tenant,
                replay,
                follow,
            }))
        }
        "stats" => {
            let mut s = StatsArgs::default();
            for a in it {
                if a.starts_with("--") {
                    return Err(ArgError(format!("unknown flag for stats: {a}")));
                }
                if s.input.is_some() {
                    return Err(ArgError("stats takes at most one input file".into()));
                }
                s.input = Some(a);
            }
            Ok(Command::Stats(s))
        }
        "detect" => {
            let mut d = DetectArgs::default();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--window" => d.window = parse_value(&a, it.next())?,
                    "--sample" => d.sample = Some(parse_value(&a, it.next())?),
                    "--radius" => d.radius = parse_value(&a, it.next())?,
                    "--neighbors" => d.neighbors = parse_value(&a, it.next())?,
                    "--warmup" => d.warmup = Some(parse_value(&a, it.next())?),
                    "--min" => d.min = Some(parse_value(&a, it.next())?),
                    "--max" => d.max = Some(parse_value(&a, it.next())?),
                    "--metrics-out" => d.metrics_out = Some(parse_value(&a, it.next())?),
                    "--mdef" => {
                        let raw: String = parse_value(&a, it.next())?;
                        let parts: Vec<&str> = raw.split(',').collect();
                        if parts.len() != 3 {
                            return Err(ArgError("--mdef expects r,ar,k".into()));
                        }
                        let nums: Result<Vec<f64>, _> =
                            parts.iter().map(|p| p.trim().parse()).collect();
                        let nums = nums.map_err(|_| ArgError(format!("invalid --mdef: {raw}")))?;
                        d.mdef = Some((nums[0], nums[1], nums[2]));
                    }
                    flag if flag.starts_with("--") => {
                        return Err(ArgError(format!("unknown flag: {flag}")));
                    }
                    _ => {
                        if d.input.is_some() {
                            return Err(ArgError("detect takes at most one input file".into()));
                        }
                        d.input = Some(a);
                    }
                }
            }
            if d.window == 0 {
                return Err(ArgError("--window must be positive".into()));
            }
            if let (Some(min), Some(max)) = (d.min, d.max) {
                if max <= min {
                    return Err(ArgError("--max must exceed --min".into()));
                }
            }
            if d.min.is_some() != d.max.is_some() {
                return Err(ArgError("--min and --max must be given together".into()));
            }
            Ok(Command::Detect(d))
        }
        _ if cmd.starts_with("--") => parse_simulate(std::iter::once(cmd).chain(it)),
        other => Err(ArgError(format!(
            "unknown command: {other} (try `snod help`)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(args: &[&str]) -> Command {
        parse(args.iter().map(|s| s.to_string())).expect("parse ok")
    }

    #[test]
    fn defaults_and_file() {
        let Command::Detect(d) = parse_ok(&["detect", "data.csv"]) else {
            panic!("wrong command");
        };
        assert_eq!(d.window, 10_000);
        assert_eq!(d.input.as_deref(), Some("data.csv"));
        assert!(d.mdef.is_none());
    }

    #[test]
    fn all_flags_parse() {
        let Command::Detect(d) = parse_ok(&[
            "detect",
            "--window",
            "500",
            "--sample",
            "50",
            "--radius",
            "0.02",
            "--neighbors",
            "10",
            "--warmup",
            "600",
            "--min",
            "-10",
            "--max",
            "40",
            "in.csv",
        ]) else {
            panic!("wrong command");
        };
        assert_eq!(d.window, 500);
        assert_eq!(d.sample, Some(50));
        assert_eq!(d.radius, 0.02);
        assert_eq!(d.neighbors, 10.0);
        assert_eq!(d.warmup, Some(600));
        assert_eq!((d.min, d.max), (Some(-10.0), Some(40.0)));
    }

    #[test]
    fn mdef_triple_parses() {
        let Command::Detect(d) = parse_ok(&["detect", "--mdef", "0.08,0.01,3"]) else {
            panic!("wrong command");
        };
        assert_eq!(d.mdef, Some((0.08, 0.01, 3.0)));
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse(["detect".into(), "--window".into()]).is_err());
        assert!(parse(["detect".into(), "--mdef".into(), "1,2".into()]).is_err());
        assert!(parse(["detect".into(), "--min".into(), "0".into()]).is_err());
        assert!(parse(["frobnicate".into()]).is_err());
        assert!(parse(["detect".into(), "a".into(), "b".into()]).is_err());
    }

    #[test]
    fn metrics_out_parses_on_both_commands() {
        let Command::Simulate(s) = parse_ok(&["simulate", "--metrics-out", "m.json"]) else {
            panic!("wrong command");
        };
        assert_eq!(s.metrics_out.as_deref(), Some("m.json"));
        let Command::Detect(d) = parse_ok(&["detect", "--metrics-out", "d.json"]) else {
            panic!("wrong command");
        };
        assert_eq!(d.metrics_out.as_deref(), Some("d.json"));
        assert!(parse(["simulate".into(), "--metrics-out".into()]).is_err());
    }

    #[test]
    fn simulate_flags_parse_and_validate() {
        let Command::Simulate(s) = parse_ok(&[
            "simulate",
            "--leaves",
            "32",
            "--readings",
            "100",
            "--algorithm",
            "mgdd",
            "--fraction",
            "0.25",
            "--loss",
            "0.1",
        ]) else {
            panic!("wrong command");
        };
        assert_eq!(s.leaves, 32);
        assert_eq!(s.algorithm, "mgdd");
        assert_eq!(s.loss, 0.1);
        assert!(parse(["simulate".into(), "--algorithm".into(), "nope".into()]).is_err());
        assert!(parse(["simulate".into(), "--loss".into(), "1.5".into()]).is_err());
        assert!(parse(["simulate".into(), "--leaves".into(), "0".into()]).is_err());
    }

    #[test]
    fn checkpoint_flags_parse_and_validate() {
        let Command::Simulate(s) = parse_ok(&[
            "simulate",
            "--checkpoint-out",
            "ck.snod",
            "--checkpoint-at",
            "300",
        ]) else {
            panic!("wrong command");
        };
        assert_eq!(s.checkpoint_out.as_deref(), Some("ck.snod"));
        assert_eq!(s.checkpoint_at, Some(300));
        let Command::Simulate(s) = parse_ok(&["simulate", "--resume-from", "ck.snod"]) else {
            panic!("wrong command");
        };
        assert_eq!(s.resume_from.as_deref(), Some("ck.snod"));
        // --checkpoint-at without --checkpoint-out is meaningless.
        assert!(parse(["simulate".into(), "--checkpoint-at".into(), "5".into()]).is_err());
        // The centralized baseline does not persist node state.
        assert!(parse([
            "simulate".into(),
            "--algorithm".into(),
            "centralized".into(),
            "--checkpoint-out".into(),
            "ck".into(),
        ])
        .is_err());
    }

    #[test]
    fn driver_and_trace_flags_parse_and_validate() {
        let Command::Simulate(s) = parse_ok(&[
            "simulate",
            "--driver",
            "live",
            "--record",
            "trace.csv",
        ]) else {
            panic!("wrong command");
        };
        assert_eq!(s.driver, "live");
        assert_eq!(s.record.as_deref(), Some("trace.csv"));
        let Command::Simulate(s) = parse_ok(&["simulate", "--replay", "trace.csv"]) else {
            panic!("wrong command");
        };
        assert_eq!(s.driver, "sim");
        assert_eq!(s.replay.as_deref(), Some("trace.csv"));
        // Unknown driver, live+centralized, and live+checkpoint are rejected.
        assert!(parse(["simulate".into(), "--driver".into(), "warp".into()]).is_err());
        assert!(parse([
            "simulate".into(),
            "--driver".into(),
            "live".into(),
            "--algorithm".into(),
            "centralized".into(),
        ])
        .is_err());
        assert!(parse([
            "simulate".into(),
            "--driver".into(),
            "live".into(),
            "--checkpoint-out".into(),
            "ck".into(),
        ])
        .is_err());
    }

    #[test]
    fn serve_and_client_flags_parse_and_validate() {
        let Command::Serve(s) = parse_ok(&[
            "serve",
            "--addr",
            "127.0.0.1:9000",
            "--metrics-addr",
            "127.0.0.1:9001",
            "--checkpoint-dir",
            "/tmp/ck",
            "--leaves",
            "4",
            "--fanouts",
            "2,2",
            "--queue",
            "64",
        ]) else {
            panic!("wrong command");
        };
        assert_eq!(s.addr, "127.0.0.1:9000");
        assert_eq!(s.metrics_addr.as_deref(), Some("127.0.0.1:9001"));
        assert_eq!(s.checkpoint_dir.as_deref(), Some("/tmp/ck"));
        assert_eq!((s.leaves, s.fanouts.clone(), s.queue), (4, vec![2, 2], 64));
        assert!(parse(["serve".into(), "--leaves".into(), "0".into()]).is_err());
        assert!(parse(["serve".into(), "--queue".into(), "0".into()]).is_err());
        assert!(parse(["serve".into(), "--fanouts".into(), "2,x".into()]).is_err());

        let Command::Client(c) = parse_ok(&[
            "client",
            "--tenant",
            "plant-7",
            "--replay",
            "trace.csv",
            "--follow",
        ]) else {
            panic!("wrong command");
        };
        assert_eq!(c.tenant, "plant-7");
        assert_eq!(c.replay, "trace.csv");
        assert!(c.follow);
        assert_eq!(c.addr, "127.0.0.1:7433");
        // Both --tenant and --replay are mandatory.
        assert!(parse(["client".into(), "--replay".into(), "t.csv".into()]).is_err());
        assert!(parse(["client".into(), "--tenant".into(), "t".into()]).is_err());
    }

    #[test]
    fn detector_flag_selects_backends() {
        for det in ["d3", "mgdd", "mmdew", "fqn"] {
            let Command::Simulate(s) = parse_ok(&["simulate", "--detector", det]) else {
                panic!("wrong command");
            };
            assert_eq!(s.algorithm, det);
        }
        // --algorithm stays an alias for the same field.
        let Command::Simulate(s) = parse_ok(&["simulate", "--algorithm", "fqn"]) else {
            panic!("wrong command");
        };
        assert_eq!(s.algorithm, "fqn");
        assert!(parse(["simulate".into(), "--detector".into(), "kde".into()]).is_err());
        // mmdew and fqn run under the live driver and checkpoint.
        assert!(parse([
            "simulate".into(),
            "--detector".into(),
            "mmdew".into(),
            "--driver".into(),
            "live".into(),
        ])
        .is_ok());
        assert!(parse([
            "simulate".into(),
            "--detector".into(),
            "fqn".into(),
            "--checkpoint-out".into(),
            "ck".into(),
        ])
        .is_ok());
    }

    #[test]
    fn leading_flags_default_to_simulate() {
        let Command::Simulate(s) = parse_ok(&["--detector", "mmdew", "--readings", "500"]) else {
            panic!("wrong command");
        };
        assert_eq!(s.algorithm, "mmdew");
        assert_eq!(s.readings, 500);
        // Unknown flags still error rather than silently simulating.
        assert!(parse(["--frobnicate".into()]).is_err());
    }

    #[test]
    fn serve_detector_parses_and_validates() {
        let Command::Serve(s) = parse_ok(&["serve", "--detector", "fqn"]) else {
            panic!("wrong command");
        };
        assert_eq!(s.detector, "fqn");
        let Command::Serve(s) = parse_ok(&["serve"]) else {
            panic!("wrong command");
        };
        assert_eq!(s.detector, "d3");
        assert!(parse(["serve".into(), "--detector".into(), "mgdd".into()]).is_err());
    }

    #[test]
    fn help_variants() {
        assert_eq!(parse_ok(&["help"]), Command::Help);
        assert_eq!(parse_ok(&["--help"]), Command::Help);
        assert_eq!(parse(std::iter::empty::<String>()).unwrap(), Command::Help);
    }
}
