//! Exponential histogram for windowed counting (Datar–Gionis–Indyk–Motwani).
//!
//! Counts how many of the last `|W|` stream events satisfied a predicate
//! (how many "1" bits arrived), with relative error ε and
//! `O((1/ε)·log|W|)` buckets. This is the classic building block behind
//! windowed aggregates; the paper's variance estimator (see
//! [`crate::WindowedVariance`]) uses the same bucket discipline with richer
//! per-bucket statistics. We also use it directly to track windowed outlier
//! counts for the §9 application *"warn when the number of outliers in a
//! region exceeds T over the most recent window W"*.

use std::collections::VecDeque;

use snod_persist::{ByteReader, ByteWriter, Persist, PersistError};

use crate::SketchError;

/// One bucket: `size` ones whose newest arrival was at time `newest`.
#[derive(Debug, Clone, Copy)]
struct Bucket {
    newest: u64,
    size: u64,
}

/// ε-approximate count of ones over a sliding window.
///
/// ```
/// use snod_sketch::ExpHistogram;
/// let mut eh = ExpHistogram::new(1_000, 0.1).unwrap();
/// for i in 0..10_000u64 {
///     eh.push(i % 3 == 0);
/// }
/// let est = eh.estimate() as f64;
/// let truth = 1_000.0 / 3.0;
/// assert!((est - truth).abs() / truth < 0.1 + 0.01);
/// ```
#[derive(Debug, Clone)]
pub struct ExpHistogram {
    /// Buckets ordered oldest → newest.
    buckets: VecDeque<Bucket>,
    window: u64,
    /// Maximum buckets allowed per size class before the two oldest merge.
    max_per_size: usize,
    time: u64,
}

impl ExpHistogram {
    /// Creates a histogram over a window of `window` events with relative
    /// counting error at most `eps`.
    pub fn new(window: usize, eps: f64) -> Result<Self, SketchError> {
        if window == 0 {
            return Err(SketchError::ZeroSize("window capacity"));
        }
        if !(eps > 0.0 && eps <= 1.0) {
            return Err(SketchError::InvalidEpsilon);
        }
        let max_per_size = ((1.0 / eps).ceil() as usize).max(2);
        Ok(Self {
            buckets: VecDeque::new(),
            window: window as u64,
            max_per_size,
            time: 0,
        })
    }

    /// Advances the clock by one event; records a one when `bit` is true.
    pub fn push(&mut self, bit: bool) {
        self.time += 1;
        self.expire();
        if !bit {
            return;
        }
        self.buckets.push_back(Bucket {
            newest: self.time,
            size: 1,
        });
        self.cascade();
    }

    fn expire(&mut self) {
        let horizon = self.time.saturating_sub(self.window);
        while let Some(front) = self.buckets.front() {
            if front.newest <= horizon {
                self.buckets.pop_front();
            } else {
                break;
            }
        }
    }

    /// Merges the two oldest buckets of any size class that exceeds the
    /// per-size budget, cascading upward through size classes.
    fn cascade(&mut self) {
        let mut size = 1u64;
        loop {
            // Indices of buckets with exactly this size, oldest first.
            let idxs: Vec<usize> = self
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, b)| b.size == size)
                .map(|(i, _)| i)
                .collect();
            if idxs.len() <= self.max_per_size {
                break;
            }
            let (a, b) = (idxs[0], idxs[1]);
            let merged = Bucket {
                newest: self.buckets[b].newest,
                size: 2 * size,
            };
            self.buckets[b] = merged;
            self.buckets.remove(a);
            size *= 2;
        }
    }

    /// Estimated number of ones in the current window: all full buckets
    /// plus half the (possibly straddling) oldest bucket.
    pub fn estimate(&self) -> u64 {
        let mut it = self.buckets.iter();
        let Some(oldest) = it.next() else {
            return 0;
        };
        let rest: u64 = it.map(|b| b.size).sum();
        rest + oldest.size.div_ceil(2)
    }

    /// Number of buckets currently stored.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Events observed so far.
    pub fn stream_len(&self) -> u64 {
        self.time
    }
}


impl Persist for Bucket {
    fn save(&self, w: &mut ByteWriter) {
        w.put_u64(self.newest);
        w.put_u64(self.size);
    }

    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        Ok(Self {
            newest: r.get_u64()?,
            size: r.get_u64()?,
        })
    }
}

impl Persist for ExpHistogram {
    fn save(&self, w: &mut ByteWriter) {
        self.buckets.save(w);
        w.put_u64(self.window);
        w.put_usize(self.max_per_size);
        w.put_u64(self.time);
    }

    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let eh = Self {
            buckets: Persist::load(r)?,
            window: r.get_u64()?,
            max_per_size: r.get_usize()?,
            time: r.get_u64()?,
        };
        if eh.window == 0 {
            return Err(PersistError::Corrupt("histogram window must be positive"));
        }
        if eh.max_per_size < 2 {
            return Err(PersistError::Corrupt("histogram per-size budget below 2"));
        }
        Ok(eh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_count(bits: &[bool], window: usize, upto: usize) -> u64 {
        let lo = upto.saturating_sub(window);
        bits[lo..upto].iter().filter(|&&b| b).count() as u64
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(ExpHistogram::new(0, 0.1).is_err());
        assert!(ExpHistogram::new(10, 0.0).is_err());
        assert!(ExpHistogram::new(10, 1.5).is_err());
    }

    #[test]
    fn exact_when_few_ones() {
        let mut eh = ExpHistogram::new(100, 0.5).unwrap();
        eh.push(true);
        eh.push(false);
        eh.push(true);
        assert_eq!(eh.estimate(), 2);
    }

    #[test]
    fn all_ones_within_relative_error() {
        let w = 512;
        let eps = 0.1;
        let mut eh = ExpHistogram::new(w, eps).unwrap();
        let bits: Vec<bool> = (0..5_000).map(|_| true).collect();
        for (i, &b) in bits.iter().enumerate() {
            eh.push(b);
            let truth = exact_count(&bits, w, i + 1);
            let est = eh.estimate();
            let err = (est as f64 - truth as f64).abs() / truth as f64;
            assert!(err <= eps + 0.02, "at {i}: est {est} truth {truth}");
        }
    }

    #[test]
    fn periodic_pattern_within_relative_error() {
        let w = 300;
        let eps = 0.2;
        let mut eh = ExpHistogram::new(w, eps).unwrap();
        let bits: Vec<bool> = (0..4_000u64).map(|i| i % 7 < 3).collect();
        for (i, &b) in bits.iter().enumerate() {
            eh.push(b);
            if i < w {
                continue;
            }
            let truth = exact_count(&bits, w, i + 1) as f64;
            let est = eh.estimate() as f64;
            assert!(
                (est - truth).abs() / truth <= eps + 0.05,
                "at {i}: est {est} truth {truth}"
            );
        }
    }

    #[test]
    fn buckets_stay_logarithmic() {
        let mut eh = ExpHistogram::new(10_000, 0.1).unwrap();
        let mut max_buckets = 0;
        for _ in 0..100_000 {
            eh.push(true);
            max_buckets = max_buckets.max(eh.bucket_count());
        }
        // (1/eps) * log2(W) ≈ 10 * 13.3; allow slack for the straddling class.
        assert!(max_buckets <= 160, "bucket count {max_buckets} too large");
    }

    #[test]
    fn window_slides_old_ones_out() {
        let mut eh = ExpHistogram::new(10, 0.25).unwrap();
        for _ in 0..10 {
            eh.push(true);
        }
        for _ in 0..50 {
            eh.push(false);
        }
        assert_eq!(eh.estimate(), 0);
    }
}
