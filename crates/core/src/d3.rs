//! Algorithm D3 — Distributed Deviation Detection (paper Section 7,
//! Figure 4).
//!
//! Leaves test every reading against their local model and push two kinds
//! of traffic upward: values accepted by their chain sample (with
//! probability `f` — this keeps the parents' samples fresh) and values
//! flagged as outliers. Parents re-check received outliers against their
//! own (region-level) model and escalate survivors. Theorem 3 makes this
//! sound: an outlier of the union window is necessarily an outlier of
//! some child window, so parents never need to see non-flagged values.

use rand::Rng;

use snod_persist::{ByteReader, ByteWriter, Persist, PersistError, SeededRng};
use snod_simnet::{
    Ctx, DetectorEngine, FaultPlan, Hierarchy, Network, NodeId, SimConfig, StreamSource, Wire,
};

use crate::config::{CoreError, D3Config};
use crate::estimator::SensorEstimator;

/// D3 wire messages.
#[derive(Debug, Clone)]
pub enum D3Payload {
    /// A value the sender's chain sample accepted, forwarded so the
    /// parent's sample stays representative (D3 lines 14–15 / 28–30).
    SampleValue(Vec<f64>),
    /// A value flagged as an outlier at the sender's level
    /// (D3 lines 17–19 / 23–27).
    Outlier(Vec<f64>),
}

impl Wire for D3Payload {
    fn size_bytes(&self) -> usize {
        // d numbers at 2 bytes each plus a 1-byte message tag.
        match self {
            D3Payload::SampleValue(v) | D3Payload::Outlier(v) => v.len() * 2 + 1,
        }
    }
}

/// One reported outlier, as recorded by the node that flagged it.
#[derive(Debug, Clone, PartialEq)]
pub struct Detection {
    /// Simulated time of the detection.
    pub time_ns: u64,
    /// The flagged value.
    pub value: Vec<f64>,
    /// Tier of the node that flagged it (1 = leaf).
    pub level: u8,
}

/// Per-node D3 state (both `LeafProcess` and `ParentProcess` of the
/// paper's Figure 4 — the role decides which callbacks fire).
pub struct D3Node {
    est: SensorEstimator,
    cfg: D3Config,
    rng: SeededRng,
    /// Outliers this node has flagged.
    pub detections: Vec<Detection>,
    level: u8,
}

impl D3Node {
    /// Builds the node for `node` within `topo`.
    ///
    /// Leaders run the *identical* `IsOutlier` procedure over their own
    /// arrival stream (the sample values forwarded by their children),
    /// with the same `|W|`, `|R|` and threshold `t` — exactly as in the
    /// paper's Figure 4, where `LeafProcess` and `ParentProcess` share
    /// one `IsOutlier(R, σ, P)`. Because the arrival stream is a uniform
    /// random sample of the subtree's readings, `N(p, r) < t` at a leader
    /// is a *density* test over the region: it scales the conceptual
    /// union-window threshold `t·Σ|Wᵢ|/|W|` down to the arrival window.
    pub fn new(node: NodeId, topo: &Hierarchy, cfg: &D3Config) -> Self {
        let level = topo.level_of(node);
        let mut est_cfg = cfg.estimator;
        // Decorrelate RNGs across nodes.
        est_cfg.seed = est_cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (node.0 as u64);
        let est = SensorEstimator::new(est_cfg);
        Self {
            est,
            cfg: *cfg,
            rng: SeededRng::seed_from_u64(est_cfg.seed ^ 0xD3),
            detections: Vec::new(),
            level,
        }
    }

    /// The node's estimator (for post-run inspection).
    pub fn estimator(&self) -> &SensorEstimator {
        &self.est
    }

    /// Checks `p` against this node's model; records and escalates on a
    /// hit. Warm-up guard: no verdicts until the estimator has seen at
    /// least a sample's worth of data.
    fn check_and_escalate(&mut self, ctx: &mut Ctx<'_, D3Payload>, p: &[f64]) {
        if self.est.observed() < self.est.config().sample_size as u64 {
            return;
        }
        snod_obs::counter!("core.d3.scored").incr();
        match self.est.is_distance_outlier_scaled(p, &self.cfg.rule) {
            Ok(true) => {
                snod_obs::counter!("core.d3.detections").incr();
                self.detections.push(Detection {
                    time_ns: ctx.time_ns,
                    value: p.to_vec(),
                    level: self.level,
                });
                // Flagged values are precious (Theorem 3's soundness
                // only helps if the report arrives): escalate them on
                // the reliable channel, retried under a retry policy.
                snod_obs::counter!("core.d3.escalations").incr();
                ctx.send_parent_reliable(D3Payload::Outlier(p.to_vec()));
            }
            Ok(false) => {}
            Err(CoreError::NoData) => {}
            // A mis-dimensioned escalation (a peer running a different
            // configuration) is dropped rather than crashing the node.
            Err(_) => snod_obs::counter!("core.bad_readings").incr(),
        }
    }
}

impl DetectorEngine<D3Payload> for D3Node {
    fn ingest(&mut self, ctx: &mut Ctx<'_, D3Payload>, value: &[f64]) {
        // A reading whose dimensionality does not match the configuration
        // (a miswired stream source) is dropped and counted instead of
        // panicking mid-simulation.
        let Ok(accepted) = self.est.observe(value) else {
            snod_obs::counter!("core.bad_readings").incr();
            return;
        };
        if accepted && self.rng.gen::<f64>() < self.cfg.sample_fraction {
            ctx.send_parent(D3Payload::SampleValue(value.to_vec()));
        }
        self.check_and_escalate(ctx, value);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, D3Payload>, _from: NodeId, payload: D3Payload) {
        match payload {
            D3Payload::SampleValue(v) => {
                let Ok(accepted) = self.est.observe(&v) else {
                    snod_obs::counter!("core.bad_readings").incr();
                    return;
                };
                if accepted && self.rng.gen::<f64>() < self.cfg.sample_fraction {
                    ctx.send_parent(D3Payload::SampleValue(v));
                }
            }
            D3Payload::Outlier(p) => {
                self.check_and_escalate(ctx, &p);
            }
        }
    }
}

impl Persist for D3Payload {
    fn save(&self, w: &mut ByteWriter) {
        match self {
            D3Payload::SampleValue(v) => {
                w.put_u8(0);
                v.save(w);
            }
            D3Payload::Outlier(v) => {
                w.put_u8(1);
                v.save(w);
            }
        }
    }

    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        match r.get_u8()? {
            0 => Ok(D3Payload::SampleValue(Vec::<f64>::load(r)?)),
            1 => Ok(D3Payload::Outlier(Vec::<f64>::load(r)?)),
            _ => Err(PersistError::Corrupt("unknown d3 payload tag")),
        }
    }
}

impl Persist for Detection {
    fn save(&self, w: &mut ByteWriter) {
        self.time_ns.save(w);
        self.value.save(w);
        self.level.save(w);
    }

    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        Ok(Self {
            time_ns: u64::load(r)?,
            value: Vec::<f64>::load(r)?,
            level: u8::load(r)?,
        })
    }
}

impl Persist for D3Node {
    fn save(&self, w: &mut ByteWriter) {
        self.est.save(w);
        self.cfg.save(w);
        self.rng.save(w);
        self.detections.save(w);
        self.level.save(w);
    }

    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        Ok(Self {
            est: SensorEstimator::load(r)?,
            cfg: D3Config::load(r)?,
            rng: SeededRng::load(r)?,
            detections: Vec::<Detection>::load(r)?,
            level: u8::load(r)?,
        })
    }
}

/// Runs D3 over `topo`: each leaf consumes `readings_per_leaf` readings
/// from `source`. Returns the network (stats + per-node detections).
pub fn run_d3<S: StreamSource>(
    topo: Hierarchy,
    cfg: &D3Config,
    sim: SimConfig,
    source: &mut S,
    readings_per_leaf: u64,
) -> Result<Network<D3Payload, D3Node>, CoreError> {
    run_d3_with_faults(topo, cfg, sim, FaultPlan::none(), source, readings_per_leaf)
}

/// Runs D3 under a fault schedule: `plan` drives crashes, link faults
/// and loss bursts, while `sim` (optionally carrying a
/// [`snod_simnet::RetryPolicy`]) decides how hard flagged values fight
/// to reach their parent. With [`FaultPlan::none()`] this is
/// bit-identical to [`run_d3`].
pub fn run_d3_with_faults<S: StreamSource>(
    topo: Hierarchy,
    cfg: &D3Config,
    sim: SimConfig,
    plan: FaultPlan,
    source: &mut S,
    readings_per_leaf: u64,
) -> Result<Network<D3Payload, D3Node>, CoreError> {
    let mut net = build_d3_network(topo, cfg, sim, plan)?;
    net.run(source, readings_per_leaf);
    Ok(net)
}

/// Builds the D3 network without running it, for callers that drive the
/// simulation themselves — checkpoint/resume needs to restore state (or
/// stop at an intermediate instant via [`Network::run_until`]) before
/// events are processed.
pub fn build_d3_network(
    topo: Hierarchy,
    cfg: &D3Config,
    sim: SimConfig,
    plan: FaultPlan,
) -> Result<Network<D3Payload, D3Node>, CoreError> {
    cfg.validate()?;
    Ok(Network::new(topo, sim, |node, topo| D3Node::new(node, topo, cfg)).with_fault_plan(plan))
}

/// Builds the *live* (wall-clock) runtime over the identical D3 engines:
/// one worker per node, ingestion paced by a monotonic clock (or run
/// flat-out with [`snod_simnet::LiveRuntime::run`]). Fed the same
/// readings, it produces the same detections, statistics and checkpoint
/// bytes as the simulator built by [`build_d3_network`] — the property
/// the bench crate's driver-conformance suite pins.
pub fn build_d3_live(
    topo: Hierarchy,
    cfg: &D3Config,
    sim: SimConfig,
    plan: FaultPlan,
) -> Result<snod_simnet::LiveRuntime<D3Payload, D3Node>, CoreError> {
    cfg.validate()?;
    Ok(
        snod_simnet::LiveRuntime::new(topo, sim, |node, topo| D3Node::new(node, topo, cfg))
            .with_fault_plan(plan),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use snod_outlier::DistanceOutlierConfig;

    fn test_config() -> D3Config {
        D3Config {
            estimator: crate::config::EstimatorConfig::builder()
                .window(500)
                .sample_size(64)
                .seed(7)
                .build()
                .unwrap(),
            rule: DistanceOutlierConfig::new(10.0, 0.02),
            sample_fraction: 0.5,
        }
    }

    /// 4 leaves emit a tight cluster; leaf 0 occasionally emits a value
    /// far from everything.
    fn run_small(readings: u64) -> Network<D3Payload, D3Node> {
        let topo = Hierarchy::balanced(4, &[2, 2]).unwrap();
        let mut source = move |node: NodeId, seq: u64| {
            if node.0 == 0 && seq % 100 == 99 {
                Some(vec![0.9])
            } else {
                Some(vec![
                    0.45 + 0.002 * ((seq % 25) as f64) + 0.001 * node.0 as f64,
                ])
            }
        };
        run_d3(
            topo,
            &test_config(),
            SimConfig::default(),
            &mut source,
            readings,
        )
        .unwrap()
    }

    #[test]
    fn leaf_detects_the_injected_outliers() {
        let net = run_small(600);
        let leaf0 = net.app(NodeId(0));
        assert!(
            !leaf0.detections.is_empty(),
            "leaf 0 saw injected outliers but flagged none"
        );
        // All detections are the far value.
        assert!(leaf0.detections.iter().all(|d| d.value[0] > 0.8));
    }

    #[test]
    fn clean_leaves_stay_silent() {
        let net = run_small(600);
        for id in 1..4u32 {
            let leaf = net.app(NodeId(id));
            assert!(
                leaf.detections.len() <= 2,
                "leaf {id} flagged {} values",
                leaf.detections.len()
            );
        }
    }

    #[test]
    fn outliers_escalate_to_upper_levels() {
        let net = run_small(1_000);
        let root = net.topology().root();
        let root_hits = &net.app(root).detections;
        // 0.9 is rare across the whole network too → the root should
        // confirm at least some escalations.
        assert!(!root_hits.is_empty(), "no outlier survived to the root");
        assert!(root_hits.iter().all(|d| d.level == 3));
    }

    #[test]
    fn parent_detections_are_subset_of_child_reports() {
        // Theorem 3: everything a parent flags arrived as a child report.
        let net = run_small(800);
        let topo = net.topology();
        for level in 2..=topo.level_count() {
            for &leader in topo.level(level) {
                for d in &net.app(leader).detections {
                    let reported_below = topo.descendant_leaves(leader).iter().any(|&leaf| {
                        net.app(leaf)
                            .detections
                            .iter()
                            .any(|ld| ld.value == d.value)
                    });
                    assert!(reported_below, "parent flagged un-reported value {d:?}");
                }
            }
        }
    }

    #[test]
    fn fault_free_plan_is_identical_to_plain_run() {
        let topo = Hierarchy::balanced(4, &[2, 2]).unwrap();
        let source_at = || {
            |node: NodeId, seq: u64| {
                if node.0 == 0 && seq % 100 == 99 {
                    Some(vec![0.9])
                } else {
                    Some(vec![
                        0.45 + 0.002 * ((seq % 25) as f64) + 0.001 * node.0 as f64,
                    ])
                }
            }
        };
        let mut a = source_at();
        let plain =
            run_d3(topo.clone(), &test_config(), SimConfig::default(), &mut a, 600).unwrap();
        let mut b = source_at();
        let faulty = run_d3_with_faults(
            topo,
            &test_config(),
            SimConfig::default(),
            FaultPlan::none(),
            &mut b,
            600,
        )
        .unwrap();
        assert_eq!(plain.stats(), faulty.stats());
        for (node, app) in plain.apps() {
            assert_eq!(app.detections, faulty.app(node).detections);
        }
    }

    #[test]
    fn theorem3_containment_survives_faults() {
        // Loss bursts, a leaf outage and duplicated links cannot break
        // Theorem 3's containment: parents only flag values that some
        // descendant leaf reported (deliveries may be lost, but never
        // invented).
        use snod_simnet::{LinkFault, RetryPolicy};
        let topo = Hierarchy::balanced(4, &[2, 2]).unwrap();
        let plan = FaultPlan::none()
            .with_seed(11)
            .burst(100_000_000_000, 300_000_000_000, 0.3)
            .crash(
                NodeId(1),
                400_000_000_000,
                Some(600_000_000_000),
            )
            .link(LinkFault::delay_all(2_000_000, 0).duplicate(0.05));
        let sim = SimConfig::default().with_reliability(RetryPolicy::default());
        let mut source = |node: NodeId, seq: u64| {
            if node.0 == 0 && seq % 100 == 99 {
                Some(vec![0.9])
            } else {
                Some(vec![
                    0.45 + 0.002 * ((seq % 25) as f64) + 0.001 * node.0 as f64,
                ])
            }
        };
        let net = run_d3_with_faults(topo, &test_config(), sim, plan, &mut source, 1_000).unwrap();
        let topo = net.topology();
        for level in 2..=topo.level_count() {
            for &leader in topo.level(level) {
                for d in &net.app(leader).detections {
                    let reported_below = topo.descendant_leaves(leader).iter().any(|&leaf| {
                        net.app(leaf)
                            .detections
                            .iter()
                            .any(|ld| ld.value == d.value)
                    });
                    assert!(reported_below, "parent flagged un-reported value {d:?}");
                }
            }
        }
    }

    #[test]
    fn sample_traffic_flows_upward() {
        let net = run_small(500);
        let s = net.stats();
        assert!(s.messages > 0);
        // Leaders received enough sample values to have built a model.
        let root = net.topology().root();
        assert!(
            net.app(root).estimator().observed() > 0,
            "root estimator starved"
        );
    }

    #[test]
    fn zero_sample_fraction_still_detects_locally() {
        let topo = Hierarchy::balanced(2, &[2]).unwrap();
        let mut cfg = test_config();
        cfg.sample_fraction = 0.0;
        let mut source =
            |_n: NodeId, seq: u64| Some(vec![if seq % 200 == 199 { 0.95 } else { 0.5 }]);
        let net = run_d3(topo, &cfg, SimConfig::default(), &mut source, 400).unwrap();
        let hits: usize = net
            .topology()
            .leaves()
            .iter()
            .map(|&l| net.app(l).detections.len())
            .sum();
        assert!(hits > 0);
        // With f = 0, parents get no sample traffic at all.
        let root = net.topology().root();
        assert_eq!(net.app(root).estimator().observed(), 0);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let topo = Hierarchy::balanced(2, &[2]).unwrap();
        let mut cfg = test_config();
        cfg.sample_fraction = -0.5;
        let mut source = |_: NodeId, _: u64| Some(vec![0.5]);
        assert!(run_d3(topo, &cfg, SimConfig::default(), &mut source, 10).is_err());
    }
}
