//! Precision and recall — the measures of interest of Section 10.
//!
//! *"Precision represents the fraction of the values reported by our
//! algorithm as outliers that are true outliers. Recall represents the
//! fraction of the true outliers that our algorithm identified
//! correctly."*
//!
//! Scores are accumulated as raw true-positive / false-positive /
//! false-negative counts so that the 12-run experiment averages of the
//! paper can be computed either per-run (macro) or pooled (micro).

/// Confusion counts for outlier detection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrecisionRecall {
    /// Predicted outliers that are true outliers.
    pub true_positives: u64,
    /// Predicted outliers that are not true outliers.
    pub false_positives: u64,
    /// True outliers the algorithm missed.
    pub false_negatives: u64,
}

impl PrecisionRecall {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Scores aligned per-point flags: `predicted[i]` vs `truth[i]`.
    ///
    /// # Panics
    /// Panics when the slices differ in length (a scoring bug, not a data
    /// condition).
    pub fn from_flags(predicted: &[bool], truth: &[bool]) -> Self {
        assert_eq!(predicted.len(), truth.len(), "flag vectors must align");
        let mut pr = Self::new();
        for (&p, &t) in predicted.iter().zip(truth.iter()) {
            pr.record(p, t);
        }
        pr
    }

    /// Adds a single prediction/truth pair.
    pub fn record(&mut self, predicted: bool, truth: bool) {
        match (predicted, truth) {
            (true, true) => self.true_positives += 1,
            (true, false) => self.false_positives += 1,
            (false, true) => self.false_negatives += 1,
            (false, false) => {}
        }
    }

    /// Pools counts from another accumulator (micro-averaging).
    pub fn merge(&mut self, other: &PrecisionRecall) {
        self.true_positives += other.true_positives;
        self.false_positives += other.false_positives;
        self.false_negatives += other.false_negatives;
    }

    /// Micro-average of several runs.
    pub fn aggregate<'a, I: IntoIterator<Item = &'a PrecisionRecall>>(runs: I) -> Self {
        let mut total = Self::new();
        for r in runs {
            total.merge(r);
        }
        total
    }

    /// `tp / (tp + fp)`; defined as 1.0 when nothing was predicted
    /// (vacuously precise — matches how the paper's plots treat windows
    /// with no reported outliers).
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// `tp / (tp + fn)`; defined as 1.0 when there were no true outliers.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

impl std::fmt::Display for PrecisionRecall {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "precision {:.1}% recall {:.1}% (tp {} fp {} fn {})",
            100.0 * self.precision(),
            100.0 * self.recall(),
            self.true_positives,
            self.false_positives,
            self.false_negatives
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_detection() {
        let pr = PrecisionRecall::from_flags(&[true, false, true], &[true, false, true]);
        assert_eq!(pr.precision(), 1.0);
        assert_eq!(pr.recall(), 1.0);
        assert_eq!(pr.f1(), 1.0);
    }

    #[test]
    fn false_positive_hurts_precision_only() {
        let pr = PrecisionRecall::from_flags(&[true, true], &[true, false]);
        assert_eq!(pr.precision(), 0.5);
        assert_eq!(pr.recall(), 1.0);
    }

    #[test]
    fn false_negative_hurts_recall_only() {
        let pr = PrecisionRecall::from_flags(&[true, false], &[true, true]);
        assert_eq!(pr.precision(), 1.0);
        assert_eq!(pr.recall(), 0.5);
    }

    #[test]
    fn empty_prediction_is_vacuously_precise() {
        let pr = PrecisionRecall::from_flags(&[false, false], &[true, false]);
        assert_eq!(pr.precision(), 1.0);
        assert_eq!(pr.recall(), 0.0);
    }

    #[test]
    fn no_true_outliers_gives_full_recall() {
        let pr = PrecisionRecall::from_flags(&[false, false], &[false, false]);
        assert_eq!(pr.recall(), 1.0);
        assert_eq!(pr.precision(), 1.0);
    }

    #[test]
    fn aggregate_pools_counts() {
        let a = PrecisionRecall::from_flags(&[true], &[true]);
        let b = PrecisionRecall::from_flags(&[true], &[false]);
        let total = PrecisionRecall::aggregate([&a, &b]);
        assert_eq!(total.true_positives, 1);
        assert_eq!(total.false_positives, 1);
        assert_eq!(total.precision(), 0.5);
    }

    #[test]
    #[should_panic(expected = "flag vectors must align")]
    fn mismatched_lengths_panic() {
        let _ = PrecisionRecall::from_flags(&[true], &[true, false]);
    }
}
