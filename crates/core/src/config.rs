//! Configuration types with the paper's defaults.

use snod_density::DensityError;
use snod_outlier::{DistanceOutlierConfig, MdefConfig};
use snod_sketch::SketchError;

/// Errors surfaced by the core algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A sketch rejected its parameters.
    Sketch(SketchError),
    /// A density model rejected its input.
    Density(DensityError),
    /// A configuration field was invalid.
    Config(&'static str),
    /// The estimator has not observed any data yet.
    NoData,
}

impl From<SketchError> for CoreError {
    fn from(e: SketchError) -> Self {
        CoreError::Sketch(e)
    }
}

impl From<DensityError> for CoreError {
    fn from(e: DensityError) -> Self {
        CoreError::Density(e)
    }
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Sketch(e) => write!(f, "sketch error: {e}"),
            CoreError::Density(e) => write!(f, "density error: {e}"),
            CoreError::Config(what) => write!(f, "invalid configuration: {what}"),
            CoreError::NoData => write!(f, "estimator has not observed any data yet"),
        }
    }
}

impl std::error::Error for CoreError {}

/// Per-node estimator parameters (Section 5). Defaults follow the
/// paper's experiments: `|W| = 10,000`, `|R| = 0.05·|W|`, ε = 0.2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimatorConfig {
    /// Sliding-window length `|W|`.
    pub window: usize,
    /// Kernel sample size `|R|`.
    pub sample_size: usize,
    /// Data dimensionality `d`.
    pub dimensions: usize,
    /// Error parameter ε of the windowed variance sketch.
    pub variance_epsilon: f64,
    /// RNG seed for the chain sampler.
    pub seed: u64,
}

impl EstimatorConfig {
    /// Starts a builder with the paper's defaults.
    pub fn builder() -> EstimatorConfigBuilder {
        EstimatorConfigBuilder::default()
    }
}

/// Builder for [`EstimatorConfig`].
#[derive(Debug, Clone)]
pub struct EstimatorConfigBuilder {
    window: usize,
    sample_size: Option<usize>,
    dimensions: usize,
    variance_epsilon: f64,
    seed: u64,
}

impl Default for EstimatorConfigBuilder {
    fn default() -> Self {
        Self {
            window: 10_000,
            sample_size: None,
            dimensions: 1,
            variance_epsilon: 0.2,
            seed: 0,
        }
    }
}

impl EstimatorConfigBuilder {
    /// Sets the sliding-window length `|W|`.
    pub fn window(mut self, window: usize) -> Self {
        self.window = window;
        self
    }

    /// Sets the sample size `|R|` (defaults to `0.05·|W|`).
    pub fn sample_size(mut self, sample_size: usize) -> Self {
        self.sample_size = Some(sample_size);
        self
    }

    /// Sets the data dimensionality.
    pub fn dimensions(mut self, dims: usize) -> Self {
        self.dimensions = dims;
        self
    }

    /// Sets the variance-sketch error parameter ε.
    pub fn variance_epsilon(mut self, eps: f64) -> Self {
        self.variance_epsilon = eps;
        self
    }

    /// Sets the sampler seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates and produces the configuration.
    pub fn build(self) -> Result<EstimatorConfig, CoreError> {
        if self.window == 0 {
            return Err(CoreError::Config("window must be positive"));
        }
        if self.dimensions == 0 {
            return Err(CoreError::Config("dimensionality must be positive"));
        }
        if !(self.variance_epsilon > 0.0 && self.variance_epsilon <= 1.0) {
            return Err(CoreError::Config("variance epsilon must lie in (0, 1]"));
        }
        let sample_size = self
            .sample_size
            .unwrap_or_else(|| (self.window as f64 * 0.05).round().max(1.0) as usize);
        if sample_size == 0 {
            return Err(CoreError::Config("sample size must be positive"));
        }
        Ok(EstimatorConfig {
            window: self.window,
            sample_size,
            dimensions: self.dimensions,
            variance_epsilon: self.variance_epsilon,
            seed: self.seed,
        })
    }
}

/// Configuration of the D3 algorithm (Section 7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct D3Config {
    /// Per-node estimator parameters.
    pub estimator: EstimatorConfig,
    /// The `(D, r)`-outlier rule.
    pub rule: DistanceOutlierConfig,
    /// Sample-propagation fraction `f` (paper default 0.5).
    pub sample_fraction: f64,
}

impl D3Config {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), CoreError> {
        if !(0.0..=1.0).contains(&self.sample_fraction) {
            return Err(CoreError::Config("sample fraction must lie in [0, 1]"));
        }
        if !(self.rule.radius > 0.0) {
            return Err(CoreError::Config("outlier radius must be positive"));
        }
        Ok(())
    }
}

/// How leaders propagate global-model updates to the leaves (Section 8.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UpdateStrategy {
    /// Push every accepted sample value down immediately (the base MGDD
    /// scheme: `(f·l)^n` update messages per observation per sensor).
    EveryAcceptance,
    /// Push the full model only when its JS-divergence from the last
    /// broadcast model exceeds `js_threshold` (checked every
    /// `check_every` accepted values) — the paper's *"update the children
    /// only when their estimator model has significantly changed"*
    /// optimisation.
    OnModelChange {
        /// JS-divergence threshold in `[0, 1]`.
        js_threshold: f64,
        /// Number of accepted values between divergence checks.
        check_every: u64,
    },
}

/// Configuration of the MGDD algorithm (Section 8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MgddConfig {
    /// Per-node estimator parameters.
    pub estimator: EstimatorConfig,
    /// The MDEF rule (`r`, `αr`, `k_σ`).
    pub rule: MdefConfig,
    /// Sample-propagation fraction `f`.
    pub sample_fraction: f64,
    /// Global-model update strategy.
    pub updates: UpdateStrategy,
}

impl MgddConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), CoreError> {
        if !(0.0..=1.0).contains(&self.sample_fraction) {
            return Err(CoreError::Config("sample fraction must lie in [0, 1]"));
        }
        if let UpdateStrategy::OnModelChange {
            js_threshold,
            check_every,
        } = self.updates
        {
            if !(0.0..=1.0).contains(&js_threshold) {
                return Err(CoreError::Config("JS threshold must lie in [0, 1]"));
            }
            if check_every == 0 {
                return Err(CoreError::Config("check interval must be positive"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_applies_paper_defaults() {
        let c = EstimatorConfig::builder().build().unwrap();
        assert_eq!(c.window, 10_000);
        assert_eq!(c.sample_size, 500); // 0.05 · |W|
        assert_eq!(c.dimensions, 1);
        assert!((c.variance_epsilon - 0.2).abs() < 1e-12);
    }

    #[test]
    fn builder_validates() {
        assert!(EstimatorConfig::builder().window(0).build().is_err());
        assert!(EstimatorConfig::builder().dimensions(0).build().is_err());
        assert!(EstimatorConfig::builder()
            .variance_epsilon(0.0)
            .build()
            .is_err());
        assert!(EstimatorConfig::builder()
            .window(100)
            .sample_size(0)
            .build()
            .is_err());
    }

    #[test]
    fn d3_config_validates_fraction() {
        let est = EstimatorConfig::builder().build().unwrap();
        let bad = D3Config {
            estimator: est,
            rule: DistanceOutlierConfig::new(45.0, 0.01),
            sample_fraction: 1.5,
        };
        assert!(bad.validate().is_err());
        let good = D3Config {
            sample_fraction: 0.5,
            ..bad
        };
        assert!(good.validate().is_ok());
    }

    #[test]
    fn mgdd_config_validates_update_strategy() {
        let est = EstimatorConfig::builder().build().unwrap();
        let rule = MdefConfig::new(0.08, 0.01, 3.0).unwrap();
        let bad = MgddConfig {
            estimator: est,
            rule,
            sample_fraction: 0.5,
            updates: UpdateStrategy::OnModelChange {
                js_threshold: 2.0,
                check_every: 10,
            },
        };
        assert!(bad.validate().is_err());
        let good = MgddConfig {
            updates: UpdateStrategy::EveryAcceptance,
            ..bad
        };
        assert!(good.validate().is_ok());
    }
}
