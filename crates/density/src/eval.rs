//! The structure-of-arrays kernel-evaluation engine.
//!
//! Every Epanechnikov box-probability query in this crate — scalar
//! [`crate::Kde::box_prob`], the batched sweeps, and the 1-d fast path —
//! funnels through this module, so "batched equals scalar bit-for-bit"
//! holds by construction: both paths run the same code over the same
//! centre range in the same order.
//!
//! Layout and loop shape are chosen for vectorisation:
//!
//! * centres live in per-dimension contiguous columns (`cols[j][i]` is
//!   coordinate `j` of centre `i`), so the inner loop streams over one
//!   cache-friendly `&[f64]` per dimension instead of striding through
//!   row-major points;
//! * bandwidth divisions are hoisted into reciprocal multiplies;
//! * the per-kernel interval mass is evaluated branch-free in *factored*
//!   form ([`epan_mass_clamped`]): with `ta`, `tb` the clamped
//!   standardised edges,
//!   `cdf(tb) − cdf(ta) = (tb − ta) · (0.75 − 0.25·(ta² + ta·tb + tb²))`.
//!   This is cheaper than two CDF evaluations plus a subtraction (one
//!   clamp pair, four multiplies, three adds) and it never subtracts two
//!   nearly-equal CDF values — narrow MDEF cells get the difference
//!   computed directly, and kernels entirely left or right of the box
//!   yield an *exact* zero because `tb − ta` is exactly zero;
//! * accumulation is chunked [`LANES`]-wide with a fixed pairwise
//!   reduction tree, giving the auto-vectoriser independent
//!   accumulators — and giving the explicit AVX2 path (the `simd`
//!   feature) an arithmetic order it reproduces **bit-identically**:
//!   both evaluate the same IEEE-754 operations per lane (sub, mul,
//!   max/min clamp, factored polynomial, add; never fused), and
//!   `(acc0 + acc2) + (acc1 + acc3)` is exactly the AVX2 horizontal
//!   reduction. Rust never contracts `a * b + c` into an FMA on its
//!   own, so the two backends differ only if a kernel regresses — the
//!   `simd_equivalence` proptests pin this with a 0-ULP expectation
//!   documented as a ≤ 2-ULP bound.
//!
//! All sums are *weighted*: compression (see `Kde::compress_to_budget`)
//! merges near-duplicate centres into one centre carrying the group's
//! total weight, and uncompressed models simply carry weight 1.0
//! everywhere (multiplying by 1.0 is bit-exact, so enabling the weighted
//! engine costs uncompressed queries nothing, numerically or otherwise).

use crate::kernel::Kernel1d;

/// Chunk width of the blocked accumulation (4 × f64 = one AVX2 vector).
pub(crate) const LANES: usize = 4;

/// Branch-free Epanechnikov CDF: clamping the standardised coordinate to
/// `[-1, 1]` makes the cubic exact at both support edges
/// (`t = ±1 ⇒ (0.75 − 0.25)·(±1) + 0.5 ∈ {0, 1}`), so no range branch is
/// needed. The hot loops use the factored difference
/// [`epan_mass_clamped`] instead; this form remains the test reference.
// Not `f64::clamp`: the max-then-min chain maps NaN to -1.0, exactly
// like the `_mm256_max_pd`/`_mm256_min_pd` pair in the AVX2 twin, while
// `clamp` would propagate NaN and break the bit-identity contract.
#[allow(clippy::manual_clamp)]
#[cfg_attr(not(test), allow(dead_code))]
#[inline(always)]
pub(crate) fn epan_cdf_clamped(u: f64) -> f64 {
    let t = u.max(-1.0).min(1.0);
    let t2 = t * t;
    (0.75 - 0.25 * t2) * t + 0.5
}

/// Branch-free Epanechnikov interval mass in factored form. With
/// `ta = clamp(ua)`, `tb = clamp(ub)`:
///
/// ```text
/// cdf(tb) − cdf(ta) = 0.75·(tb − ta) − 0.25·(tb³ − ta³)
///                   = (tb − ta) · (0.75 − 0.25·(ta² + ta·tb + tb²))
/// ```
///
/// Two exactness properties fall out of the factoring (and are pinned by
/// tests):
///
/// * a kernel entirely left or right of the box clamps both edges to the
///   same endpoint, so `tb − ta` — and hence the mass — is *exactly*
///   zero (the old two-CDF form relied on `1.0 − 1.0`);
/// * a box covering the whole support gives `ta = −1`, `tb = 1`, where
///   `ta² + ta·tb + tb² = 1` and the mass is exactly
///   `2 · (0.75 − 0.25) = 1`.
///
/// The association `(ta·ta + ta·tb) + tb·tb` is fixed; the AVX2 backend
/// mirrors it operation for operation.
// Same NaN rationale as `epan_cdf_clamped` for avoiding `f64::clamp`.
#[allow(clippy::manual_clamp)]
#[inline(always)]
pub(crate) fn epan_mass_clamped(ua: f64, ub: f64) -> f64 {
    let ta = ua.max(-1.0).min(1.0);
    let tb = ub.max(-1.0).min(1.0);
    let s = (ta * ta + ta * tb) + tb * tb;
    (tb - ta) * (0.75 - 0.25 * s)
}

/// Weighted product-Epanechnikov box mass `Σᵢ wᵢ·Πⱼ massⱼ(i)` over the
/// centre range `[s, e)` (un-normalised; the caller divides by the total
/// weight). `lo`/`hi` are the box edges per dimension and `inv_b` the
/// per-dimension bandwidth reciprocals.
///
/// The caller guarantees `hi[j] > lo[j]` for every dimension (degenerate
/// boxes short-circuit to zero mass before reaching the engine, matching
/// [`Kernel1d::mass`] on empty intervals).
#[inline]
pub(crate) fn epan_box_weighted(
    cols: &[Vec<f64>],
    weights: &[f64],
    s: usize,
    e: usize,
    lo: &[f64],
    hi: &[f64],
    inv_b: &[f64],
) -> f64 {
    #[cfg(all(feature = "simd", target_arch = "x86_64", target_feature = "avx2"))]
    {
        crate::simd::epan_box_weighted_avx2(cols, weights, s, e, lo, hi, inv_b)
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64", target_feature = "avx2")))]
    {
        epan_box_weighted_portable(cols, weights, s, e, lo, hi, inv_b)
    }
}

/// Portable implementation of [`epan_box_weighted`]; the arithmetic-order
/// reference the AVX2 backend must match bit-for-bit. (Under the AVX2
/// build it is only called from the equivalence tests, hence the scoped
/// dead-code allowance.)
#[cfg_attr(
    all(feature = "simd", target_arch = "x86_64", target_feature = "avx2"),
    allow(dead_code)
)]
pub(crate) fn epan_box_weighted_portable(
    cols: &[Vec<f64>],
    weights: &[f64],
    s: usize,
    e: usize,
    lo: &[f64],
    hi: &[f64],
    inv_b: &[f64],
) -> f64 {
    let n = e - s;
    let chunks = n / LANES;
    let mut acc = [0.0f64; LANES];
    for c in 0..chunks {
        let base = s + c * LANES;
        let mut prod = [0.0f64; LANES];
        prod.copy_from_slice(&weights[base..base + LANES]);
        for (j, col) in cols.iter().enumerate() {
            let (ib, l, h) = (inv_b[j], lo[j], hi[j]);
            let cs = &col[base..base + LANES];
            for lane in 0..LANES {
                prod[lane] *= epan_mass_clamped((l - cs[lane]) * ib, (h - cs[lane]) * ib);
            }
        }
        for lane in 0..LANES {
            acc[lane] += prod[lane];
        }
    }
    let mut tail = 0.0;
    for i in (s + chunks * LANES)..e {
        let mut p = weights[i];
        for (j, col) in cols.iter().enumerate() {
            p *= epan_mass_clamped((lo[j] - col[i]) * inv_b[j], (hi[j] - col[i]) * inv_b[j]);
        }
        tail += p;
    }
    // Pairwise tree matching _mm256_hadd_pd of (lo128 + hi128).
    (acc[0] + acc[2]) + (acc[1] + acc[3]) + tail
}

/// One-dimensional specialisation of [`epan_box_weighted`] for
/// [`crate::Kde1d`]: same chunking, same reduction tree, single column.
#[inline]
pub(crate) fn epan_interval_weighted(
    centers: &[f64],
    weights: &[f64],
    s: usize,
    e: usize,
    a: f64,
    b: f64,
    inv_b: f64,
) -> f64 {
    #[cfg(all(feature = "simd", target_arch = "x86_64", target_feature = "avx2"))]
    {
        crate::simd::epan_interval_weighted_avx2(centers, weights, s, e, a, b, inv_b)
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64", target_feature = "avx2")))]
    {
        epan_interval_weighted_portable(centers, weights, s, e, a, b, inv_b)
    }
}

/// Portable implementation of [`epan_interval_weighted`].
///
/// The standardised query width `w = (b − a)·inv_b` is hoisted out of
/// the loop: each lane computes only the lower edge `ua = (a − c)·inv_b`
/// and derives `ub = ua + w`. (The box evaluator cannot hoist the width
/// without a per-dimension scratch buffer, so its 1-d results differ
/// from this path by final-rounding ULPs — the two are never mixed for
/// the same model.)
#[cfg_attr(
    all(feature = "simd", target_arch = "x86_64", target_feature = "avx2"),
    allow(dead_code)
)]
pub(crate) fn epan_interval_weighted_portable(
    centers: &[f64],
    weights: &[f64],
    s: usize,
    e: usize,
    a: f64,
    b: f64,
    inv_b: f64,
) -> f64 {
    let w = (b - a) * inv_b;
    let n = e - s;
    let chunks = n / LANES;
    let mut acc = [0.0f64; LANES];
    for c in 0..chunks {
        let base = s + c * LANES;
        let cs = &centers[base..base + LANES];
        let ws = &weights[base..base + LANES];
        for lane in 0..LANES {
            let ua = (a - cs[lane]) * inv_b;
            acc[lane] += ws[lane] * epan_mass_clamped(ua, ua + w);
        }
    }
    let mut tail = 0.0;
    for i in (s + chunks * LANES)..e {
        let ua = (a - centers[i]) * inv_b;
        tail += weights[i] * epan_mass_clamped(ua, ua + w);
    }
    (acc[0] + acc[2]) + (acc[1] + acc[3]) + tail
}

/// Unit-weight specialisation of [`epan_interval_weighted`]: identical
/// arithmetic with the `wᵢ·` multiply dropped. Because `1.0 · m == m`
/// exactly in IEEE-754, dispatching here for all-ones weight vectors is
/// invisible in the results — it only halves the memory traffic of the
/// 1-d hot loop (centres stream through L1 without the weight column).
/// Callers are responsible for checking the weights really are all 1.0.
#[inline]
pub(crate) fn epan_interval_unweighted(
    centers: &[f64],
    s: usize,
    e: usize,
    a: f64,
    b: f64,
    inv_b: f64,
) -> f64 {
    #[cfg(all(feature = "simd", target_arch = "x86_64", target_feature = "avx2"))]
    {
        crate::simd::epan_interval_unweighted_avx2(centers, s, e, a, b, inv_b)
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64", target_feature = "avx2")))]
    {
        epan_interval_unweighted_portable(centers, s, e, a, b, inv_b)
    }
}

/// Portable implementation of [`epan_interval_unweighted`].
#[cfg_attr(
    all(feature = "simd", target_arch = "x86_64", target_feature = "avx2"),
    allow(dead_code)
)]
pub(crate) fn epan_interval_unweighted_portable(
    centers: &[f64],
    s: usize,
    e: usize,
    a: f64,
    b: f64,
    inv_b: f64,
) -> f64 {
    let w = (b - a) * inv_b;
    let n = e - s;
    let chunks = n / LANES;
    let mut acc = [0.0f64; LANES];
    for c in 0..chunks {
        let base = s + c * LANES;
        let cs = &centers[base..base + LANES];
        for lane in 0..LANES {
            let ua = (a - cs[lane]) * inv_b;
            acc[lane] += epan_mass_clamped(ua, ua + w);
        }
    }
    let mut tail = 0.0;
    for &c in &centers[s + chunks * LANES..e] {
        let ua = (a - c) * inv_b;
        tail += epan_mass_clamped(ua, ua + w);
    }
    (acc[0] + acc[2]) + (acc[1] + acc[3]) + tail
}

/// Decides whether a batched query set should use the shared-frontier
/// sweep (sort queries, advance two monotone cursors) or per-query
/// binary search. Sweep costs `q·log q` for the sort plus an `O(n)`
/// frontier walk; per-query search costs `2·q·log n` — but not in equal
/// units: a frontier step is a predictable compare-increment while a
/// binary-search iteration is a data-dependent load whose branch
/// mispredicts half the time, worth roughly 8 frontier steps on the
/// BENCH_kde workloads. The weight below bakes that ratio in.
///
/// Both paths feed the same evaluator with the same centre ranges, so
/// the choice is purely a latency decision — results are bit-identical
/// either way.
///
/// This is what fixes the old always-sweep regression: small batches
/// against large models (e.g. a handful of queries × 10⁵ kernels) paid
/// the `O(n)` frontier walk for nothing and ran slower than scalar
/// queries in a loop.
pub(crate) fn sweep_beats_per_query(queries: usize, kernels: usize) -> bool {
    let q = queries as f64;
    let sort_cost = q * (queries.max(2) as f64).log2() + kernels as f64;
    let search_cost = 8.0 * q * (kernels.max(2) as f64).log2();
    sort_cost <= search_cost
}

/// Weighted box mass for arbitrary kernels (Gaussian, uniform): the
/// straightforward per-point loop with the early exit on zero-mass
/// dimensions the pre-SoA code had. Kept generic rather than fast: the
/// non-Epanechnikov kernels exist for ablation, not for the hot path.
#[allow(clippy::too_many_arguments)]
pub(crate) fn generic_box_weighted<K: Kernel1d>(
    kernel: &K,
    cols: &[Vec<f64>],
    weights: &[f64],
    s: usize,
    e: usize,
    lo: &[f64],
    hi: &[f64],
    bandwidths: &[f64],
) -> f64 {
    let mut sum = 0.0;
    'points: for i in s..e {
        let mut prod = weights[i];
        for (j, col) in cols.iter().enumerate() {
            let m = kernel.mass((lo[j] - col[i]) / bandwidths[j], (hi[j] - col[i]) / bandwidths[j]);
            if m == 0.0 {
                continue 'points;
            }
            prod *= m;
        }
        sum += prod;
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::EpanechnikovKernel;

    #[test]
    fn clamped_cdf_matches_branchy_cdf_at_and_beyond_edges() {
        let k = EpanechnikovKernel;
        assert_eq!(epan_cdf_clamped(-1.0), 0.0);
        assert_eq!(epan_cdf_clamped(1.0), 1.0);
        assert_eq!(epan_cdf_clamped(-5.0), 0.0);
        assert_eq!(epan_cdf_clamped(7.5), 1.0);
        assert_eq!(epan_cdf_clamped(0.0), 0.5);
        for i in -40..=40 {
            let u = i as f64 / 20.0;
            let diff = (epan_cdf_clamped(u) - k.cdf(u)).abs();
            // Same cubic, different association: agreement to a few ULP.
            assert!(diff <= 4.0 * f64::EPSILON, "u={u}: diff {diff:e}");
        }
    }

    #[test]
    fn factored_mass_matches_cdf_difference() {
        // Exact at and beyond the support edges…
        assert_eq!(epan_mass_clamped(-3.0, -1.0), 0.0);
        assert_eq!(epan_mass_clamped(-7.0, -2.5), 0.0);
        assert_eq!(epan_mass_clamped(1.0, 5.0), 0.0);
        assert_eq!(epan_mass_clamped(2.0, 2.0), 0.0);
        assert_eq!(epan_mass_clamped(-1.0, 1.0), 1.0);
        assert_eq!(epan_mass_clamped(-9.0, 4.0), 1.0);
        // …and within ULP noise of the two-CDF form everywhere else.
        for i in -30..=30 {
            for j in i..=30 {
                let (ua, ub) = (i as f64 / 20.0, j as f64 / 20.0);
                let factored = epan_mass_clamped(ua, ub);
                let two_cdf = epan_cdf_clamped(ub) - epan_cdf_clamped(ua);
                assert!(
                    (factored - two_cdf).abs() <= 4.0 * f64::EPSILON,
                    "[{ua}, {ub}]: {factored} vs {two_cdf}"
                );
            }
        }
    }

    #[test]
    fn chunked_sum_matches_naive_weighted_sum() {
        // 11 centres exercises 2 full chunks + a 3-long tail.
        let centers: Vec<f64> = (0..11).map(|i| 0.05 + 0.09 * i as f64).collect();
        let weights: Vec<f64> = (0..11).map(|i| 1.0 + (i % 3) as f64).collect();
        let inv_b = 1.0 / 0.21;
        let (a, b) = (0.3, 0.62);
        let naive: f64 = centers
            .iter()
            .zip(&weights)
            .map(|(&c, &w)| w * (epan_cdf_clamped((b - c) * inv_b) - epan_cdf_clamped((a - c) * inv_b)))
            .sum();
        let chunked = epan_interval_weighted_portable(&centers, &weights, 0, 11, a, b, inv_b);
        assert!((chunked - naive).abs() < 1e-14, "{chunked} vs {naive}");
        // The box path computes `ub` directly instead of via the hoisted
        // width, so 1-d box and interval agree to rounding, not bits.
        let cols = vec![centers.clone()];
        let boxed =
            epan_box_weighted_portable(&cols, &weights, 0, 11, &[a], &[b], &[inv_b]);
        assert!((boxed - chunked).abs() < 1e-14, "{boxed} vs {chunked}");
    }

    #[test]
    fn unweighted_interval_is_bit_identical_to_unit_weighted() {
        let centers: Vec<f64> = (0..23).map(|i| (i as f64 * 0.113) % 1.0).collect();
        let mut sorted = centers;
        sorted.sort_by(f64::total_cmp);
        let ones = vec![1.0; 23];
        for (s, e) in [(0, 23), (2, 21), (9, 10)] {
            let unweighted = epan_interval_unweighted_portable(&sorted, s, e, 0.2, 0.7, 6.0);
            let weighted = epan_interval_weighted_portable(&sorted, &ones, s, e, 0.2, 0.7, 6.0);
            assert_eq!(unweighted.to_bits(), weighted.to_bits(), "range [{s}, {e})");
        }
    }

    #[test]
    fn subrange_evaluation_respects_offsets() {
        let centers: Vec<f64> = (0..40).map(|i| i as f64 / 40.0).collect();
        let weights = vec![1.0; 40];
        let full = epan_interval_weighted_portable(&centers, &weights, 7, 29, 0.2, 0.8, 4.0);
        let shifted = epan_interval_weighted_portable(&centers[7..29], &weights[7..29], 0, 22, 0.2, 0.8, 4.0);
        assert_eq!(full.to_bits(), shifted.to_bits());
    }

    #[test]
    fn generic_matches_fast_path_within_ulp_noise() {
        let k = EpanechnikovKernel;
        let cols = vec![
            (0..17).map(|i| (i as f64 * 0.055) % 1.0).collect::<Vec<_>>(),
            (0..17).map(|i| (i as f64 * 0.083) % 1.0).collect::<Vec<_>>(),
        ];
        let weights = vec![1.0; 17];
        let b = [0.2, 0.3];
        let inv = [1.0 / 0.2, 1.0 / 0.3];
        let (lo, hi) = ([0.3, 0.25], [0.7, 0.8]);
        let fast = epan_box_weighted_portable(&cols, &weights, 0, 17, &lo, &hi, &inv);
        let slow = generic_box_weighted(&k, &cols, &weights, 0, 17, &lo, &hi, &b);
        assert!((fast - slow).abs() < 1e-13, "{fast} vs {slow}");
    }
}
