//! Calibrated stand-in for the paper's proprietary engine dataset.
//!
//! The original data — *"the operation of an engine reported every 5
//! minutes by 15 sensors … June 1st 2002 to December 1st 2002 … time
//! sequences of 50,000 values"* — is not public. This generator matches
//! the published Figure 5 statistics (min 0.020, max 0.427, mean 0.410,
//! median 0.419, σ 0.053, skew −6.844) and the qualitative narrative:
//! *"the smooth nature of the data set, except for the measurements
//! observed from October 28th to November 1st, where a major failure was
//! detected in the systems and they reported deviating values."*
//!
//! Mechanism: a tight operating band around 0.417 (the smooth regime),
//! rare short fault excursions toward low values (the heavy left tail
//! that produces skew ≈ −6.8), and one sustained *major failure* segment
//! defaulting to ~70% through a 50,000-reading stream (the Oct 28 – Nov 1
//! analog on a Jun 1 – Dec 1 span).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};

use crate::streams::DataStream;

/// Figure 5 row for the engine dataset (min, max, mean, median, σ, skew).
pub const ENGINE_FIG5: [f64; 6] = [0.020, 0.427, 0.410, 0.419, 0.053, -6.844];

/// Operating-band centre.
const BASE_MEAN: f64 = 0.417;
/// Operating-band jitter.
const BASE_STD: f64 = 0.006;
/// Hard clamp matching the published min/max.
const MIN_VALUE: f64 = 0.020;
const MAX_VALUE: f64 = 0.427;
/// Probability of entering an ambient fault excursion per reading.
const FAULT_ENTER_P: f64 = 0.002;
/// Geometric continuation probability of an excursion (mean length 5).
const FAULT_STAY_P: f64 = 0.8;

/// One engine sensor's stream.
#[derive(Debug, Clone)]
pub struct EngineStream {
    rng: StdRng,
    normal: Normal<f64>,
    fault_normal: Normal<f64>,
    in_fault: bool,
    emitted: u64,
    /// Reading range of the sustained major failure, if any.
    major_failure: Option<(u64, u64)>,
}

impl EngineStream {
    /// A stream with the default major-failure window at readings
    /// 34,000–34,600 (the Oct 28 – Nov 1 analog of a Jun–Dec stream at
    /// 5-minute cadence).
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            normal: Normal::new(BASE_MEAN, BASE_STD).expect("valid normal"),
            fault_normal: Normal::new(0.09, 0.04).expect("valid normal"),
            in_fault: false,
            emitted: 0,
            major_failure: Some((34_000, 34_600)),
        }
    }

    /// Overrides (or removes) the major-failure window.
    pub fn with_major_failure(mut self, window: Option<(u64, u64)>) -> Self {
        self.major_failure = window;
        self
    }

    /// Whether reading `seq` falls inside the major failure.
    pub fn in_major_failure(&self, seq: u64) -> bool {
        self.major_failure
            .map(|(lo, hi)| (lo..hi).contains(&seq))
            .unwrap_or(false)
    }

    /// Readings emitted so far.
    pub fn position(&self) -> u64 {
        self.emitted
    }

    fn fault_value(&mut self) -> f64 {
        self.fault_normal
            .sample(&mut self.rng)
            .clamp(MIN_VALUE, 0.25)
    }
}

impl DataStream for EngineStream {
    fn dims(&self) -> usize {
        1
    }

    fn next_reading(&mut self) -> Vec<f64> {
        let seq = self.emitted;
        self.emitted += 1;
        if self.in_major_failure(seq) {
            return vec![self.fault_value()];
        }
        if self.in_fault {
            if self.rng.gen::<f64>() < FAULT_STAY_P {
                return vec![self.fault_value()];
            }
            self.in_fault = false;
        } else if self.rng.gen::<f64>() < FAULT_ENTER_P {
            self.in_fault = true;
            return vec![self.fault_value()];
        }
        vec![self
            .normal
            .sample(&mut self.rng)
            .clamp(MIN_VALUE, MAX_VALUE)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snod_sketch::DatasetStats;

    fn full_stream(seed: u64) -> Vec<f64> {
        let mut s = EngineStream::new(seed);
        (0..50_000).map(|_| s.next_reading()[0]).collect()
    }

    #[test]
    fn matches_figure5_statistics() {
        let xs = full_stream(42);
        let st = DatasetStats::from_slice(&xs).unwrap();
        assert!(st.min >= 0.020 - 1e-9, "min {}", st.min);
        assert!(st.max <= 0.427 + 1e-9, "max {}", st.max);
        assert!((st.mean - 0.410).abs() < 0.010, "mean {}", st.mean);
        assert!((st.median - 0.419).abs() < 0.010, "median {}", st.median);
        assert!((st.std_dev - 0.053).abs() < 0.020, "σ {}", st.std_dev);
        assert!(st.skew < -4.5 && st.skew > -9.0, "skew {}", st.skew);
    }

    #[test]
    fn smooth_outside_failures() {
        // Readings within the first 1000 that are in the operating band
        // should dominate overwhelmingly.
        let xs = full_stream(7);
        let smooth = xs[..1_000]
            .iter()
            .filter(|&&x| (x - BASE_MEAN).abs() < 0.05)
            .count();
        assert!(smooth > 950, "only {smooth} smooth readings");
    }

    #[test]
    fn major_failure_window_deviates() {
        let xs = full_stream(3);
        let fail = &xs[34_100..34_500];
        let low = fail.iter().filter(|&&x| x < 0.3).count();
        assert!(low > 350, "major failure not deviating: {low}/400 low");
    }

    #[test]
    fn failure_window_is_configurable() {
        let mut s = EngineStream::new(1).with_major_failure(None);
        assert!(!s.in_major_failure(34_100));
        let xs: Vec<f64> = (0..50_000).map(|_| s.next_reading()[0]).collect();
        let low = xs[34_100..34_500].iter().filter(|&&x| x < 0.3).count();
        assert!(low < 100, "failure still present: {low}");
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(full_stream(5), full_stream(5));
        assert_ne!(full_stream(5), full_stream(6));
    }
}
