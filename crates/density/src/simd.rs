//! Explicit AVX2 backend for the SoA evaluation engine.
//!
//! Compiled only under `--features simd` on x86_64 with
//! `-C target-feature=+avx2`; otherwise [`crate::eval`] uses its portable
//! chunked loops. The contract with the portable backend is *bit
//! identity*, maintained by construction:
//!
//! * every lane performs the identical op sequence — `sub`, `mul` by the
//!   hoisted reciprocal, `max`/`min` clamp, the factored interval mass
//!   `(tb − ta)·(0.75 − 0.25·((ta·ta + ta·tb) + tb·tb))`, product, add —
//!   with no FMA contraction (`_mm256_mul_pd`/`_mm256_add_pd` only,
//!   mirroring Rust's non-contracting scalar arithmetic);
//! * `_mm256_max_pd(u, -1)` returns the second operand when `u` is NaN,
//!   exactly like `f64::max(u, -1.0)`, so even garbage inputs clamp the
//!   same way;
//! * the horizontal reduction extracts the low/high 128-bit halves, adds
//!   them (`(acc0+acc2, acc1+acc3)`), then adds the pair — precisely the
//!   `(acc[0] + acc[2]) + (acc[1] + acc[3])` tree of the portable code;
//! * tail elements (< [`LANES`]) run the same scalar code as the portable
//!   tail.
//!
//! The `simd_equivalence` integration tests assert `to_bits` equality
//! between this path and the portable reference across dimensions 1–4.

use crate::eval::{epan_mass_clamped, LANES};
#[cfg(target_arch = "x86_64")]
use core::arch::x86_64::*;

/// AVX2 twin of [`crate::eval::epan_mass_clamped`] on four interval
/// pairs at once: clamp both standardised edges, then the factored
/// polynomial in the exact association of the scalar helper.
///
/// # Safety
/// Requires AVX2, which the enclosing `cfg(target_feature = "avx2")` on
/// this module guarantees statically.
#[inline(always)]
unsafe fn epan_mass_clamped_pd(ua: __m256d, ub: __m256d) -> __m256d {
    let neg1 = _mm256_set1_pd(-1.0);
    let pos1 = _mm256_set1_pd(1.0);
    let ta = _mm256_min_pd(_mm256_max_pd(ua, neg1), pos1);
    let tb = _mm256_min_pd(_mm256_max_pd(ub, neg1), pos1);
    // s = (ta·ta + ta·tb) + tb·tb — association fixed to match scalar.
    let s = _mm256_add_pd(
        _mm256_add_pd(_mm256_mul_pd(ta, ta), _mm256_mul_pd(ta, tb)),
        _mm256_mul_pd(tb, tb),
    );
    let poly = _mm256_sub_pd(_mm256_set1_pd(0.75), _mm256_mul_pd(_mm256_set1_pd(0.25), s));
    _mm256_mul_pd(_mm256_sub_pd(tb, ta), poly)
}

/// `(acc[0] + acc[2]) + (acc[1] + acc[3])`, the fixed reduction tree
/// shared with the portable backend.
#[inline(always)]
unsafe fn reduce4(acc: __m256d) -> f64 {
    let lo = _mm256_castpd256_pd128(acc);
    let hi = _mm256_extractf128_pd(acc, 1);
    let pair = _mm_add_pd(lo, hi);
    _mm_cvtsd_f64(pair) + _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair))
}

/// AVX2 twin of [`crate::eval::epan_box_weighted_portable`].
pub(crate) fn epan_box_weighted_avx2(
    cols: &[Vec<f64>],
    weights: &[f64],
    s: usize,
    e: usize,
    lo: &[f64],
    hi: &[f64],
    inv_b: &[f64],
) -> f64 {
    let n = e - s;
    let chunks = n / LANES;
    // SAFETY: module is compiled only when AVX2 is statically enabled;
    // all loads are in-bounds (`base + LANES <= e <= len`).
    let vec_sum = unsafe {
        let mut acc = _mm256_setzero_pd();
        for c in 0..chunks {
            let base = s + c * LANES;
            let mut prod = _mm256_loadu_pd(weights.as_ptr().add(base));
            for (j, col) in cols.iter().enumerate() {
                let ib = _mm256_set1_pd(inv_b[j]);
                let l = _mm256_set1_pd(lo[j]);
                let h = _mm256_set1_pd(hi[j]);
                let cs = _mm256_loadu_pd(col.as_ptr().add(base));
                let ua = _mm256_mul_pd(_mm256_sub_pd(l, cs), ib);
                let ub = _mm256_mul_pd(_mm256_sub_pd(h, cs), ib);
                prod = _mm256_mul_pd(prod, epan_mass_clamped_pd(ua, ub));
            }
            acc = _mm256_add_pd(acc, prod);
        }
        reduce4(acc)
    };
    let mut tail = 0.0;
    for i in (s + chunks * LANES)..e {
        let mut p = weights[i];
        for (j, col) in cols.iter().enumerate() {
            p *= epan_mass_clamped((lo[j] - col[i]) * inv_b[j], (hi[j] - col[i]) * inv_b[j]);
        }
        tail += p;
    }
    vec_sum + tail
}

/// AVX2 twin of [`crate::eval::epan_interval_weighted_portable`]: the
/// standardised width `w = (b − a)·inv_b` is hoisted once and each lane
/// derives `ub = ua + w`, exactly like the portable loop.
pub(crate) fn epan_interval_weighted_avx2(
    centers: &[f64],
    weights: &[f64],
    s: usize,
    e: usize,
    a: f64,
    b: f64,
    inv_b: f64,
) -> f64 {
    let w = (b - a) * inv_b;
    let n = e - s;
    let chunks = n / LANES;
    // SAFETY: as above — AVX2 statically enabled, loads in-bounds.
    let vec_sum = unsafe {
        let va = _mm256_set1_pd(a);
        let vw = _mm256_set1_pd(w);
        let vib = _mm256_set1_pd(inv_b);
        let mut acc = _mm256_setzero_pd();
        for c in 0..chunks {
            let base = s + c * LANES;
            let cs = _mm256_loadu_pd(centers.as_ptr().add(base));
            let ws = _mm256_loadu_pd(weights.as_ptr().add(base));
            let ua = _mm256_mul_pd(_mm256_sub_pd(va, cs), vib);
            let ub = _mm256_add_pd(ua, vw);
            acc = _mm256_add_pd(acc, _mm256_mul_pd(ws, epan_mass_clamped_pd(ua, ub)));
        }
        reduce4(acc)
    };
    let mut tail = 0.0;
    for i in (s + chunks * LANES)..e {
        let ua = (a - centers[i]) * inv_b;
        tail += weights[i] * epan_mass_clamped(ua, ua + w);
    }
    vec_sum + tail
}

/// AVX2 twin of [`crate::eval::epan_interval_unweighted_portable`].
pub(crate) fn epan_interval_unweighted_avx2(
    centers: &[f64],
    s: usize,
    e: usize,
    a: f64,
    b: f64,
    inv_b: f64,
) -> f64 {
    let w = (b - a) * inv_b;
    let n = e - s;
    let chunks = n / LANES;
    // SAFETY: as above — AVX2 statically enabled, loads in-bounds.
    let vec_sum = unsafe {
        let va = _mm256_set1_pd(a);
        let vw = _mm256_set1_pd(w);
        let vib = _mm256_set1_pd(inv_b);
        let mut acc = _mm256_setzero_pd();
        for c in 0..chunks {
            let base = s + c * LANES;
            let cs = _mm256_loadu_pd(centers.as_ptr().add(base));
            let ua = _mm256_mul_pd(_mm256_sub_pd(va, cs), vib);
            let ub = _mm256_add_pd(ua, vw);
            acc = _mm256_add_pd(acc, epan_mass_clamped_pd(ua, ub));
        }
        reduce4(acc)
    };
    let mut tail = 0.0;
    for &c in &centers[s + chunks * LANES..e] {
        let ua = (a - c) * inv_b;
        tail += epan_mass_clamped(ua, ua + w);
    }
    vec_sum + tail
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{
        epan_box_weighted_portable, epan_interval_unweighted_portable,
        epan_interval_weighted_portable,
    };

    #[test]
    fn avx2_interval_is_bit_identical_to_portable() {
        let centers: Vec<f64> = (0..53).map(|i| (i as f64 * 0.137) % 1.0).collect();
        let mut sorted = centers.clone();
        sorted.sort_by(f64::total_cmp);
        let weights: Vec<f64> = (0..53).map(|i| 1.0 + (i % 4) as f64).collect();
        for (s, e) in [(0, 53), (3, 50), (11, 12), (20, 20)] {
            let fast = epan_interval_weighted_avx2(&sorted, &weights, s, e, 0.21, 0.68, 5.0);
            let reference = epan_interval_weighted_portable(&sorted, &weights, s, e, 0.21, 0.68, 5.0);
            assert_eq!(fast.to_bits(), reference.to_bits(), "range [{s}, {e})");
        }
    }

    #[test]
    fn avx2_unweighted_interval_is_bit_identical_to_portable() {
        let centers: Vec<f64> = (0..41).map(|i| (i as f64 * 0.173) % 1.0).collect();
        let mut sorted = centers;
        sorted.sort_by(f64::total_cmp);
        for (s, e) in [(0, 41), (4, 37), (15, 16), (8, 8)] {
            let fast = epan_interval_unweighted_avx2(&sorted, s, e, 0.18, 0.71, 4.5);
            let reference = epan_interval_unweighted_portable(&sorted, s, e, 0.18, 0.71, 4.5);
            assert_eq!(fast.to_bits(), reference.to_bits(), "range [{s}, {e})");
        }
    }

    #[test]
    fn avx2_box_is_bit_identical_to_portable() {
        let cols: Vec<Vec<f64>> = (0..3)
            .map(|d| (0..37).map(|i| ((i * (d + 2)) as f64 * 0.071) % 1.0).collect())
            .collect();
        let weights = vec![1.0; 37];
        let lo = [0.2, 0.1, 0.3];
        let hi = [0.8, 0.9, 0.65];
        let inv = [4.0, 3.0, 6.0];
        for (s, e) in [(0, 37), (5, 33), (0, 3)] {
            let fast = epan_box_weighted_avx2(&cols, &weights, s, e, &lo, &hi, &inv);
            let reference = epan_box_weighted_portable(&cols, &weights, s, e, &lo, &hi, &inv);
            assert_eq!(fast.to_bits(), reference.to_bits(), "range [{s}, {e})");
        }
    }
}
