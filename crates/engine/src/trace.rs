//! Replayable reading traces: record what a driver ingested, replay it
//! bit-identically through any driver.
//!
//! A [`ReadingTrace`] is the portable capture format behind the
//! conformance suite and the CLI's `--replay` flag: one row per leaf
//! reading, in fetch order, serialized as plain CSV (`node,seq,v1,v2,…`
//! — values in Rust's shortest round-tripping float notation, so replay
//! is bit-exact). A trace implements [`StreamSource`] and can therefore
//! feed the simulator or the live runtime directly; [`TraceRecorder`]
//! wraps any live source and captures what it hands out.

use std::collections::HashMap;
use std::path::Path;

use crate::config::StreamSource;
use crate::node::NodeId;

/// Errors raised while reading or parsing a trace.
#[derive(Debug)]
pub enum TraceError {
    /// The underlying file could not be read or written.
    Io(std::io::Error),
    /// A CSV row was malformed.
    Parse {
        /// 1-based line number of the offending row.
        line: usize,
        /// What was wrong with it.
        what: &'static str,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::Parse { line, what } => write!(f, "trace line {line}: {what}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// A recorded sequence of leaf readings, replayable as a
/// [`StreamSource`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReadingTrace {
    /// `(node, seq, value)` rows in recording order.
    rows: Vec<(NodeId, u64, Vec<f64>)>,
    /// `(node, seq) -> row index` for replay lookups.
    index: HashMap<(u32, u64), usize>,
}

impl ReadingTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one reading. Later recordings of the same `(node, seq)`
    /// replace the earlier row's value (replay keeps the first row's
    /// position).
    pub fn record(&mut self, node: NodeId, seq: u64, value: &[f64]) {
        match self.index.get(&(node.0, seq)) {
            Some(&i) => self.rows[i].2 = value.to_vec(),
            None => {
                self.index.insert((node.0, seq), self.rows.len());
                self.rows.push((node, seq, value.to_vec()));
            }
        }
    }

    /// Number of recorded readings.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The recorded value of reading `seq` at `node`, if any.
    pub fn get(&self, node: NodeId, seq: u64) -> Option<&[f64]> {
        self.index
            .get(&(node.0, seq))
            .map(|&i| self.rows[i].2.as_slice())
    }

    /// Serializes the trace as CSV: one `node,seq,v1,v2,…` row per
    /// reading, in recording order. Floats use Rust's shortest
    /// round-tripping notation, so [`ReadingTrace::from_csv`] restores
    /// the exact bits.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for (node, seq, value) in &self.rows {
            out.push_str(&format!("{},{}", node.0, seq));
            for v in value {
                out.push_str(&format!(",{v}"));
            }
            out.push('\n');
        }
        out
    }

    /// Parses a trace from [`ReadingTrace::to_csv`] output. Blank lines
    /// and `#` comment lines are ignored. Tolerant of cross-platform
    /// artifacts: CRLF line endings, a trailing newline and a leading
    /// UTF-8 byte-order mark all parse identically to the plain form —
    /// a trace recorded on one platform must replay on another.
    pub fn from_csv(text: &str) -> Result<Self, TraceError> {
        let text = text.strip_prefix('\u{feff}').unwrap_or(text);
        let mut trace = Self::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut fields = line.split(',');
            let parse = |s: Option<&str>, what| {
                s.and_then(|s| s.trim().parse::<u64>().ok())
                    .ok_or(TraceError::Parse { line: i + 1, what })
            };
            let node = parse(fields.next(), "missing or invalid node id")?;
            let node = u32::try_from(node).map_err(|_| TraceError::Parse {
                line: i + 1,
                what: "node id out of range",
            })?;
            let seq = parse(fields.next(), "missing or invalid seq")?;
            let mut value = Vec::new();
            for field in fields {
                value.push(field.trim().parse::<f64>().map_err(|_| TraceError::Parse {
                    line: i + 1,
                    what: "invalid reading value",
                })?);
            }
            if value.is_empty() {
                return Err(TraceError::Parse {
                    line: i + 1,
                    what: "row has no reading values",
                });
            }
            trace.record(NodeId(node), seq, &value);
        }
        Ok(trace)
    }

    /// Iterates over the recorded `(node, seq, value)` rows in
    /// recording order.
    pub fn rows(&self) -> impl Iterator<Item = (NodeId, u64, &[f64])> {
        self.rows.iter().map(|(n, s, v)| (*n, *s, v.as_slice()))
    }

    /// Writes the CSV form to `path`.
    pub fn write_file(&self, path: &Path) -> Result<(), TraceError> {
        std::fs::write(path, self.to_csv())?;
        Ok(())
    }

    /// Reads a trace from a CSV file written by
    /// [`ReadingTrace::write_file`].
    pub fn read_file(path: &Path) -> Result<Self, TraceError> {
        Self::from_csv(&std::fs::read_to_string(path)?)
    }
}

/// Replaying a trace: a recorded `(node, seq)` row yields its value,
/// anything unrecorded ends that stream (exactly how the recording run
/// saw its source end).
impl StreamSource for ReadingTrace {
    fn next(&mut self, node: NodeId, seq: u64) -> Option<Vec<f64>> {
        self.get(node, seq).map(<[f64]>::to_vec)
    }
}

/// Wraps a [`StreamSource`], recording every reading it hands out into
/// an owned [`ReadingTrace`] (take it with
/// [`TraceRecorder::into_trace`] after the run).
pub struct TraceRecorder<S> {
    inner: S,
    trace: ReadingTrace,
}

impl<S: StreamSource> TraceRecorder<S> {
    /// Records everything `inner` produces.
    pub fn new(inner: S) -> Self {
        Self {
            inner,
            trace: ReadingTrace::new(),
        }
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &ReadingTrace {
        &self.trace
    }

    /// Consumes the recorder into its trace.
    pub fn into_trace(self) -> ReadingTrace {
        self.trace
    }
}

impl<S: StreamSource> StreamSource for TraceRecorder<S> {
    fn next(&mut self, node: NodeId, seq: u64) -> Option<Vec<f64>> {
        let value = self.inner.next(node, seq)?;
        self.trace.record(node, seq, &value);
        Some(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_trips_bit_exactly() {
        let mut t = ReadingTrace::new();
        t.record(NodeId(0), 0, &[0.1 + 0.2, -1.5e-17]);
        t.record(NodeId(3), 7, &[f64::MIN_POSITIVE, 42.0]);
        let back = ReadingTrace::from_csv(&t.to_csv()).expect("parses");
        assert_eq!(t, back);
        let a = back.get(NodeId(0), 0).expect("row present");
        assert_eq!(a[0].to_bits(), (0.1f64 + 0.2).to_bits());
    }

    #[test]
    fn replay_ends_stream_where_recording_did() {
        let mut t = ReadingTrace::new();
        t.record(NodeId(1), 0, &[1.0]);
        assert_eq!(t.next(NodeId(1), 0), Some(vec![1.0]));
        assert_eq!(t.next(NodeId(1), 1), None);
        assert_eq!(t.next(NodeId(2), 0), None);
    }

    #[test]
    fn recorder_captures_what_the_source_produced() {
        let source = |node: NodeId, seq: u64| (seq < 2).then(|| vec![node.0 as f64 + seq as f64]);
        let mut rec = TraceRecorder::new(source);
        assert!(rec.next(NodeId(0), 0).is_some());
        assert!(rec.next(NodeId(0), 1).is_some());
        assert!(rec.next(NodeId(0), 2).is_none());
        let trace = rec.into_trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.get(NodeId(0), 1), Some(&[1.0f64][..]));
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let t = ReadingTrace::from_csv("# header\n\n0,0,1.5\n").expect("parses");
        assert_eq!(t.len(), 1);
    }

    /// Regression: traces recorded on one platform must replay on
    /// another. CRLF line endings, a trailing newline and a UTF-8 BOM
    /// (all common artifacts of editing or transferring a CSV on
    /// Windows) must parse bit-identically to the plain form.
    #[test]
    fn cross_platform_line_endings_replay_identically() {
        let mut t = ReadingTrace::new();
        t.record(NodeId(0), 0, &[0.1 + 0.2]);
        t.record(NodeId(1), 0, &[-3.25e-9, 7.5]);
        t.record(NodeId(0), 1, &[f64::MIN_POSITIVE]);
        let unix = t.to_csv();
        let crlf = unix.replace('\n', "\r\n");
        let no_trailing = unix.trim_end_matches('\n').to_string();
        let bom = format!("\u{feff}{unix}");
        let bom_crlf = format!("\u{feff}{crlf}");
        for text in [&crlf, &no_trailing, &bom, &bom_crlf] {
            let back = ReadingTrace::from_csv(text).expect("platform variant parses");
            assert_eq!(back, t, "variant {text:?} must replay identically");
        }
    }

    #[test]
    fn rows_iterate_in_recording_order() {
        let mut t = ReadingTrace::new();
        t.record(NodeId(2), 5, &[1.0]);
        t.record(NodeId(0), 0, &[2.0, 3.0]);
        let rows: Vec<_> = t.rows().collect();
        assert_eq!(rows[0], (NodeId(2), 5, &[1.0][..]));
        assert_eq!(rows[1], (NodeId(0), 0, &[2.0, 3.0][..]));
    }

    #[test]
    fn malformed_rows_are_rejected() {
        assert!(ReadingTrace::from_csv("x,0,1.0").is_err());
        assert!(ReadingTrace::from_csv("0,0").is_err());
        assert!(ReadingTrace::from_csv("0,0,nope").is_err());
    }
}
