//! **§10.3 memory experiment**: actual per-sensor memory versus the
//! theoretical bounds of Theorem 1.
//!
//! The paper reports that *"the actual values of the maximum memory
//! consumption of the variance estimation procedure is around 55%–65%
//! less than the theoretic upper bound"*, sweeping `|W|` over
//! 10,000–20,000 (2 bytes per number, 16-bit architecture), and that the
//! total per-sensor budget stays under 10 KB even at `|W| = 20,000`,
//! `|R| = 2,000`, `ε = 0.2` (§7).

use snod_bench::report::Table;
use snod_core::{EstimatorConfig, SensorEstimator};
use snod_data::{DataStream, GaussianMixtureStream};

fn main() {
    println!("§10.3 — per-sensor memory accounting (2 bytes per number)\n");
    let mut t = Table::new([
        "|W|",
        "|R|",
        "eps",
        "var actual",
        "var bound",
        "saving",
        "sample bytes",
        "total",
    ]);

    for &(window, sample, eps) in &[
        (10_000usize, 500usize, 0.2f64),
        (10_000, 1_000, 0.2),
        (15_000, 750, 0.2),
        (20_000, 1_000, 0.2),
        (20_000, 2_000, 0.2),
        (10_000, 500, 0.1),
        (20_000, 2_000, 0.1),
    ] {
        let cfg = EstimatorConfig::builder()
            .window(window)
            .sample_size(sample)
            .variance_epsilon(eps)
            .seed(3)
            .build()
            .expect("valid config");
        let mut est = SensorEstimator::new(cfg);
        let mut stream = GaussianMixtureStream::new(1, 7);
        for _ in 0..(2 * window) {
            est.observe(&stream.next_reading()).expect("1-d reading");
        }
        let var_actual = est.max_variance_memory_bytes(2);
        let var_bound = est.variance_memory_bound(2);
        let saving = 1.0 - var_actual as f64 / var_bound as f64;
        // Paper-style sample accounting: |R| numbers at 2 bytes each
        // (plus 2-byte stream offsets on a 16-bit architecture).
        let sample_bytes = sample * 4;
        let total = var_actual + sample_bytes;
        t.row([
            window.to_string(),
            sample.to_string(),
            format!("{eps}"),
            format!("{var_actual} B"),
            format!("{var_bound} B"),
            format!("{:.0}%", 100.0 * saving),
            format!("{sample_bytes} B"),
            format!("{total} B"),
        ]);
    }
    println!("{}", t.render());
    println!(
        "paper: variance actual ≈ 55–65% below bound; total < 10 KB per sensor\n\
         (sensors of the era: ≥ 512 KB — Intel Mote, MICA2DOT)"
    );
}
