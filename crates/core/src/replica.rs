//! Incrementally maintained FIFO replica of a remote estimator model.
//!
//! MGDD leaves replicate a broadcasting leader's sample (paper Section
//! 8.1): every accepted leader value is relayed down and pushed into a
//! FIFO of capacity `|R|`. The seed implementation invalidated the
//! materialised kernel model on *every* push, paying a full
//! `O(|R| log|R|)` sort-and-rebuild per update. [`IncrementalReplica`]
//! instead keeps the model's sorted centres in lockstep with the FIFO —
//! each push merges the new value and removes the evicted one in
//! `O(log|R| + shift)` — while the *bandwidths* stay at their
//! last-rebuild values until the [`RebuildPolicy`] epoch budget is spent
//! or the leader's σ drifts beyond tolerance (the stale-bandwidth error
//! bound is documented on [`RebuildPolicy`]). At every epoch boundary the
//! model is rebuilt from scratch and therefore agrees exactly with a
//! non-incremental implementation.

use std::collections::VecDeque;

use snod_density::{Kde, Kde1d};
use snod_persist::{ByteReader, ByteWriter, Persist, PersistError};

use crate::config::{CoreError, RebuildPolicy};
use crate::estimator::SensorModel;

/// A FIFO replica of a remote (leader) estimator: the latest `cap`
/// relayed sample values plus the leader's current σ and conceptual
/// window, materialising an epoch-maintained kernel model on demand.
#[derive(Debug, Clone)]
pub struct IncrementalReplica {
    values: VecDeque<Vec<f64>>,
    cap: usize,
    sigmas: Vec<f64>,
    window_len: f64,
    policy: RebuildPolicy,
    /// Cached model; when present its centres exactly mirror `values`.
    cached: Option<SensorModel>,
    /// σ snapshot the cached model's bandwidths were derived from.
    built_sigmas: Vec<f64>,
    /// Pushes since the cached model was last fully rebuilt.
    pushes_since_rebuild: u64,
    /// Completed full rebuilds.
    epochs: u64,
    /// Simulated time of the latest upstream update ([`Self::touch`]).
    last_update_ns: u64,
}

impl IncrementalReplica {
    /// Creates an empty replica holding at most `cap` values.
    pub fn new(cap: usize, policy: RebuildPolicy) -> Self {
        Self {
            values: VecDeque::with_capacity(cap),
            cap,
            sigmas: Vec::new(),
            window_len: 1.0,
            policy,
            cached: None,
            built_sigmas: Vec::new(),
            pushes_since_rebuild: 0,
            epochs: 0,
            last_update_ns: 0,
        }
    }

    /// Records the simulated time at which an upstream update (a relayed
    /// delta or a full-model broadcast) last reached this replica. Under
    /// message loss or a crashed leader the replica keeps serving its
    /// last-known model, and this timestamp is what a staleness bound is
    /// checked against.
    pub fn touch(&mut self, now_ns: u64) {
        self.last_update_ns = self.last_update_ns.max(now_ns);
    }

    /// Simulated time of the latest upstream update (`0` before any).
    pub fn last_update_ns(&self) -> u64 {
        self.last_update_ns
    }

    /// Whether the replica has gone stale: no upstream update within the
    /// last `bound_ns` of simulated time.
    pub fn is_stale(&self, now_ns: u64, bound_ns: u64) -> bool {
        now_ns.saturating_sub(self.last_update_ns) > bound_ns
    }

    /// Applies one relayed sample value (evicting the oldest when full)
    /// and refreshes the leader's σ/window metadata. The cached model is
    /// updated incrementally unless the policy demands a rebuild, in
    /// which case it is dropped and rebuilt lazily on the next
    /// [`Self::model`] call.
    pub fn push(&mut self, value: Vec<f64>, sigmas: Vec<f64>, window_len: f64) {
        snod_obs::counter!("core.replica.pushes").incr();
        let evicted = if self.values.len() == self.cap {
            self.values.pop_front()
        } else {
            None
        };
        self.sigmas = sigmas;
        self.window_len = window_len;
        self.pushes_since_rebuild += 1;
        let mut keep = false;
        if let Some(model) = self.cached.as_mut() {
            if !self
                .policy
                .should_rebuild(self.pushes_since_rebuild, &self.built_sigmas, &self.sigmas)
            {
                // In-place maintenance: merge the new centre, drop the
                // evicted one, track the window length. Any failure
                // (dimension change, desync) falls back to a full
                // rebuild.
                keep = model.insert_value(&value).is_ok()
                    && evicted
                        .as_ref()
                        .is_none_or(|old| model.remove_value(old).unwrap_or(false))
                    && model.set_window_len(self.window_len.max(1.0)).is_ok();
            }
        }
        if !keep {
            self.cached = None;
        }
        self.values.push_back(value);
    }

    /// Replaces the whole replica content (the full-model broadcast of
    /// the model-change update strategy). Always invalidates the cache.
    pub fn replace(&mut self, sample: Vec<Vec<f64>>, sigmas: Vec<f64>, window_len: f64) {
        self.values = sample.into_iter().collect();
        while self.values.len() > self.cap {
            self.values.pop_front();
        }
        self.sigmas = sigmas;
        self.window_len = window_len;
        self.cached = None;
    }

    /// Enough data to make statistical judgements (half the capacity).
    pub fn is_warm(&self) -> bool {
        self.values.len() >= (self.cap / 2).max(1)
    }

    /// Number of values currently replicated.
    pub fn sample_len(&self) -> usize {
        self.values.len()
    }

    /// The replicated values, oldest first.
    pub fn values(&self) -> impl Iterator<Item = &[f64]> {
        self.values.iter().map(Vec::as_slice)
    }

    /// The leader's latest per-dimension σ estimates.
    pub fn sigmas(&self) -> &[f64] {
        &self.sigmas
    }

    /// Completed full rebuilds (epoch counter; a boundary has just been
    /// crossed when this increments across a [`Self::model`] call).
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Pushes absorbed since the last full rebuild.
    pub fn pushes_since_rebuild(&self) -> u64 {
        self.pushes_since_rebuild
    }

    /// The current model. Between epoch boundaries the cached model is
    /// maintained incrementally (exact centres, bandwidths from the last
    /// rebuild); at boundaries it is rebuilt from scratch, so the result
    /// is then identical to a rebuild-on-every-push implementation.
    pub fn model(&mut self) -> Result<&SensorModel, CoreError> {
        if self.cached.is_none() {
            if self.values.is_empty() || self.sigmas.is_empty() {
                return Err(CoreError::NoData);
            }
            let _rebuild = snod_obs::span!("core.replica.rebuild");
            snod_obs::counter!("core.replica.rebuilds").incr();
            let dims = self.sigmas.len();
            let window_len = self.window_len.max(1.0);
            let model = if dims == 1 {
                SensorModel::One(
                    Kde1d::from_sample_iter(
                        self.values.iter().map(|v| v[0]),
                        self.sigmas[0],
                        window_len,
                    )
                    .map_err(CoreError::Density)?,
                )
            } else {
                SensorModel::Multi(
                    Kde::from_sample_iter(
                        self.values.iter().map(Vec::as_slice),
                        &self.sigmas,
                        window_len,
                    )
                    .map_err(CoreError::Density)?,
                )
            };
            self.cached = Some(model);
            self.built_sigmas = self.sigmas.clone();
            self.pushes_since_rebuild = 0;
            self.epochs += 1;
        }
        Ok(self.cached.as_ref().expect("cache just filled"))
    }
}

impl Persist for IncrementalReplica {
    fn save(&self, w: &mut ByteWriter) {
        self.values.save(w);
        self.cap.save(w);
        self.sigmas.save(w);
        self.window_len.save(w);
        self.policy.save(w);
        self.cached.save(w);
        self.built_sigmas.save(w);
        self.pushes_since_rebuild.save(w);
        self.epochs.save(w);
        self.last_update_ns.save(w);
    }

    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let values = VecDeque::<Vec<f64>>::load(r)?;
        let cap = usize::load(r)?;
        let sigmas = Vec::<f64>::load(r)?;
        let window_len = f64::load(r)?;
        let policy = RebuildPolicy::load(r)?;
        let cached = Option::<SensorModel>::load(r)?;
        let built_sigmas = Vec::<f64>::load(r)?;
        let pushes_since_rebuild = u64::load(r)?;
        let epochs = u64::load(r)?;
        let last_update_ns = u64::load(r)?;
        if cap == 0 {
            return Err(PersistError::Corrupt("replica capacity must be positive"));
        }
        if values.len() > cap {
            return Err(PersistError::Corrupt("replica holds more than its capacity"));
        }
        Ok(Self {
            values,
            cap,
            sigmas,
            window_len,
            policy,
            cached,
            built_sigmas,
            pushes_since_rebuild,
            epochs,
            last_update_ns,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snod_density::DensityModel as _;

    fn policy(every: u64, tol: f64) -> RebuildPolicy {
        RebuildPolicy {
            rebuild_every: every,
            sigma_tolerance: tol,
        }
    }

    fn value_at(i: u64) -> f64 {
        ((i * 37) % 101) as f64 / 101.0
    }

    /// A from-scratch model over the same FIFO content, with the
    /// bandwidth σ the incremental replica last rebuilt with.
    fn scratch_model(replica: &IncrementalReplica, sigma: f64) -> SensorModel {
        let xs: Vec<f64> = replica.values().map(|v| v[0]).collect();
        SensorModel::One(Kde1d::from_sample(&xs, sigma, 64.0).unwrap())
    }

    #[test]
    fn incremental_model_tracks_fifo_between_epochs() {
        // Constant σ: only the push budget can trigger rebuilds, so
        // between boundaries the model is maintained purely in place.
        let mut replica = IncrementalReplica::new(32, policy(16, 0.5));
        for i in 0..200u64 {
            replica.push(vec![value_at(i)], vec![0.1], 64.0);
            if i < 8 {
                continue;
            }
            // Centres always mirror the FIFO exactly, rebuild or not.
            let (got, bandwidth) = match replica.model().unwrap() {
                SensorModel::One(m) => (m.centers().to_vec(), m.bandwidth()),
                SensorModel::Multi(_) => unreachable!(),
            };
            let mut want: Vec<f64> = replica.values().map(|v| v[0]).collect();
            want.sort_by(f64::total_cmp);
            assert_eq!(got, want, "centres diverged at push {i}");
            // Same centres + same bandwidth ⇒ the incremental model
            // *equals* a from-scratch build (the bandwidth is pinned to
            // the cached model's because |R| still grows mid-epoch here).
            let scratch = SensorModel::One(
                Kde1d::new(want, bandwidth, 64.0, snod_density::EpanechnikovKernel).unwrap(),
            );
            for q in [0.1, 0.5, 0.9] {
                assert_eq!(
                    replica.model().unwrap().neighborhood_count(&[q], 0.1).unwrap(),
                    scratch.neighborhood_count(&[q], 0.1).unwrap(),
                    "count mismatch at push {i} query {q}"
                );
            }
        }
        assert!(replica.epochs() >= 2, "push budget never cycled");
    }

    #[test]
    fn epoch_boundary_rebuild_is_exact_under_sigma_drift() {
        // Drifting σ: between boundaries the bandwidth is stale, but a
        // boundary rebuild must agree exactly with from-scratch.
        let mut replica = IncrementalReplica::new(24, policy(8, 0.2));
        let mut last_epochs = 0;
        let mut boundaries = 0;
        for i in 0..200u64 {
            let sigma = 0.1 + 0.01 * ((i / 10) % 7) as f64;
            replica.push(vec![value_at(i)], vec![sigma], 64.0);
            if i < 12 {
                continue;
            }
            replica.model().unwrap();
            if replica.epochs() > last_epochs {
                last_epochs = replica.epochs();
                boundaries += 1;
                // Fresh epoch: bandwidths derived from the current σ —
                // identical to a full rebuild over the same data.
                let scratch = scratch_model(&replica, sigma);
                for q in [0.2, 0.45, 0.7] {
                    assert_eq!(
                        replica.model().unwrap().neighborhood_count(&[q], 0.08).unwrap(),
                        scratch.neighborhood_count(&[q], 0.08).unwrap()
                    );
                }
            }
            assert!(
                replica.pushes_since_rebuild() <= 8,
                "push budget exceeded at {i}"
            );
        }
        assert!(boundaries >= 3, "too few epoch boundaries: {boundaries}");
    }

    #[test]
    fn sigma_drift_forces_early_rebuild() {
        let mut replica = IncrementalReplica::new(16, policy(1_000, 0.1));
        for i in 0..40u64 {
            replica.push(vec![value_at(i)], vec![0.1], 32.0);
        }
        replica.model().unwrap();
        assert_eq!(replica.epochs(), 1);
        // Within tolerance: no new epoch.
        replica.push(vec![0.5], vec![0.105], 32.0);
        replica.model().unwrap();
        assert_eq!(replica.epochs(), 1);
        // Past tolerance: the next model() call rebuilds.
        replica.push(vec![0.6], vec![0.2], 32.0);
        replica.model().unwrap();
        assert_eq!(replica.epochs(), 2);
    }

    #[test]
    fn replace_invalidates_and_rebuilds() {
        let mut replica = IncrementalReplica::new(8, policy(64, 0.5));
        for i in 0..8u64 {
            replica.push(vec![value_at(i)], vec![0.1], 16.0);
        }
        replica.model().unwrap();
        replica.replace(vec![vec![0.4], vec![0.5], vec![0.6]], vec![0.05], 16.0);
        assert_eq!(replica.sample_len(), 3);
        let model = replica.model().unwrap();
        match model {
            SensorModel::One(m) => assert_eq!(m.centers(), &[0.4, 0.5, 0.6]),
            SensorModel::Multi(_) => unreachable!(),
        }
        assert_eq!(replica.epochs(), 2);
    }

    #[test]
    fn staleness_tracks_the_latest_touch() {
        let mut replica = IncrementalReplica::new(8, RebuildPolicy::default());
        // Untouched: stale relative to any positive age.
        assert!(replica.is_stale(1_000, 999));
        assert!(!replica.is_stale(1_000, 1_000));
        replica.touch(5_000);
        assert_eq!(replica.last_update_ns(), 5_000);
        assert!(!replica.is_stale(5_500, 500));
        assert!(replica.is_stale(5_501, 500));
        // Touches never move backwards (duplicate deliveries may arrive
        // out of order under link faults).
        replica.touch(4_000);
        assert_eq!(replica.last_update_ns(), 5_000);
    }

    #[test]
    fn empty_replica_reports_no_data() {
        let mut replica = IncrementalReplica::new(8, RebuildPolicy::default());
        assert!(matches!(replica.model(), Err(CoreError::NoData)));
        assert!(!replica.is_warm());
    }

    #[test]
    fn multidimensional_replica_maintains_model() {
        let mut replica = IncrementalReplica::new(16, policy(8, 0.5));
        for i in 0..60u64 {
            let v = vec![value_at(i), value_at(i + 7)];
            replica.push(v, vec![0.1, 0.12], 32.0);
            if i >= 16 {
                let model = replica.model().unwrap();
                assert_eq!(model.dims(), 2);
                assert_eq!(model.sample_size(), replica.sample_len());
            }
        }
    }
}
