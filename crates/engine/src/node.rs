//! Node identity, roles and placement.

use snod_persist::{ByteReader, ByteWriter, Persist, PersistError};

/// Identifier of a node in a [`crate::Hierarchy`] — an index into the
/// topology's node table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl Persist for NodeId {
    fn save(&self, w: &mut ByteWriter) {
        self.0.save(w);
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        Ok(NodeId(u32::load(r)?))
    }
}

impl NodeId {
    /// The id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Role of a node in the tiered organisation (paper Section 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRole {
    /// A sensor at the lowest tier, reading values from its own stream.
    Leaf,
    /// A leader (parent) node at tier `level` (2 = first leader tier).
    Leader {
        /// Tier in the hierarchy, counting the leaf tier as 1.
        level: u8,
    },
}

impl NodeRole {
    /// The tier this role lives at (leaves are level 1).
    pub fn level(self) -> u8 {
        match self {
            NodeRole::Leaf => 1,
            NodeRole::Leader { level } => level,
        }
    }

    /// True for leaf sensors.
    pub fn is_leaf(self) -> bool {
        matches!(self, NodeRole::Leaf)
    }
}

/// Position of a node on the 2-d plane (paper Section 2: *"each having a
/// location on a 2-d plane"*). Used by the energy model and for
/// visualising topologies; coordinates live in `[0, 1]²`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Location {
    /// Horizontal coordinate in `[0, 1]`.
    pub x: f64,
    /// Vertical coordinate in `[0, 1]`.
    pub y: f64,
}

impl Location {
    /// Euclidean distance to `other`.
    pub fn distance(&self, other: &Location) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn role_levels() {
        assert_eq!(NodeRole::Leaf.level(), 1);
        assert_eq!(NodeRole::Leader { level: 3 }.level(), 3);
        assert!(NodeRole::Leaf.is_leaf());
        assert!(!NodeRole::Leader { level: 2 }.is_leaf());
    }

    #[test]
    fn distance_is_euclidean() {
        let a = Location { x: 0.0, y: 0.0 };
        let b = Location { x: 0.3, y: 0.4 };
        assert!((a.distance(&b) - 0.5).abs() < 1e-12);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn node_id_display_and_index() {
        assert_eq!(NodeId(7).to_string(), "n7");
        assert_eq!(NodeId(7).index(), 7);
    }
}
