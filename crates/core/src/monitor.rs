//! Distributed faulty-sensor detection (paper Section 9, run as a
//! network application rather than a local computation).
//!
//! *"Give a warning when the values of a given sensor are significantly
//! different from the values of its neighbors over the most recent time
//! window W … a parent sensor can compute the difference between the
//! estimator models received from its children, to determine if any of
//! them is faulty."*
//!
//! Leaves periodically report their estimator model (sample + σ) to
//! their leader; the leader keeps the latest model per child and, on
//! every update, compares each child against its siblings with the
//! JS-divergence of Section 6, raising a [`FaultAlarm`] whenever a
//! child's mean divergence crosses the threshold. Needs at least three
//! children to attribute the fault.

//! ## Faults and graceful degradation
//!
//! Model reports ride the simulator's reliable channel (ack/retry under
//! a [`SimConfig::with_reliability`] policy). A leader judges a child
//! only while its model is younger than
//! [`MonitorConfig::staleness_bound_ns`]; children whose reports went
//! silent are held at their last verdict and excluded from the sibling
//! comparison, each exclusion counted as a degraded score in
//! `NetStats::degraded_scores`. [`run_monitor_with_faults`] wires a
//! [`FaultPlan`] into the run.

use std::collections::HashMap;

use snod_density::js_divergence_models;
use snod_persist::{ByteReader, ByteWriter, Persist, PersistError};
use snod_simnet::{
    Ctx, DetectorEngine, FaultPlan, Hierarchy, Network, NodeId, SimConfig, StreamSource, Wire,
};

use crate::config::{CoreError, EstimatorConfig};
use crate::estimator::{SensorEstimator, SensorModel};

/// Monitor wire messages: periodic model reports from children.
#[derive(Debug, Clone)]
pub struct ModelReport {
    /// The reporting child's kernel sample.
    pub sample: Vec<Vec<f64>>,
    /// Its per-dimension σ estimates.
    pub sigmas: Vec<f64>,
    /// Its conceptual window length.
    pub window_len: f64,
}

impl Wire for ModelReport {
    fn size_bytes(&self) -> usize {
        self.sample.iter().map(|v| v.len() * 2).sum::<usize>() + self.sigmas.len() * 2 + 2
    }
}

impl Persist for ModelReport {
    fn save(&self, w: &mut ByteWriter) {
        self.sample.save(w);
        self.sigmas.save(w);
        self.window_len.save(w);
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        Ok(Self {
            sample: Vec::load(r)?,
            sigmas: Vec::load(r)?,
            window_len: f64::load(r)?,
        })
    }
}

/// One raised fault alarm.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultAlarm {
    /// When the alarm fired.
    pub time_ns: u64,
    /// The child judged faulty.
    pub child: NodeId,
    /// Its mean JS-divergence from the siblings at that instant.
    pub divergence: f64,
}

/// Configuration of the monitor application.
#[derive(Debug, Clone, Copy)]
pub struct MonitorConfig {
    /// Per-leaf estimator parameters.
    pub estimator: EstimatorConfig,
    /// Readings between model reports.
    pub report_every: u64,
    /// Mean sibling JS-divergence above which a child is flagged.
    pub threshold: f64,
    /// Grid resolution for the divergence computation.
    pub grid_k: usize,
    /// Maximum age (simulated ns) of a child's model before the leader
    /// stops judging it against its siblings: a silent child is held at
    /// its last verdict rather than blamed on stale evidence, and every
    /// stale exclusion during a reassessment is surfaced in
    /// `NetStats::degraded_scores`. `None` trusts models forever (the
    /// pre-fault-layer behaviour).
    pub staleness_bound_ns: Option<u64>,
}

/// A leader's view of one child: the materialised model plus the epoch
/// state that decides when a fresh report warrants rebuilding it.
struct ChildModel {
    model: SensorModel,
    /// σ snapshot the model was built from.
    built_sigmas: Vec<f64>,
    /// Reports absorbed (skipped) since the model was last rebuilt.
    reports_since_rebuild: u64,
    /// Simulated time the child last reported (any report counts, even
    /// epoch-skipped ones — the child proved it is alive).
    updated_ns: u64,
}

/// Per-node monitor state.
pub struct MonitorNode {
    cfg: MonitorConfig,
    level: u8,
    est: SensorEstimator,
    since_report: u64,
    /// Leader: latest model per child, rebuilt per the epoch policy in
    /// `cfg.estimator.rebuild` (statistically unchanged reports keep the
    /// existing model and skip the `O(children²·grid)` reassessment).
    child_models: HashMap<NodeId, ChildModel>,
    /// Children currently considered faulty (for edge-triggered alarms).
    currently_flagged: HashMap<NodeId, bool>,
    /// Alarms raised by this leader, in order.
    pub alarms: Vec<FaultAlarm>,
}

impl Persist for FaultAlarm {
    fn save(&self, w: &mut ByteWriter) {
        self.time_ns.save(w);
        self.child.save(w);
        self.divergence.save(w);
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        Ok(Self {
            time_ns: u64::load(r)?,
            child: NodeId::load(r)?,
            divergence: f64::load(r)?,
        })
    }
}

impl Persist for MonitorConfig {
    fn save(&self, w: &mut ByteWriter) {
        self.estimator.save(w);
        self.report_every.save(w);
        self.threshold.save(w);
        self.grid_k.save(w);
        self.staleness_bound_ns.save(w);
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let cfg = Self {
            estimator: EstimatorConfig::load(r)?,
            report_every: u64::load(r)?,
            threshold: f64::load(r)?,
            grid_k: usize::load(r)?,
            staleness_bound_ns: Option::load(r)?,
        };
        if cfg.report_every == 0 || cfg.grid_k == 0 || cfg.staleness_bound_ns == Some(0) {
            return Err(PersistError::Corrupt("invalid monitor config"));
        }
        Ok(cfg)
    }
}

impl Persist for ChildModel {
    fn save(&self, w: &mut ByteWriter) {
        self.model.save(w);
        self.built_sigmas.save(w);
        self.reports_since_rebuild.save(w);
        self.updated_ns.save(w);
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        Ok(Self {
            model: SensorModel::load(r)?,
            built_sigmas: Vec::load(r)?,
            reports_since_rebuild: u64::load(r)?,
            updated_ns: u64::load(r)?,
        })
    }
}

impl Persist for MonitorNode {
    fn save(&self, w: &mut ByteWriter) {
        self.cfg.save(w);
        w.put_u8(self.level);
        self.est.save(w);
        self.since_report.save(w);
        self.child_models.save(w);
        self.currently_flagged.save(w);
        self.alarms.save(w);
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        Ok(Self {
            cfg: MonitorConfig::load(r)?,
            level: r.get_u8()?,
            est: SensorEstimator::load(r)?,
            since_report: u64::load(r)?,
            child_models: HashMap::load(r)?,
            currently_flagged: HashMap::load(r)?,
            alarms: Vec::load(r)?,
        })
    }
}

impl MonitorNode {
    /// Builds the node for `node` in `topo`.
    pub fn new(node: NodeId, topo: &Hierarchy, cfg: &MonitorConfig) -> Self {
        let mut est_cfg = cfg.estimator;
        est_cfg.seed = est_cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (node.0 as u64);
        Self {
            cfg: *cfg,
            level: topo.level_of(node),
            est: SensorEstimator::new(est_cfg),
            since_report: 0,
            child_models: HashMap::new(),
            currently_flagged: HashMap::new(),
            alarms: Vec::new(),
        }
    }

    /// Re-evaluates sibling divergences after a model update.
    ///
    /// The attribution statistic is each child's **minimum** divergence
    /// to any sibling: a healthy child always has at least one healthy
    /// sibling nearby, while a faulty child disagrees with *everyone*.
    /// (A mean would be polluted: one stuck sensor inflates every
    /// healthy sibling's mean by `d_stuck / (l−1)`. The min is robust to
    /// any number of *distinct* simultaneous faults; two sensors failing
    /// identically would still cover for each other — an inherent limit
    /// of purely mutual comparison.)
    ///
    /// Children whose model is older than the staleness bound are
    /// excluded — neither judged nor used as a sibling reference — and
    /// held at their last verdict. Returns the number of such stale
    /// exclusions when the comparison still ran (degraded scoring).
    fn reassess(&mut self, time_ns: u64) -> u64 {
        let bound = self.cfg.staleness_bound_ns;
        let mut fresh: Vec<NodeId> = self
            .child_models
            .iter()
            .filter(|(_, cm)| bound.is_none_or(|b| time_ns.saturating_sub(cm.updated_ns) <= b))
            .map(|(&c, _)| c)
            .collect();
        fresh.sort_unstable_by_key(|c| c.0);
        let stale = (self.child_models.len() - fresh.len()) as u64;
        if fresh.len() < 3 {
            return 0; // cannot attribute a fault among fewer than 3
        }
        for &child in &fresh {
            let mine = &self.child_models[&child].model;
            let mut min_div = f64::INFINITY;
            for &other in &fresh {
                if other != child {
                    let cm = &self.child_models[&other];
                    if let Ok(d) = js_divergence_models(mine, &cm.model, self.cfg.grid_k) {
                        min_div = min_div.min(d);
                    }
                }
            }
            if !min_div.is_finite() {
                continue;
            }
            let above = min_div > self.cfg.threshold;
            let was_above = self.currently_flagged.get(&child).copied().unwrap_or(false);
            if above && !was_above {
                snod_obs::counter!("core.monitor.alarms").incr();
                self.alarms.push(FaultAlarm {
                    time_ns,
                    child,
                    divergence: min_div,
                });
            }
            self.currently_flagged.insert(child, above);
        }
        stale
    }
}

impl DetectorEngine<ModelReport> for MonitorNode {
    fn ingest(&mut self, ctx: &mut Ctx<'_, ModelReport>, value: &[f64]) {
        // A reading of the wrong dimensionality is dropped and counted
        // rather than panicking the whole simulation.
        if self.est.observe(value).is_err() {
            snod_obs::counter!("core.bad_readings").incr();
            return;
        }
        self.since_report += 1;
        if self.since_report >= self.cfg.report_every
            && self.est.observed() >= self.est.config().sample_size as u64
        {
            self.since_report = 0;
            // Reports are model updates: retried under a retry policy.
            snod_obs::counter!("core.monitor.reports").incr();
            ctx.send_parent_reliable(ModelReport {
                sample: self.est.sample(),
                sigmas: self.est.sigmas(),
                window_len: self.est.window_len(),
            });
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, ModelReport>, from: NodeId, report: ModelReport) {
        debug_assert!(self.level > 1, "leaves receive no reports");
        // Epoch gate: a report from a statistically unchanged child (σ
        // within tolerance, rebuild budget not yet spent) keeps the
        // existing model — no KDE rebuild, no sibling reassessment. A
        // drifting child trips the σ tolerance immediately, so faults
        // are still caught on the report that shows them.
        let policy = self.cfg.estimator.rebuild;
        if let Some(cm) = self.child_models.get_mut(&from) {
            cm.reports_since_rebuild += 1;
            // Even a skipped report proves the child is alive: refresh
            // its staleness clock.
            cm.updated_ns = ctx.time_ns;
            if !policy.should_rebuild(cm.reports_since_rebuild, &cm.built_sigmas, &report.sigmas) {
                return;
            }
        }
        // (Re)build the child's model from its report.
        let model = if report.sigmas.len() == 1 {
            snod_density::Kde1d::from_sample_iter(
                report.sample.iter().map(|v| v[0]),
                report.sigmas[0],
                report.window_len.max(1.0),
            )
            .map(SensorModel::One)
        } else {
            snod_density::Kde::from_sample_iter(
                report.sample.iter().map(Vec::as_slice),
                &report.sigmas,
                report.window_len.max(1.0),
            )
            .map(SensorModel::Multi)
        };
        if let Ok(model) = model {
            self.child_models.insert(
                from,
                ChildModel {
                    model,
                    built_sigmas: report.sigmas,
                    reports_since_rebuild: 0,
                    updated_ns: ctx.time_ns,
                },
            );
            let stale_exclusions = self.reassess(ctx.time_ns);
            for _ in 0..stale_exclusions {
                ctx.note_degraded_score();
            }
        }
    }
}

/// Runs the monitor over `topo`; returns the network for alarm
/// harvesting.
pub fn run_monitor<S: StreamSource>(
    topo: Hierarchy,
    cfg: &MonitorConfig,
    sim: SimConfig,
    source: &mut S,
    readings_per_leaf: u64,
) -> Result<Network<ModelReport, MonitorNode>, CoreError> {
    run_monitor_with_faults(topo, cfg, sim, FaultPlan::none(), source, readings_per_leaf)
}

/// Runs the monitor under a fault schedule. With [`FaultPlan::none()`]
/// this is bit-identical to [`run_monitor`].
pub fn run_monitor_with_faults<S: StreamSource>(
    topo: Hierarchy,
    cfg: &MonitorConfig,
    sim: SimConfig,
    plan: FaultPlan,
    source: &mut S,
    readings_per_leaf: u64,
) -> Result<Network<ModelReport, MonitorNode>, CoreError> {
    if cfg.report_every == 0 {
        return Err(CoreError::Config("report interval must be positive"));
    }
    if cfg.grid_k == 0 {
        return Err(CoreError::Config("grid resolution must be positive"));
    }
    if cfg.staleness_bound_ns == Some(0) {
        return Err(CoreError::Config("staleness bound must be positive"));
    }
    let mut net =
        Network::new(topo, sim, |node, topo| MonitorNode::new(node, topo, cfg)).with_fault_plan(plan);
    net.run(source, readings_per_leaf);
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MonitorConfig {
        MonitorConfig {
            estimator: EstimatorConfig::builder()
                .window(400)
                .sample_size(60)
                .seed(12)
                .build()
                .unwrap(),
            report_every: 100,
            threshold: 0.35,
            grid_k: 32,
            staleness_bound_ns: None,
        }
    }

    /// 4 siblings around 0.5; leaf 2 drifts to 0.8 after `fault_at`.
    fn source(fault_at: u64) -> impl FnMut(NodeId, u64) -> Option<Vec<f64>> {
        move |node: NodeId, seq: u64| {
            let base = if node.0 == 2 && seq >= fault_at {
                0.8
            } else {
                0.5
            };
            let jitter = (((seq * 31 + node.0 as u64 * 7) % 100) as f64 / 100.0 - 0.5) * 0.03;
            Some(vec![base + jitter])
        }
    }

    #[test]
    fn drifting_child_raises_exactly_one_edge_alarm() {
        let topo = Hierarchy::balanced(4, &[4]).unwrap();
        let mut src = source(1_000);
        let net = run_monitor(topo, &cfg(), SimConfig::default(), &mut src, 2_400).unwrap();
        let root = net.topology().root();
        let alarms = &net.app(root).alarms;
        assert!(!alarms.is_empty(), "no alarm raised");
        assert!(
            alarms.iter().all(|a| a.child == NodeId(2)),
            "wrong child blamed: {alarms:?}"
        );
        assert_eq!(alarms.len(), 1, "alarm not edge-triggered: {alarms:?}");
        assert!(alarms[0].divergence > 0.35);
        // The alarm fires only after the fault plus a window of drift.
        assert!(alarms[0].time_ns > 1_000 * 1_000_000_000);
    }

    #[test]
    fn healthy_siblings_raise_no_alarm() {
        let topo = Hierarchy::balanced(4, &[4]).unwrap();
        let mut src = source(u64::MAX);
        let net = run_monitor(topo, &cfg(), SimConfig::default(), &mut src, 2_000).unwrap();
        let root = net.topology().root();
        assert!(net.app(root).alarms.is_empty());
    }

    #[test]
    fn two_children_are_never_blamed() {
        // With 2 children the divergence is symmetric: no attribution.
        let topo = Hierarchy::balanced(2, &[2]).unwrap();
        let mut src = source(500);
        let net = run_monitor(topo, &cfg(), SimConfig::default(), &mut src, 1_500).unwrap();
        let root = net.topology().root();
        assert!(net.app(root).alarms.is_empty());
    }

    #[test]
    fn fault_free_plan_is_identical_to_plain_run() {
        let topo = Hierarchy::balanced(4, &[4]).unwrap();
        let mut a = source(1_000);
        let plain = run_monitor(topo.clone(), &cfg(), SimConfig::default(), &mut a, 2_000).unwrap();
        let mut b = source(1_000);
        let faulty = run_monitor_with_faults(
            topo,
            &cfg(),
            SimConfig::default(),
            FaultPlan::none(),
            &mut b,
            2_000,
        )
        .unwrap();
        assert_eq!(plain.stats(), faulty.stats());
        let root = plain.topology().root();
        assert_eq!(plain.app(root).alarms, faulty.app(root).alarms);
    }

    #[test]
    fn silent_child_is_excluded_and_counted_as_degraded() {
        // Leaf 2 crashes at t = 500 s and never reports again. With a
        // staleness bound its frozen model must drop out of the sibling
        // comparison (each exclusion = one degraded score) instead of
        // being judged on stale evidence; the remaining three healthy
        // children raise no alarm.
        let topo = Hierarchy::balanced(4, &[4]).unwrap();
        let mut c = cfg();
        c.staleness_bound_ns = Some(150 * 1_000_000_000);
        // Rebuild (and hence reassess) on every report so exclusions
        // are visible without waiting out the epoch budget.
        c.estimator.rebuild = crate::config::RebuildPolicy::always();
        let plan = FaultPlan::none().crash(NodeId(2), 500 * 1_000_000_000, None);
        let mut src = source(u64::MAX);
        let net =
            run_monitor_with_faults(topo, &c, SimConfig::default(), plan, &mut src, 2_000).unwrap();
        assert!(net.stats().degraded_scores > 0, "no stale exclusions");
        let root = net.topology().root();
        assert!(
            net.app(root).alarms.is_empty(),
            "healthy siblings raised alarms: {:?}",
            net.app(root).alarms
        );
    }

    #[test]
    fn invalid_config_is_rejected() {
        let topo = Hierarchy::balanced(4, &[4]).unwrap();
        let mut bad = cfg();
        bad.report_every = 0;
        let mut src = source(u64::MAX);
        assert!(run_monitor(topo, &bad, SimConfig::default(), &mut src, 10).is_err());
    }

    #[test]
    fn report_traffic_is_periodic() {
        let topo = Hierarchy::balanced(4, &[4]).unwrap();
        let mut src = source(u64::MAX);
        let net = run_monitor(topo, &cfg(), SimConfig::default(), &mut src, 1_000).unwrap();
        // Each leaf reports every 100 readings once the sample is warm
        // (first report at reading 100 > |R| = 60): 10 per leaf.
        assert_eq!(net.stats().messages, 4 * 10);
    }
}
