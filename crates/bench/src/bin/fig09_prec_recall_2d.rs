//! **Figure 9**: precision and recall on the 2-d synthetic workload for
//! D3 and MGDD (kernel estimators), hierarchy levels 1–4, varying
//! `|R| ∈ {0.0125, 0.025, 0.05}·|W|`.
//!
//! Same setup as Figure 7 but with two-dimensional readings: the three
//! clusters sit on the diagonal at `(m, m)` for `m ∈ {0.3, 0.35, 0.45}`
//! and the noise is uniform in `[0.5, 1]²`.
//!
//! Knobs: `FIG_RUNS` (default 3), `FIG_WINDOW` (default 10000),
//! `FIG_EVAL` (default 500), `FIG_LEAVES` (default 32).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use snod_bench::accuracy::{run_accuracy, AccuracyConfig, AlgorithmKind, EstimatorKind};
use snod_bench::report::{pct, Table};
use snod_data::GaussianMixtureStream;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn sensor_stream(run: u64, sensor: usize) -> GaussianMixtureStream {
    let seed = 0xF1609 + run * 10_007 + sensor as u64;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
    let weights = [
        rng.gen_range(0.55..1.45),
        rng.gen_range(0.55..1.45),
        rng.gen_range(0.55..1.45),
    ];
    GaussianMixtureStream::new(2, seed).with_weights(weights)
}

fn main() {
    let runs = env_u64("FIG_RUNS", 3);
    let window = env_u64("FIG_WINDOW", 10_000) as usize;
    let eval = env_u64("FIG_EVAL", 500);
    let leaves = env_u64("FIG_LEAVES", 32) as usize;

    println!(
        "Figure 9 — 2-d synthetic, |W|={window}, f=0.5, {leaves} leaves, {runs} runs, eval {eval}/leaf"
    );

    let mut d3_prec = Table::new(["|R|/|W|", "L1", "L2", "L3", "L4"]);
    let mut d3_rec = Table::new(["|R|/|W|", "L1", "L2", "L3", "L4"]);
    let mut mgdd_prec = Table::new(["|R|/|W|", "L2", "L3", "L4"]);
    let mut mgdd_rec = Table::new(["|R|/|W|", "L2", "L3", "L4"]);

    for &frac in &[0.0125f64, 0.025, 0.05] {
        let mut cfg = AccuracyConfig::paper_defaults_1d();
        cfg.leaves = leaves;
        cfg.dims = 2;
        cfg.window = window;
        cfg.sample_size = ((window as f64) * frac).round() as usize;
        cfg.warmup = window as u64;
        cfg.eval = eval;
        cfg.runs = runs;
        let results = run_accuracy(&cfg, sensor_stream);

        let cell = |alg: AlgorithmKind, level: u8, precision: bool| -> String {
            results
                .series
                .get(&(alg, EstimatorKind::Kernel, level))
                .map(|pr| {
                    pct(if precision {
                        pr.precision()
                    } else {
                        pr.recall()
                    })
                })
                .unwrap_or_else(|| "-".into())
        };
        let f = format!("{frac}");
        d3_prec.row([
            f.clone(),
            cell(AlgorithmKind::D3, 1, true),
            cell(AlgorithmKind::D3, 2, true),
            cell(AlgorithmKind::D3, 3, true),
            cell(AlgorithmKind::D3, 4, true),
        ]);
        d3_rec.row([
            f.clone(),
            cell(AlgorithmKind::D3, 1, false),
            cell(AlgorithmKind::D3, 2, false),
            cell(AlgorithmKind::D3, 3, false),
            cell(AlgorithmKind::D3, 4, false),
        ]);
        mgdd_prec.row([
            f.clone(),
            cell(AlgorithmKind::Mgdd, 2, true),
            cell(AlgorithmKind::Mgdd, 3, true),
            cell(AlgorithmKind::Mgdd, 4, true),
        ]);
        mgdd_rec.row([
            f,
            cell(AlgorithmKind::Mgdd, 2, false),
            cell(AlgorithmKind::Mgdd, 3, false),
            cell(AlgorithmKind::Mgdd, 4, false),
        ]);
        println!(
            "  |R|={}  scored={}  true-D/level={:?}  true-M/level={:?}",
            cfg.sample_size, results.scored, results.true_dist, results.true_mdef
        );
    }

    println!("\n(a) D3 precision\n{}", d3_prec.render());
    println!("(b) D3 recall\n{}", d3_rec.render());
    println!("(c) MGDD precision\n{}", mgdd_prec.render());
    println!("(d) MGDD recall\n{}", mgdd_rec.render());
}
