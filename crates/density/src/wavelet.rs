//! Haar-wavelet density estimator — the third classical distribution
//! summary the paper positions against (Section 4: *"Even though
//! sketches can be used to approximate histograms and wavelets in an
//! online setting [18, 42, 13], previous studies have also shown that
//! kernels are as accurate as those two techniques [23, 8]"*).
//!
//! The estimator builds a dyadic histogram of `2^levels` bins over
//! `[0, 1]`, takes its Haar transform, keeps the `B` largest-magnitude
//! normalised coefficients (the standard wavelet synopsis), and answers
//! density queries from the reconstruction. With `B = |R|` coefficients
//! it is memory-comparable to the paper's kernel sample, making the
//! kernels-vs-wavelets accuracy comparison honest.

use snod_persist::{ByteReader, ByteWriter, Persist, PersistError};

use crate::model::{check_dims, DensityModel};
use crate::DensityError;

/// One-dimensional Haar-wavelet synopsis of a window.
///
/// ```
/// use snod_density::{WaveletHistogram, DensityModel};
/// let xs: Vec<f64> = (0..1_000).map(|i| (i % 500) as f64 / 1_000.0).collect();
/// // Values live in [0, 0.5): the synopsis sees that sharply.
/// let w = WaveletHistogram::from_window(&xs, 8, 64).unwrap();
/// assert!(w.box_prob(&[0.0], &[0.5]).unwrap() > 0.95);
/// assert!(w.box_prob(&[0.6], &[0.9]).unwrap() < 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct WaveletHistogram {
    /// Reconstructed per-bin probabilities (non-negative, sum ≤ 1).
    bins: Vec<f64>,
    /// Number of coefficients retained (the synopsis size).
    kept: usize,
    total: f64,
}

impl WaveletHistogram {
    /// Builds the synopsis from the exact window: `levels` dyadic levels
    /// (`2^levels` bins) thresholded to the `coefficients`
    /// largest-magnitude normalised Haar coefficients.
    pub fn from_window(
        window: &[f64],
        levels: u32,
        coefficients: usize,
    ) -> Result<Self, DensityError> {
        if window.is_empty() {
            return Err(DensityError::EmptySample);
        }
        if levels == 0 || levels > 20 {
            return Err(DensityError::NonPositiveParameter(
                "levels must lie in 1..=20",
            ));
        }
        if coefficients == 0 {
            return Err(DensityError::NonPositiveParameter("coefficient budget"));
        }
        let n_bins = 1usize << levels;
        let mut bins = vec![0.0f64; n_bins];
        for &x in window {
            let b = ((x.clamp(0.0, 1.0) * n_bins as f64) as usize).min(n_bins - 1);
            bins[b] += 1.0;
        }
        let total = window.len() as f64;
        for b in &mut bins {
            *b /= total;
        }

        // Forward Haar transform, keeping for every detail coefficient
        // its (flat index in the standard layout, raw value, weighted
        // magnitude for thresholding).
        let mut work = bins.clone();
        let mut details: Vec<(usize, f64, f64)> = Vec::with_capacity(n_bins);
        let mut len = n_bins;
        let mut lev = 0u32;
        let mut offset = n_bins;
        while len > 1 {
            let half = len / 2;
            offset -= half;
            for i in 0..half {
                let a = work[2 * i];
                let b = work[2 * i + 1];
                let detail = (a - b) / 2.0;
                work[i] = (a + b) / 2.0;
                details.push((offset + i, detail, detail_weight(detail, lev)));
            }
            len = half;
            lev += 1;
        }
        let overall_avg = work[0];

        // Keep the `coefficients` largest weighted magnitudes (the
        // overall average is always kept and not charged).
        let budget = coefficients.min(details.len());
        details.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("finite magnitudes"));
        let kept_details = &details[..budget];

        // Reconstruct: place kept details into the standard layout and
        // inverse-transform.
        let mut spectrum = vec![0.0f64; n_bins];
        spectrum[0] = overall_avg;
        for &(idx, raw, _) in kept_details {
            spectrum[idx] = raw;
        }
        let mut recon = spectrum.clone();
        let mut len = 1usize;
        while len < n_bins {
            // Invert one level: averages in [0, len), details in [len, 2len).
            let mut next = vec![0.0f64; 2 * len];
            for i in 0..len {
                let avg = recon[i];
                let detail = spectrum[len + i];
                next[2 * i] = avg + detail;
                next[2 * i + 1] = avg - detail;
            }
            recon[..2 * len].copy_from_slice(&next);
            len *= 2;
        }

        // Thresholding can produce small negatives: clamp & renormalise.
        let mut recon: Vec<f64> = recon.into_iter().map(|v| v.max(0.0)).collect();
        let sum: f64 = recon.iter().sum();
        if sum > 0.0 {
            for v in &mut recon {
                *v /= sum;
            }
        }
        Ok(Self {
            bins: recon,
            kept: budget,
            total,
        })
    }

    /// Number of detail coefficients retained.
    pub fn coefficients_kept(&self) -> usize {
        self.kept
    }

    /// Number of reconstruction bins (`2^levels`).
    pub fn bins(&self) -> usize {
        self.bins.len()
    }
}

/// Standard L²-normalised thresholding weight: a Haar detail at level
/// `l` (counting from the finest) influences `2^l` bins, so its energy
/// scales with `2^{l/2}`.
fn detail_weight(detail: f64, level_from_finest: u32) -> f64 {
    detail.abs() * (2f64).powf(level_from_finest as f64 / 2.0)
}

impl DensityModel for WaveletHistogram {
    fn dims(&self) -> usize {
        1
    }

    fn window_len(&self) -> f64 {
        self.total
    }

    fn pdf(&self, x: &[f64]) -> Result<f64, DensityError> {
        check_dims(1, x)?;
        let x = x[0];
        if !(0.0..=1.0).contains(&x) {
            return Ok(0.0);
        }
        let n = self.bins.len();
        let b = ((x * n as f64) as usize).min(n - 1);
        Ok(self.bins[b] * n as f64)
    }

    fn box_prob(&self, lo: &[f64], hi: &[f64]) -> Result<f64, DensityError> {
        check_dims(1, lo)?;
        check_dims(1, hi)?;
        let (a, b) = (lo[0].max(0.0), hi[0].min(1.0));
        if b <= a {
            return Ok(0.0);
        }
        let n = self.bins.len() as f64;
        let width = 1.0 / n;
        let first = (a * n) as usize;
        let last = ((b * n) as usize).min(self.bins.len() - 1);
        let mut mass = 0.0;
        for (i, &p) in self.bins.iter().enumerate().take(last + 1).skip(first) {
            let (blo, bhi) = (i as f64 * width, (i + 1) as f64 * width);
            let overlap = (b.min(bhi) - a.max(blo)).max(0.0);
            mass += p * overlap / width;
        }
        Ok(mass.min(1.0))
    }
}

impl Persist for WaveletHistogram {
    fn save(&self, w: &mut ByteWriter) {
        self.bins.save(w);
        self.kept.save(w);
        self.total.save(w);
    }

    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let bins = Vec::<f64>::load(r)?;
        let kept = usize::load(r)?;
        let total = f64::load(r)?;
        if bins.is_empty() || !bins.len().is_power_of_two() {
            return Err(PersistError::Corrupt(
                "wavelet bin count must be a power of two",
            ));
        }
        if !(total > 0.0) {
            return Err(PersistError::Corrupt("histogram total must be positive"));
        }
        Ok(Self { bins, kept, total })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixture(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                if i % 10 == 9 {
                    0.7 + 0.2 * ((i % 97) as f64 / 97.0)
                } else {
                    0.3 + 0.05 * ((i % 89) as f64 / 89.0)
                }
            })
            .collect()
    }

    #[test]
    fn construction_validates() {
        assert!(WaveletHistogram::from_window(&[], 6, 10).is_err());
        assert!(WaveletHistogram::from_window(&[0.5], 0, 10).is_err());
        assert!(WaveletHistogram::from_window(&[0.5], 6, 0).is_err());
    }

    #[test]
    fn full_budget_is_exact_histogram() {
        let xs = mixture(2_000);
        let full = WaveletHistogram::from_window(&xs, 6, 64).unwrap();
        // With every coefficient kept the reconstruction equals the raw
        // 64-bin histogram.
        let exact = {
            let mut bins = vec![0.0f64; 64];
            for &x in &xs {
                bins[((x * 64.0) as usize).min(63)] += 1.0 / xs.len() as f64;
            }
            bins
        };
        for (r, e) in full.bins.iter().zip(exact.iter()) {
            assert!((r - e).abs() < 1e-12, "{r} vs {e}");
        }
    }

    #[test]
    fn probabilities_are_well_formed() {
        let xs = mixture(2_000);
        let w = WaveletHistogram::from_window(&xs, 8, 40).unwrap();
        let all = w.box_prob(&[0.0], &[1.0]).unwrap();
        assert!((all - 1.0).abs() < 1e-9, "total {all}");
        for i in 0..=20 {
            let x = i as f64 / 20.0;
            assert!(w.pdf(&[x]).unwrap() >= 0.0);
        }
    }

    #[test]
    fn captures_cluster_structure_under_tight_budget() {
        let xs = mixture(5_000);
        let w = WaveletHistogram::from_window(&xs, 8, 32).unwrap();
        let dense = w.box_prob(&[0.28], &[0.38]).unwrap();
        let sparse = w.box_prob(&[0.5], &[0.6]).unwrap();
        assert!(dense > 0.7, "dense mass {dense}");
        assert!(sparse < 0.1, "gap mass {sparse}");
    }

    #[test]
    fn more_coefficients_reduce_error() {
        let xs = mixture(5_000);
        let exact_mass =
            xs.iter().filter(|&&x| (0.7..0.9).contains(&x)).count() as f64 / xs.len() as f64;
        let err = |budget: usize| {
            let w = WaveletHistogram::from_window(&xs, 8, budget).unwrap();
            (w.box_prob(&[0.7], &[0.9]).unwrap() - exact_mass).abs()
        };
        assert!(
            err(128) <= err(4) + 1e-9,
            "err(128)={} err(4)={}",
            err(128),
            err(4)
        );
    }

    #[test]
    fn out_of_domain_queries_are_zero() {
        let w = WaveletHistogram::from_window(&mixture(100), 6, 16).unwrap();
        assert_eq!(w.pdf(&[1.5]).unwrap(), 0.0);
        assert_eq!(w.box_prob(&[1.2], &[1.4]).unwrap(), 0.0);
    }
}
