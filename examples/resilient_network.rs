//! Resilience: lossy radios, node failures, and leader rotation.
//!
//! The paper's setting is *"unattended environments over extended periods
//! of time"* (§1) — radios drop frames and sensors die. This example runs
//! D3 under a 10 % message-loss radio, kills a leader mid-run, and shows
//! (a) detection degrading gracefully instead of stopping, and (b) the
//! energy-aware leader rotation of `snod_simnet::Electorate` spreading
//! the leadership cost across a cell (the protocol family the paper's
//! Section 2 defers to).
//!
//! Run with: `cargo run --release --example resilient_network`

use sensor_outliers::core::{D3Config, D3Node, EstimatorConfig};
use sensor_outliers::data::{GaussianMixtureStream, SensorStreams};
use sensor_outliers::outlier::DistanceOutlierConfig;
use sensor_outliers::simnet::{ElectionPolicy, Electorate, Hierarchy, Network, NodeId, SimConfig};

fn main() {
    let topo = Hierarchy::balanced(16, &[4, 4]).unwrap();
    let cfg = D3Config {
        estimator: EstimatorConfig::builder()
            .window(2_000)
            .sample_size(150)
            .seed(8)
            .build()
            .expect("valid configuration"),
        rule: DistanceOutlierConfig::new(15.0, 0.01),
        sample_fraction: 0.5,
    };

    // --- Part 1: detection under a lossy radio with a dying leader ----
    let sim = SimConfig::default().with_drop_probability(0.10);
    let mut net = Network::new(topo.clone(), sim, |node, topo| {
        D3Node::new(node, topo, &cfg)
    });
    // One level-2 leader dies two-thirds into the run.
    let doomed = topo.level(2)[1];
    net.schedule_failure(doomed, 4_000_000_000_000); // t = 4000 s

    let mut streams = SensorStreams::generate(16, |i| GaussianMixtureStream::new(1, 60 + i as u64));
    let topo_for_source = topo.clone();
    let mut source = move |node: NodeId, _seq: u64| {
        let leaf = topo_for_source.leaves().iter().position(|&l| l == node)?;
        Some(streams.next_for(leaf))
    };
    net.run(&mut source, 6_000);

    let s = net.stats();
    println!(
        "lossy run: {} messages sent, {} dropped ({:.1}%)",
        s.messages,
        s.dropped,
        100.0 * s.dropped as f64 / s.messages as f64
    );
    let leaf_hits: usize = topo
        .leaves()
        .iter()
        .map(|&l| net.app(l).detections.len())
        .sum();
    let leader_hits: usize = topo
        .level(2)
        .iter()
        .map(|&l| net.app(l).detections.len())
        .sum();
    println!("detections: {leaf_hits} at leaves, {leader_hits} confirmed at live leaders");
    println!(
        "dead leader {doomed} confirmed {} before failing\n",
        net.app(doomed).detections.len()
    );
    assert!(leaf_hits > 0, "leaves must keep detecting under loss");

    // --- Part 2: energy-aware leader rotation --------------------------
    println!("leader rotation (MaxEnergy policy) over 30 epochs:");
    let mut electorate = Electorate::new(topo.clone(), ElectionPolicy::MaxEnergy, 50.0);
    let slot = topo.level(2)[0];
    let mut terms: std::collections::HashMap<NodeId, u32> = Default::default();
    for _ in 0..30 {
        let assignment = electorate.elect();
        let leader = assignment.physical(slot);
        *terms.entry(leader).or_default() += 1;
        // Leading one epoch costs ~1 J of extra radio work.
        electorate.charge(&assignment, slot, 1.0);
    }
    let mut terms: Vec<_> = terms.into_iter().collect();
    terms.sort();
    for (node, n) in &terms {
        println!(
            "  sensor {node}: led {n} epochs, {:.0} J left",
            electorate.remaining(*node)
        );
    }
    let max_terms = terms.iter().map(|(_, n)| *n).max().unwrap();
    let min_terms = terms.iter().map(|(_, n)| *n).min().unwrap();
    println!(
        "\nleadership spread: every cell member led {min_terms}–{max_terms} epochs (balanced)."
    );
}
