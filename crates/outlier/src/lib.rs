//! # snod-outlier — outlier definitions, detectors and baselines
//!
//! The paper follows two formal outlier definitions (Section 3) and this
//! crate implements both against any [`snod_density::DensityModel`], plus
//! the exact offline baselines the evaluation scores against:
//!
//! * [`DistanceOutlierConfig`] / [`distance::is_distance_outlier`] — the
//!   `(D, r)`-outliers of Knorr & Ng: a point is an outlier when fewer
//!   than `D` window values lie within distance `r`. Estimated from a
//!   density model via `N(p, r)` (paper Section 7).
//! * [`MdefDetector`] — the local-metrics outliers of Papadimitriou et
//!   al.'s LOCI/aLOCI: a point is an outlier when its Multi-Granularity
//!   Deviation Factor exceeds `k_σ` standard deviations of the local
//!   neighborhood counts (paper Section 8, Figure 3).
//! * [`brute_force`] — `BruteForce-D` (exact `O(d|W|²)` distance-based
//!   detection) and `BruteForce-M` (aLOCI over the exact window), the
//!   ground-truth generators for the precision/recall experiments
//!   (Section 10).
//! * [`PrecisionRecall`] — the two measures of interest of Section 10.
//!
//! Distances are L∞ (axis-aligned boxes) throughout: the paper's
//! neighborhood count `N(p, r) = P[p − r, p + r] · |W|` is a box query,
//! so the exact baselines must count with the same metric for the
//! comparison to be apples-to-apples.
//!
//! ```
//! use snod_density::Kde1d;
//! use snod_outlier::{distance::is_distance_outlier, DistanceOutlierConfig};
//!
//! // A model of a window whose mass clusters near 0.4 …
//! let sample: Vec<f64> = (0..200).map(|i| 0.4 + 0.0005 * (i % 40) as f64).collect();
//! let model = Kde1d::from_sample(&sample, 0.05, 10_000.0).unwrap();
//!
//! // … makes far values (D, r)-outliers and near values inliers.
//! let rule = DistanceOutlierConfig::new(45.0, 0.01);
//! assert!(is_distance_outlier(&model, &[0.9], &rule).unwrap());
//! assert!(!is_distance_outlier(&model, &[0.41], &rule).unwrap());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aloci_tree;
pub mod brute_force;
pub mod distance;
pub mod exact;
pub mod mdef;
pub mod metrics;

pub use aloci_tree::{AlociTree, AlociTreeConfig, LevelVerdict};
pub use exact::ExactWindowDetector;

pub use distance::{DistanceOutlierConfig, DistanceOutlierDetector};
pub use mdef::{MdefConfig, MdefDetector, MdefEvaluation, SigmaMode};
pub use metrics::PrecisionRecall;
