//! Shared helpers for the serve integration tests: synthetic traces
//! and the in-process reference run the daemon must match bit-for-bit.

// Each integration-test binary compiles its own copy of this module and
// uses a different subset of it.
#![allow(dead_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snod_serve::TenantSpec;

/// A row as the daemon's Query frame reports it.
pub type DetRow = (u32, u64, u8, Vec<f64>);

/// A small hierarchical tenant: 4 leaves under 2 mid nodes and a root,
/// sized so tests finish fast but still exercise the escalation
/// protocol across levels.
pub fn spec(leaves: usize, fanouts: &[usize]) -> TenantSpec {
    TenantSpec {
        leaves,
        fanouts: fanouts.to_vec(),
        window: 64,
        sample_size: 16,
        ..TenantSpec::default()
    }
}

/// Deterministic synthetic readings: a tight cluster with seeded
/// spikes, per `(leaf, seq)`, keyed by the tenant's actual leaf ids.
pub fn synth_rows(spec: &TenantSpec, per_leaf: u64, seed: u64) -> Vec<(u32, u64, Vec<f64>)> {
    let topo = spec.topology().expect("test topology");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::new();
    for &leaf in topo.leaves() {
        for seq in 0..per_leaf {
            let v = if rng.gen::<f64>() < 0.05 {
                5.0 + rng.gen::<f64>()
            } else {
                0.5 + 0.05 * (rng.gen::<f64>() - 0.5)
            };
            rows.push((leaf.0, seq, vec![v]));
        }
    }
    rows
}

/// Runs the same spec in-process over the same rows and collects the
/// detection rows exactly as the daemon's Query reply does.
pub fn reference_detections(
    spec: &TenantSpec,
    rows: &[(u32, u64, Vec<f64>)],
    per_leaf: u64,
) -> Vec<DetRow> {
    let mut rt = spec.build_runtime().expect("reference runtime");
    let table: std::collections::HashMap<(u32, u64), Vec<f64>> = rows
        .iter()
        .map(|(n, s, v)| ((*n, *s), v.clone()))
        .collect();
    let mut source = |node: snod_engine::NodeId, seq: u64| table.get(&(node.0, seq)).cloned();
    rt.run(&mut source, per_leaf);
    let mut out = Vec::new();
    for (node, engine) in rt.engines() {
        for d in &engine.detections {
            out.push((node.0, d.time_ns, d.level, d.value.clone()));
        }
    }
    out
}

/// Deterministic piecewise-stationary readings: every leaf's mean jumps
/// from 0.2 to 0.8 at `shift_at` (MMDEW's bread and butter).
pub fn shifted_rows(
    spec: &TenantSpec,
    per_leaf: u64,
    shift_at: u64,
    seed: u64,
) -> Vec<(u32, u64, Vec<f64>)> {
    let topo = spec.topology().expect("test topology");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::new();
    for &leaf in topo.leaves() {
        for seq in 0..per_leaf {
            let base = if seq < shift_at { 0.2 } else { 0.8 };
            let v = base + 0.02 * (rng.gen::<f64>() - 0.5);
            rows.push((leaf.0, seq, vec![v]));
        }
    }
    rows
}

/// [`reference_detections`] for an arbitrary backend recipe: the same
/// spec run in-process through the generic builder the daemon's
/// workers use.
pub fn reference_backend_detections<B: snod_core::DetectorBackend>(
    spec: &TenantSpec,
    backend: &B,
    rows: &[(u32, u64, Vec<f64>)],
    per_leaf: u64,
) -> Vec<DetRow> {
    let mut rt = spec
        .build_backend_runtime(backend)
        .expect("reference runtime");
    let table: std::collections::HashMap<(u32, u64), Vec<f64>> = rows
        .iter()
        .map(|(n, s, v)| ((*n, *s), v.clone()))
        .collect();
    let mut source = |node: snod_engine::NodeId, seq: u64| table.get(&(node.0, seq)).cloned();
    rt.run(&mut source, per_leaf);
    let mut out = Vec::new();
    for (node, engine) in rt.engines() {
        for d in B::detections(engine) {
            out.push((node.0, d.time_ns, d.level, d.value.clone()));
        }
    }
    out
}

/// Per-leaf totals for a Finish frame.
pub fn totals(spec: &TenantSpec, per_leaf: u64) -> Vec<(u32, u64)> {
    spec.topology()
        .expect("test topology")
        .leaves()
        .iter()
        .map(|l| (l.0, per_leaf))
        .collect()
}

/// A unique temp dir under the target-adjacent tmp root.
pub fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "snod-serve-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}
