//! # snod-cli — streaming outlier detection over CSV data
//!
//! The `snod` binary turns the library into a pipeline tool:
//!
//! ```text
//! snod detect --window 10000 --sample 500 --radius 0.01 --neighbors 45 readings.csv
//! snod detect --mdef 0.08,0.01,3 readings.csv     # MDEF instead of (D,r)
//! snod stats readings.csv                          # Figure-5-style table
//! snod serve --metrics-addr 127.0.0.1:7434         # multi-tenant ingestion daemon
//! snod client --tenant plant-7 --replay trace.csv  # stream a trace into it
//! snod demo                                        # self-contained synthetic demo
//! ```
//!
//! Input is one reading per line, comma-separated coordinates (already
//! normalised to `[0, 1]`; use `--min/--max` to normalise on the fly).
//! Output is one line per detected outlier: `index,coords…`.
//!
//! Argument parsing is hand-rolled (no CLI dependency): flags are
//! `--name value` pairs followed by an optional input path (stdin when
//! absent).

#![forbid(unsafe_code)]

pub mod args;
pub mod csv;
pub mod run;
