//! End-to-end integration tests of the D3 pipeline across crates:
//! data generators → estimators → distributed detection → simulator
//! statistics.

use sensor_outliers::core::pipeline::{Algorithm, OutlierPipeline, PipelineReport};
use sensor_outliers::core::{D3Config, EstimatorConfig};
use sensor_outliers::data::{GaussianMixtureStream, SensorStreams};
use sensor_outliers::outlier::DistanceOutlierConfig;
use sensor_outliers::simnet::{NodeId, SimConfig};

fn d3_pipeline(leaves: usize, seed: u64) -> OutlierPipeline {
    let cfg = D3Config {
        estimator: EstimatorConfig::builder()
            .window(1_000)
            .sample_size(100)
            .seed(seed)
            .build()
            .unwrap(),
        rule: DistanceOutlierConfig::new(10.0, 0.01),
        sample_fraction: 0.5,
    };
    // The simulator rejects fan-outs that leave a multi-root forest,
    // so the 16-leaf shape collapses 16 → 4 → 1 instead of 16 → 4 → 2.
    let fanouts: &[usize] = if leaves > 8 { &[4, 4] } else { &[4, 2] };
    OutlierPipeline::balanced(leaves, fanouts, SimConfig::default(), Algorithm::D3(cfg)).unwrap()
}

fn run(pipeline: &OutlierPipeline, seed: u64, readings: u64) -> PipelineReport {
    let topo = pipeline.topology().clone();
    let mut streams = SensorStreams::generate(topo.leaves().len(), |i| {
        GaussianMixtureStream::new(1, seed * 100 + i as u64)
    });
    let mut source = move |node: NodeId, _seq: u64| {
        let leaf = OutlierPipeline::leaf_position(&topo, node)?;
        Some(streams.next_for(leaf))
    };
    pipeline.run(&mut source, readings).unwrap()
}

#[test]
fn synthetic_noise_is_detected_at_the_leaves() {
    let pipeline = d3_pipeline(8, 1);
    let report = run(&pipeline, 1, 3_000);
    let leaf_dets = report
        .detections_by_level
        .get(&1)
        .expect("level-1 detections");
    // The 0.5% uniform noise in [0.5, 1] is rare everywhere: across
    // 8 × 3000 readings we expect ~120 noise values, most flagged.
    assert!(
        leaf_dets.len() > 30,
        "only {} leaf detections",
        leaf_dets.len()
    );
    let in_noise_range = leaf_dets.iter().filter(|d| d.value[0] >= 0.5).count();
    assert!(
        in_noise_range * 2 > leaf_dets.len(),
        "detections not concentrated in the noise range: {in_noise_range}/{}",
        leaf_dets.len()
    );
}

#[test]
fn detections_thin_out_up_the_hierarchy() {
    let pipeline = d3_pipeline(16, 2);
    let report = run(&pipeline, 2, 3_000);
    let count = |l: u8| report.detections_by_level.get(&l).map_or(0, Vec::len);
    // Theorem 3: parents only see child-flagged values, so counts can
    // only shrink level over level.
    assert!(count(1) >= count(2), "L1 {} < L2 {}", count(1), count(2));
    assert!(count(2) >= count(3), "L2 {} < L3 {}", count(2), count(3));
    assert!(count(3) > 0, "nothing survived to the root");
}

#[test]
fn identical_seeds_replay_identically() {
    let pipeline = d3_pipeline(8, 3);
    let a = run(&pipeline, 3, 2_000);
    let b = run(&pipeline, 3, 2_000);
    assert_eq!(a.total_detections(), b.total_detections());
    assert_eq!(a.stats.messages, b.stats.messages);
    assert_eq!(a.stats.bytes, b.stats.bytes);
    for (level, dets) in &a.detections_by_level {
        let other = &b.detections_by_level[level];
        assert_eq!(dets.len(), other.len());
        for (x, y) in dets.iter().zip(other.iter()) {
            assert_eq!(x.value, y.value);
            assert_eq!(x.time_ns, y.time_ns);
        }
    }
}

#[test]
fn different_seeds_differ() {
    let pipeline = d3_pipeline(8, 4);
    let a = run(&pipeline, 4, 2_000);
    let b = run(&pipeline, 5, 2_000);
    // Streams differ, so the detected values cannot be identical.
    let av: Vec<_> = a
        .detections_by_level
        .values()
        .flatten()
        .map(|d| d.value.clone())
        .collect();
    let bv: Vec<_> = b
        .detections_by_level
        .values()
        .flatten()
        .map(|d| d.value.clone())
        .collect();
    assert_ne!(av, bv);
}

#[test]
fn sample_fraction_controls_upward_traffic() {
    let make = |f: f64| {
        let cfg = D3Config {
            estimator: EstimatorConfig::builder()
                .window(1_000)
                .sample_size(100)
                .seed(6)
                .build()
                .unwrap(),
            rule: DistanceOutlierConfig::new(10.0, 0.01),
            sample_fraction: f,
        };
        OutlierPipeline::balanced(8, &[4, 2], SimConfig::default(), Algorithm::D3(cfg)).unwrap()
    };
    let low = run(&make(0.25), 6, 2_000);
    let high = run(&make(1.0), 6, 2_000);
    assert!(
        high.stats.messages > low.stats.messages,
        "f=1.0 ({}) should out-message f=0.25 ({})",
        high.stats.messages,
        low.stats.messages
    );
}

#[test]
fn centralized_baseline_is_much_chattier_than_d3() {
    let d3 = run(&d3_pipeline(16, 7), 7, 2_000);
    let cent = OutlierPipeline::balanced(
        16,
        &[4, 4],
        SimConfig::default(),
        Algorithm::Centralized(DistanceOutlierConfig::new(10.0, 0.01), 1_000),
    )
    .unwrap();
    let cent_report = run(&cent, 7, 2_000);
    assert!(
        cent_report.stats.messages > 5 * d3.stats.messages,
        "centralized {} vs D3 {}",
        cent_report.stats.messages,
        d3.stats.messages
    );
}
