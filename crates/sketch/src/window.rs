//! Exact sliding window over a stream.
//!
//! The brute-force baselines of the paper (`BruteForce-D`, `BruteForce-M`,
//! the offline equi-depth histogram) are defined over the *exact* content of
//! the sliding window `W`. A plain ring buffer is the honest implementation
//! of that: `O(|W|)` memory, `O(1)` amortised insert.

use std::collections::VecDeque;

use snod_persist::{ByteReader, ByteWriter, Persist, PersistError};

use crate::SketchError;

/// A fixed-capacity sliding window holding the most recent `capacity`
/// elements of a stream.
///
/// ```
/// use snod_sketch::SlidingWindow;
/// let mut w = SlidingWindow::new(3).unwrap();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     w.push(x);
/// }
/// assert_eq!(w.iter().copied().collect::<Vec<_>>(), vec![2.0, 3.0, 4.0]);
/// ```
#[derive(Debug, Clone)]
pub struct SlidingWindow<T> {
    buf: VecDeque<T>,
    capacity: usize,
    /// Total number of elements ever pushed (stream position).
    pushed: u64,
}

impl<T> SlidingWindow<T> {
    /// Creates a window holding at most `capacity` elements.
    pub fn new(capacity: usize) -> Result<Self, SketchError> {
        if capacity == 0 {
            return Err(SketchError::ZeroSize("window capacity"));
        }
        Ok(Self {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            pushed: 0,
        })
    }

    /// Appends `value`, evicting the oldest element if the window is full.
    /// Returns the evicted element, if any.
    pub fn push(&mut self, value: T) -> Option<T> {
        self.pushed += 1;
        let evicted = if self.buf.len() == self.capacity {
            self.buf.pop_front()
        } else {
            None
        };
        self.buf.push_back(value);
        evicted
    }

    /// Number of elements currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no element has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The configured maximum window length `|W|`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True once the window has reached its full length.
    pub fn is_full(&self) -> bool {
        self.buf.len() == self.capacity
    }

    /// Total number of elements ever pushed through the window.
    pub fn stream_len(&self) -> u64 {
        self.pushed
    }

    /// Iterates oldest-to-newest over the current content.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf.iter()
    }

    /// The most recently pushed element.
    pub fn newest(&self) -> Option<&T> {
        self.buf.back()
    }

    /// The oldest element still in the window.
    pub fn oldest(&self) -> Option<&T> {
        self.buf.front()
    }
}

impl<T: Clone> SlidingWindow<T> {
    /// Copies the window content (oldest first) into a `Vec`.
    pub fn to_vec(&self) -> Vec<T> {
        self.buf.iter().cloned().collect()
    }
}


impl<T: Persist> Persist for SlidingWindow<T> {
    fn save(&self, w: &mut ByteWriter) {
        self.buf.save(w);
        w.put_usize(self.capacity);
        w.put_u64(self.pushed);
    }

    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let win = Self {
            buf: Persist::load(r)?,
            capacity: r.get_usize()?,
            pushed: r.get_u64()?,
        };
        if win.capacity == 0 {
            return Err(PersistError::Corrupt("window capacity must be positive"));
        }
        if win.buf.len() > win.capacity {
            return Err(PersistError::Corrupt("window holds more than its capacity"));
        }
        Ok(win)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_capacity_rejected() {
        assert!(matches!(
            SlidingWindow::<f64>::new(0),
            Err(SketchError::ZeroSize(_))
        ));
    }

    #[test]
    fn fills_then_slides() {
        let mut w = SlidingWindow::new(4).unwrap();
        assert!(w.is_empty());
        for i in 0..4 {
            assert_eq!(w.push(i), None);
        }
        assert!(w.is_full());
        assert_eq!(w.push(4), Some(0));
        assert_eq!(w.push(5), Some(1));
        assert_eq!(w.to_vec(), vec![2, 3, 4, 5]);
        assert_eq!(w.stream_len(), 6);
    }

    #[test]
    fn newest_and_oldest_track_ends() {
        let mut w = SlidingWindow::new(2).unwrap();
        assert_eq!(w.newest(), None);
        w.push(10);
        assert_eq!((w.oldest(), w.newest()), (Some(&10), Some(&10)));
        w.push(20);
        w.push(30);
        assert_eq!((w.oldest(), w.newest()), (Some(&20), Some(&30)));
    }

    #[test]
    fn len_never_exceeds_capacity() {
        let mut w = SlidingWindow::new(3).unwrap();
        for i in 0..100 {
            w.push(i);
            assert!(w.len() <= 3);
        }
        assert_eq!(w.len(), 3);
    }
}
