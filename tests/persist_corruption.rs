//! Corruption suite: systematically mutated golden checkpoint files
//! must produce typed [`PersistError`]s — never a panic, never a
//! half-restored network. Table-driven: each row names a mutation of
//! the committed golden bytes and the error class it must map to.

use sensor_outliers::core::{
    build_d3_network, build_fqn_network, build_mmdew_network, D3Config, D3Node, D3Payload,
    EstimatorConfig, FqnConfig, FqnNode, FqnPayload, MmdewNode, MmdewNodeConfig, MmdewPayload,
};
use sensor_outliers::outlier::DistanceOutlierConfig;
use sensor_outliers::persist::{
    crc32, decode_checkpoint, PersistError, FORMAT_VERSION, HEADER_LEN,
};
use sensor_outliers::simnet::{FaultPlan, Hierarchy, Network, NodeId, SimConfig};

fn golden(name: &str) -> Vec<u8> {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens")
        .join(name);
    std::fs::read(path).expect("golden checkpoint exists (tests/golden_checkpoints.rs regenerates)")
}

fn golden_bytes() -> Vec<u8> {
    golden("d3.ckpt")
}

/// Patches the header checksum to match the (mutated) payload, so a
/// payload mutation is *not* caught by the CRC and must be caught by
/// the structural validation behind it.
fn fix_crc(bytes: &mut [u8]) {
    let crc = crc32(&bytes[HEADER_LEN..]);
    bytes[20..24].copy_from_slice(&crc.to_le_bytes());
}

/// The error class a mutation must land in.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Expect {
    BadMagic,
    UnsupportedVersion,
    BadChecksum,
    Truncated,
    /// Any typed decode error: deep-payload mutations may legitimately
    /// surface as `Corrupt`, `Truncated` or a checksum-sound structural
    /// rejection depending on which field the flip lands in.
    AnyTyped,
}

fn classify(err: &PersistError) -> Expect {
    match err {
        PersistError::BadMagic => Expect::BadMagic,
        PersistError::UnsupportedVersion { .. } => Expect::UnsupportedVersion,
        PersistError::BadChecksum { .. } => Expect::BadChecksum,
        PersistError::Truncated { .. } => Expect::Truncated,
        PersistError::Io(_) | PersistError::Corrupt(_) => Expect::AnyTyped,
    }
}

fn mutations() -> Vec<(&'static str, Vec<u8>, Expect)> {
    mutations_of(golden_bytes())
}

fn mutations_of(golden: Vec<u8>) -> Vec<(&'static str, Vec<u8>, Expect)> {
    let n = golden.len();
    // -- Truncations ---------------------------------------------------
    let mut rows: Vec<(&'static str, Vec<u8>, Expect)> = vec![
        ("empty file", Vec::new(), Expect::BadMagic),
        ("half the magic", golden[..4].to_vec(), Expect::BadMagic),
        ("magic only", golden[..8].to_vec(), Expect::Truncated),
        ("header cut short", golden[..HEADER_LEN - 1].to_vec(), Expect::Truncated),
        ("header only, payload gone", golden[..HEADER_LEN].to_vec(), Expect::Truncated),
        ("payload cut mid-way", golden[..n / 2].to_vec(), Expect::Truncated),
        ("last byte missing", golden[..n - 1].to_vec(), Expect::Truncated),
    ];

    // -- Header field corruption --------------------------------------
    let mut b = golden.clone();
    b[0] ^= 0xFF;
    rows.push(("first magic byte flipped", b, Expect::BadMagic));

    let mut b = golden.clone();
    b[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    rows.push(("future format version", b, Expect::UnsupportedVersion));

    let mut b = golden.clone();
    b[8..12].copy_from_slice(&0u32.to_le_bytes());
    rows.push(("version zero", b, Expect::UnsupportedVersion));

    let mut b = golden.clone();
    b[12..20].copy_from_slice(&u64::MAX.to_le_bytes());
    rows.push(("length field past the end", b, Expect::Truncated));

    let mut b = golden.clone();
    let short = (n - HEADER_LEN - 10) as u64;
    b[12..20].copy_from_slice(&short.to_le_bytes());
    rows.push(("length field shorter than payload", b, Expect::AnyTyped));

    let mut b = golden.clone();
    b[20] ^= 0x01;
    rows.push(("checksum field flipped", b, Expect::BadChecksum));

    // -- Payload corruption, CRC catching it --------------------------
    for (label, offset) in [
        ("payload byte 0 flipped", HEADER_LEN),
        ("payload mid flipped", HEADER_LEN + (n - HEADER_LEN) / 2),
        ("payload last byte flipped", n - 1),
    ] {
        let mut b = golden.clone();
        b[offset] ^= 0x10;
        rows.push((label, b, Expect::BadChecksum));
    }

    // -- Payload corruption with a *recomputed* CRC: the decoder's
    //    structural validation is the only line of defense ------------
    for (label, offset) in [
        ("crc-patched flip near start", HEADER_LEN + 3),
        ("crc-patched flip at 1/4", HEADER_LEN + (n - HEADER_LEN) / 4),
        ("crc-patched flip mid", HEADER_LEN + (n - HEADER_LEN) / 2),
        ("crc-patched flip at 3/4", HEADER_LEN + 3 * (n - HEADER_LEN) / 4),
    ] {
        let mut b = golden.clone();
        b[offset] ^= 0x80;
        fix_crc(&mut b);
        rows.push((label, b, Expect::AnyTyped));
    }

    // Trailing garbage after a valid payload.
    let mut b = golden.clone();
    b.push(0xAB);
    rows.push(("trailing garbage", b, Expect::AnyTyped));

    rows
}

fn net() -> Network<D3Payload, D3Node> {
    let cfg = D3Config {
        estimator: EstimatorConfig::builder()
            .window(300)
            .sample_size(50)
            .seed(21)
            .build()
            .unwrap(),
        rule: DistanceOutlierConfig::new(8.0, 0.02),
        sample_fraction: 0.5,
    };
    build_d3_network(
        Hierarchy::balanced(4, &[2, 2]).unwrap(),
        &cfg,
        SimConfig::default(),
        FaultPlan::none(),
    )
    .unwrap()
}

fn fqn_net() -> Network<FqnPayload, FqnNode> {
    let cfg = FqnConfig {
        dimensions: 1,
        window: 128,
        k_scale: 4.0,
        warmup: 32,
        sample_fraction: 0.5,
        seed: 21,
    };
    build_fqn_network(
        Hierarchy::balanced(4, &[2, 2]).unwrap(),
        &cfg,
        SimConfig::default(),
        FaultPlan::none(),
    )
    .unwrap()
}

fn mmdew_net() -> Network<MmdewPayload, MmdewNode> {
    let mut cfg = MmdewNodeConfig::default();
    cfg.detector.seed = 21;
    build_mmdew_network(
        Hierarchy::balanced(4, &[2, 2]).unwrap(),
        &cfg,
        SimConfig::default(),
        FaultPlan::none(),
    )
    .unwrap()
}

fn source(node: NodeId, seq: u64) -> Option<Vec<f64>> {
    let h = node.0 as u64 * 1_000_003 + seq * 7_919;
    Some(vec![0.3 + 0.2 * ((h % 1_000) as f64 / 1_000.0)])
}

/// Runs the full mutation table over one golden, restoring each
/// mutant via `restore` (a fresh network per attempt).
fn run_gauntlet(
    tag: &str,
    golden: Vec<u8>,
    restore: impl Fn(&[u8]) -> Result<(), PersistError>,
) {
    for (label, bytes, expect) in mutations_of(golden) {
        // Envelope-level decode.
        let enveloped = decode_checkpoint(&bytes);
        // Full restore into a real network: must error, never panic.
        let restored = restore(&bytes);
        let err = match (enveloped, restored) {
            (Err(e), Err(_)) => e,
            (env, res) => match res {
                Err(e) => e,
                Ok(()) => {
                    assert!(
                        label.starts_with("crc-patched") && env.is_ok(),
                        "{tag}/{label}: decoded cleanly yet should have failed"
                    );
                    continue;
                }
            },
        };
        let got = classify(&err);
        assert!(
            expect == Expect::AnyTyped || got == expect,
            "{tag}/{label}: expected {expect:?}, got {got:?} ({err})"
        );
    }
}

// Deep-payload CRC-patched mutations may pass the envelope but must
// still fail the restore (or, for a lucky flip in dead padding, restore
// cleanly — the only mutation class where that is acceptable, because
// the envelope is honest). `run_gauntlet` encodes that contract.

#[test]
fn every_mutation_yields_a_typed_error_no_panic() {
    run_gauntlet("d3", golden_bytes(), |b| net().restore(b));
}

#[test]
fn fqn_golden_survives_the_same_gauntlet() {
    run_gauntlet("fqn", golden("fqn.ckpt"), |b| fqn_net().restore(b));
}

#[test]
fn mmdew_golden_survives_the_same_gauntlet() {
    run_gauntlet("mmdew", golden("mmdew.ckpt"), |b| mmdew_net().restore(b));
}

#[test]
fn a_failed_restore_leaves_the_network_fully_functional() {
    // Run every corrupted restore against ONE network, then prove the
    // survivor still produces the pristine trace: restore is
    // decode-all-then-commit, so a failure must not partially apply.
    let mut victim = net();
    for (label, bytes, _) in mutations() {
        if net().restore(&bytes).is_ok() {
            continue; // the rare benign crc-patched flip
        }
        assert!(victim.restore(&bytes).is_err(), "{label} restored twice?");
    }
    victim.run(&mut source, 200);

    let mut reference = net();
    reference.run(&mut source, 200);
    assert_eq!(reference.stats(), victim.stats());
}

#[test]
fn restore_of_a_valid_golden_still_works_after_the_gauntlet() {
    // Sanity: the suite above is testing corruption, not a broken
    // decoder — the untouched golden restores fine.
    let golden = golden_bytes();
    assert!(decode_checkpoint(&golden).is_ok());
    net().restore(&golden).unwrap();
}
