//! Non-default detector tenants served over TCP must match the same
//! trace run through the in-process live driver — the serve-layer leg
//! of the cross-backend conformance story.

mod common;

use std::time::Duration;

use snod_core::BackendKind;
use snod_serve::{serve, ClientConfig, ServeClient, ServeConfig, TenantSpec};

fn serve_and_query(
    spec: &TenantSpec,
    rows: &[(u32, u64, Vec<f64>)],
    per_leaf: u64,
    tag: &str,
) -> Vec<common::DetRow> {
    let server = serve(ServeConfig {
        tenant: spec.clone(),
        ..ServeConfig::default()
    })
    .expect("daemon starts");
    let mut client = ServeClient::new(ClientConfig::new(server.addr().to_string()));
    let h = client.open(tag);
    for (node, seq, value) in rows {
        client.send(h, *node, *seq, value.clone());
        if seq % 32 == 0 {
            client.pump(Duration::from_millis(1));
        }
    }
    client.finish(h, common::totals(spec, per_leaf));
    assert!(
        client.wait_finished(h, Duration::from_secs(60)),
        "{tag}: stream completes"
    );
    let got = client.query(h, Duration::from_secs(10)).expect("detections");
    server.shutdown();
    got
}

#[test]
fn fqn_tenant_matches_in_process_run() {
    let spec = TenantSpec {
        detector: BackendKind::Fqn,
        ..common::spec(4, &[2, 2])
    };
    let rows = common::synth_rows(&spec, 96, 5);
    let backend = spec.fqn_backend().expect("fqn recipe");
    let want = common::reference_backend_detections(&spec, &backend, &rows, 96);
    assert!(!want.is_empty(), "trace must produce FQN detections");

    let got = serve_and_query(&spec, &rows, 96, "fqn");
    assert_eq!(got, want, "served FQN != in-process FQN");
}

#[test]
fn mmdew_tenant_matches_in_process_run() {
    let spec = TenantSpec {
        detector: BackendKind::Mmdew,
        ..common::spec(4, &[2, 2])
    };
    let rows = common::shifted_rows(&spec, 160, 80, 9);
    let backend = spec.mmdew_backend().expect("mmdew recipe");
    let want = common::reference_backend_detections(&spec, &backend, &rows, 160);
    assert!(!want.is_empty(), "shifted trace must raise MMDEW alarms");

    let got = serve_and_query(&spec, &rows, 160, "mmdew");
    assert_eq!(got, want, "served MMDEW != in-process MMDEW");
}

#[test]
fn detector_kinds_give_different_verdicts_on_the_same_trace() {
    // Sanity that the daemon really swaps engines: on a shifted trace
    // the MMDEW tenant alarms while the level-shift is invisible to the
    // FQN tenant's in-window robust scale at these settings, and vice
    // versa isolated spikes excite FQN but not MMDEW.
    let base = common::spec(2, &[2]);
    let shifted = {
        let spec = TenantSpec {
            detector: BackendKind::Mmdew,
            ..base.clone()
        };
        let rows = common::shifted_rows(&spec, 160, 80, 9);
        serve_and_query(&spec, &rows, 160, "mmdew-vs")
    };
    assert!(!shifted.is_empty(), "MMDEW must flag the mean shift");

    let spiky = {
        let spec = TenantSpec {
            detector: BackendKind::Fqn,
            ..base.clone()
        };
        let rows = common::synth_rows(&spec, 96, 5);
        serve_and_query(&spec, &rows, 96, "fqn-vs")
    };
    assert!(!spiky.is_empty(), "FQN must flag the injected spikes");
}
